//! [`ServeEngine`]: one handle over the three things a server can put
//! behind the wire — an immutable mapped [`Forest`], the traffic-
//! adaptive [`AdaptiveEngine`] wrapper around one, or the LSM-style
//! [`TieredForest`] write path — answering every protocol op with the
//! exact same semantics as the in-process API (the parity tests hold
//! the server to bit-identical answers).

use crate::planner::AdaptiveEngine;
use cobtree_core::io::RealIo;
use cobtree_core::protocol::{BatchHit, Reply, Status, BUFFER_SHARD, MAX_RANGE_KEYS};
use cobtree_search::tiered::{TierPlace, TieredForest};
use cobtree_search::{Forest, ScrubReport};
use std::sync::Arc;

/// The store a server serves: reads go to whichever engine is mounted,
/// writes only exist on the tiered one, and `Reopt` only on the
/// adaptive one.
#[derive(Clone)]
pub enum ServeEngine {
    /// An immutable (typically memory-mapped) forest: reads only.
    Forest(Arc<Forest<u64>>),
    /// An adaptive forest: reads feed the traffic sampler, `Reopt`
    /// hot-swaps re-optimized shard layouts, answers stay identical.
    Adaptive(Arc<AdaptiveEngine>),
    /// The tiered write path: reads *and* inserts/removes/flushes.
    Tiered(Arc<TieredForest<u64>>),
}

/// What an engine op produced: a success reply or a typed failure
/// status (`Unsupported` for writes against an immutable forest,
/// `Internal` for engine errors).
pub type EngineResult = Result<Reply, Status>;

impl ServeEngine {
    /// `"forest"`, `"adaptive"` or `"tiered"` — for logs and the stats
    /// harness.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServeEngine::Forest(_) => "forest",
            ServeEngine::Adaptive(_) => "adaptive",
            ServeEngine::Tiered(_) => "tiered",
        }
    }

    /// Live key count.
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            ServeEngine::Forest(f) => f.len(),
            ServeEngine::Adaptive(a) => a.snapshot().len(),
            ServeEngine::Tiered(t) => t.len(),
        }
    }

    /// Whether no key is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense base-forest shard that could hold `key`, for worker
    /// affinity: `None` when the key routes outside every shard's fence
    /// interval (or, on a tiered engine, when no base forest exists
    /// yet) — such keys are answered inline by the connection's own
    /// worker instead of being handed off.
    #[must_use]
    pub fn route_shard(&self, key: u64) -> Option<usize> {
        match self {
            ServeEngine::Forest(f) => f.router().route(key),
            // The router is pinned across swaps (same fences, same key
            // sets), so worker affinity never migrates mid-flight.
            ServeEngine::Adaptive(a) => a.snapshot().router().route(key),
            ServeEngine::Tiered(t) => {
                let snap = t.snapshot();
                snap.base().and_then(|b| b.router().route(key))
            }
        }
    }

    /// Base-forest shard count (1 minimum, so `shard % workers`
    /// ownership is always defined).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        match self {
            ServeEngine::Forest(f) => f.shard_count().max(1),
            ServeEngine::Adaptive(a) => a.snapshot().shard_count().max(1),
            ServeEngine::Tiered(t) => {
                let snap = t.snapshot();
                snap.base().map_or(1, |b| b.shard_count().max(1))
            }
        }
    }

    /// Whether `key`'s owning shard is serving; `Err(Status::Unavail)`
    /// when it is quarantined.
    fn check_key(&self, key: u64) -> Result<(), Status> {
        let available = match self {
            ServeEngine::Forest(f) => f.check_available(key),
            ServeEngine::Adaptive(a) => a.snapshot().check_available(key),
            ServeEngine::Tiered(t) => t.check_available(key),
        };
        available.map_err(|_| Status::Unavail)
    }

    /// Whether any shard is currently quarantined — the conservative
    /// gate for ops whose answers span every shard (rank, select,
    /// range, bounds).
    #[must_use]
    pub fn any_quarantined(&self) -> bool {
        self.health_counters().1 > 0
    }

    /// Point lookup → the protocol's `Hit` reply. Buffer-tier hits on
    /// the tiered engine report shard [`BUFFER_SHARD`] and position 0.
    /// Keys routed to a quarantined shard answer
    /// `Err(Status::Unavail)` — the rest of the key space keeps
    /// serving.
    pub fn get(&self, key: u64) -> EngineResult {
        self.check_key(key)?;
        Ok(match self {
            ServeEngine::Forest(f) => forest_get(f, key),
            ServeEngine::Adaptive(a) => {
                let f = a.snapshot();
                a.sampler().observe(&f, key);
                forest_get(&f, key)
            }
            ServeEngine::Tiered(t) => match t.locate(key) {
                Some(hit) => Reply::Hit {
                    found: true,
                    shard: match hit.place {
                        TierPlace::Shard { shard, .. } => shard as u32,
                        TierPlace::Buffer => BUFFER_SHARD,
                    },
                    position: match hit.place {
                        TierPlace::Shard { position, .. } => position,
                        TierPlace::Buffer => 0,
                    },
                },
                None => MISS,
            },
        })
    }

    /// A whole batch of point lookups on the **calling** thread — the
    /// worker-affinity hot path. On the immutable forest this runs the
    /// serial interleaved descent kernel
    /// ([`Forest::search_batch_interleaved`]) with `width` lookups in
    /// flight; the tiered engine must merge mutable tiers under its
    /// read lock, so it resolves per key. `out` gets one `Hit` reply
    /// per probe, in probe order.
    pub fn get_batch(&self, keys: &[u64], width: usize, out: &mut Vec<EngineResult>) {
        out.clear();
        if self.any_quarantined() {
            // Degraded path: resolve per key so only probes routed to
            // the quarantined shard answer `Unavail`.
            out.extend(keys.iter().map(|&k| self.get(k)));
            return;
        }
        match self {
            ServeEngine::Forest(f) => forest_get_batch(f, keys, width, out),
            ServeEngine::Adaptive(a) => {
                let f = a.snapshot();
                for &k in keys {
                    a.sampler().observe(&f, k);
                }
                forest_get_batch(&f, keys, width, out);
            }
            ServeEngine::Tiered(_) => {
                out.extend(keys.iter().map(|&k| self.get(k)));
            }
        }
    }

    /// Smallest stored key `>=` / `>` the probe. `Unavail` while any
    /// shard is quarantined (the answer may live in it).
    pub fn bound(&self, key: u64, upper: bool) -> EngineResult {
        if self.any_quarantined() {
            return Err(Status::Unavail);
        }
        let found = match (self, upper) {
            (ServeEngine::Forest(f), false) => f.lower_bound(key),
            (ServeEngine::Forest(f), true) => f.upper_bound(key),
            (ServeEngine::Adaptive(a), false) => a.snapshot().lower_bound(key),
            (ServeEngine::Adaptive(a), true) => a.snapshot().upper_bound(key),
            (ServeEngine::Tiered(t), false) => t.lower_bound(key),
            (ServeEngine::Tiered(t), true) => t.upper_bound(key),
        };
        Ok(Reply::KeyOpt {
            found: found.is_some(),
            key: found.unwrap_or(0),
        })
    }

    /// Stored keys strictly below the probe (0-based rank). `Unavail`
    /// while any shard is quarantined — forest-wide ranks depend on
    /// every shard's key count being trustworthy.
    pub fn rank(&self, key: u64) -> EngineResult {
        if self.any_quarantined() {
            return Err(Status::Unavail);
        }
        Ok(Reply::Rank {
            rank: match self {
                ServeEngine::Forest(f) => f.rank(key),
                ServeEngine::Adaptive(a) => a.snapshot().rank(key),
                ServeEngine::Tiered(t) => t.rank(key),
            },
        })
    }

    /// The `rank`-th smallest stored key (1-based). `Unavail` while
    /// any shard is quarantined.
    pub fn select(&self, rank: u64) -> EngineResult {
        if self.any_quarantined() {
            return Err(Status::Unavail);
        }
        let found = match self {
            ServeEngine::Forest(f) => f.select(rank),
            ServeEngine::Adaptive(a) => a.snapshot().select(rank),
            ServeEngine::Tiered(t) => t.select(rank),
        };
        Ok(Reply::KeyOpt {
            found: found.is_some(),
            key: found.unwrap_or(0),
        })
    }

    /// Ascending keys in `[lo, hi]`, at most `limit`; sets `truncated`
    /// when the scan stopped at the limit with keys remaining.
    /// `Unavail` while any shard is quarantined (the scan would cross
    /// it).
    pub fn range(&self, lo: u64, hi: u64, limit: u32) -> EngineResult {
        if self.any_quarantined() {
            return Err(Status::Unavail);
        }
        let cap = (limit as usize).min(MAX_RANGE_KEYS);
        let mut keys = Vec::with_capacity(cap.min(256));
        let mut truncated = false;
        match self {
            ServeEngine::Forest(f) => {
                for k in f.range(lo..=hi) {
                    if keys.len() == cap {
                        truncated = true;
                        break;
                    }
                    keys.push(k);
                }
            }
            ServeEngine::Adaptive(a) => {
                let f = a.snapshot();
                for k in f.range(lo..=hi) {
                    if keys.len() == cap {
                        truncated = true;
                        break;
                    }
                    keys.push(k);
                }
            }
            ServeEngine::Tiered(t) => {
                for k in t.snapshot().range(lo..=hi) {
                    if keys.len() == cap {
                        truncated = true;
                        break;
                    }
                    keys.push(k);
                }
            }
        }
        Ok(Reply::Keys { truncated, keys })
    }

    /// The sorted-batch protocol op: ascending probes answered like
    /// per-probe `get`s. Tiered hits coming from the buffer tiers
    /// report [`BUFFER_SHARD`].
    pub fn sorted_batch(&self, keys: &[u64]) -> EngineResult {
        if self.any_quarantined() {
            // The batch reply has no per-hit status: if any probe
            // routes to a quarantined shard the whole batch answers
            // `Unavail` (probes clear of it still serve).
            for &k in keys {
                self.check_key(k)?;
            }
        }
        let mut hits = Vec::with_capacity(keys.len());
        match self {
            ServeEngine::Forest(f) => forest_sorted_batch(f, keys, &mut hits)?,
            ServeEngine::Adaptive(a) => {
                let f = a.snapshot();
                for &k in keys {
                    a.sampler().observe(&f, k);
                }
                forest_sorted_batch(&f, keys, &mut hits)?;
            }
            ServeEngine::Tiered(t) => {
                let mut out = Vec::new();
                t.search_sorted_batch(keys, &mut out)
                    .map_err(|_| Status::BadRequest)?;
                hits.extend(out.into_iter().map(|h| match h {
                    Some(hit) => match hit.place {
                        TierPlace::Shard { shard, position } => BatchHit {
                            found: true,
                            shard: shard as u32,
                            position,
                        },
                        TierPlace::Buffer => BatchHit {
                            found: true,
                            shard: BUFFER_SHARD,
                            position: 0,
                        },
                    },
                    None => BATCH_MISS,
                }));
            }
        }
        Ok(Reply::Batch { hits })
    }

    /// Insert (`remove == false`) or remove one key. `Unsupported` on
    /// an immutable forest; `applied` reports whether the store
    /// changed.
    pub fn write(&self, key: u64, remove: bool) -> EngineResult {
        match self {
            ServeEngine::Forest(_) | ServeEngine::Adaptive(_) => Err(Status::Unsupported),
            ServeEngine::Tiered(t) => {
                let applied = if remove { t.remove(key) } else { t.insert(key) };
                if let Some(err) = t.take_compaction_error() {
                    eprintln!("[serve] background compaction failed: {err}");
                    return Err(Status::Internal);
                }
                Ok(Reply::Applied { applied })
            }
        }
    }

    /// Flushes the tiered memtable to durable shards; `applied` is
    /// whether anything was buffered. `Unsupported` on a forest.
    pub fn flush(&self) -> EngineResult {
        match self {
            ServeEngine::Forest(_) | ServeEngine::Adaptive(_) => Err(Status::Unsupported),
            ServeEngine::Tiered(t) => match t.flush() {
                Ok(applied) => Ok(Reply::Applied { applied }),
                Err(err) => {
                    eprintln!("[serve] flush failed: {err}");
                    Err(Status::Internal)
                }
            },
        }
    }

    /// Runs one adaptive re-optimization pass
    /// ([`AdaptiveEngine::reoptimize`]) on the calling thread.
    /// `Unsupported` on the non-adaptive engines.
    pub fn reopt(&self) -> EngineResult {
        match self {
            ServeEngine::Adaptive(a) => match a.reoptimize() {
                Ok(out) => Ok(Reply::Reopt {
                    scanned: out.scanned,
                    swapped: out.swapped,
                }),
                Err(err) => {
                    eprintln!("[serve] reopt pass failed: {err}");
                    Err(Status::Internal)
                }
            },
            ServeEngine::Forest(_) | ServeEngine::Tiered(_) => Err(Status::Unsupported),
        }
    }

    /// `(sampled_reads, reopt_scans, reopt_swaps)` for the stats
    /// snapshot; zeros on non-adaptive engines.
    #[must_use]
    pub fn adaptive_counters(&self) -> (u64, u64, u64) {
        match self {
            ServeEngine::Adaptive(a) => a.counters(),
            ServeEngine::Forest(_) | ServeEngine::Tiered(_) => (0, 0, 0),
        }
    }

    /// One paced scrub step — re-reads up to `budget` shard files
    /// (0 = all) through the engine's storage seam, quarantining any
    /// shard whose checksums no longer verify. The server's background
    /// scrubber calls this on its pace budget.
    pub fn scrub_step(&self, budget: usize) -> ScrubReport {
        match self {
            ServeEngine::Forest(f) => f.scrub_step(&RealIo, budget),
            ServeEngine::Adaptive(a) => a.snapshot().scrub_step(&RealIo, budget),
            ServeEngine::Tiered(t) => t.scrub_step(budget),
        }
    }

    /// `(scrub_passes, quarantined_shards, heals)` for the stats
    /// snapshot. The quarantined count is a live gauge; the other two
    /// are lifetime counters (on the adaptive engine they track the
    /// current forest snapshot, which hot-swaps reset).
    #[must_use]
    pub fn health_counters(&self) -> (u64, u64, u64) {
        match self {
            ServeEngine::Forest(f) => (f.scrub_passes(), f.quarantined_count() as u64, 0),
            ServeEngine::Adaptive(a) => {
                let f = a.snapshot();
                (f.scrub_passes(), f.quarantined_count() as u64, 0)
            }
            ServeEngine::Tiered(t) => (t.scrub_passes(), t.quarantined_shards() as u64, t.heals()),
        }
    }
}

/// `Forest::locate` → the protocol's `Hit` reply.
fn forest_get(f: &Forest<u64>, key: u64) -> Reply {
    match f.locate(key) {
        Some(hit) => Reply::Hit {
            found: true,
            shard: hit.shard as u32,
            position: hit.position,
        },
        None => MISS,
    }
}

/// The interleaved-kernel batch path shared by the forest engines.
fn forest_get_batch(f: &Forest<u64>, keys: &[u64], width: usize, out: &mut Vec<EngineResult>) {
    let mut hits = Vec::new();
    f.search_batch_interleaved(keys, width, &mut hits);
    out.extend(hits.into_iter().map(|h| match h {
        Some((shard, position)) => Ok(Reply::Hit {
            found: true,
            shard: shard as u32,
            position,
        }),
        None => Ok(MISS),
    }));
}

/// The sorted-batch path shared by the forest engines.
fn forest_sorted_batch(
    f: &Forest<u64>,
    keys: &[u64],
    hits: &mut Vec<BatchHit>,
) -> Result<(), Status> {
    let mut out = Vec::new();
    f.search_sorted_batch(keys, &mut out)
        .map_err(|_| Status::BadRequest)?;
    hits.extend(out.into_iter().map(|h| match h {
        Some((shard, position)) => BatchHit {
            found: true,
            shard: shard as u32,
            position,
        },
        None => BATCH_MISS,
    }));
    Ok(())
}

/// The not-found `Hit` reply (found = false, zeroed coordinates).
const MISS: Reply = Reply::Hit {
    found: false,
    shard: 0,
    position: 0,
};

/// The not-found batch entry.
const BATCH_MISS: BatchHit = BatchHit {
    found: false,
    shard: 0,
    position: 0,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;
    use cobtree_search::Storage;

    fn forest_engine(n: u64) -> ServeEngine {
        let forest = Forest::builder()
            .layout(NamedLayout::MinWep)
            .storage(Storage::Implicit)
            .shards(3)
            .keys((1..=n).map(|k| k * 2))
            .build()
            .expect("forest");
        ServeEngine::Forest(Arc::new(forest))
    }

    #[test]
    fn forest_engine_answers_match_direct_calls() {
        let engine = forest_engine(500);
        let ServeEngine::Forest(f) = engine.clone() else {
            unreachable!()
        };
        for k in [0u64, 1, 2, 499, 500, 1000, 1001, 5000] {
            let expect = match f.locate(k) {
                Some(h) => Reply::Hit {
                    found: true,
                    shard: h.shard as u32,
                    position: h.position,
                },
                None => MISS,
            };
            assert_eq!(engine.get(k), Ok(expect), "get({k})");
        }
        assert_eq!(engine.rank(11), Ok(Reply::Rank { rank: f.rank(11) }));
        assert_eq!(
            engine.bound(11, false),
            Ok(Reply::KeyOpt {
                found: true,
                key: 12
            })
        );
        assert_eq!(
            engine.select(0),
            Ok(Reply::KeyOpt {
                found: false,
                key: 0
            })
        );
        // Writes are refused, not mis-applied.
        assert_eq!(engine.write(7, false), Err(Status::Unsupported));
        assert_eq!(engine.flush(), Err(Status::Unsupported));
    }

    #[test]
    fn range_truncation_flags() {
        let engine = forest_engine(100);
        let Ok(Reply::Keys { truncated, keys }) = engine.range(2, 60, 10) else {
            panic!("range reply shape")
        };
        assert!(truncated);
        assert_eq!(keys, (1..=10).map(|k| k * 2).collect::<Vec<_>>());
        let Ok(Reply::Keys { truncated, keys }) = engine.range(2, 20, 100) else {
            panic!("range reply shape")
        };
        assert!(!truncated);
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn batch_paths_agree_with_point_gets() {
        let engine = forest_engine(300);
        let keys: Vec<u64> = (0..200).map(|i| (i * 37) % 700).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut out = Vec::new();
        engine.get_batch(&sorted, 8, &mut out);
        let direct: Vec<EngineResult> = sorted.iter().map(|&k| engine.get(k)).collect();
        assert_eq!(out, direct);
        let Ok(Reply::Batch { hits }) = engine.sorted_batch(&sorted) else {
            panic!("batch reply shape")
        };
        for (hit, d) in hits.iter().zip(&direct) {
            let Ok(Reply::Hit {
                found,
                shard,
                position,
            }) = *d
            else {
                panic!()
            };
            assert_eq!(
                (hit.found, hit.shard, hit.position),
                (found, shard, position)
            );
        }
    }

    #[test]
    fn adaptive_engine_matches_forest_engine_and_serves_reopt() {
        let build = || {
            Forest::builder()
                .layout(NamedLayout::MinWep)
                .storage(Storage::Implicit)
                .shards(3)
                .keys((1..=500u64).map(|k| k * 2))
                .build()
                .expect("forest")
        };
        let plain = ServeEngine::Forest(Arc::new(build()));
        let adaptive = ServeEngine::Adaptive(Arc::new(AdaptiveEngine::with_config(
            build(),
            1,
            crate::planner::DEFAULT_REOPT_THRESHOLD,
        )));
        assert_eq!(adaptive.kind(), "adaptive");
        assert_eq!(adaptive.len(), plain.len());

        // Drive enough skewed traffic through the sampled gets that a
        // reopt pass swaps at least one shard, then re-check parity.
        // A swap may relocate keys within their shard's layout array,
        // so `position` is compared only before the swap; the ordered
        // surface (found/shard/key/rank) must never change.
        let strip = |r: &EngineResult| match *r {
            Ok(Reply::Hit { found, shard, .. }) => (found, shard),
            _ => panic!("hit shape"),
        };
        for round in 0..2 {
            for k in 0u64..100 {
                if round == 0 {
                    assert_eq!(adaptive.get(k), plain.get(k), "get({k})");
                } else {
                    assert_eq!(strip(&adaptive.get(k)), strip(&plain.get(k)), "get({k})");
                }
                assert_eq!(adaptive.rank(k), plain.rank(k), "rank({k})");
                assert_eq!(adaptive.bound(k, false), plain.bound(k, false));
                assert_eq!(adaptive.bound(k, true), plain.bound(k, true));
            }
            for _ in 0..200 {
                // Hammer one hot key to skew the sampled profile.
                let _ = adaptive.get(2);
            }
            assert_eq!(adaptive.range(2, 60, 10), plain.range(2, 60, 10));
            assert_eq!(adaptive.select(17), plain.select(17));
            let sorted: Vec<u64> = (0..300).map(|i| i * 3).collect();
            let Ok(Reply::Batch { hits: a_hits }) = adaptive.sorted_batch(&sorted) else {
                panic!("batch reply shape")
            };
            let Ok(Reply::Batch { hits: p_hits }) = plain.sorted_batch(&sorted) else {
                panic!("batch reply shape")
            };
            let mut a_out = Vec::new();
            let mut p_out = Vec::new();
            adaptive.get_batch(&sorted, 8, &mut a_out);
            plain.get_batch(&sorted, 8, &mut p_out);
            if round == 0 {
                assert_eq!(a_hits, p_hits);
                assert_eq!(a_out, p_out);
                let Ok(Reply::Reopt { scanned, swapped }) = adaptive.reopt() else {
                    panic!("reopt reply shape")
                };
                assert_eq!(scanned, 3);
                assert!(swapped >= 1, "hot-key traffic must trigger a swap");
            } else {
                for (a, p) in a_hits.iter().zip(&p_hits) {
                    assert_eq!((a.found, a.shard), (p.found, p.shard));
                }
                for (a, p) in a_out.iter().zip(&p_out) {
                    assert_eq!(strip(a), strip(p));
                }
            }
        }
        let (sampled, scans, swaps) = adaptive.adaptive_counters();
        assert!(sampled > 0);
        assert_eq!(scans, 3);
        assert!(swaps >= 1);

        // The non-adaptive engines refuse the op.
        assert_eq!(plain.reopt(), Err(Status::Unsupported));
        assert_eq!(plain.adaptive_counters(), (0, 0, 0));
        assert_eq!(adaptive.write(7, false), Err(Status::Unsupported));
        assert_eq!(adaptive.flush(), Err(Status::Unsupported));
    }

    #[test]
    fn tiered_engine_serves_buffer_hits_and_writes() {
        let t: TieredForest<u64> = TieredForest::builder()
            .layout(NamedLayout::MinWep)
            .shards(2)
            .memtable_entries(1 << 20)
            .keys((1..=200u64).map(|k| k * 2))
            .build()
            .expect("tiered");
        let engine = ServeEngine::Tiered(Arc::new(t));
        assert_eq!(engine.kind(), "tiered");
        // A fresh odd key lands in the memtable: buffer-tier hit.
        assert_eq!(engine.write(7, false), Ok(Reply::Applied { applied: true }));
        assert_eq!(
            engine.write(7, false),
            Ok(Reply::Applied { applied: false })
        );
        let Ok(Reply::Hit { found, shard, .. }) = engine.get(7) else {
            panic!("hit shape")
        };
        assert!(found);
        assert_eq!(shard, BUFFER_SHARD);
        // Base hits still carry real shard coordinates.
        let Ok(Reply::Hit { found, shard, .. }) = engine.get(100) else {
            panic!("hit shape")
        };
        assert!(found);
        assert_ne!(shard, BUFFER_SHARD);
        assert_eq!(engine.write(7, true), Ok(Reply::Applied { applied: true }));
        let Ok(Reply::Hit { found, .. }) = engine.get(7) else {
            panic!("hit shape")
        };
        assert!(!found);
    }
}
