//! The thread-per-core serving loop.
//!
//! One acceptor thread deals incoming connections round-robin to `N`
//! worker threads. Each worker owns two things for its whole life:
//!
//! * **its connections** — it alone reads their sockets, decodes their
//!   frames, and writes their replies;
//! * **its shards** — base-forest shard `s` belongs to worker
//!   `s mod N`, and only that worker descends it.
//!
//! Point lookups (`Get`) are therefore *handed off*: the connection's
//! worker routes the key, and if the owning shard belongs to another
//! worker it pushes a job onto that worker's bounded handoff queue.
//! The owner drains its queue in batches and answers them with the
//! serial interleaved descent kernel
//! ([`Forest::search_batch_interleaved`](cobtree_search::Forest::search_batch_interleaved)),
//! so each shard is only ever walked by the core that keeps its hot
//! nodes in cache. Every other opcode executes inline on the
//! connection's own worker.
//!
//! Overload never buffers without bound:
//!
//! * a full handoff queue or a connection at its in-flight cap replies
//!   [`Status::Busy`] immediately;
//! * a handed-off job past its deadline is shed with
//!   [`Status::Timeout`] instead of being descended;
//! * a connection whose peer stops reading (write buffer stalled past
//!   `write_stall_timeout`) is closed rather than allowed to wedge its
//!   worker.
//!
//! Shutdown comes in two flavours: [`Server::shutdown`] drains — the
//! acceptor stops, in-flight requests finish, late arrivals get
//! [`Status::ShuttingDown`], and the tiered memtable is flushed —
//! while [`Server::abort`] kills the threads with work still queued,
//! deliberately simulating a crash for the recovery tests.

use crate::engine::ServeEngine;
use crate::net::{Addr, NetListener, NetStream};
use cobtree_core::protocol::{
    decode_request, encode_error, encode_ok, latency_bucket, peek_opcode, peek_req_id,
    FrameDecoder, Opcode, Reply, Request, StatsSnapshot, Status, LATENCY_BUCKETS,
};
use cobtree_core::Result;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server lifecycle states (stored in one shared atomic).
const RUNNING: u8 = 0;
/// Draining: no new connections/requests, in-flight work finishes.
const DRAINING: u8 = 1;
/// Killed: threads exit as fast as possible, work is abandoned.
const KILLED: u8 = 2;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker thread count; 0 means one per available core (capped
    /// at 8 — beyond that loopback serving is accept-bound anyway).
    pub workers: usize,
    /// Max handed-off lookups a single connection may have in flight
    /// before further `Get`s are refused with `BUSY`.
    pub inflight_per_conn: usize,
    /// Capacity of each worker's bounded handoff queue; a full queue
    /// refuses with `BUSY` instead of buffering.
    pub handoff_queue: usize,
    /// Deadline for handed-off lookups, measured from decode; jobs
    /// past it are shed with `TIMEOUT`. Zero sheds every handoff —
    /// degenerate, but deterministic for tests.
    pub op_timeout: Duration,
    /// Interleave width for the batched descent kernel.
    pub batch_width: usize,
    /// Group-commit mode: when true, `Insert`/`Remove` acks are held
    /// until the memtable has been flushed to durable shards, so every
    /// acknowledged write survives a crash.
    pub durable_writes: bool,
    /// How long a connection's write buffer may sit unflushable (peer
    /// not reading) before the connection is dropped.
    pub write_stall_timeout: Duration,
    /// Pending-reply bytes above which a connection's socket stops
    /// being read (backpressure on pipelining clients).
    pub write_buffer_cap: usize,
    /// Background scrub cadence: every interval a low-priority thread
    /// re-verifies `scrub_shards_per_pass` shard files against their
    /// checksums and quarantines any that fail. `None` disables the
    /// scrubber.
    pub scrub_interval: Option<Duration>,
    /// Shard files re-verified per scrub tick; 0 scans the whole
    /// forest each tick.
    pub scrub_shards_per_pass: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            inflight_per_conn: 256,
            handoff_queue: 4096,
            op_timeout: Duration::from_secs(1),
            batch_width: 8,
            durable_writes: false,
            write_stall_timeout: Duration::from_secs(2),
            write_buffer_cap: 1 << 20,
            scrub_interval: None,
            scrub_shards_per_pass: 1,
        }
    }
}

impl ServerConfig {
    /// The worker count `start` will actually spawn.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
    }
}

// ---------------------------------------------------------------------
// Live counters
// ---------------------------------------------------------------------

/// The server's live counters; scraped lock-free by the `Stats` opcode
/// and by [`Server::stats`].
struct Counters {
    requests: AtomicU64,
    responses: AtomicU64,
    busy: AtomicU64,
    timeouts: AtomicU64,
    bad_requests: AtomicU64,
    unavail: AtomicU64,
    frame_errors: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    handoffs: AtomicU64,
    queue_depth: AtomicU64,
    /// Connections accepted but not yet retired — includes ones still
    /// in transit to their worker, so drain can wait on this alone.
    live_conns: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Counters {
    fn new() -> Self {
        Counters {
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            unavail: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            live_conns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            unavail: self.unavail.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            handoffs: self.handoffs.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            ..StatsSnapshot::default()
        };
        for (slot, b) in s.latency_buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        s
    }

    /// Books one response: the status tally and the service-time
    /// histogram bucket.
    fn respond(&self, status: Status, elapsed: Duration) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        let counter = match status {
            Status::Busy => Some(&self.busy),
            Status::Timeout => Some(&self.timeouts),
            Status::BadRequest => Some(&self.bad_requests),
            Status::Unavail => Some(&self.unavail),
            _ => None,
        };
        if let Some(c) = counter {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Worker-to-worker messages
// ---------------------------------------------------------------------

/// A point lookup handed off to the worker that owns the key's shard.
struct Job {
    /// Worker that owns the requesting connection.
    origin: usize,
    /// Connection id within the origin worker.
    conn: u64,
    /// Client request id to echo.
    req_id: u32,
    /// Probe key.
    key: u64,
    /// Decode time — latency is measured from here.
    t0: Instant,
    /// Shed the job with `TIMEOUT` past this instant.
    deadline: Instant,
}

/// A finished handoff travelling back to the origin worker.
struct Done {
    conn: u64,
    req_id: u32,
    t0: Instant,
    result: std::result::Result<Reply, Status>,
}

/// One live connection, owned by exactly one worker.
struct Conn {
    stream: NetStream,
    decoder: FrameDecoder,
    /// Encoded-but-unsent reply bytes.
    out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    written: usize,
    /// Handed-off lookups awaiting their `Done`.
    inflight: usize,
    /// Peer sent EOF; close once in-flight work and writes finish.
    closing: bool,
    /// Set while `out` has unsent bytes; cleared on write progress.
    stalled_since: Option<Instant>,
}

/// A `Get` whose shard the connection's own worker owns: resolved
/// locally in the same iteration, no handoff.
struct LocalGet {
    conn: u64,
    req_id: u32,
    t0: Instant,
    key: u64,
}

/// A write applied to the engine whose ack is deferred to the
/// group-commit flush at the end of the iteration.
struct WriteAck {
    conn: u64,
    req_id: u32,
    t0: Instant,
    opcode: Opcode,
    result: std::result::Result<Reply, Status>,
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

struct Worker {
    index: usize,
    workers: usize,
    engine: ServeEngine,
    cfg: ServerConfig,
    state: Arc<AtomicU8>,
    stats: Arc<Counters>,
    conn_rx: Receiver<NetStream>,
    handoff_rx: Receiver<Job>,
    handoff_tx: Vec<SyncSender<Job>>,
    done_rx: Receiver<Done>,
    done_tx: Vec<Sender<Done>>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Whether the current iteration moved any bytes or jobs (idle
    /// iterations sleep briefly instead of spinning).
    active: bool,
}

/// Encodes the response for one finished request into the
/// connection's write buffer and books the counters.
fn finish(
    stats: &Counters,
    conn: &mut Conn,
    req_id: u32,
    opcode: Opcode,
    t0: Instant,
    result: std::result::Result<Reply, Status>,
) {
    let status = match &result {
        Ok(_) => Status::Ok,
        Err(s) => *s,
    };
    match result {
        Ok(reply) => encode_ok(req_id, opcode, &reply, &mut conn.out),
        Err(s) => encode_error(req_id, opcode, s, &mut conn.out),
    }
    stats.respond(status, t0.elapsed());
}

impl Worker {
    fn run(mut self) {
        let mut locals: Vec<LocalGet> = Vec::new();
        let mut acks: Vec<WriteAck> = Vec::new();
        loop {
            self.active = false;
            let state = self.state.load(Ordering::Acquire);
            if state == KILLED {
                break;
            }
            self.adopt_conns();
            self.serve_handoffs();
            self.apply_completions();
            self.serve_conns(&mut locals, &mut acks, state == DRAINING);
            self.resolve_locals(&mut locals);
            self.commit_writes(&mut acks);
            if state == DRAINING
                && !self.active
                && self.conns.is_empty()
                && self.stats.live_conns.load(Ordering::Relaxed) == 0
            {
                break;
            }
            if !self.active {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    /// Takes ownership of connections the acceptor dealt to this
    /// worker.
    fn adopt_conns(&mut self) {
        while let Ok(stream) = self.conn_rx.try_recv() {
            self.active = true;
            let id = self.next_conn;
            self.next_conn += 1;
            self.conns.insert(
                id,
                Conn {
                    stream,
                    decoder: FrameDecoder::new(),
                    out: Vec::new(),
                    written: 0,
                    inflight: 0,
                    closing: false,
                    stalled_since: None,
                },
            );
        }
    }

    /// Drains this worker's handoff queue and descends its own shards
    /// for every still-live job, batched through the interleaved
    /// kernel.
    fn serve_handoffs(&mut self) {
        let mut jobs: Vec<Job> = Vec::new();
        while jobs.len() < 4096 {
            match self.handoff_rx.try_recv() {
                Ok(j) => jobs.push(j),
                Err(_) => break,
            }
        }
        if jobs.is_empty() {
            return;
        }
        self.active = true;
        self.stats
            .queue_depth
            .fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        let now = Instant::now();
        let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
        for j in jobs {
            if now > j.deadline {
                let _ = self.done_tx[j.origin].send(Done {
                    conn: j.conn,
                    req_id: j.req_id,
                    t0: j.t0,
                    result: Err(Status::Timeout),
                });
            } else {
                live.push(j);
            }
        }
        if live.is_empty() {
            return;
        }
        let keys: Vec<u64> = live.iter().map(|j| j.key).collect();
        let mut replies = Vec::new();
        self.engine
            .get_batch(&keys, self.cfg.batch_width, &mut replies);
        for (j, reply) in live.into_iter().zip(replies) {
            let _ = self.done_tx[j.origin].send(Done {
                conn: j.conn,
                req_id: j.req_id,
                t0: j.t0,
                result: reply,
            });
        }
    }

    /// Books finished handoffs back onto their connections.
    fn apply_completions(&mut self) {
        while let Ok(d) = self.done_rx.try_recv() {
            self.active = true;
            // The connection may have died while its lookup was queued
            // elsewhere; the reply is then dropped on the floor.
            if let Some(conn) = self.conns.get_mut(&d.conn) {
                conn.inflight = conn.inflight.saturating_sub(1);
                finish(&self.stats, conn, d.req_id, Opcode::Get, d.t0, d.result);
            }
        }
    }

    /// Reads, decodes, dispatches and flushes every owned connection.
    fn serve_conns(
        &mut self,
        locals: &mut Vec<LocalGet>,
        acks: &mut Vec<WriteAck>,
        draining: bool,
    ) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else {
                continue;
            };
            if self.serve_one(id, &mut conn, locals, acks, draining) {
                self.conns.insert(id, conn);
            } else {
                self.retire(conn);
            }
        }
    }

    /// Services one connection; returns whether to keep it.
    fn serve_one(
        &mut self,
        id: u64,
        conn: &mut Conn,
        locals: &mut Vec<LocalGet>,
        acks: &mut Vec<WriteAck>,
        draining: bool,
    ) -> bool {
        // Read — unless the peer owes us a drained write buffer.
        let backpressured = conn.out.len() - conn.written >= self.cfg.write_buffer_cap;
        if !conn.closing && !backpressured {
            let mut scratch = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.closing = true;
                        break;
                    }
                    Ok(n) => {
                        self.active = true;
                        conn.decoder.feed(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        }
        // Frame and dispatch.
        loop {
            match conn.decoder.next_frame() {
                Ok(Some(body)) => {
                    if !self.dispatch(id, conn, &body, locals, acks, draining) {
                        self.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                        return false;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Oversized length prefix: the stream is desynced
                    // beyond recovery.
                    self.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        // Flush pending replies.
        if !self.flush_conn(conn) {
            return false;
        }
        if let Some(since) = conn.stalled_since {
            if since.elapsed() > self.cfg.write_stall_timeout {
                // Peer stopped reading; shed the connection rather
                // than let it pin worker memory.
                return false;
            }
        }
        let drained = conn.inflight == 0 && conn.out.len() == conn.written;
        if (conn.closing || draining) && drained {
            return false;
        }
        true
    }

    /// Decodes one frame body and routes the request; returns `false`
    /// only for desync-level garbage that must close the connection.
    fn dispatch(
        &mut self,
        id: u64,
        conn: &mut Conn,
        body: &[u8],
        locals: &mut Vec<LocalGet>,
        acks: &mut Vec<WriteAck>,
        draining: bool,
    ) -> bool {
        self.active = true;
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let (req_id, req) = match decode_request(body) {
            Ok(decoded) => decoded,
            Err(_) => {
                // A malformed body is survivable when we can still tell
                // which request to refuse; anything shorter than a
                // header (or with an opcode we do not know) means the
                // stream is desynced.
                match (peek_req_id(body), peek_opcode(body)) {
                    (Some(req_id), Some(op)) => {
                        finish(&self.stats, conn, req_id, op, t0, Err(Status::BadRequest));
                        return true;
                    }
                    _ => return false,
                }
            }
        };
        let op = req.opcode();
        if draining {
            finish(&self.stats, conn, req_id, op, t0, Err(Status::ShuttingDown));
            return true;
        }
        match req {
            Request::Get { key } => self.dispatch_get(id, conn, req_id, key, t0, locals),
            Request::Insert { key } | Request::Remove { key } => {
                let remove = op == Opcode::Remove;
                acks.push(WriteAck {
                    conn: id,
                    req_id,
                    t0,
                    opcode: op,
                    result: self.engine.write(key, remove),
                });
            }
            other => {
                let result = self.answer_inline(other);
                finish(&self.stats, conn, req_id, op, t0, result);
            }
        }
        true
    }

    /// Routes one point lookup: local shard → same-iteration batch,
    /// foreign shard → bounded handoff (or `BUSY`), unrouteable key
    /// (memtable-only or out of every fence interval) → immediate
    /// answer from the full engine.
    fn dispatch_get(
        &mut self,
        id: u64,
        conn: &mut Conn,
        req_id: u32,
        key: u64,
        t0: Instant,
        locals: &mut Vec<LocalGet>,
    ) {
        let Some(shard) = self.engine.route_shard(key) else {
            let reply = self.engine.get(key);
            finish(&self.stats, conn, req_id, Opcode::Get, t0, reply);
            return;
        };
        let owner = shard % self.workers;
        if owner == self.index {
            locals.push(LocalGet {
                conn: id,
                req_id,
                t0,
                key,
            });
            return;
        }
        if conn.inflight >= self.cfg.inflight_per_conn {
            finish(
                &self.stats,
                conn,
                req_id,
                Opcode::Get,
                t0,
                Err(Status::Busy),
            );
            return;
        }
        let job = Job {
            origin: self.index,
            conn: id,
            req_id,
            key,
            t0,
            deadline: t0 + self.cfg.op_timeout,
        };
        match self.handoff_tx[owner].try_send(job) {
            Ok(()) => {
                conn.inflight += 1;
                self.stats.handoffs.fetch_add(1, Ordering::Relaxed);
                self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) => {
                finish(
                    &self.stats,
                    conn,
                    req_id,
                    Opcode::Get,
                    t0,
                    Err(Status::Busy),
                );
            }
            Err(TrySendError::Disconnected(_)) => {
                finish(
                    &self.stats,
                    conn,
                    req_id,
                    Opcode::Get,
                    t0,
                    Err(Status::ShuttingDown),
                );
            }
        }
    }

    /// Executes an opcode that needs no handoff and no group commit.
    fn answer_inline(&self, req: Request) -> std::result::Result<Reply, Status> {
        match req {
            Request::Ping => Ok(Reply::Applied { applied: true }),
            Request::LowerBound { key } => self.engine.bound(key, false),
            Request::UpperBound { key } => self.engine.bound(key, true),
            Request::Rank { key } => self.engine.rank(key),
            Request::Select { rank } => self.engine.select(rank),
            Request::Range { lo, hi, limit } => self.engine.range(lo, hi, limit),
            Request::Batch { keys } => self.engine.sorted_batch(&keys),
            Request::Flush => self.engine.flush(),
            // The planner runs on this worker's thread: Reopt is an
            // explicit admin op, so its cost lands on the connection
            // that asked for it, never on the serving hot path.
            Request::Reopt => self.engine.reopt(),
            Request::Stats => {
                let mut snap = self.stats.snapshot();
                (snap.sampled_reads, snap.reopt_scans, snap.reopt_swaps) =
                    self.engine.adaptive_counters();
                (snap.scrub_passes, snap.quarantined_shards, snap.heals) =
                    self.engine.health_counters();
                Ok(Reply::Stats(Box::new(snap)))
            }
            Request::Shutdown => {
                self.state.store(DRAINING, Ordering::Release);
                Ok(Reply::Applied { applied: true })
            }
            Request::Get { .. } | Request::Insert { .. } | Request::Remove { .. } => {
                unreachable!("routed before answer_inline")
            }
        }
    }

    /// Answers the iteration's own-shard lookups in one interleaved
    /// batch.
    fn resolve_locals(&mut self, locals: &mut Vec<LocalGet>) {
        if locals.is_empty() {
            return;
        }
        self.active = true;
        let keys: Vec<u64> = locals.iter().map(|l| l.key).collect();
        let mut replies = Vec::new();
        self.engine
            .get_batch(&keys, self.cfg.batch_width, &mut replies);
        for (l, reply) in locals.drain(..).zip(replies) {
            if let Some(conn) = self.conns.get_mut(&l.conn) {
                finish(&self.stats, conn, l.req_id, Opcode::Get, l.t0, reply);
            }
        }
    }

    /// Group commit: one memtable flush covers every write applied
    /// this iteration, then all their acks are released.
    fn commit_writes(&mut self, acks: &mut Vec<WriteAck>) {
        if acks.is_empty() {
            return;
        }
        self.active = true;
        let mut flush_failed = false;
        if self.cfg.durable_writes && acks.iter().any(|a| a.result.is_ok()) {
            flush_failed = self.engine.flush().is_err();
        }
        for a in acks.drain(..) {
            let result = if flush_failed && a.result.is_ok() {
                // The write sits in the memtable but is not durable;
                // the client must not treat it as committed.
                Err(Status::Internal)
            } else {
                a.result
            };
            if let Some(conn) = self.conns.get_mut(&a.conn) {
                finish(&self.stats, conn, a.req_id, a.opcode, a.t0, result);
            }
        }
    }

    /// Writes as much pending reply data as the socket accepts;
    /// returns `false` on a dead socket.
    fn flush_conn(&mut self, conn: &mut Conn) -> bool {
        while conn.written < conn.out.len() {
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.active = true;
                    conn.written += n;
                    conn.stalled_since = None;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if conn.written == conn.out.len() {
            conn.out.clear();
            conn.written = 0;
            conn.stalled_since = None;
        } else if conn.stalled_since.is_none() {
            conn.stalled_since = Some(Instant::now());
        }
        true
    }

    /// Books a closed connection.
    fn retire(&mut self, conn: Conn) {
        conn.stream.shutdown_write();
        self.stats
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
        self.stats.live_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------

fn run_acceptor(
    listener: NetListener,
    state: &AtomicU8,
    stats: &Counters,
    conn_tx: &[Sender<NetStream>],
) {
    let mut next = 0usize;
    while state.load(Ordering::Acquire) == RUNNING {
        match listener.accept() {
            Ok(Some(stream)) => {
                let _ = stream.set_nonblocking(true);
                stream.set_nodelay();
                stats.connections_opened.fetch_add(1, Ordering::Relaxed);
                stats.live_conns.fetch_add(1, Ordering::Relaxed);
                if conn_tx[next % conn_tx.len()].send(stream).is_err() {
                    stats.live_conns.fetch_sub(1, Ordering::Relaxed);
                    stats.connections_closed.fetch_add(1, Ordering::Relaxed);
                }
                next = next.wrapping_add(1);
            }
            Ok(None) => std::thread::sleep(Duration::from_micros(250)),
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

// ---------------------------------------------------------------------
// Scrubber
// ---------------------------------------------------------------------

/// Low-priority background scrub loop: every `interval` it re-verifies
/// `budget` shard files against their stored checksums and quarantines
/// any that fail. Sleeps in short slices so shutdown is never delayed
/// by a long interval.
fn run_scrubber(engine: &ServeEngine, state: &AtomicU8, interval: Duration, budget: usize) {
    let slice = Duration::from_millis(20);
    while state.load(Ordering::Acquire) == RUNNING {
        let _ = engine.scrub_step(budget);
        let mut left = interval;
        while !left.is_zero() && state.load(Ordering::Acquire) == RUNNING {
            let step = left.min(slice);
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

// ---------------------------------------------------------------------
// Server handle
// ---------------------------------------------------------------------

/// A running server: the acceptor plus its worker threads.
///
/// Dropping the handle without calling [`Server::shutdown`] kills the
/// threads abruptly (same as [`Server::abort`]).
pub struct Server {
    addr: Addr,
    engine: ServeEngine,
    state: Arc<AtomicU8>,
    stats: Arc<Counters>,
    acceptor: Option<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `spec` (`tcp:HOST:PORT`, `unix:PATH`, or bare
    /// `HOST:PORT`) and starts serving `engine`.
    ///
    /// # Errors
    /// Address parse and bind/listen failures.
    pub fn start(engine: ServeEngine, spec: &str, cfg: ServerConfig) -> Result<Server> {
        let addr = Addr::parse(spec)?;
        let listener = NetListener::bind(&addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = cfg.effective_workers();
        let state = Arc::new(AtomicU8::new(RUNNING));
        let stats = Arc::new(Counters::new());

        let mut conn_txs = Vec::with_capacity(workers);
        let mut conn_rxs = Vec::with_capacity(workers);
        let mut handoff_txs = Vec::with_capacity(workers);
        let mut handoff_rxs = Vec::with_capacity(workers);
        let mut done_txs = Vec::with_capacity(workers);
        let mut done_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (ctx, crx) = mpsc::channel::<NetStream>();
            conn_txs.push(ctx);
            conn_rxs.push(crx);
            let (htx, hrx) = mpsc::sync_channel::<Job>(cfg.handoff_queue.max(1));
            handoff_txs.push(htx);
            handoff_rxs.push(hrx);
            let (dtx, drx) = mpsc::channel::<Done>();
            done_txs.push(dtx);
            done_rxs.push(drx);
        }

        let mut handles = Vec::with_capacity(workers);
        for (index, (conn_rx, (handoff_rx, done_rx))) in conn_rxs
            .into_iter()
            .zip(handoff_rxs.into_iter().zip(done_rxs))
            .enumerate()
        {
            let worker = Worker {
                index,
                workers,
                engine: engine.clone(),
                cfg: cfg.clone(),
                state: Arc::clone(&state),
                stats: Arc::clone(&stats),
                conn_rx,
                handoff_rx,
                handoff_tx: handoff_txs.clone(),
                done_rx,
                done_tx: done_txs.clone(),
                conns: HashMap::new(),
                next_conn: 0,
                active: false,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker thread"),
            );
        }
        // The worker structs own the cross-worker sender clones; the
        // originals must drop so channels disconnect when workers exit.
        drop(handoff_txs);
        drop(done_txs);

        let acceptor = {
            let state = Arc::clone(&state);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || run_acceptor(listener, &state, &stats, &conn_txs))
                .expect("spawn acceptor thread")
        };

        let mut scrubber = None;
        if let Some(interval) = cfg.scrub_interval {
            let state = Arc::clone(&state);
            let engine = engine.clone();
            let budget = cfg.scrub_shards_per_pass;
            scrubber = Some(
                std::thread::Builder::new()
                    .name("serve-scrub".to_string())
                    .spawn(move || run_scrubber(&engine, &state, interval, budget))
                    .expect("spawn scrub thread"),
            );
        }

        Ok(Server {
            addr: bound,
            engine,
            state,
            stats,
            acceptor: Some(acceptor),
            scrubber,
            workers: handles,
        })
    }

    /// The actually-bound address (TCP port 0 resolved).
    #[must_use]
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// A live counter snapshot — the same data the `Stats` opcode
    /// returns over the wire.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot();
        (snap.sampled_reads, snap.reopt_scans, snap.reopt_swaps) = self.engine.adaptive_counters();
        (snap.scrub_passes, snap.quarantined_shards, snap.heals) = self.engine.health_counters();
        snap
    }

    /// Whether a client's `Shutdown` request has moved the server out
    /// of the running state.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != RUNNING
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scrubber.take() {
            let _ = h.join();
        }
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
        NetListener::cleanup(&self.addr);
    }

    /// Graceful shutdown: stops accepting, finishes in-flight
    /// requests (late arrivals get `SHUTTING_DOWN`), joins every
    /// thread, flushes the tiered memtable, and returns the final
    /// counter snapshot.
    ///
    /// # Errors
    /// The final memtable flush failing.
    pub fn shutdown(mut self) -> Result<StatsSnapshot> {
        self.state.store(DRAINING, Ordering::Release);
        self.join_threads();
        if let ServeEngine::Tiered(t) = &self.engine {
            t.flush()?;
        }
        Ok(self.stats.snapshot())
    }

    /// Hard kill: threads exit without draining queues or flushing the
    /// memtable — from the store's point of view this is a crash, and
    /// the recovery tests use it as one.
    pub fn abort(mut self) {
        self.state.store(KILLED, Ordering::Release);
        self.join_threads();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.state.store(KILLED, Ordering::Release);
        self.join_threads();
    }
}
