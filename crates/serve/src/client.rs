//! A small blocking protocol client: one request in flight, a read
//! timeout so a wedged server can never hang the caller.
//!
//! This is the client the tests, the CLI and the harness's stats
//! scrapes use. The load generator in [`crate::bomber`] does *not* use
//! it — open-loop load needs pipelining — but both speak exactly the
//! same frames from [`cobtree_core::protocol`].

use crate::net::{Addr, NetStream};
use cobtree_core::protocol::{
    decode_response, encode_request, FrameDecoder, Reply, Request, Response, StatsSnapshot, Status,
};
use cobtree_core::{Error, Result};
use std::io::{Read, Write};
use std::time::Duration;

/// A connected blocking client.
pub struct Client {
    stream: NetStream,
    decoder: FrameDecoder,
    next_req: u32,
    buf: Vec<u8>,
}

impl Client {
    /// Connects with a 5-second read timeout.
    ///
    /// # Errors
    /// Address parse or connect failure.
    pub fn connect(spec: &str) -> Result<Self> {
        Self::connect_timeout(spec, Duration::from_secs(5))
    }

    /// Connects with an explicit read timeout (`None` blocks forever —
    /// only sensible in tests that kill the server themselves).
    ///
    /// # Errors
    /// Address parse or connect failure.
    pub fn connect_timeout(spec: &str, read_timeout: impl Into<Option<Duration>>) -> Result<Self> {
        let addr = Addr::parse(spec)?;
        let stream = NetStream::connect(&addr)?;
        stream.set_read_timeout(read_timeout.into())?;
        stream.set_nodelay();
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_req: 1,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// [`Error::Io`] on socket failure or timeout, decode errors on a
    /// malformed response, [`Error::Malformed`] when the response
    /// correlates to a different request id.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        self.buf.clear();
        encode_request(req_id, req, &mut self.buf);
        let frame = std::mem::take(&mut self.buf);
        self.stream.write_all(&frame).map_err(|e| Error::io(&e))?;
        self.buf = frame;
        let body = self.read_frame()?;
        let resp = decode_response(&body)?;
        if resp.req_id != req_id {
            return Err(Error::Malformed {
                detail: format!(
                    "response correlates to request {} but {} is in flight",
                    resp.req_id, req_id
                ),
            });
        }
        Ok(resp)
    }

    /// Writes one request without waiting for its response. The reply
    /// still arrives on the stream and will desynchronize `call`'s
    /// correlation check — this exists for tests that deliberately
    /// misbehave (pipelining floods, slow readers), not for normal use.
    ///
    /// # Errors
    /// [`Error::Io`] on socket failure.
    pub fn send_only(&mut self, req: &Request) -> Result<()> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        self.buf.clear();
        encode_request(req_id, req, &mut self.buf);
        let frame = std::mem::take(&mut self.buf);
        let res = self.stream.write_all(&frame).map_err(|e| Error::io(&e));
        self.buf = frame;
        res
    }

    /// Blocks until one whole frame body arrives.
    fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(body) = self.decoder.next_frame()? {
                return Ok(body);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(Error::Truncated { needed: 1, got: 0 }),
                Ok(n) => self.decoder.feed(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io(&e)),
            }
        }
    }

    /// `call` that demands [`Status::Ok`] and unwraps the payload.
    ///
    /// # Errors
    /// Everything `call` raises, plus [`Error::Malformed`] for a
    /// non-`Ok` status (the status label is in the message).
    pub fn call_ok(&mut self, req: &Request) -> Result<Reply> {
        let resp = self.call(req)?;
        if resp.status != Status::Ok {
            return Err(Error::Malformed {
                detail: format!(
                    "{} request refused with status {:?}",
                    resp.opcode.label(),
                    resp.status
                ),
            });
        }
        resp.reply.ok_or_else(|| Error::Malformed {
            detail: "ok response with no payload".to_string(),
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn ping(&mut self) -> Result<()> {
        self.call_ok(&Request::Ping).map(|_| ())
    }

    /// Scrapes the server's live counters.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        match self.call_ok(&Request::Stats)? {
            Reply::Stats(s) => Ok(*s),
            other => Err(Error::Malformed {
                detail: format!("stats reply has wrong shape: {other:?}"),
            }),
        }
    }

    /// Asks the server to run one adaptive re-optimization pass;
    /// returns `(scanned, swapped)` shard counts.
    ///
    /// # Errors
    /// Socket or protocol failure, including the `Unsupported` refusal
    /// a non-adaptive engine answers with.
    pub fn reopt(&mut self) -> Result<(u32, u32)> {
        match self.call_ok(&Request::Reopt)? {
            Reply::Reopt { scanned, swapped } => Ok((scanned, swapped)),
            other => Err(Error::Malformed {
                detail: format!("reopt reply has wrong shape: {other:?}"),
            }),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.call_ok(&Request::Shutdown).map(|_| ())
    }
}
