//! A small blocking protocol client: one request in flight, a read
//! timeout so a wedged server can never hang the caller.
//!
//! This is the client the tests, the CLI and the harness's stats
//! scrapes use. The load generator in [`crate::bomber`] does *not* use
//! it — open-loop load needs pipelining — but both speak exactly the
//! same frames from [`cobtree_core::protocol`].

use crate::net::{Addr, NetStream};
use cobtree_core::io::splitmix64;
use cobtree_core::protocol::{
    decode_response, encode_request, FrameDecoder, Reply, Request, Response, StatsSnapshot, Status,
};
use cobtree_core::{Error, Result};
use std::io::{Read, Write};
use std::time::Duration;

/// Capped exponential backoff with deterministic jitter for the
/// transient wire statuses (`BUSY`, `TIMEOUT`, `UNAVAIL`).
///
/// Attempt `k` (0-based) sleeps `min(base << k, cap)` scaled by a
/// jitter factor in `[0.5, 1.0)` drawn from a seeded [`splitmix64`]
/// stream, so two clients created with the same seed back off
/// identically and two with different seeds never thundering-herd in
/// phase.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt; 0 disables retrying.
    pub max_retries: u32,
    /// Sleep before the first retry.
    pub base: Duration,
    /// Upper bound on any single sleep.
    pub cap: Duration,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(250),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Whether `status` is transient and worth retrying.
    #[must_use]
    pub fn retryable(status: Status) -> bool {
        matches!(status, Status::Busy | Status::Timeout | Status::Unavail)
    }

    /// The sleep before retry `attempt` (0-based), jittered from
    /// `rng_state`.
    #[must_use]
    pub fn backoff(&self, attempt: u32, rng_state: &mut u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.cap);
        // Jitter factor in [1/2, 1): keep at least half the exponential
        // spacing so retries still spread out, never exceed the cap.
        let r = splitmix64(rng_state) >> 11; // 53 random bits
        let factor = 0.5 + (r as f64 / (1u64 << 53) as f64) * 0.5;
        exp.mul_f64(factor)
    }
}

/// Retry accounting kept by [`Client::call_with_retry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Re-sent requests (not counting each request's first attempt).
    pub retries: u64,
    /// Total time spent sleeping between attempts.
    pub backoff: Duration,
    /// Requests abandoned after exhausting `max_retries`.
    pub give_ups: u64,
}

/// A connected blocking client.
pub struct Client {
    stream: NetStream,
    decoder: FrameDecoder,
    next_req: u32,
    buf: Vec<u8>,
    retry_rng: u64,
    retry_stats: RetryStats,
}

impl Client {
    /// Connects with a 5-second read timeout.
    ///
    /// # Errors
    /// Address parse or connect failure.
    pub fn connect(spec: &str) -> Result<Self> {
        Self::connect_timeout(spec, Duration::from_secs(5))
    }

    /// Connects with an explicit read timeout (`None` blocks forever —
    /// only sensible in tests that kill the server themselves).
    ///
    /// # Errors
    /// Address parse or connect failure.
    pub fn connect_timeout(spec: &str, read_timeout: impl Into<Option<Duration>>) -> Result<Self> {
        let addr = Addr::parse(spec)?;
        let stream = NetStream::connect(&addr)?;
        stream.set_read_timeout(read_timeout.into())?;
        stream.set_nodelay();
        Ok(Client {
            stream,
            decoder: FrameDecoder::new(),
            next_req: 1,
            buf: Vec::new(),
            retry_rng: RetryPolicy::default().seed,
            retry_stats: RetryStats::default(),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// [`Error::Io`] on socket failure or timeout, decode errors on a
    /// malformed response, [`Error::Malformed`] when the response
    /// correlates to a different request id.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        self.buf.clear();
        encode_request(req_id, req, &mut self.buf);
        let frame = std::mem::take(&mut self.buf);
        self.stream.write_all(&frame).map_err(|e| Error::io(&e))?;
        self.buf = frame;
        let body = self.read_frame()?;
        let resp = decode_response(&body)?;
        if resp.req_id != req_id {
            return Err(Error::Malformed {
                detail: format!(
                    "response correlates to request {} but {} is in flight",
                    resp.req_id, req_id
                ),
            });
        }
        Ok(resp)
    }

    /// `call` wrapped in the retry loop: transient refusals (`BUSY`,
    /// `TIMEOUT`, `UNAVAIL`) are re-sent after a capped, jittered
    /// exponential backoff; any other response — including errors —
    /// returns immediately. The final response is returned even when
    /// retries are exhausted (a give-up is counted, the status is the
    /// caller's to inspect).
    ///
    /// # Errors
    /// Everything `call` raises.
    pub fn call_with_retry(&mut self, req: &Request, policy: &RetryPolicy) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            let resp = self.call(req)?;
            if !RetryPolicy::retryable(resp.status) {
                return Ok(resp);
            }
            if attempt >= policy.max_retries {
                self.retry_stats.give_ups += 1;
                return Ok(resp);
            }
            let sleep = policy.backoff(attempt, &mut self.retry_rng);
            std::thread::sleep(sleep);
            self.retry_stats.retries += 1;
            self.retry_stats.backoff += sleep;
            attempt += 1;
        }
    }

    /// Cumulative retry accounting across every `call_with_retry`.
    #[must_use]
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Re-seeds the jitter stream (defaults to [`RetryPolicy`]'s seed).
    pub fn seed_retry_jitter(&mut self, seed: u64) {
        self.retry_rng = seed;
    }

    /// Writes one request without waiting for its response. The reply
    /// still arrives on the stream and will desynchronize `call`'s
    /// correlation check — this exists for tests that deliberately
    /// misbehave (pipelining floods, slow readers), not for normal use.
    ///
    /// # Errors
    /// [`Error::Io`] on socket failure.
    pub fn send_only(&mut self, req: &Request) -> Result<()> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1);
        self.buf.clear();
        encode_request(req_id, req, &mut self.buf);
        let frame = std::mem::take(&mut self.buf);
        let res = self.stream.write_all(&frame).map_err(|e| Error::io(&e));
        self.buf = frame;
        res
    }

    /// Blocks until one whole frame body arrives.
    fn read_frame(&mut self) -> Result<Vec<u8>> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(body) = self.decoder.next_frame()? {
                return Ok(body);
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(Error::Truncated { needed: 1, got: 0 }),
                Ok(n) => self.decoder.feed(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io(&e)),
            }
        }
    }

    /// `call` that demands [`Status::Ok`] and unwraps the payload.
    ///
    /// # Errors
    /// Everything `call` raises, plus [`Error::Malformed`] for a
    /// non-`Ok` status (the status label is in the message).
    pub fn call_ok(&mut self, req: &Request) -> Result<Reply> {
        let resp = self.call(req)?;
        if resp.status != Status::Ok {
            return Err(Error::Malformed {
                detail: format!(
                    "{} request refused with status {:?}",
                    resp.opcode.label(),
                    resp.status
                ),
            });
        }
        resp.reply.ok_or_else(|| Error::Malformed {
            detail: "ok response with no payload".to_string(),
        })
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn ping(&mut self) -> Result<()> {
        self.call_ok(&Request::Ping).map(|_| ())
    }

    /// Scrapes the server's live counters.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        match self.call_ok(&Request::Stats)? {
            Reply::Stats(s) => Ok(*s),
            other => Err(Error::Malformed {
                detail: format!("stats reply has wrong shape: {other:?}"),
            }),
        }
    }

    /// Asks the server to run one adaptive re-optimization pass;
    /// returns `(scanned, swapped)` shard counts.
    ///
    /// # Errors
    /// Socket or protocol failure, including the `Unsupported` refusal
    /// a non-adaptive engine answers with.
    pub fn reopt(&mut self) -> Result<(u32, u32)> {
        match self.call_ok(&Request::Reopt)? {
            Reply::Reopt { scanned, swapped } => Ok((scanned, swapped)),
            other => Err(Error::Malformed {
                detail: format!("reopt reply has wrong shape: {other:?}"),
            }),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    /// Socket or protocol failure.
    pub fn shutdown_server(&mut self) -> Result<()> {
        self.call_ok(&Request::Shutdown).map(|_| ())
    }
}
