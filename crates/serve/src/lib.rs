//! # cobtree-serve
//!
//! The network serving subsystem: everything between a socket and a
//! mapped [`cobtree_search::Forest`] / [`cobtree_search::TieredForest`].
//!
//! * [`net`] — address parsing (`tcp:host:port` / `unix:/path`) and the
//!   TCP-or-Unix stream/listener abstraction;
//! * [`engine`] — [`engine::ServeEngine`], one enum over the immutable
//!   forest, the traffic-adaptive forest and the tiered write path,
//!   answering every protocol op;
//! * [`sampler`] — the lock-free sampled per-key access sketch
//!   ([`sampler::TrafficSampler`]) the adaptive engine's point lookups
//!   feed: one in N gets resolves its in-shard rank and bumps a dense
//!   atomic counter;
//! * [`planner`] — the re-optimization planner
//!   ([`planner::AdaptiveEngine`]): aggregates the sketch into
//!   per-shard observed profiles, gates on total-variation divergence
//!   from each shard's built-for profile, reruns the weighted layout
//!   optimizer and hot-swaps the rebuilt shard (the protocol's `Reopt`
//!   op);
//! * [`server`] — the thread-per-core server: an acceptor thread deals
//!   connections to workers, each worker owns its connections *and* a
//!   subset of shards (shard `s` belongs to worker `s mod N`), point
//!   lookups are handed off to their owning worker and answered with
//!   the interleaved descent kernel, bounded queues reply `BUSY`
//!   instead of buffering without limit, queued work is shed with
//!   `TIMEOUT` past its deadline, and shutdown drains in-flight
//!   requests before flushing the memtable;
//! * [`client`] — a small blocking client (one request in flight) used
//!   by tests, the CLI and the harness's stats scrapes;
//! * [`bomber`] — the open-loop load generator behind `cobtree-bomber`:
//!   Zipf key popularity over millions of distinct users, Poisson
//!   arrivals, mixed op blends, true arrival-to-completion latency, and
//!   the `BENCH_serve.json` artifact.
//!
//! The wire protocol itself (framing, opcodes, typed decode errors)
//! lives in [`cobtree_core::protocol`] and is specified byte-by-byte in
//! `docs/PROTOCOL.md`.

pub mod bomber;
pub mod client;
pub mod engine;
pub mod net;
pub mod planner;
pub mod sampler;
pub mod server;

pub use client::{Client, RetryPolicy, RetryStats};
pub use engine::{EngineResult, ServeEngine};
pub use planner::{AdaptiveEngine, ReoptOutcome};
pub use sampler::TrafficSampler;
pub use server::{Server, ServerConfig};
