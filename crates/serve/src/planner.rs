//! The re-optimization planner: the control loop that turns sampled
//! traffic into hot-swapped shard layouts.
//!
//! [`AdaptiveEngine`] bundles the three moving parts of the adaptive
//! loop behind one handle the server can clone per worker:
//!
//! 1. an [`AdaptiveForest`] — the atomically swappable forest handle
//!    readers snapshot per operation;
//! 2. a [`TrafficSampler`] — the lock-free sampled per-key access
//!    sketch every point lookup feeds;
//! 3. the planner itself ([`AdaptiveEngine::reoptimize`], driven by the
//!    protocol's `Reopt` op): for each shard with enough samples, build
//!    an [`ObservedProfile`] from the sketch, compare it against the
//!    profile the shard's current layout was built for (total-variation
//!    divergence), and when the traffic has drifted past the threshold,
//!    run the weighted layout optimizer
//!    ([`cobtree_optimizer::optimize_for_profile`]), rebuild the shard
//!    over the same key set, and publish it with
//!    [`AdaptiveForest::swap_shard`] — readers migrate shard-by-shard
//!    with no downtime and bit-identical answers.
//!
//! The pass runs inline on whichever worker received the `Reopt`
//! request; it is an explicit admin operation, not a background thread,
//! so its cost lands where the operator asked for it.

use crate::sampler::{TrafficSampler, DEFAULT_SAMPLE_INTERVAL};
use cobtree_core::{ObservedProfile, Result};
use cobtree_optimizer::optimize_for_profile;
use cobtree_search::{AdaptiveForest, Forest, SearchTree, Storage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default divergence gate: a shard re-optimizes when the
/// total-variation distance between its observed and built-for access
/// distributions reaches 0.15.
pub const DEFAULT_REOPT_THRESHOLD: f64 = 0.15;

/// Minimum sampled accesses a shard needs before its profile is
/// trusted enough to drive a rebuild.
pub const MIN_SHARD_SAMPLES: u64 = 64;

/// What one `Reopt` pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReoptOutcome {
    /// Shards whose sketch was examined.
    pub scanned: u32,
    /// Shards re-optimized and hot-swapped.
    pub swapped: u32,
}

/// The traffic-adaptive forest engine: swappable forest + sampler +
/// planner configuration.
#[derive(Debug)]
pub struct AdaptiveEngine {
    forest: AdaptiveForest<u64>,
    sampler: TrafficSampler,
    threshold: f64,
    min_samples: u64,
    scans: AtomicU64,
}

impl AdaptiveEngine {
    /// Wraps `forest` with default sampling interval and divergence
    /// threshold.
    #[must_use]
    pub fn new(forest: Forest<u64>) -> Self {
        Self::with_config(forest, DEFAULT_SAMPLE_INTERVAL, DEFAULT_REOPT_THRESHOLD)
    }

    /// Wraps `forest`, sampling one in `interval` lookups and swapping
    /// shards whose divergence reaches `threshold`.
    #[must_use]
    pub fn with_config(forest: Forest<u64>, interval: u64, threshold: f64) -> Self {
        let sampler = TrafficSampler::new(&forest, interval);
        AdaptiveEngine {
            forest: AdaptiveForest::new(forest),
            sampler,
            threshold,
            min_samples: MIN_SHARD_SAMPLES,
            scans: AtomicU64::new(0),
        }
    }

    /// The swappable forest handle.
    #[must_use]
    pub fn forest(&self) -> &AdaptiveForest<u64> {
        &self.forest
    }

    /// The traffic sketch.
    #[must_use]
    pub fn sampler(&self) -> &TrafficSampler {
        &self.sampler
    }

    /// The divergence gate.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The current forest snapshot — pin once per operation; answers
    /// from one snapshot are always mutually consistent.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Forest<u64>> {
        self.forest.snapshot()
    }

    /// `(sampled_reads, reopt_scans, reopt_swaps)` — the three adaptive
    /// stats words.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.sampler.sampled(),
            self.scans.load(Ordering::Relaxed),
            self.forest.swaps(),
        )
    }

    /// One full planner pass over every shard; see the module docs.
    ///
    /// # Errors
    /// Build or swap failures from the underlying facade — the engine
    /// keeps serving its previous layouts when a pass fails.
    pub fn reoptimize(&self) -> Result<ReoptOutcome> {
        let forest = self.forest.snapshot();
        let mut scanned = 0u32;
        let mut swapped = 0u32;
        for shard in 0..forest.active_shards() {
            let Some(counts) = self.sampler.counts(shard) else {
                continue;
            };
            scanned += 1;
            if counts.iter().sum::<u64>() < self.min_samples {
                continue;
            }
            let tree = forest.shard(shard).expect("dense shard index");
            let profile = ObservedProfile::with_height(&counts, tree.height());
            if !self
                .forest
                .should_reoptimize(shard, &profile, self.threshold)
            {
                continue;
            }
            let (_, layout) = optimize_for_profile(&profile);
            // A mapped shard cannot be rebuilt in place over its file
            // bytes, so the replacement is served from the heap; other
            // storages rebuild as themselves.
            let storage = match forest.storage() {
                Storage::Mapped => Storage::Explicit,
                s => s,
            };
            let keys: Vec<u64> = tree.iter().collect();
            let rebuilt = SearchTree::builder()
                .layout(layout)
                .storage(storage)
                .keys(keys)
                .build()?;
            self.forest
                .swap_shard(shard, Arc::new(rebuilt), Some(Arc::new(profile)))?;
            self.sampler.reset(shard);
            swapped += 1;
        }
        self.scans.fetch_add(u64::from(scanned), Ordering::Relaxed);
        Ok(ReoptOutcome { scanned, swapped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;
    use cobtree_search::workload::{ZipfKeys, ZipfTable};

    fn engine(n: u64, shards: usize, interval: u64) -> AdaptiveEngine {
        let forest = Forest::builder()
            .layout(NamedLayout::MinWep)
            .storage(Storage::Implicit)
            .shards(shards)
            .keys((1..=n).map(|k| k * 2))
            .build()
            .expect("forest");
        AdaptiveEngine::with_config(forest, interval, DEFAULT_REOPT_THRESHOLD)
    }

    #[test]
    fn undersampled_shards_are_scanned_but_not_swapped() {
        let e = engine(1_000, 2, 1);
        let before = e.snapshot();
        let out = e.reoptimize().expect("pass");
        assert_eq!(out.scanned, 2);
        assert_eq!(out.swapped, 0);
        assert!(Arc::ptr_eq(&before, &e.snapshot()), "nothing published");
    }

    #[test]
    fn skewed_traffic_swaps_shards_and_preserves_answers() {
        let e = engine(4_096, 4, 1);
        let pinned = e.snapshot();
        let table = ZipfTable::new(4_096, 1.2);
        for rank in ZipfKeys::from_table(&table, 7).take(20_000) {
            e.sampler().observe(&pinned, rank * 2);
        }
        let out = e.reoptimize().expect("pass");
        assert_eq!(out.scanned, 4);
        assert!(out.swapped >= 1, "zipf traffic diverges from uniform");
        let (sampled, scans, swaps) = e.counters();
        assert!(sampled > 0);
        assert_eq!(scans, 4);
        assert_eq!(swaps, u64::from(out.swapped));

        // The swapped forest is the same ordered map, bit for bit.
        let after = e.snapshot();
        assert!(!Arc::ptr_eq(&pinned, &after));
        assert_eq!(after.len(), pinned.len());
        for key in [0u64, 2, 3, 4_096, 8_191, 8_192, 8_193] {
            assert_eq!(pinned.contains(key), after.contains(key), "contains({key})");
            assert_eq!(pinned.rank(key), after.rank(key), "rank({key})");
            assert_eq!(
                pinned.lower_bound(key),
                after.lower_bound(key),
                "lower_bound({key})"
            );
        }
        let probes: Vec<u64> = (0..4_096).map(|i| i * 5).collect();
        assert_eq!(pinned.rank_checksum(&probes), after.rank_checksum(&probes));

        // A second pass sees traffic matching the built-for profiles
        // (the sketch was reset), so nothing swaps again.
        let again = e.reoptimize().expect("second pass");
        assert_eq!(again.swapped, 0, "converged: no further drift");
    }
}
