//! Address parsing and the TCP-or-Unix stream abstraction.
//!
//! The server and every client speak the same protocol over loopback
//! TCP (`tcp:127.0.0.1:7878`, or just `127.0.0.1:7878`) and Unix domain
//! sockets (`unix:/tmp/cobtree.sock`); this module hides the transport
//! behind two small enums so the rest of the crate never branches on
//! it.

use cobtree_core::{Error, Result};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// A parsed listen/connect address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addr {
    /// A TCP host:port (use port 0 to let the OS pick).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Addr {
    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or bare `HOST:PORT`
    /// (assumed TCP).
    ///
    /// # Errors
    /// [`Error::Malformed`] for empty or schemeless-and-portless specs.
    pub fn parse(spec: &str) -> Result<Self> {
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(Error::Malformed {
                    detail: "unix: address needs a socket path".to_string(),
                });
            }
            return Ok(Addr::Unix(PathBuf::from(path)));
        }
        let hostport = spec.strip_prefix("tcp:").unwrap_or(spec);
        if hostport.is_empty() || !hostport.contains(':') {
            return Err(Error::Malformed {
                detail: format!("address '{spec}' is neither tcp:HOST:PORT nor unix:PATH"),
            });
        }
        Ok(Addr::Tcp(hostport.to_string()))
    }

    /// Renders back to the `tcp:`/`unix:` spec form.
    #[must_use]
    pub fn to_spec(&self) -> String {
        match self {
            Addr::Tcp(hp) => format!("tcp:{hp}"),
            Addr::Unix(p) => format!("unix:{}", p.display()),
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum NetStream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix domain.
    Unix(UnixStream),
}

impl NetStream {
    /// Connects (blocking) to `addr`.
    ///
    /// # Errors
    /// [`Error::Io`] when the connect fails.
    pub fn connect(addr: &Addr) -> Result<Self> {
        match addr {
            Addr::Tcp(hp) => TcpStream::connect(hp.as_str())
                .map(NetStream::Tcp)
                .map_err(|e| Error::io(&e)),
            Addr::Unix(p) => UnixStream::connect(p)
                .map(NetStream::Unix)
                .map_err(|e| Error::io(&e)),
        }
    }

    /// Toggles nonblocking mode.
    ///
    /// # Errors
    /// [`Error::Io`] from the socket option call.
    pub fn set_nonblocking(&self, on: bool) -> Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(on),
            NetStream::Unix(s) => s.set_nonblocking(on),
        }
        .map_err(|e| Error::io(&e))
    }

    /// Sets (or clears, with `None`) the blocking read timeout.
    ///
    /// # Errors
    /// [`Error::Io`] from the socket option call.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(dur),
            NetStream::Unix(s) => s.set_read_timeout(dur),
        }
        .map_err(|e| Error::io(&e))
    }

    /// Disables Nagle on TCP (no-op on Unix sockets) — the protocol is
    /// request/response with small frames, so coalescing only adds
    /// latency.
    pub fn set_nodelay(&self) {
        if let NetStream::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }

    /// Shuts down the write half, signalling EOF to the peer.
    pub fn shutdown_write(&self) {
        let _ = match self {
            NetStream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            NetStream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listening socket over either transport.
#[derive(Debug)]
pub enum NetListener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix domain (removes a stale socket file before binding).
    Unix(UnixListener),
}

impl NetListener {
    /// Binds `addr` (TCP port 0 picks a free port; see
    /// [`NetListener::local_addr`] for the result).
    ///
    /// # Errors
    /// [`Error::Io`] when the bind fails.
    pub fn bind(addr: &Addr) -> Result<Self> {
        match addr {
            Addr::Tcp(hp) => TcpListener::bind(hp.as_str())
                .map(NetListener::Tcp)
                .map_err(|e| Error::io(&e)),
            Addr::Unix(p) => {
                // A previous unclean exit leaves the socket file behind;
                // binding over it needs the unlink first.
                let _ = std::fs::remove_file(p);
                UnixListener::bind(p)
                    .map(NetListener::Unix)
                    .map_err(|e| Error::io(&e))
            }
        }
    }

    /// The actually-bound address (resolves TCP port 0).
    ///
    /// # Errors
    /// [`Error::Io`] from the socket query.
    pub fn local_addr(&self) -> Result<Addr> {
        match self {
            NetListener::Tcp(l) => {
                let a = l.local_addr().map_err(|e| Error::io(&e))?;
                Ok(Addr::Tcp(a.to_string()))
            }
            NetListener::Unix(l) => {
                let a = l.local_addr().map_err(|e| Error::io(&e))?;
                Ok(Addr::Unix(a.as_pathname().map_or_else(
                    || PathBuf::from("<unnamed>"),
                    std::path::Path::to_path_buf,
                )))
            }
        }
    }

    /// Toggles nonblocking accepts.
    ///
    /// # Errors
    /// [`Error::Io`] from the socket option call.
    pub fn set_nonblocking(&self, on: bool) -> Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(on),
            NetListener::Unix(l) => l.set_nonblocking(on),
        }
        .map_err(|e| Error::io(&e))
    }

    /// Accepts one connection; `Ok(None)` on `WouldBlock` (nonblocking
    /// mode).
    ///
    /// # Errors
    /// [`Error::Io`] for real accept failures.
    pub fn accept(&self) -> Result<Option<NetStream>> {
        let r = match self {
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetStream::Tcp(s)),
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetStream::Unix(s)),
        };
        match r {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(Error::io(&e)),
        }
    }

    /// Removes the socket file of a Unix listener (call after the
    /// listener is dropped); no-op for TCP.
    pub fn cleanup(addr: &Addr) {
        if let Addr::Unix(p) = addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing() {
        assert_eq!(
            Addr::parse("tcp:127.0.0.1:7878").unwrap(),
            Addr::Tcp("127.0.0.1:7878".to_string())
        );
        assert_eq!(
            Addr::parse("127.0.0.1:0").unwrap(),
            Addr::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            Addr::parse("unix:/tmp/x.sock").unwrap(),
            Addr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(Addr::parse("").is_err());
        assert!(Addr::parse("unix:").is_err());
        assert!(Addr::parse("justahost").is_err());
        assert_eq!(Addr::parse("tcp:h:1").unwrap().to_spec(), "tcp:h:1");
    }

    #[test]
    fn tcp_and_unix_roundtrip() {
        for spec in [
            "tcp:127.0.0.1:0".to_string(),
            format!(
                "unix:{}",
                std::env::temp_dir()
                    .join(format!("cobtree-net-test-{}.sock", std::process::id()))
                    .display()
            ),
        ] {
            let addr = Addr::parse(&spec).unwrap();
            let listener = NetListener::bind(&addr).unwrap();
            let bound = listener.local_addr().unwrap();
            let mut client = NetStream::connect(&bound).unwrap();
            let mut served = listener.accept().unwrap().unwrap();
            client.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            served.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
            drop(listener);
            NetListener::cleanup(&bound);
        }
    }
}
