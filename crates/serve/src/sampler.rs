//! Sampled per-key access counters for the adaptive serving engine.
//!
//! Point-lookup traffic is the signal the adaptive layout loop
//! optimizes for, but counting every access would put an atomic
//! increment (and a second descent to resolve the key's rank) on the
//! hot path. [`TrafficSampler`] instead counts roughly one in
//! `interval` lookups: a single relaxed fetch-add decides whether an
//! access is sampled, and only sampled accesses pay for the rank
//! resolution and the per-rank counter bump. The sketch is lock-free —
//! workers share it through plain `AtomicU64`s and never block each
//! other — and *dense*: one counter per stored key, indexed by the
//! key's in-shard in-order rank, which is exactly the index space
//! [`ObservedProfile::with_height`] consumes.
//!
//! Shard swaps performed by the re-optimization planner preserve each
//! shard's key set (validated by
//! [`cobtree_search::Forest::with_swapped_shard`]), so rank indices
//! stay meaningful across swaps and the sketch never needs a resize.
//!
//! [`ObservedProfile::with_height`]: cobtree_core::ObservedProfile::with_height

use cobtree_search::{Forest, SearchBackend};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default sampling interval: one in 64 point lookups is recorded.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// A lock-free sampled sketch of per-key point-lookup traffic, one
/// dense counter row per forest shard.
#[derive(Debug)]
pub struct TrafficSampler {
    interval: u64,
    tick: AtomicU64,
    sampled: AtomicU64,
    shards: Vec<Box<[AtomicU64]>>,
}

impl TrafficSampler {
    /// A zeroed sketch sized to `forest`'s shards. `interval` is
    /// clamped to at least 1 (1 samples every lookup).
    #[must_use]
    pub fn new(forest: &Forest<u64>, interval: u64) -> Self {
        TrafficSampler {
            interval: interval.max(1),
            tick: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            shards: forest
                .shards()
                .map(|t| {
                    (0..t.len())
                        .map(|_| AtomicU64::new(0))
                        .collect::<Vec<_>>()
                        .into_boxed_slice()
                })
                .collect(),
        }
    }

    /// The configured sampling interval.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Accesses actually recorded into the sketch (hits on sampled
    /// ticks), across all shards — the `sampled_reads` stats word.
    #[must_use]
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Books one point lookup: advances the sampling clock and, on a
    /// sampled tick where `key` is stored, resolves its in-shard rank
    /// (one extra descent, paid only by the ~`1/interval` sampled
    /// fraction) and bumps that rank's counter.
    pub fn observe(&self, forest: &Forest<u64>, key: u64) {
        if self.tick.fetch_add(1, Ordering::Relaxed) % self.interval != 0 {
            return;
        }
        let Some((shard, tree)) = forest.route(key) else {
            return;
        };
        let rank = SearchBackend::lower_bound_rank(tree, key);
        if SearchBackend::key_at_rank(tree, rank) != Some(key) {
            return; // miss: only stored keys have a layout node to favor
        }
        self.record(shard, rank);
    }

    /// Bumps the counter for 1-based in-shard rank `rank` of dense
    /// shard `shard`; out-of-range coordinates are ignored.
    pub fn record(&self, shard: usize, rank: u64) {
        let Some(row) = self.shards.get(shard) else {
            return;
        };
        let Some(slot) = rank.checked_sub(1).and_then(|r| row.get(r as usize)) else {
            return;
        };
        slot.fetch_add(1, Ordering::Relaxed);
        self.sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of shard `shard`'s counter row (index `i`
    /// counts in-shard rank `i + 1`), or `None` for an unknown shard.
    #[must_use]
    pub fn counts(&self, shard: usize) -> Option<Vec<u64>> {
        self.shards
            .get(shard)
            .map(|row| row.iter().map(|c| c.load(Ordering::Relaxed)).collect())
    }

    /// Total sampled accesses recorded against shard `shard`.
    #[must_use]
    pub fn total(&self, shard: usize) -> u64 {
        self.shards
            .get(shard)
            .map_or(0, |row| row.iter().map(|c| c.load(Ordering::Relaxed)).sum())
    }

    /// Zeroes shard `shard`'s counters — called after a swap so the
    /// next divergence decision reflects post-swap traffic only.
    pub fn reset(&self, shard: usize) {
        if let Some(row) = self.shards.get(shard) {
            for c in row.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;
    use cobtree_search::Storage;

    fn forest(n: u64, shards: usize) -> Forest<u64> {
        Forest::builder()
            .layout(NamedLayout::MinWep)
            .storage(Storage::Implicit)
            .shards(shards)
            .keys((1..=n).map(|k| k * 2))
            .build()
            .expect("forest")
    }

    #[test]
    fn interval_one_counts_every_stored_hit() {
        let f = forest(100, 2);
        let s = TrafficSampler::new(&f, 1);
        for _ in 0..3 {
            s.observe(&f, 2); // rank 1 of shard 0
        }
        s.observe(&f, 3); // miss: never recorded
        s.observe(&f, 200); // stored, some rank of the second shard
        assert_eq!(s.sampled(), 4);
        assert_eq!(s.counts(0).unwrap()[0], 3);
        assert_eq!(s.total(0), 3);
        assert_eq!(s.total(1), 1);
        s.reset(0);
        assert_eq!(s.total(0), 0);
        assert_eq!(s.total(1), 1);
    }

    #[test]
    fn interval_thins_the_stream() {
        let f = forest(100, 1);
        let s = TrafficSampler::new(&f, 8);
        for _ in 0..64 {
            s.observe(&f, 2);
        }
        assert_eq!(s.sampled(), 8, "every 8th access lands");
    }

    #[test]
    fn out_of_range_coordinates_are_ignored() {
        let f = forest(10, 1);
        let s = TrafficSampler::new(&f, 1);
        s.record(5, 1);
        s.record(0, 0);
        s.record(0, 11);
        assert_eq!(s.sampled(), 0);
        assert_eq!(s.counts(5), None);
    }
}
