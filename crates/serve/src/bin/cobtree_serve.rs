//! `cobtree-serve` — boots a thread-per-core protocol server over a
//! forest or tiered engine and runs until a client sends `Shutdown`.
//!
//! ```text
//! cobtree-serve --listen tcp:127.0.0.1:0 [--engine forest|adaptive|tiered]
//!               [--keys N] [--shards N] [--path DIR] [--workers N]
//!               [--durable] [--op-timeout-ms N] [--inflight N]
//!               [--handoff N] [--width N]
//!               [--scrub-interval-ms N] [--scrub-budget N]
//!               [--sample-interval N] [--reopt-threshold F]
//! ```
//!
//! The store is seeded with the even keys `2, 4, …, 2·N` — the same
//! mapping `cobtree-bomber` assumes (reads probe even keys, write
//! churn uses odd ones). `--path` makes the tiered engine durable on
//! disk (required for crash/recovery runs); without it the engine
//! lives in memory. Prints `LISTENING <addr>` on stdout once the
//! socket is bound, so scripts can scrape the resolved port.

use cobtree_core::NamedLayout;
use cobtree_search::tiered::TieredForest;
use cobtree_search::{Forest, Storage};
use cobtree_serve::planner::DEFAULT_REOPT_THRESHOLD;
use cobtree_serve::sampler::DEFAULT_SAMPLE_INTERVAL;
use cobtree_serve::{AdaptiveEngine, ServeEngine, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: unparseable value"))
}

fn main() {
    let mut listen = "tcp:127.0.0.1:0".to_string();
    let mut engine_kind = "tiered".to_string();
    let mut keys: u64 = 1 << 16;
    let mut shards: usize = 4;
    let mut path: Option<PathBuf> = None;
    let mut sample_interval: u64 = DEFAULT_SAMPLE_INTERVAL;
    let mut reopt_threshold: f64 = DEFAULT_REOPT_THRESHOLD;
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = parse("--listen", args.next()),
            "--engine" => engine_kind = parse("--engine", args.next()),
            "--keys" => keys = parse("--keys", args.next()),
            "--shards" => shards = parse("--shards", args.next()),
            "--path" => path = Some(PathBuf::from(parse::<String>("--path", args.next()))),
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--durable" => cfg.durable_writes = true,
            "--op-timeout-ms" => {
                cfg.op_timeout = Duration::from_millis(parse("--op-timeout-ms", args.next()));
            }
            "--inflight" => cfg.inflight_per_conn = parse("--inflight", args.next()),
            "--handoff" => cfg.handoff_queue = parse("--handoff", args.next()),
            "--width" => cfg.batch_width = parse("--width", args.next()),
            "--scrub-interval-ms" => {
                cfg.scrub_interval = Some(Duration::from_millis(parse(
                    "--scrub-interval-ms",
                    args.next(),
                )));
            }
            "--scrub-budget" => cfg.scrub_shards_per_pass = parse("--scrub-budget", args.next()),
            "--sample-interval" => sample_interval = parse("--sample-interval", args.next()),
            "--reopt-threshold" => reopt_threshold = parse("--reopt-threshold", args.next()),
            "--help" | "-h" => {
                println!(
                    "usage: cobtree-serve --listen tcp:HOST:PORT|unix:PATH \
                     [--engine forest|adaptive|tiered] [--keys N] [--shards N] [--path DIR] \
                     [--workers N] [--durable] [--op-timeout-ms N] [--inflight N] \
                     [--handoff N] [--width N] [--scrub-interval-ms N] [--scrub-budget N] \
                     [--sample-interval N] [--reopt-threshold F]"
                );
                return;
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }

    let seed_keys = (1..=keys).map(|k| k * 2);
    let engine = match engine_kind.as_str() {
        "forest" | "adaptive" => {
            let forest = Forest::builder()
                .layout(NamedLayout::MinWep)
                .storage(Storage::Implicit)
                .shards(shards)
                .keys(seed_keys)
                .build()
                .expect("build forest");
            if engine_kind == "adaptive" {
                ServeEngine::Adaptive(Arc::new(AdaptiveEngine::with_config(
                    forest,
                    sample_interval,
                    reopt_threshold,
                )))
            } else {
                ServeEngine::Forest(Arc::new(forest))
            }
        }
        "tiered" => {
            let mut b = TieredForest::builder()
                .layout(NamedLayout::MinWep)
                .shards(shards)
                .background(false)
                .keys(seed_keys);
            if let Some(dir) = &path {
                b = b.path(dir);
            }
            ServeEngine::Tiered(Arc::new(b.build().expect("build tiered engine")))
        }
        other => panic!("--engine must be forest, adaptive or tiered, got {other}"),
    };

    eprintln!(
        "[serve] {} engine, {} keys, {} shards, {} workers",
        engine.kind(),
        engine.len(),
        engine.shard_count(),
        cfg.effective_workers()
    );
    let server = Server::start(engine, &listen, cfg).expect("start server");
    println!("LISTENING {}", server.addr().to_spec());

    // Run until a client's Shutdown request flips the state, then
    // drain and flush.
    while !server.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.shutdown().expect("drain and flush");
    eprintln!(
        "[serve] drained: {} requests, {} responses, {} busy, {} timeouts",
        stats.requests, stats.responses, stats.busy, stats.timeouts
    );
}
