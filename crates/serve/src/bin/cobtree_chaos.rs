//! `cobtree-chaos` — the seeded chaos drill behind the CI `chaos`
//! job, emitting the `BENCH_chaos.json` artifact.
//!
//! ```text
//! cobtree-chaos [--seed N] [--keys N] [--shards N]
//!               [--duration-ms N] [--connections N] [--max-retries N]
//!               [--path DIR] [--out BENCH_chaos.json]
//! ```
//!
//! One full robustness episode, in process: boot a durable tiered
//! store behind the deterministic fault seam, bomb it for a healthy
//! baseline, bit-flip the next shard read so the background scrubber
//! quarantines exactly one shard, bomb again degraded (clients back
//! off and retry; only the quarantined key range answers `UNAVAIL`),
//! heal by flush, and bomb a third time. The artifact carries the
//! numbers the CI gates grep:
//!
//! * `lost_acked` — acknowledged durable writes missing after a cold
//!   reopen (**must be 0**);
//! * `quarantined` / `healed` — shards the episode quarantined and
//!   healed (**must be ≥ 1 each**);
//! * `p99_post_heal_ns` vs `p99_baseline_ns` — post-heal tail
//!   (**must stay ≤ 1.25× baseline**).

use cobtree_analysis::json::JsonObject;
use cobtree_core::io::{FaultIo, FaultKind, FaultRule, IoOp, StorageIo};
use cobtree_core::protocol::{Request, Status};
use cobtree_core::NamedLayout;
use cobtree_search::tiered::TieredForest;
use cobtree_serve::bomber::{self, BomberConfig, OpMix};
use cobtree_serve::{Client, ServeEngine, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: unparseable value"))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut seed: u64 = 42;
    let mut keys: u64 = 1 << 14;
    let mut shards: usize = 4;
    let mut duration = Duration::from_millis(1_500);
    let mut connections: usize = 4;
    let mut max_retries: u32 = 3;
    let mut path: Option<PathBuf> = None;
    let mut out = PathBuf::from("BENCH_chaos.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = parse("--seed", args.next()),
            "--keys" => keys = parse("--keys", args.next()),
            "--shards" => shards = parse("--shards", args.next()),
            "--duration-ms" => {
                duration = Duration::from_millis(parse("--duration-ms", args.next()));
            }
            "--connections" => connections = parse("--connections", args.next()),
            "--max-retries" => max_retries = parse("--max-retries", args.next()),
            "--path" => path = Some(PathBuf::from(parse::<String>("--path", args.next()))),
            "--out" => out = PathBuf::from(parse::<String>("--out", args.next())),
            "--help" | "-h" => {
                println!(
                    "usage: cobtree-chaos [--seed N] [--keys N] [--shards N] [--duration-ms N] \
                     [--connections N] [--max-retries N] [--path DIR] [--out FILE]"
                );
                return;
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    let dir = path.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("cobtree-chaos-{}-{seed:x}", std::process::id()))
    });
    std::fs::remove_dir_all(&dir).ok();

    // Boot: seed with clean I/O, reopen behind the fault seam so every
    // durable byte of the episode is observable and injectable.
    drop(
        TieredForest::builder()
            .layout(NamedLayout::MinWep)
            .shards(shards)
            .path(&dir)
            .background(false)
            .keys((1..=keys).map(|k| k * 2))
            .build()
            .expect("seed store"),
    );
    let fault = Arc::new(FaultIo::passthrough());
    let tiered = Arc::new(
        TieredForest::builder()
            .path(&dir)
            .background(false)
            .io(Arc::clone(&fault) as Arc<dyn StorageIo>)
            .build()
            .expect("reopen behind fault seam"),
    );
    let server = Server::start(
        ServeEngine::Tiered(Arc::clone(&tiered)),
        "tcp:127.0.0.1:0",
        ServerConfig {
            durable_writes: true,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr().to_spec();
    bomber::await_ready(&addr, Duration::from_secs(10)).expect("server ready");

    let bomb = BomberConfig {
        addr: addr.clone(),
        connections,
        users: keys.min(1 << 20),
        zipf_s: 0.9,
        window: 32,
        mix: OpMix::parse("85,8,2,0,5").expect("mix"),
        duration,
        seed,
        max_retries,
        ..BomberConfig::default()
    };
    eprintln!("[chaos] phase 1: healthy baseline");
    let baseline = bomber::run(&bomb).expect("baseline run");
    assert!(baseline.completed > 0, "baseline served nothing");

    // Corrupt: arm a bit-flip on the next shard read — the scrubber's.
    eprintln!("[chaos] phase 2: bit-flip next shard read, scrub");
    let mut client = Client::connect(&addr).expect("connect");
    fault.add_rule(FaultRule {
        op: IoOp::Read,
        nth: fault.op_count(IoOp::Read) + 1,
        kind: FaultKind::BitFlip(seed),
    });
    let scrub = tiered.scrub_step(0);
    let quarantined = scrub.newly_quarantined.len() as u64;
    assert!(quarantined >= 1, "scrub never quarantined: {scrub:?}");

    eprintln!("[chaos] phase 3: degraded bombing (UNAVAIL + retries)");
    let degraded = bomber::run(&BomberConfig {
        mix: OpMix::parse("100,0,0,0,0").expect("mix"),
        ..bomb.clone()
    })
    .expect("degraded run");
    assert!(degraded.completed > 0, "degraded store stopped serving");

    // Heal: one acked durable write forces a republishing flush.
    eprintln!("[chaos] phase 4: heal by flush");
    let heal_key = 2 * keys + 99_999;
    assert_eq!(
        client
            .call(&Request::Insert { key: heal_key })
            .expect("insert")
            .status,
        Status::Ok
    );
    assert_eq!(
        client.call(&Request::Flush).expect("flush").status,
        Status::Ok
    );
    let healed = tiered.heals();
    assert_eq!(tiered.quarantined_shards(), 0, "flush must heal");

    eprintln!("[chaos] phase 5: post-heal bombing");
    let post = bomber::run(&bomb).expect("post-heal run");
    let stats = client.stats().expect("stats");
    drop(client);
    server.shutdown().expect("shutdown");

    // Cold-reopen audit: every key the episode guarantees durable.
    let reopened: TieredForest<u64> = TieredForest::open(&dir).expect("cold reopen");
    let mut lost_acked = 0u64;
    for k in (1..=keys).map(|k| k * 2).chain([heal_key]) {
        if reopened.locate(k).is_none() {
            lost_acked += 1;
        }
    }
    drop(reopened);
    std::fs::remove_dir_all(&dir).ok();

    let json = JsonObject::new()
        .with("bench", "chaos")
        .with("schema_version", 1u64)
        .with("seed", seed)
        .with("keys", keys)
        .with("shards", shards as u64)
        .with("lost_acked", lost_acked)
        .with("quarantined", quarantined)
        .with("healed", healed)
        .with("unavail_served", degraded.unavail)
        .with("client_retries", degraded.retries)
        .with("client_give_ups", degraded.give_ups)
        .with(
            "scrub_passes",
            stats.scrub_passes.max(tiered.scrub_passes()),
        )
        .with("p99_baseline_ns", baseline.p99_ns)
        .with("p99_degraded_ns", degraded.p99_ns)
        .with("p99_post_heal_ns", post.p99_ns)
        .with(
            "p99_post_heal_ratio",
            if baseline.p99_ns > 0.0 {
                post.p99_ns / baseline.p99_ns
            } else {
                0.0
            },
        )
        .with("fault_events", fault.event_log().trim_end())
        .with("baseline", baseline.to_json_object())
        .with("degraded", degraded.to_json_object())
        .with("post_heal", post.to_json_object())
        .render();
    std::fs::write(&out, &json).expect("write artifact");
    eprintln!(
        "[chaos] lost_acked {lost_acked}, quarantined {quarantined}, healed {healed}, \
         p99 {:.0}us -> {:.0}us (degraded {:.0}us) -> {}",
        baseline.p99_ns / 1e3,
        post.p99_ns / 1e3,
        degraded.p99_ns / 1e3,
        out.display()
    );
    assert_eq!(lost_acked, 0, "acked durable writes lost");
    assert!(healed >= 1, "no shard healed");
}
