//! `cobtree-bomber` — the open-loop load generator for
//! `cobtree-serve`, emitting the `BENCH_serve.json` artifact.
//!
//! ```text
//! cobtree-bomber --addr tcp:127.0.0.1:7878 [--connections N]
//!                [--users N] [--zipf S] [--rate OPS_PER_SEC]
//!                [--window N] [--mix GET,INS,REM,RANGE,RANK]
//!                [--duration-ms N] [--span N] [--seed N]
//!                [--out BENCH_serve.json] [--shutdown] [--adaptive]
//! ```
//!
//! `--rate 0` (the default) keeps every connection's pipeline window
//! full instead of pacing arrivals — maximum offered load. With a
//! positive rate, arrivals are Poisson and latency is measured from
//! each request's *scheduled* arrival, so server queueing delay shows
//! up in the tail instead of being coordinated away. `--shutdown`
//! sends the server a `Shutdown` request after the run (and after the
//! final stats scrape). `--adaptive` runs the two-phase adaptive
//! drill instead — bomb, send `Reopt`, bomb again with identical load
//! — and emits the `BENCH_adaptive.json` shape (the server must be
//! running `--engine adaptive`).

use cobtree_serve::bomber::{self, BomberConfig, OpMix};
use cobtree_serve::Client;
use std::path::PathBuf;
use std::time::Duration;

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value
        .unwrap_or_else(|| panic!("{flag} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: unparseable value"))
}

fn main() {
    let mut cfg = BomberConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut shutdown = false;
    let mut adaptive = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--connections" => cfg.connections = parse("--connections", args.next()),
            "--users" => cfg.users = parse("--users", args.next()),
            "--zipf" => cfg.zipf_s = parse("--zipf", args.next()),
            "--rate" => cfg.target_rate = parse("--rate", args.next()),
            "--window" => cfg.window = parse("--window", args.next()),
            "--mix" => {
                cfg.mix = OpMix::parse(&parse::<String>("--mix", args.next())).expect("--mix");
            }
            "--duration-ms" => {
                cfg.duration = Duration::from_millis(parse("--duration-ms", args.next()));
            }
            "--span" => cfg.scan_span = parse("--span", args.next()),
            "--seed" => cfg.seed = parse("--seed", args.next()),
            "--max-retries" => cfg.max_retries = parse("--max-retries", args.next()),
            "--out" => out = Some(PathBuf::from(parse::<String>("--out", args.next()))),
            "--shutdown" => shutdown = true,
            "--adaptive" => adaptive = true,
            "--help" | "-h" => {
                println!(
                    "usage: cobtree-bomber --addr tcp:HOST:PORT|unix:PATH [--connections N] \
                     [--users N] [--zipf S] [--rate OPS] [--window N] [--mix G,I,R,S,K] \
                     [--duration-ms N] [--span N] [--seed N] [--max-retries N] [--out FILE] \
                     [--shutdown] [--adaptive]"
                );
                return;
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    assert!(!cfg.addr.is_empty(), "--addr is required (try --help)");

    bomber::await_ready(&cfg.addr, Duration::from_secs(10)).expect("server never became ready");
    let completed = if adaptive {
        let out = out.unwrap_or_else(|| PathBuf::from("BENCH_adaptive.json"));
        let report = bomber::run_adaptive(&cfg).expect("adaptive bombing run failed");
        std::fs::write(&out, report.to_json()).expect("write artifact");
        eprintln!(
            "[bomber] adaptive: scanned {} / swapped {} shards, {} sampled reads; \
             p99 pre {:.0}us -> post {:.0}us; {:.0} -> {:.0} ops/s -> {}",
            report.scanned,
            report.swapped,
            report.sampled_reads,
            report.pre.p99_ns / 1e3,
            report.post.p99_ns / 1e3,
            report.pre.ops_per_sec,
            report.post.ops_per_sec,
            out.display()
        );
        report.pre.completed + report.post.completed
    } else {
        let out = out.unwrap_or_else(|| PathBuf::from("BENCH_serve.json"));
        let report = bomber::run(&cfg).expect("bombing run failed");
        std::fs::write(&out, report.to_json()).expect("write artifact");
        eprintln!(
            "[bomber] {:.0} ops/s over {} conns; p50 {:.0}us p99 {:.0}us p999 {:.0}us; \
             busy rate {:.4}; {} sent / {} completed / {} lost -> {}",
            report.ops_per_sec,
            report.config.connections,
            report.p50_ns / 1e3,
            report.p99_ns / 1e3,
            report.p999_ns / 1e3,
            report.busy_rate,
            report.sent,
            report.completed,
            report.lost,
            out.display()
        );
        report.completed
    };

    if shutdown {
        Client::connect(&cfg.addr)
            .and_then(|mut c| c.shutdown_server())
            .expect("shutdown request");
    }
    assert!(completed > 0, "no requests completed");
}
