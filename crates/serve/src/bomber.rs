//! The open-loop load generator behind `cobtree-bomber`.
//!
//! Open loop means arrivals are *scheduled*, not paced by responses: a
//! Poisson process (exponential inter-arrival gaps at the target rate)
//! decides when each request should have been sent, and latency is
//! measured from that scheduled arrival to completion. A server that
//! falls behind therefore pays for its queueing delay in the reported
//! tail — the coordinated-omission mistake of closed-loop "send, wait,
//! repeat" harnesses is deliberately impossible here.
//!
//! Key popularity is Zipf over a large keyspace of `users` ranks,
//! reusing the exact [`ZipfTable`]/[`ZipfKeys`] generators the
//! `cobtree-analysis` throughput harness replays (a regression test
//! pins the two streams bit-identical for a fixed seed). Rank `r`
//! maps to key `2r` for reads — the server is expected to be seeded
//! with the even keys — and to key `2r + 1` for insert/remove churn,
//! so writes never collide with the read working set.

use crate::client::{Client, RetryPolicy};
use crate::net::{Addr, NetStream};
use cobtree_analysis::json::{finite, percentile, safe_div, JsonObject};
use cobtree_core::protocol::{
    encode_request, FrameDecoder, Opcode, Request, StatsSnapshot, Status, LATENCY_BUCKETS,
};
use cobtree_core::{Error, Result};
use cobtree_search::workload::{ZipfKeys, ZipfTable};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Relative weights of the five request kinds in the blend.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Point lookups.
    pub get: u32,
    /// Inserts of odd (never-read) keys.
    pub insert: u32,
    /// Removes of odd keys.
    pub remove: u32,
    /// Bounded range scans.
    pub range: u32,
    /// Rank queries.
    pub rank: u32,
}

impl Default for OpMix {
    /// The CI blend: read-heavy with a real write fraction.
    fn default() -> Self {
        OpMix {
            get: 80,
            insert: 8,
            remove: 4,
            range: 4,
            rank: 4,
        }
    }
}

/// The op kinds the blend draws from, in fixed order.
const KINDS: [Opcode; 5] = [
    Opcode::Get,
    Opcode::Insert,
    Opcode::Remove,
    Opcode::Range,
    Opcode::Rank,
];

impl OpMix {
    /// Parses `"get,insert,remove,range,rank"` weights, e.g.
    /// `80,8,4,4,4`.
    ///
    /// # Errors
    /// [`Error::Malformed`] unless exactly five non-negative integers
    /// with a positive sum are given.
    pub fn parse(spec: &str) -> Result<Self> {
        let parts: Vec<&str> = spec.split(',').collect();
        let bad = || Error::Malformed {
            detail: format!("op mix '{spec}' is not five comma-separated weights"),
        };
        if parts.len() != 5 {
            return Err(bad());
        }
        let mut w = [0u32; 5];
        for (slot, p) in w.iter_mut().zip(&parts) {
            *slot = p.trim().parse().map_err(|_| bad())?;
        }
        if w.iter().sum::<u32>() == 0 {
            return Err(bad());
        }
        Ok(OpMix {
            get: w[0],
            insert: w[1],
            remove: w[2],
            range: w[3],
            rank: w[4],
        })
    }

    fn total(self) -> u32 {
        self.get + self.insert + self.remove + self.range + self.rank
    }

    /// Draws one kind index (into [`KINDS`]) from the blend.
    fn pick(self, rng: &mut ChaCha8Rng) -> usize {
        let mut t = (rng.random::<f64>() * f64::from(self.total())) as u32;
        t = t.min(self.total() - 1);
        for (i, w) in [self.get, self.insert, self.remove, self.range, self.rank]
            .into_iter()
            .enumerate()
        {
            if t < w {
                return i;
            }
            t -= w;
        }
        0
    }
}

/// Everything `run` needs to aim the bomber.
#[derive(Debug, Clone)]
pub struct BomberConfig {
    /// Server address (`tcp:HOST:PORT` / `unix:PATH`).
    pub addr: String,
    /// Concurrent connections, one thread each.
    pub connections: usize,
    /// Keyspace size: Zipf ranks `1..=users` (max `2^24`).
    pub users: u64,
    /// Zipf skew exponent (0 = uniform popularity).
    pub zipf_s: f64,
    /// Total offered load in ops/s across all connections; 0 means
    /// unpaced (each connection keeps its window full).
    pub target_rate: f64,
    /// Max in-flight requests per connection.
    pub window: usize,
    /// The op blend.
    pub mix: OpMix,
    /// How long to generate load.
    pub duration: Duration,
    /// Span of each range scan in key units.
    pub scan_span: u64,
    /// RNG seed: the whole run is reproducible given the seed.
    pub seed: u64,
    /// Client-side retries per request on the transient statuses
    /// (`BUSY`, `TIMEOUT`, `UNAVAIL`); 0 keeps the old fire-once
    /// behaviour. Retried requests keep their *original* scheduled
    /// arrival, so retry latency lands in the tail where it belongs.
    pub max_retries: u32,
}

impl Default for BomberConfig {
    fn default() -> Self {
        BomberConfig {
            addr: String::new(),
            connections: 4,
            users: 1 << 16,
            zipf_s: 0.99,
            target_rate: 0.0,
            window: 64,
            mix: OpMix::default(),
            duration: Duration::from_secs(2),
            scan_span: 128,
            seed: 42,
            max_retries: 0,
        }
    }
}

/// The bomber's deterministic per-connection key-rank stream —
/// exactly the `cobtree-analysis` generators, re-seeded per
/// connection so streams are independent but reproducible.
#[must_use]
pub fn key_stream(table: &ZipfTable, seed: u64, conn: usize) -> ZipfKeys {
    ZipfKeys::from_table(table, conn_seed(seed, conn))
}

/// The per-connection sub-seed (connection 0 keeps the base seed, so
/// single-stream runs line up with the analysis harness exactly).
#[must_use]
pub fn conn_seed(seed: u64, conn: usize) -> u64 {
    seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Per-kind completion tally.
#[derive(Debug, Clone, Default)]
struct OpTally {
    ok: u64,
    busy: u64,
    timeout: u64,
    unavail: u64,
    other_err: u64,
    /// End-to-end (scheduled arrival → completion) latencies of `Ok`
    /// completions, nanoseconds.
    lats: Vec<u64>,
}

/// One connection thread's results.
#[derive(Debug, Clone, Default)]
struct ConnTally {
    sent: u64,
    completed: u64,
    /// Scheduled arrivals shed client-side because the backlog grew
    /// past any plausible catch-up (the server was saturated).
    shed: u64,
    /// Requests still unanswered when the drain grace expired.
    lost: u64,
    /// Re-sent attempts after a transient refusal.
    retries: u64,
    /// Total backoff delay inserted before re-sends, ns.
    backoff_ns: u64,
    /// Requests abandoned after exhausting the retry budget.
    give_ups: u64,
    per_op: [OpTally; 5],
}

impl ConnTally {
    fn merge(&mut self, other: ConnTally) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.shed += other.shed;
        self.lost += other.lost;
        self.retries += other.retries;
        self.backoff_ns += other.backoff_ns;
        self.give_ups += other.give_ups;
        for (a, b) in self.per_op.iter_mut().zip(other.per_op) {
            a.ok += b.ok;
            a.busy += b.busy;
            a.timeout += b.timeout;
            a.unavail += b.unavail;
            a.other_err += b.other_err;
            a.lats.extend(b.lats);
        }
    }
}

/// One per-op report row: `(label, ok, busy, timeout, unavail,
/// other_err, p50_ns, p99_ns)`.
pub type PerOpRow = (String, u64, u64, u64, u64, u64, f64, f64);

/// The aggregated result of one bombing run.
#[derive(Debug, Clone)]
pub struct BombReport {
    /// The config the run used.
    pub config: BomberConfig,
    /// Wall time actually spent generating + draining, ns.
    pub wall_ns: u64,
    /// Requests sent / completions seen.
    pub sent: u64,
    /// Completions (any status).
    pub completed: u64,
    /// Client-side shed arrivals and drain-expired requests.
    pub shed: u64,
    /// Requests unanswered at drain expiry.
    pub lost: u64,
    /// Re-sent attempts after a transient refusal (`BUSY` / `TIMEOUT`
    /// / `UNAVAIL`).
    pub retries: u64,
    /// Total backoff delay inserted before re-sends, ns.
    pub backoff_ns: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub give_ups: u64,
    /// `UNAVAIL` final completions (quarantined-shard refusals).
    pub unavail: u64,
    /// `Ok` completions per second of wall time.
    pub ops_per_sec: f64,
    /// `BUSY` completions / all completions.
    pub busy_rate: f64,
    /// `TIMEOUT` completions / all completions.
    pub timeout_rate: f64,
    /// End-to-end latency quantiles over `Ok` completions, ns.
    pub p50_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
    /// 99.9th percentile, ns.
    pub p999_ns: f64,
    /// Per-kind rows, one [`PerOpRow`] per op label.
    pub per_op: Vec<PerOpRow>,
    /// Server-side counter delta over the run (STATS scrape before and
    /// after).
    pub server: Option<ServerDelta>,
}

/// Server counters over the run window, from the `STATS` opcode.
#[derive(Debug, Clone, Copy)]
pub struct ServerDelta {
    /// Requests the server decoded during the window.
    pub requests: u64,
    /// Responses it wrote.
    pub responses: u64,
    /// `BUSY` responses.
    pub busy: u64,
    /// `TIMEOUT` responses.
    pub timeouts: u64,
    /// `UNAVAIL` responses (keys routed to quarantined shards).
    pub unavail: u64,
    /// Malformed-body refusals.
    pub bad_requests: u64,
    /// Desync-level failures that closed connections.
    pub frame_errors: u64,
    /// Cross-worker lookup handoffs.
    pub handoffs: u64,
    /// Completed background scrub passes over the run window.
    pub scrub_passes: u64,
    /// Quarantined shards at the *end* of the window (a gauge).
    pub quarantined_shards: u64,
    /// Shards healed (rebuilt past quarantine) over the window.
    pub heals: u64,
    /// Server-side service-time quantiles (decode → reply encode), ns.
    pub p50_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
    /// 99.9th percentile, ns.
    pub p999_ns: f64,
}

impl ServerDelta {
    fn from_snapshots(before: &StatsSnapshot, after: &StatsSnapshot) -> Self {
        let mut delta = StatsSnapshot {
            requests: after.requests - before.requests,
            responses: after.responses - before.responses,
            busy: after.busy - before.busy,
            timeouts: after.timeouts - before.timeouts,
            unavail: after.unavail - before.unavail,
            bad_requests: after.bad_requests - before.bad_requests,
            frame_errors: after.frame_errors - before.frame_errors,
            handoffs: after.handoffs - before.handoffs,
            scrub_passes: after.scrub_passes.saturating_sub(before.scrub_passes),
            quarantined_shards: after.quarantined_shards,
            heals: after.heals.saturating_sub(before.heals),
            ..StatsSnapshot::default()
        };
        for i in 0..LATENCY_BUCKETS {
            delta.latency_buckets[i] = after.latency_buckets[i] - before.latency_buckets[i];
        }
        ServerDelta {
            requests: delta.requests,
            responses: delta.responses,
            busy: delta.busy,
            timeouts: delta.timeouts,
            unavail: delta.unavail,
            bad_requests: delta.bad_requests,
            frame_errors: delta.frame_errors,
            handoffs: delta.handoffs,
            scrub_passes: delta.scrub_passes,
            quarantined_shards: delta.quarantined_shards,
            heals: delta.heals,
            p50_ns: delta.latency_quantile_ns(0.50),
            p99_ns: delta.latency_quantile_ns(0.99),
            p999_ns: delta.latency_quantile_ns(0.999),
        }
    }
}

impl BombReport {
    /// Renders the `BENCH_serve.json` artifact (one top-level field per
    /// line, greppable by the CI gates).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_object().render()
    }

    /// The artifact as a composable object — the adaptive report nests
    /// one per phase.
    #[must_use]
    pub fn to_json_object(&self) -> JsonObject {
        let mix = &self.config.mix;
        let mut obj = JsonObject::new()
            .with("bench", "serve")
            .with("schema_version", 1u64)
            .with(
                "config",
                JsonObject::new()
                    .with("addr", self.config.addr.as_str())
                    .with("connections", self.config.connections)
                    .with("users", self.config.users)
                    .with("zipf_s", self.config.zipf_s)
                    .with("target_rate", self.config.target_rate)
                    .with("window", self.config.window)
                    .with(
                        "mix",
                        format!(
                            "{},{},{},{},{}",
                            mix.get, mix.insert, mix.remove, mix.range, mix.rank
                        ),
                    )
                    .with("duration_ms", self.config.duration.as_millis() as u64)
                    .with("scan_span", self.config.scan_span)
                    .with("seed", self.config.seed)
                    .with("max_retries", u64::from(self.config.max_retries)),
            )
            .with("wall_ns", self.wall_ns)
            .with("sent", self.sent)
            .with("completed", self.completed)
            .with("shed", self.shed)
            .with("lost", self.lost)
            .with("retries", self.retries)
            .with("backoff_ns", self.backoff_ns)
            .with("give_ups", self.give_ups)
            .with("unavail", self.unavail)
            .with("ops_per_sec", self.ops_per_sec)
            .with("busy_rate", self.busy_rate)
            .with("timeout_rate", self.timeout_rate)
            .with("p50_ns", self.p50_ns)
            .with("p99_ns", self.p99_ns)
            .with("p999_ns", self.p999_ns);
        let per_op: Vec<JsonObject> = self
            .per_op
            .iter()
            .map(|(label, ok, busy, timeout, unavail, other, p50, p99)| {
                JsonObject::new()
                    .with("op", label.as_str())
                    .with("ok", *ok)
                    .with("busy", *busy)
                    .with("timeout", *timeout)
                    .with("unavail", *unavail)
                    .with("other_err", *other)
                    .with("p50_ns", *p50)
                    .with("p99_ns", *p99)
            })
            .collect();
        obj.field("per_op", per_op);
        if let Some(s) = &self.server {
            obj.field(
                "server",
                JsonObject::new()
                    .with("requests", s.requests)
                    .with("responses", s.responses)
                    .with("busy", s.busy)
                    .with("timeouts", s.timeouts)
                    .with("unavail", s.unavail)
                    .with("bad_requests", s.bad_requests)
                    .with("frame_errors", s.frame_errors)
                    .with("handoffs", s.handoffs)
                    .with("scrub_passes", s.scrub_passes)
                    .with("quarantined_shards", s.quarantined_shards)
                    .with("heals", s.heals)
                    .with("p50_ns", s.p50_ns)
                    .with("p99_ns", s.p99_ns)
                    .with("p999_ns", s.p999_ns),
            );
        }
        obj
    }
}

/// The result of a two-phase adaptive bombing run: identical load
/// before and after one `Reopt` pass, plus what the pass did.
#[derive(Debug, Clone)]
pub struct AdaptiveBombReport {
    /// The run against the layouts the server booted with.
    pub pre: BombReport,
    /// The run against the re-optimized (hot-swapped) layouts.
    pub post: BombReport,
    /// Shards the planner examined.
    pub scanned: u32,
    /// Shards it re-optimized and swapped.
    pub swapped: u32,
    /// Accesses the traffic sampler had recorded by the end of the
    /// run (from the final stats scrape).
    pub sampled_reads: u64,
}

impl AdaptiveBombReport {
    /// Renders the `BENCH_adaptive.json` artifact. The headline
    /// pre/post numbers are top-level one-line fields so the CI gates
    /// can grep them; the full per-phase reports are nested.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .with("bench", "adaptive")
            .with("schema_version", 1u64)
            .with("scanned", u64::from(self.scanned))
            .with("swapped", u64::from(self.swapped))
            .with("sampled_reads", self.sampled_reads)
            .with("ops_per_sec_pre", self.pre.ops_per_sec)
            .with("ops_per_sec_post", self.post.ops_per_sec)
            .with("p50_pre_ns", self.pre.p50_ns)
            .with("p50_post_ns", self.post.p50_ns)
            .with("p99_pre_ns", self.pre.p99_ns)
            .with("p99_post_ns", self.post.p99_ns)
            .with("pre", self.pre.to_json_object())
            .with("post", self.post.to_json_object())
            .render()
    }
}

/// Runs the full adaptive loop against a live server: one bombing run
/// to feed the traffic sampler, one `Reopt` pass, and a second,
/// identically-configured run against the swapped layouts.
///
/// # Errors
/// Everything [`run`] raises, plus the `Reopt` refusal of a
/// non-adaptive engine and stats-scrape protocol failures.
pub fn run_adaptive(cfg: &BomberConfig) -> Result<AdaptiveBombReport> {
    let pre = run(cfg)?;
    let (scanned, swapped) = Client::connect(&cfg.addr)?.reopt()?;
    let post = run(cfg)?;
    let sampled_reads = Client::connect(&cfg.addr)?.stats()?.sampled_reads;
    Ok(AdaptiveBombReport {
        pre,
        post,
        scanned,
        swapped,
        sampled_reads,
    })
}

/// Retries `Ping` until the server answers or `timeout` expires — the
/// CI boot handshake.
///
/// # Errors
/// The last connect/ping failure when the deadline passes.
pub fn await_ready(addr: &str, timeout: Duration) -> Result<()> {
    let deadline = Instant::now() + timeout;
    loop {
        match Client::connect_timeout(addr, Duration::from_millis(500)).and_then(|mut c| c.ping()) {
            Ok(()) => return Ok(()),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs the full bombing run: spawns one thread per connection,
/// scrapes server stats before and after, aggregates.
///
/// # Errors
/// Connect failures and stats-scrape protocol failures. Individual
/// request failures are tallied, not raised.
pub fn run(cfg: &BomberConfig) -> Result<BombReport> {
    let table = ZipfTable::new(cfg.users, cfg.zipf_s);
    let before = Client::connect(&cfg.addr)?.stats().ok();

    let started = Instant::now();
    let stop = started + cfg.duration;
    let mut threads = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let cfg = cfg.clone();
        let table = table.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("bomber-{conn}"))
                .spawn(move || run_conn(&cfg, &table, conn, stop))
                .expect("spawn bomber thread"),
        );
    }
    let mut total = ConnTally::default();
    let mut first_err: Option<Error> = None;
    for t in threads {
        match t.join().expect("bomber thread panicked") {
            Ok(tally) => total.merge(tally),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if total.completed == 0 {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let after = Client::connect(&cfg.addr).and_then(|mut c| c.stats()).ok();

    let mut all_lats: Vec<u64> = Vec::new();
    let mut per_op = Vec::new();
    let mut ok_total = 0u64;
    let mut busy_total = 0u64;
    let mut timeout_total = 0u64;
    let mut unavail_total = 0u64;
    for (kind, tally) in KINDS.iter().zip(&mut total.per_op) {
        tally.lats.sort_unstable();
        ok_total += tally.ok;
        busy_total += tally.busy;
        timeout_total += tally.timeout;
        unavail_total += tally.unavail;
        per_op.push((
            kind.label().to_string(),
            tally.ok,
            tally.busy,
            tally.timeout,
            tally.unavail,
            tally.other_err,
            percentile(&tally.lats, 0.50),
            percentile(&tally.lats, 0.99),
        ));
        all_lats.extend(&tally.lats);
    }
    all_lats.sort_unstable();
    let server = match (before, after) {
        (Some(b), Some(a)) => Some(ServerDelta::from_snapshots(&b, &a)),
        _ => None,
    };
    Ok(BombReport {
        config: cfg.clone(),
        wall_ns,
        sent: total.sent,
        completed: total.completed,
        shed: total.shed,
        lost: total.lost,
        retries: total.retries,
        backoff_ns: total.backoff_ns,
        give_ups: total.give_ups,
        unavail: unavail_total,
        ops_per_sec: finite(ok_total as f64 * 1e9 / wall_ns as f64),
        busy_rate: safe_div(busy_total as f64, total.completed as f64),
        timeout_rate: safe_div(timeout_total as f64, total.completed as f64),
        p50_ns: percentile(&all_lats, 0.50),
        p99_ns: percentile(&all_lats, 0.99),
        p999_ns: percentile(&all_lats, 0.999),
        per_op,
        server,
    })
}

/// Backlog length past which scheduled-but-unsent arrivals are shed:
/// the server has fallen hopelessly behind the offered rate and
/// unbounded client-side queues would only measure the client's RAM.
const MAX_BACKLOG: usize = 65_536;

/// How long after the load window the connection waits for stragglers.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One unanswered request: everything needed to book its completion —
/// or to re-send it verbatim after a transient refusal. Latency is
/// always measured from `sched`, the *original* Poisson arrival, so a
/// retried request's backoff shows up in the reported tail.
struct InFlight {
    sched: Instant,
    kind: usize,
    attempt: u32,
    req: Request,
}

/// One connection's open-loop send/receive loop.
#[allow(clippy::too_many_lines)]
fn run_conn(
    cfg: &BomberConfig,
    table: &ZipfTable,
    conn: usize,
    stop: Instant,
) -> Result<ConnTally> {
    let addr = Addr::parse(&cfg.addr)?;
    let stream = NetStream::connect(&addr)?;
    stream.set_nodelay();
    stream.set_nonblocking(true)?;
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut zipf = key_stream(table, cfg.seed, conn);
    let mut rng = ChaCha8Rng::seed_from_u64(conn_seed(cfg.seed, conn) ^ 0xB0B);
    let per_conn_rate = cfg.target_rate / cfg.connections.max(1) as f64;

    let retry_policy = RetryPolicy {
        max_retries: cfg.max_retries,
        ..RetryPolicy::default()
    };
    let mut retry_rng = conn_seed(cfg.seed, conn) ^ 0x5EED;

    let mut tally = ConnTally::default();
    let mut pending: HashMap<u32, InFlight> = HashMap::new();
    let mut due: VecDeque<Instant> = VecDeque::new();
    // Refused requests waiting out their backoff before a re-send,
    // with the instant they become sendable again.
    let mut retries_due: VecDeque<(Instant, InFlight)> = VecDeque::new();
    let mut next_arrival = Instant::now();
    let mut next_req: u32 = 1;
    let mut outbuf: Vec<u8> = Vec::new();
    let mut written = 0usize;
    let mut scratch = [0u8; 16 * 1024];
    let hard_stop = stop + DRAIN_GRACE;

    loop {
        let now = Instant::now();
        if now >= hard_stop {
            tally.lost += pending.len() as u64;
            tally.give_ups += retries_due.len() as u64;
            break;
        }
        if now >= stop && pending.is_empty() && retries_due.is_empty() && written == outbuf.len() {
            break;
        }
        let mut progressed = false;

        // Schedule arrivals (open loop: timestamps come from the
        // Poisson process, not from responses).
        if now < stop {
            if per_conn_rate > 0.0 {
                while next_arrival <= now {
                    due.push_back(next_arrival);
                    let gap = -rng.random::<f64>().max(1e-12).ln() / per_conn_rate;
                    next_arrival += Duration::from_secs_f64(gap.min(1.0));
                    if due.len() > MAX_BACKLOG {
                        due.pop_front();
                        tally.shed += 1;
                    }
                }
            } else {
                while due.len() + pending.len() < cfg.window {
                    due.push_back(now);
                }
            }
        } else {
            tally.shed += due.len() as u64;
            due.clear();
        }

        // Re-send refused requests whose backoff has elapsed. Retries
        // outrank fresh arrivals for window slots: the request already
        // holds a latency debt measured from its original schedule.
        while pending.len() < cfg.window {
            match retries_due.front() {
                Some((ready, _)) if *ready <= now => {}
                _ => break,
            }
            let (_, inflight) = retries_due.pop_front().expect("checked front");
            let req_id = next_req;
            next_req = next_req.wrapping_add(1).max(1);
            encode_request(req_id, &inflight.req, &mut outbuf);
            pending.insert(req_id, inflight);
            tally.sent += 1;
            progressed = true;
        }

        // Send while the window allows.
        while pending.len() < cfg.window {
            let Some(sched) = due.pop_front() else { break };
            let rank = zipf.next().expect("zipf stream is infinite");
            let kind = cfg.mix.pick(&mut rng);
            let req = match KINDS[kind] {
                Opcode::Insert => Request::Insert { key: rank * 2 + 1 },
                Opcode::Remove => Request::Remove { key: rank * 2 + 1 },
                Opcode::Range => Request::Range {
                    lo: rank * 2,
                    hi: (rank * 2).saturating_add(cfg.scan_span),
                    limit: 64,
                },
                Opcode::Rank => Request::Rank { key: rank * 2 },
                _ => Request::Get { key: rank * 2 },
            };
            let req_id = next_req;
            next_req = next_req.wrapping_add(1).max(1);
            encode_request(req_id, &req, &mut outbuf);
            pending.insert(
                req_id,
                InFlight {
                    sched,
                    kind,
                    attempt: 0,
                    req,
                },
            );
            tally.sent += 1;
            progressed = true;
        }

        // Flush the send buffer.
        while written < outbuf.len() {
            match stream.write(&outbuf[written..]) {
                Ok(0) => return Err(Error::Truncated { needed: 1, got: 0 }),
                Ok(n) => {
                    written += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io(&e)),
            }
        }
        if written == outbuf.len() {
            outbuf.clear();
            written = 0;
        }

        // Reap completions.
        loop {
            match stream.read(&mut scratch) {
                Ok(0) => {
                    tally.lost += pending.len() as u64;
                    tally.give_ups += retries_due.len() as u64;
                    return Ok(tally);
                }
                Ok(n) => {
                    decoder.feed(&scratch[..n]);
                    progressed = true;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io(&e)),
            }
        }
        while let Some(body) = decoder.next_frame()? {
            let resp = cobtree_core::protocol::decode_response(&body)?;
            let Some(mut inflight) = pending.remove(&resp.req_id) else {
                continue;
            };
            // Transient refusal with retry budget left: back off and
            // re-send rather than booking a final outcome. Past the
            // hard stop minus one backoff there is no point queueing.
            if RetryPolicy::retryable(resp.status) && inflight.attempt < cfg.max_retries {
                let backoff = retry_policy.backoff(inflight.attempt, &mut retry_rng);
                let ready = Instant::now() + backoff;
                if ready < hard_stop {
                    tally.retries += 1;
                    tally.backoff_ns += u64::try_from(backoff.as_nanos()).unwrap_or(u64::MAX);
                    inflight.attempt += 1;
                    retries_due.push_back((ready, inflight));
                    progressed = true;
                    continue;
                }
            }
            tally.completed += 1;
            if RetryPolicy::retryable(resp.status) && cfg.max_retries > 0 {
                tally.give_ups += 1;
            }
            let op = &mut tally.per_op[inflight.kind];
            match resp.status {
                Status::Ok => {
                    op.ok += 1;
                    let ns = u64::try_from(inflight.sched.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    op.lats.push(ns);
                }
                Status::Busy => op.busy += 1,
                Status::Timeout => op.timeout += 1,
                Status::Unavail => op.unavail += 1,
                _ => op.other_err += 1,
            }
        }

        if !progressed {
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parse_and_pick() {
        let mix = OpMix::parse("80,8,4,4,4").unwrap();
        assert_eq!(mix.get, 80);
        assert_eq!(mix.rank, 4);
        assert!(OpMix::parse("1,2,3").is_err());
        assert!(OpMix::parse("0,0,0,0,0").is_err());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[mix.pick(&mut rng)] += 1;
        }
        assert!(counts[0] > 7_000, "get weight dominates: {counts:?}");
        assert!(
            counts.iter().all(|&c| c > 0),
            "every kind drawn: {counts:?}"
        );
    }

    /// Satellite regression: the bomber's key stream IS the analysis
    /// harness's generator — same table, same seed, same keys.
    #[test]
    fn key_stream_matches_analysis_generator() {
        let table = ZipfTable::new(10_000, 0.99);
        let ours: Vec<u64> = key_stream(&table, 42, 0).take(512).collect();
        let harness: Vec<u64> = ZipfKeys::from_table(&table, 42).take(512).collect();
        assert_eq!(ours, harness);
        // Distinct connections draw distinct (but reproducible) streams.
        let conn1: Vec<u64> = key_stream(&table, 42, 1).take(512).collect();
        let conn1b: Vec<u64> = key_stream(&table, 42, 1).take(512).collect();
        assert_eq!(conn1, conn1b);
        assert_ne!(ours, conn1);
    }

    #[test]
    fn report_json_is_gateable() {
        let report = BombReport {
            config: BomberConfig {
                addr: "tcp:127.0.0.1:1".to_string(),
                ..BomberConfig::default()
            },
            wall_ns: 2_000_000_000,
            sent: 1000,
            completed: 990,
            shed: 0,
            lost: 10,
            retries: 7,
            backoff_ns: 14_000_000,
            give_ups: 2,
            unavail: 3,
            ops_per_sec: 495.0,
            busy_rate: 0.001,
            timeout_rate: 0.0,
            p50_ns: 1_000.0,
            p99_ns: 9_000.0,
            p999_ns: 20_000.0,
            per_op: vec![("get".to_string(), 900, 1, 0, 3, 0, 1_000.0, 9_000.0)],
            server: Some(ServerDelta {
                requests: 1000,
                responses: 990,
                busy: 1,
                timeouts: 0,
                unavail: 3,
                bad_requests: 0,
                frame_errors: 0,
                handoffs: 500,
                scrub_passes: 6,
                quarantined_shards: 1,
                heals: 1,
                p50_ns: 800.0,
                p99_ns: 7_000.0,
                p999_ns: 15_000.0,
            }),
        };
        let json = report.to_json();
        cobtree_analysis::json::assert_jsonish(&json);
        // The CI gates grep these exact one-line shapes.
        assert!(json.contains("\"busy_rate\": 0.001"), "{json}");
        assert!(json.contains("\"ops_per_sec\": 495.000"), "{json}");
        for field in [
            "\"retries\": 7",
            "\"give_ups\": 2",
            "\"unavail\": 3",
            "\"scrub_passes\": 6",
            "\"quarantined_shards\": 1",
            "\"heals\": 1",
        ] {
            assert!(json.contains(field), "{field} missing:\n{json}");
        }
        assert!(
            json.lines()
                .any(|l| l.trim_start().starts_with("\"p99_ns\":")),
            "{json}"
        );

        // The adaptive wrapper keeps its own headline fields greppable
        // at top level.
        let adaptive = AdaptiveBombReport {
            pre: report.clone(),
            post: report,
            scanned: 4,
            swapped: 2,
            sampled_reads: 12345,
        };
        let json = adaptive.to_json();
        cobtree_analysis::json::assert_jsonish(&json);
        for field in [
            "\"swapped\": 2",
            "\"scanned\": 4",
            "\"sampled_reads\": 12345",
        ] {
            assert!(json.contains(field), "{field} missing:\n{json}");
        }
        for line in [
            "\"p99_pre_ns\":",
            "\"p99_post_ns\":",
            "\"bench\": \"adaptive\"",
        ] {
            assert!(
                json.lines().any(|l| l.trim_start().starts_with(line)),
                "{line} not a one-line field:\n{json}"
            );
        }
    }
}
