//! Heap-resident fat-node ("wide node") search trees.
//!
//! A [`FatHeapTree`] stores a complete BST in the B-ary chunked order of
//! a [`cobtree_core::fat::FatLayout`]: each *chunk* packs a
//! `span`-level binary subtree into `2^span` contiguous slots (local
//! in-order, so the chunk's keys are ascending), and chunks are
//! arranged by the layout's chunk order (BFS / DFS / vEB over the fat
//! tree). Descent consumes one whole chunk per fat level — a rank-of-key
//! over the chunk picks the exit among its `2^span` children, replacing
//! `span` dependent binary branches with one wide compare
//! ([`kernel::FatPlane`]).
//!
//! This backend mirrors [`crate::implicit::ImplicitTree`]'s discipline:
//! the key array is the full `2^h − 1`-key complete tree (the facade
//! pads short key sets with explicit suprema before building), so
//! `key_count` counts stored slots and every in-order rank resolves.
//! The mapped twin ([`crate::mapped::MappedTree`]) instead serves the
//! raw `.cobt` bytes and masks padding by real-key count — both produce
//! identical ranks per chunk, hence identical results and traces.

use crate::backend::SearchBackend;
use crate::kernel::{self, FatPlane};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::fat::FatIndex;
use cobtree_core::index::PositionIndex;
use cobtree_core::Tree;

/// A complete BST arranged in fat-node chunk order, searched by
/// rank-of-key descent. Slots that hold no node (each chunk's tail
/// padding, plus the partial top chunk's unused slots) are filled with
/// a copy of the smallest key and never compared.
///
/// ```
/// use cobtree_search::fat::FatHeapTree;
/// use cobtree_search::SearchBackend;
/// use cobtree_core::fat::{FatIndex, FatLayout, FatOrder};
///
/// let layout = FatLayout::new(FatOrder::Veb, 16)?;
/// let keys: Vec<u64> = (1..=127).map(|k| k * 10).collect();
/// let tree = FatHeapTree::try_build(FatIndex::try_new(layout, 7)?, &keys)?;
/// let pos = tree.search(640).expect("stored key");
/// assert_eq!(tree.slots()[pos as usize], 640);
/// assert_eq!(tree.key_count(), 127);
/// # Ok::<(), cobtree_core::Error>(())
/// ```
pub struct FatHeapTree<K> {
    tree: Tree,
    index: FatIndex,
    slots: Vec<K>,
}

/// The fat kernels' view of a [`FatHeapTree`]: typed slots, every chunk
/// fully live up to its span (suprema included — they compare greater
/// than every real key, so they behave exactly like the mapped plane's
/// excluded padding).
struct FatSlotPlane<'a, K> {
    index: &'a FatIndex,
    slots: &'a [K],
}

impl<K: Copy + Ord> FatPlane for FatSlotPlane<'_, K> {
    type Key = K;

    #[inline]
    fn fat_index(&self) -> &FatIndex {
        self.index
    }

    #[inline]
    fn live_count(&self, fat_depth: u32, _t: u64) -> u32 {
        (1u32 << self.index.span_of(fat_depth)) - 1
    }

    #[inline]
    fn rank_in_chunk(&self, base: u64, live: u32, probe: K, upper: bool) -> (u32, Option<u32>) {
        let chunk = &self.slots[base as usize..base as usize + live as usize];
        let mut count = 0u32;
        let mut eq = None;
        for (j, &k) in chunk.iter().enumerate() {
            if k < probe || (upper && k == probe) {
                count += 1;
            }
            if k == probe {
                eq = Some(j as u32);
            }
        }
        (count, eq)
    }

    #[inline]
    fn prefetch_chunk(&self, base: u64) {
        if (base as usize) < self.slots.len() {
            kernel::prefetch_read(&self.slots[base as usize]);
        }
    }
}

impl<K: Ord + Copy> FatHeapTree<K> {
    /// Arranges `keys` (sorted, exactly `2^h − 1` of them) into chunk
    /// order.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build(index: FatIndex, keys: &[K]) -> Result<Self> {
        let tree = Tree::try_new(index.height())?;
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        let mut slots = vec![keys[0]; index.slot_capacity() as usize];
        for i in tree.nodes() {
            let p = index.position(i, tree.depth(i)) as usize;
            slots[p] = keys[(tree.in_order_rank(i) - 1) as usize];
        }
        Ok(Self { tree, index, slots })
    }

    /// Builds the tree, panicking where [`FatHeapTree::try_build`]
    /// errors — convenience for tests.
    ///
    /// # Panics
    /// See [`FatHeapTree::try_build`].
    #[must_use]
    pub fn build(index: FatIndex, keys: &[K]) -> Self {
        match Self::try_build(index, keys) {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    #[inline]
    fn plane(&self) -> FatSlotPlane<'_, K> {
        FatSlotPlane {
            index: &self.index,
            slots: &self.slots,
        }
    }

    /// The layout's position arithmetic.
    #[must_use]
    pub fn index(&self) -> &FatIndex {
        &self.index
    }

    /// The slot array in chunk order (`slot_capacity` entries, holes
    /// filled with the smallest key).
    #[must_use]
    pub fn slots(&self) -> &[K] {
        &self.slots
    }

    /// Searches for `key` on the fat descent kernel: one rank-of-key
    /// per fat level. Returns the slot position of the match.
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        kernel::fat_search(&self.plane(), key)
    }

    /// The binary oracle: a plain three-way descent over
    /// [`FatIndex::position`], one node at a time. The fat kernel must
    /// be bit-identical to this.
    #[inline]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            let k = self.slots[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Binary descent that records accesses at **chunk granularity**:
    /// whenever the path enters a new chunk, all of that chunk's slots
    /// are pushed (a rank-of-key loads the whole chunk, so cache replay
    /// must charge the whole chunk). Bit-identical in both result and
    /// trace to [`kernel::fat_search_traced`].
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let h = self.tree.height();
        let stride = self.index.stride();
        let mut i = 1u64;
        let mut d = 0u32;
        let mut last_chunk = u64::MAX;
        loop {
            let p = self.index.position(i, d);
            let chunk = p / stride;
            if chunk != last_chunk {
                let base = chunk * stride;
                for off in 0..stride {
                    visited.push(base + off);
                }
                last_chunk = chunk;
            }
            let k = self.slots[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Searches an arbitrary-order probe batch on the interleaved fat
    /// kernel — up to `width` rank-of-key descents in flight.
    pub fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        kernel::fat_search_batch_interleaved(&self.plane(), keys, width, out);
    }

    /// Benchmark kernel: wrapping sum of found positions.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        kernel::fat_batch_checksum(&self.plane(), keys, kernel::DEFAULT_LANES)
    }
}

impl<K> std::fmt::Debug for FatHeapTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FatHeapTree")
            .field("height", &self.tree.height())
            .field("arity", &self.index.layout().arity())
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl<K: Ord + Copy> SearchBackend<K> for FatHeapTree<K> {
    fn height(&self) -> u32 {
        self.tree.height()
    }

    fn key_count(&self) -> u64 {
        self.tree.len()
    }

    fn search(&self, key: K) -> Option<u64> {
        FatHeapTree::search(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        FatHeapTree::search_traced(self, key, visited)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        let p = SearchBackend::position_of_rank(self, rank)?;
        Some(self.slots[p as usize])
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        (rank >= 1 && rank <= self.tree.len()).then(|| {
            let node = self.tree.node_at_in_order(rank);
            self.index.position(node, self.tree.depth(node))
        })
    }

    // Kernel-backed overrides, all bit-identical to the generic binary
    // defaults (the per-chunk exit gap equals the number of binary
    // turns through the chunk).

    fn search_reference(&self, key: K) -> Option<u64> {
        FatHeapTree::search_reference(self, key)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        kernel::fat_search_traced(&self.plane(), key, visited)
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        FatHeapTree::search_batch_interleaved(self, keys, width, out);
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        FatHeapTree::search_batch_checksum(self, keys)
    }

    fn lower_bound_rank(&self, key: K) -> u64 {
        kernel::fat_bound_rank::<_, false>(&self.plane(), key)
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        kernel::fat_bound_rank::<_, true>(&self.plane(), key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::fat::{FatLayout, FatOrder};

    fn tree_for(order: FatOrder, arity: u32, h: u32) -> FatHeapTree<u64> {
        let layout = FatLayout::new(order, arity).unwrap();
        let index = FatIndex::try_new(layout, h).unwrap();
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 3).collect();
        FatHeapTree::build(index, &keys)
    }

    #[test]
    fn fat_kernel_matches_binary_oracle_every_layout() {
        for layout in FatLayout::ALL {
            for h in [1, 2, 3, 5, 8] {
                let index = FatIndex::try_new(layout, h).unwrap();
                let n = (1u64 << h) - 1;
                let keys: Vec<u64> = (1..=n).map(|k| k * 3).collect();
                let t = FatHeapTree::build(index, &keys);
                for probe in 0..=(n * 3 + 2) {
                    assert_eq!(
                        t.search(probe),
                        t.search_reference(probe),
                        "{layout} h={h} probe {probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn fat_traces_agree_between_kernel_and_slow_path() {
        for layout in FatLayout::ALL {
            let index = FatIndex::try_new(layout, 7).unwrap();
            let keys: Vec<u64> = (1..=127).map(|k| k * 2 + 1).collect();
            let t = FatHeapTree::build(index, &keys);
            for probe in [0u64, 3, 7, 100, 254, 255, 256] {
                let mut slow = Vec::new();
                let mut fast = Vec::new();
                let rs = t.search_traced(probe, &mut slow);
                let rf = SearchBackend::search_traced_kernel(&t, probe, &mut fast);
                assert_eq!(rs, rf, "{layout} probe {probe}");
                assert_eq!(slow, fast, "{layout} probe {probe}");
            }
        }
    }

    #[test]
    fn fat_bounds_match_sorted_array() {
        for arity in [2u32, 4, 8, 16, 64] {
            let t = tree_for(FatOrder::Veb, arity, 6);
            let sorted: Vec<u64> = (1..=63).map(|k| k * 3).collect();
            for probe in 0..=200u64 {
                let lb = sorted.partition_point(|&k| k < probe) as u64 + 1;
                let ub = sorted.partition_point(|&k| k <= probe) as u64 + 1;
                assert_eq!(
                    SearchBackend::lower_bound_rank(&t, probe),
                    lb,
                    "B={arity} lb({probe})"
                );
                assert_eq!(
                    SearchBackend::upper_bound_rank(&t, probe),
                    ub,
                    "B={arity} ub({probe})"
                );
            }
        }
    }

    #[test]
    fn interleaved_batch_matches_serial_for_all_widths() {
        let t = tree_for(FatOrder::Dfs, 16, 8);
        let probes: Vec<u64> = (0..600u64)
            .map(|i| i.wrapping_mul(2_654_435_761) % 800)
            .collect();
        let serial: Vec<Option<u64>> = probes.iter().map(|&p| t.search(p)).collect();
        let mut out = Vec::new();
        for width in [1usize, 3, 8, 16] {
            t.search_batch_interleaved(&probes, width, &mut out);
            assert_eq!(out, serial, "width {width}");
        }
        let sum: u64 = serial
            .iter()
            .flatten()
            .fold(0u64, |a, &p| a.wrapping_add(p));
        assert_eq!(t.search_batch_checksum(&probes), sum);
    }

    #[test]
    fn rank_select_round_trips() {
        let t = tree_for(FatOrder::Bfs, 8, 6);
        for rank in 1..=63u64 {
            let k = SearchBackend::key_at_rank(&t, rank).unwrap();
            assert_eq!(k, rank * 3);
            let p = SearchBackend::position_of_rank(&t, rank).unwrap();
            assert_eq!(t.slots()[p as usize], k);
        }
        assert_eq!(SearchBackend::key_at_rank(&t, 0), None);
        assert_eq!(SearchBackend::key_at_rank(&t, 64), None);
    }
}
