//! Compiled descent kernels: branch-free search loops over
//! [`StepPlan`]s, with software prefetch and an interleaved multi-query
//! variant.
//!
//! The slow descent paths (`search` loops written per backend in PR 1)
//! pay, per level, one virtual `dyn PositionIndex::position` call plus a
//! data-dependent three-way branch. The paper's layouts make per-depth
//! position arithmetic statically predictable, which is exactly what a
//! compiled kernel exploits (cf. Barratt & Zhang, *Cache-Friendly
//! Search Trees*, 2019). This module provides the shared kernels; the
//! backends dispatch into them:
//!
//! * **Devirtualized positions** — [`PosRef`] resolves positions from a
//!   compiled [`StepPlan`] (closed-form coefficients or a flat table),
//!   from a raw little-endian `u32` region of a mapped file, or — for
//!   the layouts that do not compile — from the original indexer.
//! * **Branch-free descent** — the three-way compare is replaced by
//!   `i = 2i + (probe > key)`, with the `Equal` case hoisted out of the
//!   loop entirely: the kernel tracks the most recent slot whose key
//!   was `>= probe` (a conditional move, not a branch) and performs a
//!   single equality check after the loop. Results are **bit-identical**
//!   to the slow paths, which remain in the backends as the oracle
//!   (`search_reference`).
//! * **Chained key locators + software prefetch** — each level's key
//!   *locator* (the storage coordinate of the key load — layout
//!   position for layout-ordered storage, in-order rank for the
//!   index-only backend) is computed once, prefetched, and reused for
//!   the load at the next level, so no position is ever computed twice.
//!   When positions are cheap ([`StepPlan::prefetch_is_cheap`]) the
//!   scalar kernel additionally speculates **both candidate children**
//!   one level ahead, so the next load is in flight while the current
//!   compare resolves.
//! * **Interleaved multi-query search** — [`fold_interleaved`] keeps up
//!   to [`MAX_LANES`] independent lookups in flight, stepping them
//!   round-robin one level at a time. The lanes' key loads are
//!   independent, so the memory system overlaps their misses
//!   (memory-level parallelism); each lane prefetches its *exact* next
//!   slot as soon as its branch-free step resolves it — which costs no
//!   extra position arithmetic at all, so it is on for every plan.
//!
//! Three key-storage disciplines are covered by [`DescentPlane`]
//! implementations: layout-ordered key arrays ([`ArrayPlane`], the
//! implicit backend), rank-ordered key arrays ([`RankPlane`], the
//! index-only backend) and raw mapped file bytes ([`MappedPlane`]).
//! The explicit (pointer-based) backend has no position computation to
//! devirtualize; it gets dedicated pointer kernels
//! ([`explicit_search`], [`explicit_fold_interleaved`]) that apply the
//! same branch-free + prefetch + interleaving treatment to child-pointer
//! chasing.

use crate::explicit::Node;
use cobtree_core::fat::FatIndex;
use cobtree_core::format::FixedKey;
use cobtree_core::index::{PositionIndex, StepPlan};

/// Maximum interleave width (lanes held in flight by the batch kernel).
pub const MAX_LANES: usize = 16;

/// Default interleave width used by the `search_batch_checksum` /
/// `search_batch_interleaved` entry points when callers do not pick one.
/// Eight lanes saturate the load buffers of common cores without
/// spilling the lane state out of registers.
pub const DEFAULT_LANES: usize = 8;

/// Locator sentinel meaning "no candidate recorded yet" (locators are
/// array indices or ranks, far below `u64::MAX`).
const NO_CAND: u64 = u64::MAX;

/// Issues a read prefetch for `ptr` where the target supports it (a
/// no-op elsewhere — the kernels stay portable).
#[inline(always)]
pub(crate) fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it never faults, and callers
    // only pass addresses derived from live allocations.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

// ---------------------------------------------------------------------------
// Position sources
// ---------------------------------------------------------------------------

/// Where a kernel reads layout positions from. One enum dispatch per
/// position — a perfectly predicted branch, in place of the slow path's
/// virtual call (kept as [`PosRef::Index`] for the layouts that do not
/// compile).
pub enum PosRef<'a> {
    /// A compiled per-layout plan.
    Plan(&'a StepPlan),
    /// Little-endian `u32` position table bytes, indexed by `node − 1`
    /// — the mapped backend's index region, read in place.
    Raw32(&'a [u8]),
    /// Uncompiled fallback: the original virtual indexer.
    Index(&'a dyn PositionIndex),
}

impl PosRef<'_> {
    /// Layout position of `node` at `depth`.
    #[inline]
    #[must_use]
    pub fn at(&self, node: u64, depth: u32) -> u64 {
        match self {
            PosRef::Plan(p) => p.position(node, depth),
            PosRef::Raw32(bytes) => {
                let off = (node as usize - 1) * 4;
                u64::from(u32::from_le_bytes(
                    bytes[off..off + 4].try_into().expect("validated region"),
                ))
            }
            PosRef::Index(ix) => ix.position(node, depth),
        }
    }

    /// Whether speculative child-position computations (for the scalar
    /// kernel's both-children prefetch) are worth issuing.
    #[must_use]
    pub fn prefetch_is_cheap(&self) -> bool {
        match self {
            PosRef::Plan(p) => p.prefetch_is_cheap(),
            PosRef::Raw32(_) => true,
            PosRef::Index(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Descent planes: position source + key storage discipline
// ---------------------------------------------------------------------------

/// What a descent kernel needs from a backend. The central concept is
/// the **key locator**: the storage coordinate a key load uses — the
/// layout position for layout-ordered storage ([`ArrayPlane`],
/// [`MappedPlane`]), the 0-based in-order rank for rank-ordered storage
/// ([`RankPlane`]). Kernels compute each level's locator exactly once,
/// prefetch it, and reuse it for the load. Implementations are
/// monomorphized into the kernels — no virtual calls on the hot path
/// (except through an explicit [`PosRef::Index`] fallback).
pub trait DescentPlane {
    /// Key type compared during the descent.
    type Key: Copy + Ord;

    /// Height of the complete tree.
    fn height(&self) -> u32;

    /// Key locator of BFS `node` at `depth`.
    fn locate(&self, node: u64, depth: u32) -> u64;

    /// Key behind a locator. For planes whose padding is encoded in the
    /// key ordering this is total; for [`MappedPlane`] the value is
    /// unspecified (but loadable) when [`DescentPlane::is_real`] is
    /// `false`.
    fn key_at(&self, loc: u64) -> Self::Key;

    /// `false` when `node` is a padding slot that must compare as `+∞`.
    #[inline]
    fn is_real(&self, node: u64) -> bool {
        let _ = node;
        true
    }

    /// Layout position of `node` at `depth` (what searches report).
    fn position(&self, node: u64, depth: u32) -> u64;

    /// Layout position reported for a match whose key was loaded via
    /// `loc` — the locator *is* the position for layout-ordered planes;
    /// rank-ordered planes recover the node from the rank.
    fn result_position(&self, loc: u64) -> u64;

    /// `true` when the locator *is* the layout position (layout-ordered
    /// planes), letting traced kernels record `loc` instead of paying a
    /// second position computation per level.
    #[inline]
    fn locator_is_position(&self) -> bool {
        false
    }

    /// Issues a prefetch for the storage `key_at(loc)` will touch.
    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        let _ = loc;
    }

    /// Whether the scalar kernels should speculatively compute (and
    /// prefetch) *both* children's locators a level ahead — worth it
    /// exactly when locators are cheap (checked once, outside loops).
    #[inline]
    fn speculate_children(&self) -> bool {
        false
    }
}

/// Keys stored in layout order (the implicit backend): the locator is
/// the layout position; one position computation and one array load per
/// visited node.
pub struct ArrayPlane<'a, K> {
    keys: &'a [K],
    pos: PosRef<'a>,
    height: u32,
}

impl<'a, K: Copy + Ord> ArrayPlane<'a, K> {
    /// Plane over `keys` in layout order, positions from `pos`.
    #[must_use]
    pub fn new(keys: &'a [K], pos: PosRef<'a>, height: u32) -> Self {
        Self { keys, pos, height }
    }
}

impl<K: Copy + Ord> DescentPlane for ArrayPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        self.keys[loc as usize]
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        loc
    }

    #[inline]
    fn locator_is_position(&self) -> bool {
        true
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: positions of valid nodes index the key array.
        prefetch_read(unsafe { self.keys.as_ptr().add(loc as usize) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        self.pos.prefetch_is_cheap()
    }
}

/// 1-based in-order rank of `node` in a height-`h` tree (the
/// `Tree::in_order_rank` bit trick, kept local so kernels need no
/// `Tree`).
#[inline]
fn in_order_rank(height: u32, node: u64) -> u64 {
    let d = 63 - node.leading_zeros();
    let span = 1u64 << (height - d);
    (node - (1u64 << d)) * span + span / 2
}

/// Keys stored in sorted (in-order-rank) order — the index-only
/// backend. The locator is the 0-based rank, so comparisons never touch
/// positions; the position source is consulted only to *report*
/// results, preserving the slow path's cost discipline exactly.
pub struct RankPlane<'a, K> {
    keys: &'a [K],
    pos: PosRef<'a>,
    height: u32,
}

impl<'a, K: Copy + Ord> RankPlane<'a, K> {
    /// Plane over `keys` in sorted order, positions from `pos`.
    #[must_use]
    pub fn new(keys: &'a [K], pos: PosRef<'a>, height: u32) -> Self {
        Self { keys, pos, height }
    }
}

impl<K: Copy + Ord> DescentPlane for RankPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, _depth: u32) -> u64 {
        in_order_rank(self.height, node) - 1
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        self.keys[loc as usize]
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        // Invert the rank locator (`Tree::node_at_in_order`), then pay
        // the one position computation the slow path pays on a match.
        let rank = loc + 1;
        let t = rank.trailing_zeros();
        let d = self.height - 1 - t;
        let node = (1u64 << d) + (rank >> (t + 1));
        self.pos.at(node, d)
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: ranks of valid nodes index the sorted key array.
        prefetch_read(unsafe { self.keys.as_ptr().add(loc as usize) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        // Rank locators are two shifts and an add — always cheap.
        true
    }
}

/// Keys read from the raw bytes of a mapped tree file. Padding is
/// detected arithmetically (in-order rank beyond the stored key count),
/// exactly as the mapped slow path does — padding slots' bytes are
/// loadable (the writer zeroes them) but never influence the descent.
pub struct MappedPlane<'a, K> {
    key_bytes: &'a [u8],
    pos: PosRef<'a>,
    height: u32,
    stored: u64,
    _keys: std::marker::PhantomData<fn() -> K>,
}

impl<'a, K: FixedKey> MappedPlane<'a, K> {
    /// Plane over a file's key region (`key_bytes`), positions from
    /// `pos`; ranks beyond `stored` are padding.
    #[must_use]
    pub fn new(key_bytes: &'a [u8], pos: PosRef<'a>, height: u32, stored: u64) -> Self {
        Self {
            key_bytes,
            pos,
            height,
            stored,
            _keys: std::marker::PhantomData,
        }
    }
}

impl<K: FixedKey> DescentPlane for MappedPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        let off = loc as usize * K::WIDTH;
        K::read_le(&self.key_bytes[off..off + K::WIDTH])
    }

    #[inline]
    fn is_real(&self, node: u64) -> bool {
        in_order_rank(self.height, node) <= self.stored
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        loc
    }

    #[inline]
    fn locator_is_position(&self) -> bool {
        true
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: key offsets of valid nodes lie inside the key region.
        prefetch_read(unsafe { self.key_bytes.as_ptr().add(loc as usize * K::WIDTH) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        self.pos.prefetch_is_cheap()
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels
// ---------------------------------------------------------------------------

/// Branch-free point search: descends all `h` levels with
/// `i = 2i + (probe > key)`, tracking the locator of the last slot
/// whose key was `>= probe` with conditional moves, and resolves
/// equality once after the loop. Returns exactly what the backend's
/// slow `search` returns.
#[inline]
pub fn search<P: DescentPlane>(plane: &P, probe: P::Key) -> Option<u64> {
    let h = plane.height();
    let speculate = plane.speculate_children();
    let mut i = 1u64;
    let mut loc = plane.locate(1, 0);
    let mut cand_loc = NO_CAND;
    let mut cand_key = probe; // only read once `cand_loc != NO_CAND`
    for d in 0..h {
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && probe > k;
        if real && !go_right {
            cand_loc = loc;
            cand_key = k;
        }
        let next = (i << 1) | u64::from(go_right);
        if d + 1 < h {
            if speculate {
                // Both children, prefetched before the compare's load
                // dependency resolves (the CPU hoists these — they
                // depend only on `i`).
                let left = plane.locate(i << 1, d + 1);
                let right = plane.locate((i << 1) | 1, d + 1);
                plane.prefetch_loc(left);
                plane.prefetch_loc(right);
                loc = if go_right { right } else { left };
            } else {
                loc = plane.locate(next, d + 1);
            }
        }
        i = next;
    }
    (cand_loc != NO_CAND && cand_key == probe).then(|| plane.result_position(cand_loc))
}

/// [`search`], recording the layout position of every node the *slow
/// path* would visit: the full root path for misses, the root-to-match
/// prefix for hits (the branch-free descent continues past the match;
/// the overshoot is truncated so traces stay bit-identical to
/// `search_traced`).
pub fn search_traced<P: DescentPlane>(
    plane: &P,
    probe: P::Key,
    visited: &mut Vec<u64>,
) -> Option<u64> {
    let h = plane.height();
    visited.reserve(h as usize);
    let start = visited.len();
    let mut i = 1u64;
    let mut cand_loc = NO_CAND;
    let mut cand_depth = 0u32;
    let mut cand_key = probe;
    let loc_is_pos = plane.locator_is_position();
    for d in 0..h {
        let loc = plane.locate(i, d);
        visited.push(if loc_is_pos {
            loc
        } else {
            plane.position(i, d)
        });
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && probe > k;
        if real && !go_right {
            cand_loc = loc;
            cand_depth = d;
            cand_key = k;
        }
        i = (i << 1) | u64::from(go_right);
    }
    if cand_loc != NO_CAND && cand_key == probe {
        visited.truncate(start + cand_depth as usize + 1);
        Some(plane.result_position(cand_loc))
    } else {
        None
    }
}

/// Branch-free bound-rank descent: the 1-based in-order rank of the
/// first stored key `>= probe` (`UPPER = false`, i.e. `lower_bound_rank`)
/// or `> probe` (`UPPER = true`, `upper_bound_rank`). Identical results
/// to the generic trait descents: padding compares as `+∞`, the final
/// virtual leaf's gap index counts the keys below the bound.
#[inline]
pub fn bound_rank<P: DescentPlane, const UPPER: bool>(plane: &P, probe: P::Key) -> u64 {
    let h = plane.height();
    let speculate = plane.speculate_children();
    let mut i = 1u64;
    let mut loc = plane.locate(1, 0);
    for d in 0..h {
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && if UPPER { probe >= k } else { probe > k };
        let next = (i << 1) | u64::from(go_right);
        if d + 1 < h {
            if speculate {
                let left = plane.locate(i << 1, d + 1);
                let right = plane.locate((i << 1) | 1, d + 1);
                plane.prefetch_loc(left);
                plane.prefetch_loc(right);
                loc = if go_right { right } else { left };
            } else {
                loc = plane.locate(next, d + 1);
            }
        }
        i = next;
    }
    (i - (1u64 << h)) + 1
}

// ---------------------------------------------------------------------------
// Interleaved multi-query kernel
// ---------------------------------------------------------------------------

/// Interleaved batch search: processes `probes` in chunks of up to
/// `width` lanes (clamped to `1..=MAX_LANES`), descending all lanes in
/// depth lockstep. Lane key loads are independent, so their cache
/// misses overlap; each lane computes its next locator exactly once and
/// prefetches it the moment its branch-free step resolves (free for
/// every plan — no speculative arithmetic). `emit` receives
/// `(probe index, result)` in input order; results are bit-identical to
/// per-probe [`search`].
#[inline]
pub fn fold_interleaved<P: DescentPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    mut emit: impl FnMut(usize, Option<u64>),
) {
    let h = plane.height();
    let width = width.clamp(1, MAX_LANES);
    let root_loc = plane.locate(1, 0);
    let mut base = 0usize;
    for chunk in probes.chunks(width) {
        let mut node = [1u64; MAX_LANES];
        let mut loc = [root_loc; MAX_LANES];
        let mut cand_loc = [NO_CAND; MAX_LANES];
        let mut cand_key = [chunk[0]; MAX_LANES];
        plane.prefetch_loc(root_loc);
        for d in 0..h {
            for (l, &probe) in chunk.iter().enumerate() {
                let i = node[l];
                let k = plane.key_at(loc[l]);
                let real = plane.is_real(i);
                let go_right = real && probe > k;
                if real && !go_right {
                    cand_loc[l] = loc[l];
                    cand_key[l] = k;
                }
                let next = (i << 1) | u64::from(go_right);
                if d + 1 < h {
                    let nloc = plane.locate(next, d + 1);
                    plane.prefetch_loc(nloc);
                    loc[l] = nloc;
                }
                node[l] = next;
            }
        }
        for (l, &probe) in chunk.iter().enumerate() {
            let hit = cand_loc[l] != NO_CAND && cand_key[l] == probe;
            emit(base + l, hit.then(|| plane.result_position(cand_loc[l])));
        }
        base += chunk.len();
    }
}

/// [`fold_interleaved`] collecting results (input order) into `out`.
pub fn search_batch_interleaved<P: DescentPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    out: &mut Vec<Option<u64>>,
) {
    out.clear();
    out.resize(probes.len(), None);
    fold_interleaved(plane, probes, width, |idx, r| out[idx] = r);
}

/// [`fold_interleaved`] folding the wrapping sum of found positions —
/// the shared benchmark-checksum kernel every backend's
/// `search_batch_checksum` dispatches to (identical to summing the slow
/// path's results, since per-probe results are bit-identical).
#[must_use]
pub fn batch_checksum<P: DescentPlane>(plane: &P, probes: &[P::Key], width: usize) -> u64 {
    let mut acc = 0u64;
    fold_interleaved(plane, probes, width, |_, r| {
        if let Some(p) = r {
            acc = acc.wrapping_add(p);
        }
    });
    acc
}

// ---------------------------------------------------------------------------
// Explicit (pointer) kernels
// ---------------------------------------------------------------------------

/// Branch-free pointer descent over an explicit node array: child
/// positions come from the nodes themselves (no index arithmetic), the
/// three-way compare is replaced by a conditional child select, and both
/// children are prefetched one level ahead. Completeness of the tree
/// guarantees `h − 1` valid child steps, so the loop never tests NIL.
#[inline]
pub fn explicit_search<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probe: K,
) -> Option<u64> {
    let mut pos = root;
    let mut cand_pos = u32::MAX;
    let mut cand_key = probe;
    for _ in 0..height - 1 {
        let n = nodes[pos as usize];
        prefetch_read(std::ptr::addr_of!(nodes[n.left as usize]));
        prefetch_read(std::ptr::addr_of!(nodes[n.right as usize]));
        let go_right = probe > n.key;
        if !go_right {
            cand_pos = pos;
            cand_key = n.key;
        }
        pos = if go_right { n.right } else { n.left };
    }
    // Leaf level: compare only (children are NIL).
    let n = nodes[pos as usize];
    if probe <= n.key {
        cand_pos = pos;
        cand_key = n.key;
    }
    (cand_pos != u32::MAX && cand_key == probe).then(|| u64::from(cand_pos))
}

/// [`explicit_search`] with slow-path-identical traces (full path for
/// misses, truncated at the match for hits).
pub fn explicit_search_traced<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probe: K,
    visited: &mut Vec<u64>,
) -> Option<u64> {
    let h = height;
    visited.reserve(h as usize);
    let start = visited.len();
    let mut pos = root;
    let mut cand_pos = u32::MAX;
    let mut cand_depth = 0u32;
    let mut cand_key = probe;
    for d in 0..h {
        visited.push(u64::from(pos));
        let n = nodes[pos as usize];
        let go_right = probe > n.key;
        if !go_right {
            cand_pos = pos;
            cand_depth = d;
            cand_key = n.key;
        }
        if d + 1 < h {
            pos = if go_right { n.right } else { n.left };
        }
    }
    if cand_pos != u32::MAX && cand_key == probe {
        visited.truncate(start + cand_depth as usize + 1);
        Some(u64::from(cand_pos))
    } else {
        None
    }
}

/// Interleaved pointer-chasing batch kernel: up to `width` descents in
/// flight, stepped round-robin per level; each lane's next node load is
/// prefetched as soon as its child select resolves. `emit` receives
/// `(probe index, result)` in input order.
#[inline]
pub fn explicit_fold_interleaved<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probes: &[K],
    width: usize,
    mut emit: impl FnMut(usize, Option<u64>),
) {
    let width = width.clamp(1, MAX_LANES);
    let mut base = 0usize;
    for chunk in probes.chunks(width) {
        let mut pos = [root; MAX_LANES];
        let mut cand_pos = [u32::MAX; MAX_LANES];
        let mut cand_key = [chunk[0]; MAX_LANES];
        for d in 0..height {
            for (l, &probe) in chunk.iter().enumerate() {
                let n = nodes[pos[l] as usize];
                let go_right = probe > n.key;
                if !go_right {
                    cand_pos[l] = pos[l];
                    cand_key[l] = n.key;
                }
                if d + 1 < height {
                    let next = if go_right { n.right } else { n.left };
                    pos[l] = next;
                    prefetch_read(std::ptr::addr_of!(nodes[next as usize]));
                }
            }
        }
        for (l, &probe) in chunk.iter().enumerate() {
            let hit = cand_pos[l] != u32::MAX && cand_key[l] == probe;
            emit(base + l, hit.then(|| u64::from(cand_pos[l])));
        }
        base += chunk.len();
    }
}

/// [`explicit_fold_interleaved`] folding the wrapping sum of found
/// positions — the explicit backend's arm of the shared
/// `search_batch_checksum` kernel.
#[must_use]
pub fn explicit_batch_checksum<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probes: &[K],
    width: usize,
) -> u64 {
    let mut acc = 0u64;
    explicit_fold_interleaved(nodes, root, height, probes, width, |_, r| {
        if let Some(p) = r {
            acc = acc.wrapping_add(p);
        }
    });
    acc
}

// ---------------------------------------------------------------------------
// Fat-node (B-ary) kernels
// ---------------------------------------------------------------------------

/// What the fat descent kernels need from a backend serving a B-ary
/// fat-node layout (`cobtree_core::fat`). The unit of work is the
/// **chunk**: `2^span` slots holding the chunk's keys in local in-order
/// order, real keys first ([`FatIndex::chunk_real_count`]). One
/// rank-of-key over the live prefix replaces `span` binary compares —
/// and is where the SIMD compare+movemask kernel plugs in
/// ([`byte_rank_in_chunk`]).
pub trait FatPlane {
    /// Key type compared during the descent.
    type Key: Copy + Ord;

    /// The layout's position arithmetic.
    fn fat_index(&self) -> &FatIndex;

    /// Number of comparable slots at the front of chunk
    /// `(fat_depth, t)` — the rest are padding or structural holes and
    /// must compare as `+∞` (heap planes store explicit suprema and
    /// report the full `2^span − 1`; mapped planes report the real-key
    /// prefix length).
    fn live_count(&self, fat_depth: u32, t: u64) -> u32;

    /// Rank-of-key in the chunk starting at slot `base`: the number of
    /// live keys `< probe` (`<= probe` when `upper`), plus the slot
    /// index (0-based, chunk-local) of the key equal to `probe` if one
    /// exists. Live keys are strictly ascending, so the count *is* the
    /// exit gap and at most one slot can be equal.
    fn rank_in_chunk(
        &self,
        base: u64,
        live: u32,
        probe: Self::Key,
        upper: bool,
    ) -> (u32, Option<u32>);

    /// Issues a prefetch for the storage behind chunk slot `base`.
    #[inline]
    fn prefetch_chunk(&self, base: u64) {
        let _ = base;
    }
}

/// Fat point search: one rank-of-key per fat level. The exit gap `r`
/// (count of live keys `< probe`) *is* the child chunk selector:
/// `t' = t·2^span + r`. Returns the layout slot position of the node
/// holding `probe` — identical to the binary slow descent over the same
/// fat positions.
#[inline]
pub fn fat_search<P: FatPlane>(plane: &P, probe: P::Key) -> Option<u64> {
    let ix = plane.fat_index();
    let stride = ix.stride();
    let mut t = 0u64;
    for fat_depth in 0..ix.fat_levels() {
        let base = ix.chunk_position(fat_depth, t) * stride;
        let live = plane.live_count(fat_depth, t);
        let (r, eq) = plane.rank_in_chunk(base, live, probe, false);
        if let Some(j) = eq {
            return Some(base + u64::from(j));
        }
        t = (t << ix.span_of(fat_depth)) | u64::from(r);
    }
    None
}

/// [`fat_search`], recording every slot of every visited chunk (the
/// whole chunk is the load unit — a rank-of-key touches all of it, so
/// cache replay must charge all of it). On a hit the trace ends with
/// the matching chunk.
pub fn fat_search_traced<P: FatPlane>(
    plane: &P,
    probe: P::Key,
    visited: &mut Vec<u64>,
) -> Option<u64> {
    let ix = plane.fat_index();
    let stride = ix.stride();
    visited.reserve((ix.fat_levels() as u64 * stride) as usize);
    let mut t = 0u64;
    for fat_depth in 0..ix.fat_levels() {
        let base = ix.chunk_position(fat_depth, t) * stride;
        for off in 0..stride {
            visited.push(base + off);
        }
        let live = plane.live_count(fat_depth, t);
        let (r, eq) = plane.rank_in_chunk(base, live, probe, false);
        if let Some(j) = eq {
            return Some(base + u64::from(j));
        }
        t = (t << ix.span_of(fat_depth)) | u64::from(r);
    }
    None
}

/// Fat bound-rank descent: the 1-based in-order rank of the first live
/// key `>= probe` (`UPPER = false`) or `> probe` (`UPPER = true`) —
/// bit-identical to the generic binary trait descents, because the
/// per-chunk exit gap equals the number of left/right binary turns
/// through the chunk.
#[inline]
pub fn fat_bound_rank<P: FatPlane, const UPPER: bool>(plane: &P, probe: P::Key) -> u64 {
    let ix = plane.fat_index();
    let stride = ix.stride();
    let mut t = 0u64;
    for fat_depth in 0..ix.fat_levels() {
        let base = ix.chunk_position(fat_depth, t) * stride;
        let live = plane.live_count(fat_depth, t);
        let (r, eq) = plane.rank_in_chunk(base, live, probe, UPPER);
        if !UPPER {
            if let Some(j) = eq {
                return ix.rank_of_chunk_slot(fat_depth, t, j);
            }
        }
        t = (t << ix.span_of(fat_depth)) | u64::from(r);
    }
    // `t` is the virtual-leaf gap index: exactly `t` slots sort below
    // the bound.
    t + 1
}

/// Interleaved fat batch search: up to `width` descents in flight,
/// stepped round-robin one *fat* level at a time; each lane prefetches
/// its next chunk the moment its rank-of-key resolves, so lane chunk
/// loads overlap. `emit` receives `(probe index, result)` in input
/// order; results are bit-identical to per-probe [`fat_search`].
#[inline]
pub fn fat_fold_interleaved<P: FatPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    mut emit: impl FnMut(usize, Option<u64>),
) {
    let ix = plane.fat_index();
    let stride = ix.stride();
    let levels = ix.fat_levels();
    let width = width.clamp(1, MAX_LANES);
    let mut base_idx = 0usize;
    for chunk in probes.chunks(width) {
        let mut t = [0u64; MAX_LANES];
        let mut result: [Option<u64>; MAX_LANES] = [None; MAX_LANES];
        let mut done = [false; MAX_LANES];
        plane.prefetch_chunk(0);
        for fat_depth in 0..levels {
            for (l, &probe) in chunk.iter().enumerate() {
                if done[l] {
                    continue;
                }
                let base = ix.chunk_position(fat_depth, t[l]) * stride;
                let live = plane.live_count(fat_depth, t[l]);
                let (r, eq) = plane.rank_in_chunk(base, live, probe, false);
                if let Some(j) = eq {
                    result[l] = Some(base + u64::from(j));
                    done[l] = true;
                    continue;
                }
                let next = (t[l] << ix.span_of(fat_depth)) | u64::from(r);
                t[l] = next;
                if fat_depth + 1 < levels {
                    plane.prefetch_chunk(ix.chunk_position(fat_depth + 1, next) * stride);
                }
            }
        }
        for (l, _) in chunk.iter().enumerate() {
            emit(base_idx + l, result[l]);
        }
        base_idx += chunk.len();
    }
}

/// [`fat_fold_interleaved`] collecting results (input order) into `out`.
pub fn fat_search_batch_interleaved<P: FatPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    out: &mut Vec<Option<u64>>,
) {
    out.clear();
    out.resize(probes.len(), None);
    fat_fold_interleaved(plane, probes, width, |idx, r| out[idx] = r);
}

/// [`fat_fold_interleaved`] folding the wrapping sum of found positions
/// — the fat backends' arm of `search_batch_checksum`.
#[must_use]
pub fn fat_batch_checksum<P: FatPlane>(plane: &P, probes: &[P::Key], width: usize) -> u64 {
    let mut acc = 0u64;
    fat_fold_interleaved(plane, probes, width, |_, r| {
        if let Some(p) = r {
            acc = acc.wrapping_add(p);
        }
    });
    acc
}

// ---------------------------------------------------------------------------
// Rank-of-key over raw key bytes: scalar always, SIMD when available
// ---------------------------------------------------------------------------

/// Scalar rank-of-key over a chunk's raw little-endian key bytes — the
/// always-compiled fallback the SIMD path must be bit-identical to
/// (and the only path for key widths/strides without a vector kernel).
#[inline]
pub fn scalar_byte_rank<K: FixedKey>(
    bytes: &[u8],
    base: u64,
    live: u32,
    probe: K,
    upper: bool,
) -> (u32, Option<u32>) {
    let start = base as usize * K::WIDTH;
    let mut count = 0u32;
    let mut eq = None;
    for j in 0..live {
        let off = start + j as usize * K::WIDTH;
        let k = K::read_le(&bytes[off..off + K::WIDTH]);
        if k < probe || (upper && k == probe) {
            count += 1;
        }
        if k == probe {
            eq = Some(j);
        }
    }
    (count, eq)
}

/// Whether the SIMD rank-of-key path is compiled in, supported by this
/// CPU, and not force-disabled (`COBTREE_FORCE_SCALAR` in the
/// environment, or [`force_scalar_rank`]).
#[must_use]
pub fn simd_rank_enabled() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        simd_ctl::enabled()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Test hook: force the scalar rank-of-key fallback on (`true`) or
/// re-enable SIMD where supported (`false`). The SIMD and scalar paths
/// are bit-identical, so flipping this mid-run is safe; it exists so
/// parity tests can exercise both paths in one process.
#[doc(hidden)]
pub fn force_scalar_rank(force: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    simd_ctl::force_scalar(force);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = force;
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd_ctl {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const ON: u8 = 1;
    const OFF: u8 = 2;
    static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);

    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => {
                let on = std::env::var_os("COBTREE_FORCE_SCALAR").is_none() && supported();
                STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
                on
            }
        }
    }

    pub fn force_scalar(force: bool) {
        let state = if force {
            OFF
        } else if supported() {
            ON
        } else {
            OFF
        };
        STATE.store(state, Ordering::Relaxed);
    }

    fn supported() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use std::arch::x86_64::*;

    /// `(lt, eq)` bit masks (bit `j` = slot `j`) of `probe > key` /
    /// `probe == key` over `slots` 8-byte keys at `ptr`. Every lane is
    /// XOR-ed with `bias` before the signed compare — the sign-bias
    /// trick that makes unsigned order equal signed order of biased
    /// lanes (`bias = 0` for genuinely signed keys).
    ///
    /// # Safety
    /// Requires AVX2, `slots % 4 == 0`, and `slots * 8` readable bytes
    /// at `ptr`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn rank_w8(ptr: *const u8, slots: u32, probe_biased: i64, bias: i64) -> (u64, u64) {
        let pv = _mm256_set1_epi64x(probe_biased);
        let bv = _mm256_set1_epi64x(bias);
        let mut lt = 0u64;
        let mut eq = 0u64;
        let mut v = 0u32;
        while v < slots {
            let lanes = _mm256_loadu_si256(ptr.add(v as usize * 8).cast());
            let lanes = _mm256_xor_si256(lanes, bv);
            let mlt = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(pv, lanes)));
            let meq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(pv, lanes)));
            lt |= u64::from(mlt as u32 & 0xf) << v;
            eq |= u64::from(meq as u32 & 0xf) << v;
            v += 4;
        }
        (lt, eq)
    }

    /// [`rank_w8`] for 4-byte keys (8 lanes per vector).
    ///
    /// # Safety
    /// Requires AVX2, `slots % 8 == 0`, and `slots * 4` readable bytes
    /// at `ptr`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn rank_w4(ptr: *const u8, slots: u32, probe_biased: i32, bias: i32) -> (u64, u64) {
        let pv = _mm256_set1_epi32(probe_biased);
        let bv = _mm256_set1_epi32(bias);
        let mut lt = 0u64;
        let mut eq = 0u64;
        let mut v = 0u32;
        while v < slots {
            let lanes = _mm256_loadu_si256(ptr.add(v as usize * 4).cast());
            let lanes = _mm256_xor_si256(lanes, bv);
            let mlt = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(pv, lanes)));
            let meq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(pv, lanes)));
            lt |= u64::from(mlt as u32 & 0xff) << v;
            eq |= u64::from(meq as u32 & 0xff) << v;
            v += 8;
        }
        (lt, eq)
    }
}

/// SIMD `(lt, eq)` masks over a whole chunk's `stride` slots, or `None`
/// when no vector kernel fits this key width / stride. Reads the full
/// chunk (padding bytes are zeroed by the writer and masked off by the
/// caller); chunks never straddle the key region's end, so whole-chunk
/// loads stay in bounds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn simd_chunk_masks<K: FixedKey>(
    bytes: &[u8],
    base: u64,
    stride: u64,
    probe: K,
) -> Option<(u64, u64)> {
    let start = base as usize * K::WIDTH;
    if start + stride as usize * K::WIDTH > bytes.len() {
        return None;
    }
    let mut raw = [0u8; 16];
    probe.write_le(&mut raw);
    match K::WIDTH {
        8 if stride >= 4 => {
            let bias = if K::SIGNED { 0 } else { i64::MIN };
            let p = i64::from_le_bytes(raw[..8].try_into().expect("width 8")) ^ bias;
            // SAFETY: AVX2 gated by the caller (`simd_rank_enabled`);
            // stride is a power of two >= 4, and bounds were checked.
            Some(unsafe { avx2::rank_w8(bytes.as_ptr().add(start), stride as u32, p, bias) })
        }
        4 if stride >= 8 => {
            let bias = if K::SIGNED { 0 } else { i32::MIN };
            let p = i32::from_le_bytes(raw[..4].try_into().expect("width 4")) ^ bias;
            // SAFETY: as above; stride is a power of two >= 8.
            Some(unsafe { avx2::rank_w4(bytes.as_ptr().add(start), stride as u32, p, bias) })
        }
        _ => None,
    }
}

/// Rank-of-key over a chunk of raw little-endian key bytes: the SIMD
/// compare+movemask kernel when compiled, supported and enabled, the
/// scalar loop otherwise. The two are **bit-identical** (pinned by the
/// SIMD-parity proptests); `stride` is the chunk's full slot count,
/// `live` the comparable prefix.
#[inline]
pub fn byte_rank_in_chunk<K: FixedKey>(
    bytes: &[u8],
    base: u64,
    stride: u64,
    live: u32,
    probe: K,
    upper: bool,
) -> (u32, Option<u32>) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_ctl::enabled() {
        if let Some((lt, eq)) = simd_chunk_masks::<K>(bytes, base, stride, probe) {
            let live_mask = (1u64 << live) - 1;
            let lt = lt & live_mask;
            let eq = eq & live_mask;
            let count = if upper {
                (lt | eq).count_ones()
            } else {
                lt.count_ones()
            };
            let eq_idx = (eq != 0).then(|| eq.trailing_zeros());
            return (count, eq_idx);
        }
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = stride;
    scalar_byte_rank::<K>(bytes, base, live, probe, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;

    fn plane_for(layout: NamedLayout, h: u32) -> (Vec<u64>, StepPlan) {
        let n = (1u64 << h) - 1;
        let idx = layout.indexer(h);
        let plan = layout
            .compile_plan(h)
            .or_else(|| StepPlan::table_from_index(idx.as_ref()))
            .expect("plan");
        let tree = cobtree_core::Tree::new(h);
        let keys: Vec<u64> = (1..=n).map(|k| k * 3).collect();
        let mut arranged = vec![0u64; n as usize];
        for i in tree.nodes() {
            arranged[plan.position(i, tree.depth(i)) as usize] =
                keys[(tree.in_order_rank(i) - 1) as usize];
        }
        (arranged, plan)
    }

    #[test]
    fn scalar_kernel_finds_every_key_and_rejects_absent() {
        for layout in NamedLayout::ALL {
            let h = 7;
            let (keys, plan) = plane_for(layout, h);
            let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
            for r in 1..=(1u64 << h) - 1 {
                let p = search(&plane, r * 3).expect("present");
                assert_eq!(keys[p as usize], r * 3, "{layout} rank {r}");
                assert_eq!(search(&plane, r * 3 - 1), None);
            }
        }
    }

    #[test]
    fn interleaved_matches_scalar_at_every_width() {
        let h = 6;
        let (keys, plan) = plane_for(NamedLayout::MinWep, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let probes: Vec<u64> = (0..200u64).collect();
        let scalar: Vec<Option<u64>> = probes.iter().map(|&p| search(&plane, p)).collect();
        for width in [1usize, 2, 3, 5, 8, 16, 64] {
            let mut out = Vec::new();
            search_batch_interleaved(&plane, &probes, width, &mut out);
            assert_eq!(out, scalar, "width {width}");
        }
        // Batch shorter than the width.
        let mut out = Vec::new();
        search_batch_interleaved(&plane, &probes[..3], 16, &mut out);
        assert_eq!(out, scalar[..3]);
        // Empty batch.
        search_batch_interleaved(&plane, &[], 8, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn checksum_equals_sum_of_scalar_hits() {
        let h = 8;
        let (keys, plan) = plane_for(NamedLayout::PreVeb, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let probes: Vec<u64> = (0..1000u64).map(|k| k * 7 % 800).collect();
        let expect = probes
            .iter()
            .filter_map(|&p| search(&plane, p))
            .fold(0u64, u64::wrapping_add);
        assert_eq!(batch_checksum(&plane, &probes, DEFAULT_LANES), expect);
        assert_eq!(batch_checksum(&plane, &probes, 1), expect);
    }

    #[test]
    fn bound_rank_matches_partition_point() {
        let h = 6;
        let (keys, plan) = plane_for(NamedLayout::InVeb, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let sorted: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 3).collect();
        for probe in 0..=200u64 {
            let lb = sorted.partition_point(|&k| k < probe) as u64 + 1;
            let ub = sorted.partition_point(|&k| k <= probe) as u64 + 1;
            assert_eq!(bound_rank::<_, false>(&plane, probe), lb, "lb({probe})");
            assert_eq!(bound_rank::<_, true>(&plane, probe), ub, "ub({probe})");
        }
    }

    #[test]
    fn rank_plane_result_positions_match_position_source() {
        // `result_position` must invert the rank locator exactly.
        let h = 7;
        let layout = NamedLayout::MinWep;
        let plan = layout.compile_plan(h).unwrap();
        let sorted: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let plane = RankPlane::new(&sorted, PosRef::Plan(&plan), h);
        let tree = cobtree_core::Tree::new(h);
        for i in tree.nodes() {
            let loc = plane.locate(i, tree.depth(i));
            assert_eq!(
                plane.result_position(loc),
                plan.position(i, tree.depth(i)),
                "node {i}"
            );
        }
    }

    /// Writes `keys` (ascending, real prefix) followed by zero padding
    /// into a raw LE byte chunk of `stride` slots.
    fn chunk_bytes<K: FixedKey>(keys: &[K], stride: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; stride * K::WIDTH];
        for (j, &k) in keys.iter().enumerate() {
            k.write_le(&mut bytes[j * K::WIDTH..]);
        }
        bytes
    }

    fn assert_rank_parity<K: FixedKey>(keys: &[K], stride: u64, probes: &[K]) {
        let bytes = chunk_bytes(keys, stride as usize);
        let live = keys.len() as u32;
        for &probe in probes {
            for upper in [false, true] {
                let scalar = scalar_byte_rank::<K>(&bytes, 0, live, probe, upper);
                let auto = byte_rank_in_chunk::<K>(&bytes, 0, stride, live, probe, upper);
                assert_eq!(auto, scalar, "live {live} stride {stride} upper {upper}");
            }
        }
    }

    #[test]
    fn byte_rank_matches_scalar_u64() {
        // Covers the w8 AVX2 kernel when available (stride 8/16 >= 4
        // lanes) and the scalar path when not; results must agree
        // either way. Extremes exercise the sign-bias trick.
        for live in 0..=15u64 {
            let keys: Vec<u64> = (0..live).map(|j| j * 3 + 1).collect();
            let mut probes: Vec<u64> = (0..=50).collect();
            probes.extend([u64::MAX, u64::MAX - 1, 1u64 << 63]);
            assert_rank_parity(&keys, 16, &probes);
            if live <= 7 {
                assert_rank_parity(&keys, 8, &probes);
            }
        }
    }

    #[test]
    fn byte_rank_matches_scalar_i64_and_u32() {
        for live in 0..=7u32 {
            let i_keys: Vec<i64> = (0..live).map(|j| i64::from(j) * 5 - 12).collect();
            let i_probes: Vec<i64> = (-20..=25).collect();
            assert_rank_parity(&i_keys, 8, &i_probes);

            let u_keys: Vec<u32> = (0..live).map(|j| j * 7 + 2).collect();
            let mut u_probes: Vec<u32> = (0..=60).collect();
            u_probes.extend([u32::MAX, 1u32 << 31]);
            assert_rank_parity(&u_keys, 8, &u_probes);
        }
    }

    #[test]
    fn force_scalar_rank_flips_the_dispatch() {
        // Whatever the hardware, the forced-scalar result must equal
        // the auto-dispatch result (parity), and the control flag must
        // report scalar while forced.
        let keys: Vec<u64> = (0..15).map(|j| j * 2 + 1).collect();
        let bytes = chunk_bytes(&keys, 16);
        let auto = byte_rank_in_chunk::<u64>(&bytes, 0, 16, 15, 9, false);
        force_scalar_rank(true);
        assert!(!simd_rank_enabled());
        let forced = byte_rank_in_chunk::<u64>(&bytes, 0, 16, 15, 9, false);
        force_scalar_rank(false);
        assert_eq!(auto, forced);
        assert_eq!(forced, (4, Some(4)));
    }
}
