//! Compiled descent kernels: branch-free search loops over
//! [`StepPlan`]s, with software prefetch and an interleaved multi-query
//! variant.
//!
//! The slow descent paths (`search` loops written per backend in PR 1)
//! pay, per level, one virtual `dyn PositionIndex::position` call plus a
//! data-dependent three-way branch. The paper's layouts make per-depth
//! position arithmetic statically predictable, which is exactly what a
//! compiled kernel exploits (cf. Barratt & Zhang, *Cache-Friendly
//! Search Trees*, 2019). This module provides the shared kernels; the
//! backends dispatch into them:
//!
//! * **Devirtualized positions** — [`PosRef`] resolves positions from a
//!   compiled [`StepPlan`] (closed-form coefficients or a flat table),
//!   from a raw little-endian `u32` region of a mapped file, or — for
//!   the layouts that do not compile — from the original indexer.
//! * **Branch-free descent** — the three-way compare is replaced by
//!   `i = 2i + (probe > key)`, with the `Equal` case hoisted out of the
//!   loop entirely: the kernel tracks the most recent slot whose key
//!   was `>= probe` (a conditional move, not a branch) and performs a
//!   single equality check after the loop. Results are **bit-identical**
//!   to the slow paths, which remain in the backends as the oracle
//!   (`search_reference`).
//! * **Chained key locators + software prefetch** — each level's key
//!   *locator* (the storage coordinate of the key load — layout
//!   position for layout-ordered storage, in-order rank for the
//!   index-only backend) is computed once, prefetched, and reused for
//!   the load at the next level, so no position is ever computed twice.
//!   When positions are cheap ([`StepPlan::prefetch_is_cheap`]) the
//!   scalar kernel additionally speculates **both candidate children**
//!   one level ahead, so the next load is in flight while the current
//!   compare resolves.
//! * **Interleaved multi-query search** — [`fold_interleaved`] keeps up
//!   to [`MAX_LANES`] independent lookups in flight, stepping them
//!   round-robin one level at a time. The lanes' key loads are
//!   independent, so the memory system overlaps their misses
//!   (memory-level parallelism); each lane prefetches its *exact* next
//!   slot as soon as its branch-free step resolves it — which costs no
//!   extra position arithmetic at all, so it is on for every plan.
//!
//! Three key-storage disciplines are covered by [`DescentPlane`]
//! implementations: layout-ordered key arrays ([`ArrayPlane`], the
//! implicit backend), rank-ordered key arrays ([`RankPlane`], the
//! index-only backend) and raw mapped file bytes ([`MappedPlane`]).
//! The explicit (pointer-based) backend has no position computation to
//! devirtualize; it gets dedicated pointer kernels
//! ([`explicit_search`], [`explicit_fold_interleaved`]) that apply the
//! same branch-free + prefetch + interleaving treatment to child-pointer
//! chasing.

use crate::explicit::Node;
use cobtree_core::format::FixedKey;
use cobtree_core::index::{PositionIndex, StepPlan};

/// Maximum interleave width (lanes held in flight by the batch kernel).
pub const MAX_LANES: usize = 16;

/// Default interleave width used by the `search_batch_checksum` /
/// `search_batch_interleaved` entry points when callers do not pick one.
/// Eight lanes saturate the load buffers of common cores without
/// spilling the lane state out of registers.
pub const DEFAULT_LANES: usize = 8;

/// Locator sentinel meaning "no candidate recorded yet" (locators are
/// array indices or ranks, far below `u64::MAX`).
const NO_CAND: u64 = u64::MAX;

/// Issues a read prefetch for `ptr` where the target supports it (a
/// no-op elsewhere — the kernels stay portable).
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it never faults, and callers
    // only pass addresses derived from live allocations.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

// ---------------------------------------------------------------------------
// Position sources
// ---------------------------------------------------------------------------

/// Where a kernel reads layout positions from. One enum dispatch per
/// position — a perfectly predicted branch, in place of the slow path's
/// virtual call (kept as [`PosRef::Index`] for the layouts that do not
/// compile).
pub enum PosRef<'a> {
    /// A compiled per-layout plan.
    Plan(&'a StepPlan),
    /// Little-endian `u32` position table bytes, indexed by `node − 1`
    /// — the mapped backend's index region, read in place.
    Raw32(&'a [u8]),
    /// Uncompiled fallback: the original virtual indexer.
    Index(&'a dyn PositionIndex),
}

impl PosRef<'_> {
    /// Layout position of `node` at `depth`.
    #[inline]
    #[must_use]
    pub fn at(&self, node: u64, depth: u32) -> u64 {
        match self {
            PosRef::Plan(p) => p.position(node, depth),
            PosRef::Raw32(bytes) => {
                let off = (node as usize - 1) * 4;
                u64::from(u32::from_le_bytes(
                    bytes[off..off + 4].try_into().expect("validated region"),
                ))
            }
            PosRef::Index(ix) => ix.position(node, depth),
        }
    }

    /// Whether speculative child-position computations (for the scalar
    /// kernel's both-children prefetch) are worth issuing.
    #[must_use]
    pub fn prefetch_is_cheap(&self) -> bool {
        match self {
            PosRef::Plan(p) => p.prefetch_is_cheap(),
            PosRef::Raw32(_) => true,
            PosRef::Index(_) => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Descent planes: position source + key storage discipline
// ---------------------------------------------------------------------------

/// What a descent kernel needs from a backend. The central concept is
/// the **key locator**: the storage coordinate a key load uses — the
/// layout position for layout-ordered storage ([`ArrayPlane`],
/// [`MappedPlane`]), the 0-based in-order rank for rank-ordered storage
/// ([`RankPlane`]). Kernels compute each level's locator exactly once,
/// prefetch it, and reuse it for the load. Implementations are
/// monomorphized into the kernels — no virtual calls on the hot path
/// (except through an explicit [`PosRef::Index`] fallback).
pub trait DescentPlane {
    /// Key type compared during the descent.
    type Key: Copy + Ord;

    /// Height of the complete tree.
    fn height(&self) -> u32;

    /// Key locator of BFS `node` at `depth`.
    fn locate(&self, node: u64, depth: u32) -> u64;

    /// Key behind a locator. For planes whose padding is encoded in the
    /// key ordering this is total; for [`MappedPlane`] the value is
    /// unspecified (but loadable) when [`DescentPlane::is_real`] is
    /// `false`.
    fn key_at(&self, loc: u64) -> Self::Key;

    /// `false` when `node` is a padding slot that must compare as `+∞`.
    #[inline]
    fn is_real(&self, node: u64) -> bool {
        let _ = node;
        true
    }

    /// Layout position of `node` at `depth` (what searches report).
    fn position(&self, node: u64, depth: u32) -> u64;

    /// Layout position reported for a match whose key was loaded via
    /// `loc` — the locator *is* the position for layout-ordered planes;
    /// rank-ordered planes recover the node from the rank.
    fn result_position(&self, loc: u64) -> u64;

    /// `true` when the locator *is* the layout position (layout-ordered
    /// planes), letting traced kernels record `loc` instead of paying a
    /// second position computation per level.
    #[inline]
    fn locator_is_position(&self) -> bool {
        false
    }

    /// Issues a prefetch for the storage `key_at(loc)` will touch.
    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        let _ = loc;
    }

    /// Whether the scalar kernels should speculatively compute (and
    /// prefetch) *both* children's locators a level ahead — worth it
    /// exactly when locators are cheap (checked once, outside loops).
    #[inline]
    fn speculate_children(&self) -> bool {
        false
    }
}

/// Keys stored in layout order (the implicit backend): the locator is
/// the layout position; one position computation and one array load per
/// visited node.
pub struct ArrayPlane<'a, K> {
    keys: &'a [K],
    pos: PosRef<'a>,
    height: u32,
}

impl<'a, K: Copy + Ord> ArrayPlane<'a, K> {
    /// Plane over `keys` in layout order, positions from `pos`.
    #[must_use]
    pub fn new(keys: &'a [K], pos: PosRef<'a>, height: u32) -> Self {
        Self { keys, pos, height }
    }
}

impl<K: Copy + Ord> DescentPlane for ArrayPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        self.keys[loc as usize]
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        loc
    }

    #[inline]
    fn locator_is_position(&self) -> bool {
        true
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: positions of valid nodes index the key array.
        prefetch_read(unsafe { self.keys.as_ptr().add(loc as usize) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        self.pos.prefetch_is_cheap()
    }
}

/// 1-based in-order rank of `node` in a height-`h` tree (the
/// `Tree::in_order_rank` bit trick, kept local so kernels need no
/// `Tree`).
#[inline]
fn in_order_rank(height: u32, node: u64) -> u64 {
    let d = 63 - node.leading_zeros();
    let span = 1u64 << (height - d);
    (node - (1u64 << d)) * span + span / 2
}

/// Keys stored in sorted (in-order-rank) order — the index-only
/// backend. The locator is the 0-based rank, so comparisons never touch
/// positions; the position source is consulted only to *report*
/// results, preserving the slow path's cost discipline exactly.
pub struct RankPlane<'a, K> {
    keys: &'a [K],
    pos: PosRef<'a>,
    height: u32,
}

impl<'a, K: Copy + Ord> RankPlane<'a, K> {
    /// Plane over `keys` in sorted order, positions from `pos`.
    #[must_use]
    pub fn new(keys: &'a [K], pos: PosRef<'a>, height: u32) -> Self {
        Self { keys, pos, height }
    }
}

impl<K: Copy + Ord> DescentPlane for RankPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, _depth: u32) -> u64 {
        in_order_rank(self.height, node) - 1
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        self.keys[loc as usize]
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        // Invert the rank locator (`Tree::node_at_in_order`), then pay
        // the one position computation the slow path pays on a match.
        let rank = loc + 1;
        let t = rank.trailing_zeros();
        let d = self.height - 1 - t;
        let node = (1u64 << d) + (rank >> (t + 1));
        self.pos.at(node, d)
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: ranks of valid nodes index the sorted key array.
        prefetch_read(unsafe { self.keys.as_ptr().add(loc as usize) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        // Rank locators are two shifts and an add — always cheap.
        true
    }
}

/// Keys read from the raw bytes of a mapped tree file. Padding is
/// detected arithmetically (in-order rank beyond the stored key count),
/// exactly as the mapped slow path does — padding slots' bytes are
/// loadable (the writer zeroes them) but never influence the descent.
pub struct MappedPlane<'a, K> {
    key_bytes: &'a [u8],
    pos: PosRef<'a>,
    height: u32,
    stored: u64,
    _keys: std::marker::PhantomData<fn() -> K>,
}

impl<'a, K: FixedKey> MappedPlane<'a, K> {
    /// Plane over a file's key region (`key_bytes`), positions from
    /// `pos`; ranks beyond `stored` are padding.
    #[must_use]
    pub fn new(key_bytes: &'a [u8], pos: PosRef<'a>, height: u32, stored: u64) -> Self {
        Self {
            key_bytes,
            pos,
            height,
            stored,
            _keys: std::marker::PhantomData,
        }
    }
}

impl<K: FixedKey> DescentPlane for MappedPlane<'_, K> {
    type Key = K;

    #[inline]
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn locate(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn key_at(&self, loc: u64) -> K {
        let off = loc as usize * K::WIDTH;
        K::read_le(&self.key_bytes[off..off + K::WIDTH])
    }

    #[inline]
    fn is_real(&self, node: u64) -> bool {
        in_order_rank(self.height, node) <= self.stored
    }

    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        self.pos.at(node, depth)
    }

    #[inline]
    fn result_position(&self, loc: u64) -> u64 {
        loc
    }

    #[inline]
    fn locator_is_position(&self) -> bool {
        true
    }

    #[inline]
    fn prefetch_loc(&self, loc: u64) {
        // SAFETY: key offsets of valid nodes lie inside the key region.
        prefetch_read(unsafe { self.key_bytes.as_ptr().add(loc as usize * K::WIDTH) });
    }

    #[inline]
    fn speculate_children(&self) -> bool {
        self.pos.prefetch_is_cheap()
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels
// ---------------------------------------------------------------------------

/// Branch-free point search: descends all `h` levels with
/// `i = 2i + (probe > key)`, tracking the locator of the last slot
/// whose key was `>= probe` with conditional moves, and resolves
/// equality once after the loop. Returns exactly what the backend's
/// slow `search` returns.
#[inline]
pub fn search<P: DescentPlane>(plane: &P, probe: P::Key) -> Option<u64> {
    let h = plane.height();
    let speculate = plane.speculate_children();
    let mut i = 1u64;
    let mut loc = plane.locate(1, 0);
    let mut cand_loc = NO_CAND;
    let mut cand_key = probe; // only read once `cand_loc != NO_CAND`
    for d in 0..h {
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && probe > k;
        if real && !go_right {
            cand_loc = loc;
            cand_key = k;
        }
        let next = (i << 1) | u64::from(go_right);
        if d + 1 < h {
            if speculate {
                // Both children, prefetched before the compare's load
                // dependency resolves (the CPU hoists these — they
                // depend only on `i`).
                let left = plane.locate(i << 1, d + 1);
                let right = plane.locate((i << 1) | 1, d + 1);
                plane.prefetch_loc(left);
                plane.prefetch_loc(right);
                loc = if go_right { right } else { left };
            } else {
                loc = plane.locate(next, d + 1);
            }
        }
        i = next;
    }
    (cand_loc != NO_CAND && cand_key == probe).then(|| plane.result_position(cand_loc))
}

/// [`search`], recording the layout position of every node the *slow
/// path* would visit: the full root path for misses, the root-to-match
/// prefix for hits (the branch-free descent continues past the match;
/// the overshoot is truncated so traces stay bit-identical to
/// `search_traced`).
pub fn search_traced<P: DescentPlane>(
    plane: &P,
    probe: P::Key,
    visited: &mut Vec<u64>,
) -> Option<u64> {
    let h = plane.height();
    visited.reserve(h as usize);
    let start = visited.len();
    let mut i = 1u64;
    let mut cand_loc = NO_CAND;
    let mut cand_depth = 0u32;
    let mut cand_key = probe;
    let loc_is_pos = plane.locator_is_position();
    for d in 0..h {
        let loc = plane.locate(i, d);
        visited.push(if loc_is_pos {
            loc
        } else {
            plane.position(i, d)
        });
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && probe > k;
        if real && !go_right {
            cand_loc = loc;
            cand_depth = d;
            cand_key = k;
        }
        i = (i << 1) | u64::from(go_right);
    }
    if cand_loc != NO_CAND && cand_key == probe {
        visited.truncate(start + cand_depth as usize + 1);
        Some(plane.result_position(cand_loc))
    } else {
        None
    }
}

/// Branch-free bound-rank descent: the 1-based in-order rank of the
/// first stored key `>= probe` (`UPPER = false`, i.e. `lower_bound_rank`)
/// or `> probe` (`UPPER = true`, `upper_bound_rank`). Identical results
/// to the generic trait descents: padding compares as `+∞`, the final
/// virtual leaf's gap index counts the keys below the bound.
#[inline]
pub fn bound_rank<P: DescentPlane, const UPPER: bool>(plane: &P, probe: P::Key) -> u64 {
    let h = plane.height();
    let speculate = plane.speculate_children();
    let mut i = 1u64;
    let mut loc = plane.locate(1, 0);
    for d in 0..h {
        let k = plane.key_at(loc);
        let real = plane.is_real(i);
        let go_right = real && if UPPER { probe >= k } else { probe > k };
        let next = (i << 1) | u64::from(go_right);
        if d + 1 < h {
            if speculate {
                let left = plane.locate(i << 1, d + 1);
                let right = plane.locate((i << 1) | 1, d + 1);
                plane.prefetch_loc(left);
                plane.prefetch_loc(right);
                loc = if go_right { right } else { left };
            } else {
                loc = plane.locate(next, d + 1);
            }
        }
        i = next;
    }
    (i - (1u64 << h)) + 1
}

// ---------------------------------------------------------------------------
// Interleaved multi-query kernel
// ---------------------------------------------------------------------------

/// Interleaved batch search: processes `probes` in chunks of up to
/// `width` lanes (clamped to `1..=MAX_LANES`), descending all lanes in
/// depth lockstep. Lane key loads are independent, so their cache
/// misses overlap; each lane computes its next locator exactly once and
/// prefetches it the moment its branch-free step resolves (free for
/// every plan — no speculative arithmetic). `emit` receives
/// `(probe index, result)` in input order; results are bit-identical to
/// per-probe [`search`].
#[inline]
pub fn fold_interleaved<P: DescentPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    mut emit: impl FnMut(usize, Option<u64>),
) {
    let h = plane.height();
    let width = width.clamp(1, MAX_LANES);
    let root_loc = plane.locate(1, 0);
    let mut base = 0usize;
    for chunk in probes.chunks(width) {
        let mut node = [1u64; MAX_LANES];
        let mut loc = [root_loc; MAX_LANES];
        let mut cand_loc = [NO_CAND; MAX_LANES];
        let mut cand_key = [chunk[0]; MAX_LANES];
        plane.prefetch_loc(root_loc);
        for d in 0..h {
            for (l, &probe) in chunk.iter().enumerate() {
                let i = node[l];
                let k = plane.key_at(loc[l]);
                let real = plane.is_real(i);
                let go_right = real && probe > k;
                if real && !go_right {
                    cand_loc[l] = loc[l];
                    cand_key[l] = k;
                }
                let next = (i << 1) | u64::from(go_right);
                if d + 1 < h {
                    let nloc = plane.locate(next, d + 1);
                    plane.prefetch_loc(nloc);
                    loc[l] = nloc;
                }
                node[l] = next;
            }
        }
        for (l, &probe) in chunk.iter().enumerate() {
            let hit = cand_loc[l] != NO_CAND && cand_key[l] == probe;
            emit(base + l, hit.then(|| plane.result_position(cand_loc[l])));
        }
        base += chunk.len();
    }
}

/// [`fold_interleaved`] collecting results (input order) into `out`.
pub fn search_batch_interleaved<P: DescentPlane>(
    plane: &P,
    probes: &[P::Key],
    width: usize,
    out: &mut Vec<Option<u64>>,
) {
    out.clear();
    out.resize(probes.len(), None);
    fold_interleaved(plane, probes, width, |idx, r| out[idx] = r);
}

/// [`fold_interleaved`] folding the wrapping sum of found positions —
/// the shared benchmark-checksum kernel every backend's
/// `search_batch_checksum` dispatches to (identical to summing the slow
/// path's results, since per-probe results are bit-identical).
#[must_use]
pub fn batch_checksum<P: DescentPlane>(plane: &P, probes: &[P::Key], width: usize) -> u64 {
    let mut acc = 0u64;
    fold_interleaved(plane, probes, width, |_, r| {
        if let Some(p) = r {
            acc = acc.wrapping_add(p);
        }
    });
    acc
}

// ---------------------------------------------------------------------------
// Explicit (pointer) kernels
// ---------------------------------------------------------------------------

/// Branch-free pointer descent over an explicit node array: child
/// positions come from the nodes themselves (no index arithmetic), the
/// three-way compare is replaced by a conditional child select, and both
/// children are prefetched one level ahead. Completeness of the tree
/// guarantees `h − 1` valid child steps, so the loop never tests NIL.
#[inline]
pub fn explicit_search<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probe: K,
) -> Option<u64> {
    let mut pos = root;
    let mut cand_pos = u32::MAX;
    let mut cand_key = probe;
    for _ in 0..height - 1 {
        let n = nodes[pos as usize];
        prefetch_read(std::ptr::addr_of!(nodes[n.left as usize]));
        prefetch_read(std::ptr::addr_of!(nodes[n.right as usize]));
        let go_right = probe > n.key;
        if !go_right {
            cand_pos = pos;
            cand_key = n.key;
        }
        pos = if go_right { n.right } else { n.left };
    }
    // Leaf level: compare only (children are NIL).
    let n = nodes[pos as usize];
    if probe <= n.key {
        cand_pos = pos;
        cand_key = n.key;
    }
    (cand_pos != u32::MAX && cand_key == probe).then(|| u64::from(cand_pos))
}

/// [`explicit_search`] with slow-path-identical traces (full path for
/// misses, truncated at the match for hits).
pub fn explicit_search_traced<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probe: K,
    visited: &mut Vec<u64>,
) -> Option<u64> {
    let h = height;
    visited.reserve(h as usize);
    let start = visited.len();
    let mut pos = root;
    let mut cand_pos = u32::MAX;
    let mut cand_depth = 0u32;
    let mut cand_key = probe;
    for d in 0..h {
        visited.push(u64::from(pos));
        let n = nodes[pos as usize];
        let go_right = probe > n.key;
        if !go_right {
            cand_pos = pos;
            cand_depth = d;
            cand_key = n.key;
        }
        if d + 1 < h {
            pos = if go_right { n.right } else { n.left };
        }
    }
    if cand_pos != u32::MAX && cand_key == probe {
        visited.truncate(start + cand_depth as usize + 1);
        Some(u64::from(cand_pos))
    } else {
        None
    }
}

/// Interleaved pointer-chasing batch kernel: up to `width` descents in
/// flight, stepped round-robin per level; each lane's next node load is
/// prefetched as soon as its child select resolves. `emit` receives
/// `(probe index, result)` in input order.
#[inline]
pub fn explicit_fold_interleaved<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probes: &[K],
    width: usize,
    mut emit: impl FnMut(usize, Option<u64>),
) {
    let width = width.clamp(1, MAX_LANES);
    let mut base = 0usize;
    for chunk in probes.chunks(width) {
        let mut pos = [root; MAX_LANES];
        let mut cand_pos = [u32::MAX; MAX_LANES];
        let mut cand_key = [chunk[0]; MAX_LANES];
        for d in 0..height {
            for (l, &probe) in chunk.iter().enumerate() {
                let n = nodes[pos[l] as usize];
                let go_right = probe > n.key;
                if !go_right {
                    cand_pos[l] = pos[l];
                    cand_key[l] = n.key;
                }
                if d + 1 < height {
                    let next = if go_right { n.right } else { n.left };
                    pos[l] = next;
                    prefetch_read(std::ptr::addr_of!(nodes[next as usize]));
                }
            }
        }
        for (l, &probe) in chunk.iter().enumerate() {
            let hit = cand_pos[l] != u32::MAX && cand_key[l] == probe;
            emit(base + l, hit.then(|| u64::from(cand_pos[l])));
        }
        base += chunk.len();
    }
}

/// [`explicit_fold_interleaved`] folding the wrapping sum of found
/// positions — the explicit backend's arm of the shared
/// `search_batch_checksum` kernel.
#[must_use]
pub fn explicit_batch_checksum<K: Copy + Ord>(
    nodes: &[Node<K>],
    root: u32,
    height: u32,
    probes: &[K],
    width: usize,
) -> u64 {
    let mut acc = 0u64;
    explicit_fold_interleaved(nodes, root, height, probes, width, |_, r| {
        if let Some(p) = r {
            acc = acc.wrapping_add(p);
        }
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;

    fn plane_for(layout: NamedLayout, h: u32) -> (Vec<u64>, StepPlan) {
        let n = (1u64 << h) - 1;
        let idx = layout.indexer(h);
        let plan = layout
            .compile_plan(h)
            .or_else(|| StepPlan::table_from_index(idx.as_ref()))
            .expect("plan");
        let tree = cobtree_core::Tree::new(h);
        let keys: Vec<u64> = (1..=n).map(|k| k * 3).collect();
        let mut arranged = vec![0u64; n as usize];
        for i in tree.nodes() {
            arranged[plan.position(i, tree.depth(i)) as usize] =
                keys[(tree.in_order_rank(i) - 1) as usize];
        }
        (arranged, plan)
    }

    #[test]
    fn scalar_kernel_finds_every_key_and_rejects_absent() {
        for layout in NamedLayout::ALL {
            let h = 7;
            let (keys, plan) = plane_for(layout, h);
            let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
            for r in 1..=(1u64 << h) - 1 {
                let p = search(&plane, r * 3).expect("present");
                assert_eq!(keys[p as usize], r * 3, "{layout} rank {r}");
                assert_eq!(search(&plane, r * 3 - 1), None);
            }
        }
    }

    #[test]
    fn interleaved_matches_scalar_at_every_width() {
        let h = 6;
        let (keys, plan) = plane_for(NamedLayout::MinWep, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let probes: Vec<u64> = (0..200u64).collect();
        let scalar: Vec<Option<u64>> = probes.iter().map(|&p| search(&plane, p)).collect();
        for width in [1usize, 2, 3, 5, 8, 16, 64] {
            let mut out = Vec::new();
            search_batch_interleaved(&plane, &probes, width, &mut out);
            assert_eq!(out, scalar, "width {width}");
        }
        // Batch shorter than the width.
        let mut out = Vec::new();
        search_batch_interleaved(&plane, &probes[..3], 16, &mut out);
        assert_eq!(out, scalar[..3]);
        // Empty batch.
        search_batch_interleaved(&plane, &[], 8, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn checksum_equals_sum_of_scalar_hits() {
        let h = 8;
        let (keys, plan) = plane_for(NamedLayout::PreVeb, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let probes: Vec<u64> = (0..1000u64).map(|k| k * 7 % 800).collect();
        let expect = probes
            .iter()
            .filter_map(|&p| search(&plane, p))
            .fold(0u64, u64::wrapping_add);
        assert_eq!(batch_checksum(&plane, &probes, DEFAULT_LANES), expect);
        assert_eq!(batch_checksum(&plane, &probes, 1), expect);
    }

    #[test]
    fn bound_rank_matches_partition_point() {
        let h = 6;
        let (keys, plan) = plane_for(NamedLayout::InVeb, h);
        let plane = ArrayPlane::new(&keys, PosRef::Plan(&plan), h);
        let sorted: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 3).collect();
        for probe in 0..=200u64 {
            let lb = sorted.partition_point(|&k| k < probe) as u64 + 1;
            let ub = sorted.partition_point(|&k| k <= probe) as u64 + 1;
            assert_eq!(bound_rank::<_, false>(&plane, probe), lb, "lb({probe})");
            assert_eq!(bound_rank::<_, true>(&plane, probe), ub, "ub({probe})");
        }
    }

    #[test]
    fn rank_plane_result_positions_match_position_source() {
        // `result_position` must invert the rank locator exactly.
        let h = 7;
        let layout = NamedLayout::MinWep;
        let plan = layout.compile_plan(h).unwrap();
        let sorted: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let plane = RankPlane::new(&sorted, PosRef::Plan(&plan), h);
        let tree = cobtree_core::Tree::new(h);
        for i in tree.nodes() {
            let loc = plane.locate(i, tree.depth(i));
            assert_eq!(
                plane.result_position(loc),
                plan.position(i, tree.depth(i)),
                "node {i}"
            );
        }
    }
}
