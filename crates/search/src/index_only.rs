//! The index-only storage backend: keys in plain sorted order, layout
//! positions computed on demand.
//!
//! This generalizes the paper's §IV-E trick (keys `1..=n` inferred from
//! the BFS index) to arbitrary key sets: the descent compares against
//! the *in-order* key array — no layout-ordered storage exists at all —
//! and the position index is consulted only to *report* layout
//! positions, so results stay interchangeable with the other backends.
//! When the keys really are `1..=n`, [`crate::IndexOnlySearcher`]
//! remains the memory-access-free instrument the paper times.

use crate::backend::SearchBackend;
use crate::kernel::{self, PosRef, RankPlane};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::index::{PositionIndex, StepPlan};
use cobtree_core::Tree;

/// A complete BST stored as a *sorted* key array, searched by BFS
/// descent with positions derived from an owned arithmetic index.
pub struct IndexOnlyTree<K> {
    tree: Tree,
    index: Box<dyn PositionIndex>,
    /// `keys[r - 1]` is the key with in-order rank `r` — i.e. the input
    /// keys verbatim, in sorted order.
    keys: Vec<K>,
    /// Compiled descent plan where the layout has one (`None` for the
    /// generic-interpreter layouts — no table is materialized here, so
    /// building stays O(n) regardless of layout).
    plan: Option<StepPlan>,
}

impl<K: Ord + Copy> IndexOnlyTree<K> {
    /// Builds the backend over `index` and strictly sorted `keys`.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build(index: Box<dyn PositionIndex>, keys: &[K]) -> Result<Self> {
        let tree = Tree::try_new(index.height())?;
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        let plan = index.compile_plan();
        Ok(Self {
            tree,
            index,
            keys: keys.to_vec(),
            plan,
        })
    }

    /// The descent plane the kernels run on: comparisons read the
    /// sorted key array by rank (no layout-ordered storage exists);
    /// positions come from the compiled plan when one exists.
    #[inline]
    fn plane(&self) -> RankPlane<'_, K> {
        let pos = match &self.plan {
            Some(plan) => PosRef::Plan(plan),
            None => PosRef::Index(self.index.as_ref()),
        };
        RankPlane::new(&self.keys, pos, self.tree.height())
    }

    /// Builds the backend, panicking where [`IndexOnlyTree::try_build`]
    /// errors.
    ///
    /// # Panics
    /// See [`IndexOnlyTree::try_build`].
    #[must_use]
    pub fn build(index: Box<dyn PositionIndex>, keys: &[K]) -> Self {
        match Self::try_build(index, keys) {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `false`; at least the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sorted key array.
    #[must_use]
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The position index used to report layout positions.
    #[must_use]
    pub fn index(&self) -> &dyn PositionIndex {
        self.index.as_ref()
    }

    /// Searches for `key`; returns the layout position of the matching
    /// node (computed once, on the match — the kernel's hoisted-equality
    /// descent preserves exactly this discipline).
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        kernel::search(&self.plane(), key)
    }

    /// The pre-kernel descent, kept as the verification oracle.
    #[inline]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let k = self.keys[(self.tree.in_order_rank(i) - 1) as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(self.index.position(i, d)),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Searches while recording the layout position of every visited
    /// node — here every transition pays the full index computation,
    /// exactly the §IV-E cost model.
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            visited.push(p);
            let k = self.keys[(self.tree.in_order_rank(i) - 1) as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Searches an arbitrary-order probe batch on the interleaved
    /// kernel — see [`crate::kernel::fold_interleaved`].
    pub fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        kernel::search_batch_interleaved(&self.plane(), keys, width, out);
    }

    /// Benchmark kernel: sum of found positions, via the shared
    /// interleaved checksum kernel.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        kernel::batch_checksum(&self.plane(), keys, kernel::DEFAULT_LANES)
    }
}

impl<K> std::fmt::Debug for IndexOnlyTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexOnlyTree")
            .field("height", &self.tree.height())
            .field("len", &self.keys.len())
            .finish()
    }
}

impl<K: Ord + Copy> SearchBackend<K> for IndexOnlyTree<K> {
    fn height(&self) -> u32 {
        self.tree.height()
    }

    fn key_count(&self) -> u64 {
        self.keys.len() as u64
    }

    fn search(&self, key: K) -> Option<u64> {
        IndexOnlyTree::search(self, key)
    }

    fn search_reference(&self, key: K) -> Option<u64> {
        IndexOnlyTree::search_reference(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        IndexOnlyTree::search_traced(self, key, visited)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        kernel::search_traced(&self.plane(), key, visited)
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        IndexOnlyTree::search_batch_interleaved(self, keys, width, out);
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        IndexOnlyTree::search_batch_checksum(self, keys)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        // The key array *is* the in-order sequence.
        (rank >= 1 && rank <= self.keys.len() as u64).then(|| self.keys[(rank - 1) as usize])
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        (rank >= 1 && rank <= self.tree.len()).then(|| self.index.position_of_in_order(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitTree;
    use cobtree_core::NamedLayout;

    #[test]
    fn agrees_with_implicit_backend_on_positions() {
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::PreVeb,
            NamedLayout::InOrder,
        ] {
            let h = 8;
            let keys: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 5 + 1).collect();
            let io = IndexOnlyTree::build(layout.indexer(h), &keys);
            let it = ImplicitTree::build(layout.indexer(h), &keys);
            for probe in 0..=keys.len() as u64 * 5 + 2 {
                assert_eq!(io.search(probe), it.search(probe), "{layout} probe {probe}");
            }
        }
    }

    #[test]
    fn traced_positions_match_implicit_trace() {
        let h = 7;
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let io = IndexOnlyTree::build(NamedLayout::HalfWep.indexer(h), &keys);
        let it = ImplicitTree::build(NamedLayout::HalfWep.indexer(h), &keys);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for key in [1u64, 33, 64, 127] {
            a.clear();
            b.clear();
            io.search_traced(key, &mut a);
            it.search_traced(key, &mut b);
            assert_eq!(a, b, "key {key}");
        }
    }

    #[test]
    fn rejects_invalid_keys() {
        let idx = NamedLayout::MinWep.indexer(3);
        assert_eq!(
            IndexOnlyTree::<u64>::try_build(idx, &[]).unwrap_err(),
            Error::EmptyKeys
        );
        let idx = NamedLayout::MinWep.indexer(3);
        assert!(matches!(
            IndexOnlyTree::try_build(idx, &[1u64, 2]).unwrap_err(),
            Error::KeyCountMismatch { .. }
        ));
    }
}
