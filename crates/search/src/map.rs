//! `LayoutMap` — a minimal dynamic ordered set over the static
//! cache-oblivious layouts.
//!
//! The paper treats static complete trees; real deployments (§I cites
//! cache-oblivious B-trees) need updates. Historically this module
//! carried its own private answer — a sorted insertion buffer, a
//! tombstone set and a rebuild-on-growth heuristic. That machinery is
//! now the [`crate::tiered`] subsystem's job: `LayoutMap` is a thin
//! facade over a single-shard, in-memory [`TieredForest`], kept for its
//! small `&mut`-style set API and as the simplest possible entry point
//! to the write path. One write-path story, one set of invariants.
//!
//! Lookups stay cache-oblivious on the compacted bulk; updates cost
//! O(log n) amortized plus the engine's periodic compactions.

use crate::forest::Forest;
use crate::tiered::TieredForest;
use crate::workload::UniformKeys;
use cobtree_core::format::FixedKey;
use cobtree_core::NamedLayout;
use std::sync::Arc;

/// Memtable entry budget of the facade's engine: small enough that the
/// bulk absorbs updates promptly, large enough to amortize rebuilds.
const BUFFER_BUDGET: usize = 256;

/// A dynamic ordered set with cache-oblivious bulk storage — a facade
/// over a single-shard in-memory [`TieredForest`].
///
/// ```
/// use cobtree_search::map::LayoutMap;
///
/// let mut m = LayoutMap::new();
/// for k in [5u64, 1, 9, 3] {
///     assert!(m.insert(k));
/// }
/// assert!(m.contains(&9));
/// assert!(m.remove(&9));
/// assert!(!m.contains(&9));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
/// ```
pub struct LayoutMap<K> {
    layout: NamedLayout,
    tiered: TieredForest<K>,
}

impl<K: FixedKey> Default for LayoutMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: FixedKey> LayoutMap<K> {
    /// Empty map with the MINWEP bulk layout.
    #[must_use]
    pub fn new() -> Self {
        Self::with_layout(NamedLayout::MinWep)
    }

    /// Empty map with a chosen bulk layout (for comparisons).
    #[must_use]
    pub fn with_layout(layout: NamedLayout) -> Self {
        let tiered = TieredForest::builder()
            .layout(layout)
            .shards(1)
            .memtable_entries(BUFFER_BUDGET)
            .build()
            .expect("an empty in-memory engine cannot fail to build");
        Self { layout, tiered }
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::try_from(self.tiered.len()).expect("in-memory set fits usize")
    }

    /// `true` when no live keys remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tiered.is_empty()
    }

    /// The bulk layout in use.
    #[must_use]
    pub fn bulk_layout(&self) -> NamedLayout {
        self.layout
    }

    /// The compacted bulk (the engine's immutable base forest), when
    /// one has been published.
    #[must_use]
    pub fn bulk(&self) -> Option<Arc<Forest<K>>> {
        self.tiered.snapshot().base_arc()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.tiered.contains(*key)
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        self.tiered.insert(key)
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&mut self, key: &K) -> bool {
        self.tiered.remove(*key)
    }

    /// Sorted iteration over the live keys — the engine's three-tier
    /// merge.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        let keys: Vec<K> = self.tiered.snapshot().iter().collect();
        keys.into_iter()
    }

    /// Compacts every buffered update into the bulk (also shrinks).
    pub fn compact(&mut self) {
        self.tiered
            .compact()
            .expect("in-memory compaction cannot fail");
    }

    /// Fills the map with `n` random distinct u64-convertible keys — test
    /// and benchmark helper.
    pub fn extend_random(&mut self, n: usize, seed: u64)
    where
        K: From<u64>,
    {
        for k in UniformKeys::new(u64::MAX - 1, seed).take(n * 2) {
            if self.len() >= n {
                break;
            }
            self.insert(K::from(k));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut m = LayoutMap::new();
        assert!(m.is_empty());
        for k in 0..200u64 {
            assert!(m.insert(k * 3));
            assert!(!m.insert(k * 3), "double insert of {k}");
        }
        assert_eq!(m.len(), 200);
        for k in 0..200u64 {
            assert!(m.contains(&(k * 3)));
            assert!(!m.contains(&(k * 3 + 1)));
        }
        for k in (0..200u64).step_by(2) {
            assert!(m.remove(&(k * 3)));
            assert!(!m.remove(&(k * 3)));
        }
        assert_eq!(m.len(), 100);
        let collected: Vec<u64> = m.iter().collect();
        let expect: Vec<u64> = (0..200u64).filter(|k| k % 2 == 1).map(|k| k * 3).collect();
        assert_eq!(collected, expect);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut m = LayoutMap::with_layout(NamedLayout::MinWep);
        for k in 0..50u64 {
            m.insert(k);
        }
        m.compact();
        for k in 0..50u64 {
            assert!(m.contains(&k), "{k} lost in compaction");
        }
        assert!(!m.contains(&50));
        // Padding keys must be unreachable.
        assert_eq!(m.iter().count(), 50);
        assert_eq!(m.bulk().unwrap().len(), 50);
    }

    #[test]
    fn tombstone_resurrection() {
        let mut m = LayoutMap::new();
        for k in 0..40u64 {
            m.insert(k);
        }
        m.compact();
        assert!(m.remove(&7));
        assert!(!m.contains(&7));
        assert!(m.insert(7));
        assert!(m.contains(&7));
    }

    #[test]
    fn random_ops_match_btreeset() {
        let mut m = LayoutMap::new();
        let mut oracle = BTreeSet::new();
        let mut state = 0x1234_5678_u64;
        for step in 0..3000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(
                    m.insert(key),
                    oracle.insert(key),
                    "step {step} insert {key}"
                ),
                1 => assert_eq!(
                    m.remove(&key),
                    oracle.remove(&key),
                    "step {step} remove {key}"
                ),
                _ => assert_eq!(
                    m.contains(&key),
                    oracle.contains(&key),
                    "step {step} get {key}"
                ),
            }
            assert_eq!(m.len(), oracle.len(), "step {step}");
        }
        let got: Vec<u64> = m.iter().collect();
        let expect: Vec<u64> = oracle.into_iter().collect();
        assert_eq!(got, expect);
    }

    /// Regression test for the remove + compact interaction: interleave
    /// inserts, removes and *explicit* compactions (at several cadences,
    /// so compaction fires with tombstones pending against the bulk in
    /// every configuration) and require exact agreement with `BTreeSet`,
    /// including `len`, after every single operation.
    #[test]
    fn interleaved_remove_and_compact_match_btreeset_exactly() {
        for (cadence, seed) in [(3usize, 1u64), (7, 2), (13, 3), (29, 4)] {
            let mut m = LayoutMap::with_layout(NamedLayout::MinWep);
            let mut oracle = BTreeSet::new();
            let mut state = seed;
            for step in 0..1500usize {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = (state >> 33) % 200;
                if state % 2 == 0 {
                    assert_eq!(
                        m.insert(key),
                        oracle.insert(key),
                        "cadence {cadence} step {step} insert {key}"
                    );
                } else {
                    assert_eq!(
                        m.remove(&key),
                        oracle.remove(&key),
                        "cadence {cadence} step {step} remove {key}"
                    );
                }
                if step % cadence == 0 {
                    m.compact();
                }
                assert_eq!(m.len(), oracle.len(), "cadence {cadence} step {step} len");
                assert_eq!(
                    m.contains(&key),
                    oracle.contains(&key),
                    "cadence {cadence} step {step} readback {key}"
                );
            }
            let got: Vec<u64> = m.iter().collect();
            let expect: Vec<u64> = oracle.iter().copied().collect();
            assert_eq!(got, expect, "cadence {cadence} final contents");
            // One more compaction must be a no-op on the contents.
            m.compact();
            assert_eq!(m.iter().collect::<Vec<_>>(), expect, "cadence {cadence}");
            assert_eq!(m.len(), expect.len());
        }
    }

    #[test]
    fn works_with_every_bulk_layout() {
        for layout in [
            NamedLayout::PreVeb,
            NamedLayout::InOrder,
            NamedLayout::HalfWep,
        ] {
            let mut m = LayoutMap::with_layout(layout);
            for k in 0..100u64 {
                m.insert(k ^ 0x55);
            }
            m.compact();
            for k in 0..100u64 {
                assert!(m.contains(&(k ^ 0x55)), "{layout}");
            }
        }
    }
}
