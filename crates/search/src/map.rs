//! `LayoutMap` — a dynamic ordered set on top of static cache-oblivious
//! layouts.
//!
//! The paper treats static complete trees; real deployments (§I cites
//! cache-oblivious B-trees) need updates. `LayoutMap` provides the
//! classical amortized answer: a static laid-out [`SearchTree`] holding
//! the bulk of the keys, a small sorted insertion buffer, a tombstone
//! set for deletions, and a full rebuild whenever the side structures
//! outgrow a fraction of the tree. Lookups stay cache-oblivious on the
//! bulk; updates cost O(log n) amortized plus periodic O(n) rebuilds.
//!
//! Since the ordered-query redesign, the bulk is a plain
//! [`SearchTree`] and every bulk access goes through its public query
//! API — membership via [`SearchTree::contains`], in-order iteration via
//! the [`crate::cursor::Range`] cursor ([`SearchTree::range`]) — rather
//! than a private slot-probing descent. Padding and layout arithmetic
//! live in one place now.

use crate::facade::{SearchTree, Storage};
use crate::workload::UniformKeys;
use cobtree_core::NamedLayout;

/// A dynamic ordered set with cache-oblivious bulk storage.
///
/// ```
/// use cobtree_search::map::LayoutMap;
///
/// let mut m = LayoutMap::new();
/// for k in [5u64, 1, 9, 3] {
///     assert!(m.insert(k));
/// }
/// assert!(m.contains(&9));
/// assert!(m.remove(&9));
/// assert!(!m.contains(&9));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
/// ```
pub struct LayoutMap<K> {
    layout: NamedLayout,
    /// The static bulk tree; `None` until the first compaction (or when
    /// every key was compacted away).
    bulk: Option<SearchTree<K>>,
    /// Number of live keys in the bulk (excludes tombstones).
    bulk_live: usize,
    /// Pending insertions, sorted.
    buffer: Vec<K>,
    /// Keys deleted from the bulk, sorted.
    tombstones: Vec<K>,
}

impl<K: Ord + Copy> Default for LayoutMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> LayoutMap<K> {
    /// Empty map with the MINWEP bulk layout.
    #[must_use]
    pub fn new() -> Self {
        Self::with_layout(NamedLayout::MinWep)
    }

    /// Empty map with a chosen bulk layout (for comparisons).
    #[must_use]
    pub fn with_layout(layout: NamedLayout) -> Self {
        Self {
            layout,
            bulk: None,
            bulk_live: 0,
            buffer: Vec::new(),
            tombstones: Vec::new(),
        }
    }

    /// Number of live keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bulk_live + self.buffer.len()
    }

    /// `true` when no live keys remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bulk layout in use.
    #[must_use]
    pub fn bulk_layout(&self) -> NamedLayout {
        self.layout
    }

    /// The static bulk tree, when one has been compacted.
    #[must_use]
    pub fn bulk(&self) -> Option<&SearchTree<K>> {
        self.bulk.as_ref()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        if self.buffer.binary_search(key).is_ok() {
            return true;
        }
        if self.tombstones.binary_search(key).is_ok() {
            return false;
        }
        self.bulk.as_ref().is_some_and(|t| t.contains(*key))
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        if let Ok(t) = self.tombstones.binary_search(&key) {
            self.tombstones.remove(t);
            self.bulk_live += 1;
            self.maybe_rebuild();
            return true;
        }
        if self.contains(&key) {
            return false;
        }
        let at = self.buffer.binary_search(&key).unwrap_err();
        self.buffer.insert(at, key);
        self.maybe_rebuild();
        true
    }

    /// Removes `key`; returns `false` if it was absent.
    pub fn remove(&mut self, key: &K) -> bool {
        if let Ok(b) = self.buffer.binary_search(key) {
            self.buffer.remove(b);
            return true;
        }
        if self.tombstones.binary_search(key).is_ok() {
            return false;
        }
        if self.bulk.as_ref().is_some_and(|t| t.contains(*key)) {
            let at = self.tombstones.binary_search(key).unwrap_err();
            self.tombstones.insert(at, *key);
            self.bulk_live -= 1;
            self.maybe_rebuild();
            return true;
        }
        false
    }

    /// Sorted iteration over the live keys: the bulk tree's range cursor
    /// (minus tombstones) merged with the insertion buffer.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        let bulk = self
            .bulk
            .as_ref()
            .map(|t| t.range(..))
            .into_iter()
            .flatten()
            .filter(|k| self.tombstones.binary_search(k).is_err());
        MergeIter {
            a: bulk.peekable(),
            b: self.buffer.iter().copied().peekable(),
        }
    }

    /// Rebuilds the static tree from all live keys (also shrinks).
    pub fn compact(&mut self) {
        let keys: Vec<K> = self.iter().collect();
        self.buffer.clear();
        self.tombstones.clear();
        self.bulk_live = keys.len();
        self.bulk = if keys.is_empty() {
            None
        } else {
            Some(
                SearchTree::builder()
                    .layout(self.layout)
                    .storage(Storage::Implicit)
                    .keys(keys)
                    .build()
                    .expect("live keys are strictly sorted and non-empty"),
            )
        };
    }

    fn maybe_rebuild(&mut self) {
        let side = self.buffer.len() + self.tombstones.len();
        if side > 8 && side * 4 > self.bulk_live.max(1) {
            self.compact();
        }
    }

    /// Fills the map with `n` random distinct u64-convertible keys — test
    /// and benchmark helper.
    pub fn extend_random(&mut self, n: usize, seed: u64)
    where
        K: From<u64>,
    {
        for k in UniformKeys::new(u64::MAX - 1, seed).take(n * 2) {
            if self.len() >= n {
                break;
            }
            self.insert(K::from(k));
        }
    }
}

struct MergeIter<A: Iterator<Item = K>, B: Iterator<Item = K>, K> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A, B, K> Iterator for MergeIter<A, B, K>
where
    K: Ord + Copy,
    A: Iterator<Item = K>,
    B: Iterator<Item = K>,
{
    type Item = K;

    fn next(&mut self) -> Option<K> {
        match (self.a.peek(), self.b.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut m = LayoutMap::new();
        assert!(m.is_empty());
        for k in 0..200u64 {
            assert!(m.insert(k * 3));
            assert!(!m.insert(k * 3), "double insert of {k}");
        }
        assert_eq!(m.len(), 200);
        for k in 0..200u64 {
            assert!(m.contains(&(k * 3)));
            assert!(!m.contains(&(k * 3 + 1)));
        }
        for k in (0..200u64).step_by(2) {
            assert!(m.remove(&(k * 3)));
            assert!(!m.remove(&(k * 3)));
        }
        assert_eq!(m.len(), 100);
        let collected: Vec<u64> = m.iter().collect();
        let expect: Vec<u64> = (0..200u64).filter(|k| k % 2 == 1).map(|k| k * 3).collect();
        assert_eq!(collected, expect);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut m = LayoutMap::with_layout(NamedLayout::MinWep);
        for k in 0..50u64 {
            m.insert(k);
        }
        m.compact();
        for k in 0..50u64 {
            assert!(m.contains(&k), "{k} lost in compaction");
        }
        assert!(!m.contains(&50));
        // Padding keys must be unreachable.
        assert_eq!(m.iter().count(), 50);
        assert_eq!(m.bulk().unwrap().len(), 50);
    }

    #[test]
    fn tombstone_resurrection() {
        let mut m = LayoutMap::new();
        for k in 0..40u64 {
            m.insert(k);
        }
        m.compact();
        assert!(m.remove(&7));
        assert!(!m.contains(&7));
        assert!(m.insert(7));
        assert!(m.contains(&7));
    }

    #[test]
    fn random_ops_match_btreeset() {
        let mut m = LayoutMap::new();
        let mut oracle = BTreeSet::new();
        let mut state = 0x1234_5678_u64;
        for step in 0..3000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 500;
            match state % 3 {
                0 => assert_eq!(
                    m.insert(key),
                    oracle.insert(key),
                    "step {step} insert {key}"
                ),
                1 => assert_eq!(
                    m.remove(&key),
                    oracle.remove(&key),
                    "step {step} remove {key}"
                ),
                _ => assert_eq!(
                    m.contains(&key),
                    oracle.contains(&key),
                    "step {step} get {key}"
                ),
            }
            assert_eq!(m.len(), oracle.len(), "step {step}");
        }
        let got: Vec<u64> = m.iter().collect();
        let expect: Vec<u64> = oracle.into_iter().collect();
        assert_eq!(got, expect);
    }

    /// Regression test for the remove + compact interaction: interleave
    /// inserts, removes and *explicit* compactions (at several cadences,
    /// so compaction fires with tombstones pending against the bulk in
    /// every configuration) and require exact agreement with `BTreeSet`,
    /// including `len`, after every single operation.
    #[test]
    fn interleaved_remove_and_compact_match_btreeset_exactly() {
        for (cadence, seed) in [(3usize, 1u64), (7, 2), (13, 3), (29, 4)] {
            let mut m = LayoutMap::with_layout(NamedLayout::MinWep);
            let mut oracle = BTreeSet::new();
            let mut state = seed;
            for step in 0..1500usize {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let key = (state >> 33) % 200;
                if state % 2 == 0 {
                    assert_eq!(
                        m.insert(key),
                        oracle.insert(key),
                        "cadence {cadence} step {step} insert {key}"
                    );
                } else {
                    assert_eq!(
                        m.remove(&key),
                        oracle.remove(&key),
                        "cadence {cadence} step {step} remove {key}"
                    );
                }
                if step % cadence == 0 {
                    m.compact();
                }
                assert_eq!(m.len(), oracle.len(), "cadence {cadence} step {step} len");
                assert_eq!(
                    m.contains(&key),
                    oracle.contains(&key),
                    "cadence {cadence} step {step} readback {key}"
                );
            }
            let got: Vec<u64> = m.iter().collect();
            let expect: Vec<u64> = oracle.iter().copied().collect();
            assert_eq!(got, expect, "cadence {cadence} final contents");
            // One more compaction must be a no-op on the contents.
            m.compact();
            assert_eq!(m.iter().collect::<Vec<_>>(), expect, "cadence {cadence}");
            assert_eq!(m.len(), expect.len());
        }
    }

    #[test]
    fn works_with_every_bulk_layout() {
        for layout in [
            NamedLayout::PreVeb,
            NamedLayout::InOrder,
            NamedLayout::HalfWep,
        ] {
            let mut m = LayoutMap::with_layout(layout);
            for k in 0..100u64 {
                m.insert(k ^ 0x55);
            }
            m.compact();
            for k in 0..100u64 {
                assert!(m.contains(&(k ^ 0x55)), "{layout}");
            }
        }
    }
}
