//! The tiered write path: an LSM-style mutable engine over immutable
//! `.cobt` shards — [`TieredForest`].
//!
//! Lindstrom & Rajan's layouts are inherently *static*: the position of
//! every node is a pure function of the tree height, which is exactly
//! what makes descents pointer-free and cache-optimal — and exactly
//! what makes in-place mutation impossible. The standard systems answer
//! (the one mutable B-tree comparisons implicitly assume) is to keep
//! the cache-optimal artifacts immutable and absorb writes in a small
//! mutable tier that is periodically compacted into fresh immutable
//! files. This module is that answer for the forest:
//!
//! * a **memtable** — two sorted vectors, pending *inserts* and
//!   pending *tombstones* (removals of keys that live in the tiers
//!   below) — absorbs every [`TieredForest::insert`] /
//!   [`TieredForest::remove`] in `O(log m + m)` time, bounded by a
//!   configurable entry/byte budget;
//! * the **base** is an ordinary immutable [`Forest`] (any layout,
//!   mapped storage when the engine is backed by a directory), serving
//!   point probes through the same compiled descent kernels as the
//!   read-only engine;
//! * **compaction** drains the memtable into a *frozen* buffer, merges
//!   it with the affected shards into freshly built `.cobt` files
//!   (untouched shards are carried forward by file generation, not
//!   rewritten), and publishes the result atomically by writing a new
//!   versioned `.cobf` manifest (`forest-e{epoch:08}.cobf`) and
//!   swapping the in-memory tiers under a brief write lock. Readers
//!   never block on compaction and never observe a torn state: every
//!   query runs against one consistent `(base, frozen, mem)` triple.
//!
//! # Rank arithmetic across tiers
//!
//! The merged read path exposes the *full* ordered-map API — point and
//! locate, lower/upper bounds, rank/select, cursors and ranges, sorted
//! batch search — with global ranks that are correct in the presence of
//! pending tombstones. The invariant that makes this cheap: the
//! memtable's inserts are disjoint from the live set below it, and its
//! tombstones are a subset of that live set. Then for any key `x`
//!
//! ```text
//! count_le(x) = base≤(x) + frozen.ins≤(x) + mem.ins≤(x)
//!             − frozen.tomb≤(x) − mem.tomb≤(x)
//! ```
//!
//! — five binary searches — and every bound/rank/select/cursor/range
//! operation is derived from that one formula, so a `TieredForest`
//! answers exactly what one `BTreeSet` holding the live keys would.
//!
//! # Crash consistency
//!
//! Shard files are named by a store-wide **generation**
//! (`shard-g{generation:08}.cobt`), never reused; manifests are named
//! by **epoch** and written last. A crash mid-compaction leaves at
//! worst a partial shard file and/or a partial manifest for the new
//! epoch — both fail their checksums on open, and
//! [`TieredForest::open`] falls back to the newest *fully valid*
//! manifest, whose shard files are untouched by construction. Obsolete
//! files are deleted only after a successful publish.
//!
//! ```
//! use cobtree_search::TieredForest;
//!
//! let dir = std::env::temp_dir().join(format!("cobtree-tiered-mod-{}", std::process::id()));
//! let engine = TieredForest::<u64>::builder()
//!     .shards(2)
//!     .keys((1..=1_000u64).map(|k| k * 2))
//!     .path(&dir)
//!     .build()?;
//! engine.insert(7);
//! engine.remove(4);
//! assert_eq!(engine.len(), 1_000); // +1 insert, −1 tombstone
//! assert_eq!(engine.select(4), Some(8)); // rank sees both tiers: 2, 6, 7, 8
//! engine.flush()?; // drain the memtable into fresh shard files
//! assert_eq!(engine.len(), 1_000);
//! assert!(engine.contains(7) && !engine.contains(4));
//! drop(engine);
//! std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), cobtree_core::Error>(())
//! ```

use crate::facade::{SaveOptions, SearchTree, Storage};
use crate::forest::{Forest, ForestRange, ScrubReport};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::format::{self, FixedKey, ManifestV2, ShardRecord};
use cobtree_core::io::{FaultIo, FaultKind, FaultRule, IoOp, RealIo, StorageIo};
use cobtree_core::NamedLayout;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// File name of the manifest published at `epoch` inside a tiered
/// store directory.
#[must_use]
pub fn tiered_manifest_name(epoch: u64) -> String {
    format!("forest-e{epoch:08}.cobf")
}

/// File name of the shard tree with store-wide file id `generation`
/// inside a tiered store directory. Generations are never reused, so a
/// carried-forward shard keeps its file across epochs and a crashed
/// compaction can never clobber a live shard.
#[must_use]
pub fn tiered_shard_name(generation: u64) -> String {
    format!("shard-g{generation:08}.cobt")
}

/// Parses `"{prefix}{digits}{suffix}"` file names back to their number.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Configuration and builder
// ---------------------------------------------------------------------------

/// Tuning knobs of a [`TieredForest`].
#[derive(Debug, Clone)]
pub struct TieredConfig {
    /// Layout every compacted shard tree is built with.
    pub layout: NamedLayout,
    /// Partition slot count used by full compactions ([`TieredForest::compact`]).
    pub shards: usize,
    /// Memtable entry budget; one more write triggers a flush. `0`
    /// flushes after every write.
    pub memtable_entries: usize,
    /// Memtable byte budget (entries × key width); crossing it triggers
    /// a flush even below the entry budget.
    pub memtable_bytes: usize,
    /// The storage seam every durable write, recovery read and scrub
    /// read goes through. [`RealIo`] in production; a
    /// [`FaultIo`] schedule turns the same engine into a deterministic
    /// chaos rig.
    pub io: Arc<dyn StorageIo>,
}

impl Default for TieredConfig {
    fn default() -> Self {
        Self {
            layout: NamedLayout::MinWep,
            shards: 4,
            memtable_entries: 4096,
            memtable_bytes: 1 << 20,
            io: Arc::new(RealIo),
        }
    }
}

impl TieredConfig {
    /// Whether a memtable holding `entries` keys of `width` bytes has
    /// outgrown its budgets.
    fn over_budget(&self, entries: usize, width: usize) -> bool {
        entries > self.memtable_entries || entries.saturating_mul(width) > self.memtable_bytes
    }
}

/// Builder for [`TieredForest`] — layout/shard/budget knobs, an
/// optional backing directory, optional seed keys, and the choice of
/// inline vs background compaction.
pub struct TieredBuilder<K> {
    cfg: TieredConfig,
    dir: Option<PathBuf>,
    keys: Vec<K>,
    background: bool,
}

impl<K> Default for TieredBuilder<K> {
    fn default() -> Self {
        Self {
            cfg: TieredConfig::default(),
            dir: None,
            keys: Vec::new(),
            background: false,
        }
    }
}

impl<K: FixedKey> TieredBuilder<K> {
    /// Sets the layout compacted shards are built with.
    #[must_use]
    pub fn layout(mut self, layout: NamedLayout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// Sets the partition slot count for full compactions (min 1).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Sets the memtable entry budget (a write pushing the memtable
    /// past it triggers a flush; `0` = flush after every write).
    #[must_use]
    pub fn memtable_entries(mut self, entries: usize) -> Self {
        self.cfg.memtable_entries = entries;
        self
    }

    /// Sets the memtable byte budget.
    #[must_use]
    pub fn memtable_bytes(mut self, bytes: usize) -> Self {
        self.cfg.memtable_bytes = bytes;
        self
    }

    /// Backs the engine by `dir`: compactions publish mapped `.cobt`
    /// shard files plus an epoch-versioned manifest there, and
    /// `build()` re-opens whatever the newest valid manifest describes.
    /// Without a path the engine is purely in-memory.
    #[must_use]
    pub fn path(mut self, dir: impl AsRef<Path>) -> Self {
        self.dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Seeds the engine with a strictly ascending key set, compacted
    /// into the base tier before `build()` returns.
    #[must_use]
    pub fn keys(mut self, keys: impl IntoIterator<Item = K>) -> Self {
        self.keys = keys.into_iter().collect();
        self
    }

    /// Runs compaction on a background thread woken by budget-crossing
    /// writes, instead of inline on the writing thread.
    #[must_use]
    pub fn background(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Installs the storage seam (default [`RealIo`]); pass a
    /// [`FaultIo`] schedule to drive the whole engine — publishes,
    /// recovery, scrubbing — through scripted failures.
    #[must_use]
    pub fn io(mut self, io: Arc<dyn StorageIo>) -> Self {
        self.cfg.io = io;
        self
    }

    /// Builds the engine: opens (or initializes) the backing store,
    /// seeds and compacts the optional key set, and starts the
    /// background worker when requested.
    ///
    /// # Errors
    /// I/O and format errors from opening an existing store;
    /// [`Error::UnsortedKeys`] on an unsorted seed set.
    pub fn build(self) -> Result<TieredForest<K>> {
        let shared = Arc::new(match &self.dir {
            Some(dir) => Shared::open_dir(dir, self.cfg)?,
            None => Shared::fresh(self.cfg, None),
        });
        if !self.keys.is_empty() {
            check_sorted_keys(&self.keys)?;
            {
                let mut tiers = shared.write_tiers();
                if tiers.is_blank() {
                    tiers.mem.inserts = self.keys;
                } else {
                    for key in self.keys {
                        tiers.insert(key);
                    }
                }
            }
            shared.flush(FlushMode::Full, None)?;
        }
        let worker = if self.background {
            let arc = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("cobtree-tiered-compaction".into())
                    .spawn(move || worker_loop(&arc))
                    .map_err(|e| Error::io(&e))?,
            )
        } else {
            None
        };
        Ok(TieredForest { shared, worker })
    }
}

// ---------------------------------------------------------------------------
// Memtable
// ---------------------------------------------------------------------------

/// The mutable tier: pending inserts and pending tombstones, each a
/// strictly ascending vector. Invariants relative to the tier below
/// (`E` = its live key set): `inserts ∩ E = ∅`, `tombstones ⊆ E`,
/// `inserts ∩ tombstones = ∅`.
#[derive(Debug, Clone)]
struct Memtable<K> {
    inserts: Vec<K>,
    tombstones: Vec<K>,
}

impl<K> Default for Memtable<K> {
    fn default() -> Self {
        Self {
            inserts: Vec::new(),
            tombstones: Vec::new(),
        }
    }
}

/// Entries of `slice` at or below `x` (the slice is sorted ascending).
fn at_or_below<K: Ord>(slice: &[K], x: K) -> u64 {
    slice.partition_point(|k| *k <= x) as u64
}

/// Entries of `slice` strictly below `x`.
fn below<K: Ord>(slice: &[K], x: K) -> u64 {
    slice.partition_point(|k| *k < x) as u64
}

/// Sorted-slice membership test.
fn has<K: Ord>(slice: &[K], x: K) -> bool {
    slice.binary_search(&x).is_ok()
}

/// The sub-slice of sorted `slice` inside `bounds`.
fn window<'s, K: Ord + Copy>(slice: &'s [K], bounds: &(Bound<K>, Bound<K>)) -> &'s [K] {
    let lo = match bounds.0 {
        Bound::Unbounded => 0,
        Bound::Included(x) => slice.partition_point(|k| *k < x),
        Bound::Excluded(x) => slice.partition_point(|k| *k <= x),
    };
    let hi = match bounds.1 {
        Bound::Unbounded => slice.len(),
        Bound::Included(x) => slice.partition_point(|k| *k <= x),
        Bound::Excluded(x) => slice.partition_point(|k| *k < x),
    };
    &slice[lo..hi.max(lo)]
}

impl<K: Ord + Copy> Memtable<K> {
    fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.tombstones.is_empty()
    }

    fn entries(&self) -> usize {
        self.inserts.len() + self.tombstones.len()
    }

    /// Folds a *younger* memtable into `self` (the frozen tier): the
    /// result expresses both deltas relative to the tier below `self`.
    /// A younger tombstone cancels an older insert of the same key; a
    /// younger insert cancels an older tombstone.
    fn absorb(&mut self, younger: Memtable<K>) {
        for key in younger.tombstones {
            if let Ok(i) = self.inserts.binary_search(&key) {
                self.inserts.remove(i);
            } else {
                let at = self.tombstones.binary_search(&key).unwrap_err();
                self.tombstones.insert(at, key);
            }
        }
        for key in younger.inserts {
            if let Ok(i) = self.tombstones.binary_search(&key) {
                self.tombstones.remove(i);
            } else {
                let at = self.inserts.binary_search(&key).unwrap_err();
                self.inserts.insert(at, key);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Merged read view
// ---------------------------------------------------------------------------

/// Which tier served a [`TieredHit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPlace {
    /// The immutable base forest: dense shard index plus the 0-based
    /// layout position inside that shard's tree.
    Shard {
        /// Dense shard index into the base [`Forest`].
        shard: usize,
        /// 0-based layout position inside the shard's tree.
        position: u64,
    },
    /// The mutable buffer tiers (active memtable or in-flight frozen
    /// buffer) — no layout position exists yet.
    Buffer,
}

/// Where a found key lives inside a [`TieredForest`]: its engine-wide
/// 1-based in-order rank (tombstone-adjusted) and the tier that holds
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredHit {
    /// 1-based in-order rank among the *live* keys of the engine.
    pub rank: u64,
    /// The tier serving the key.
    pub place: TierPlace,
}

/// A borrowed consistent view over the three tiers — every ordered-map
/// answer is computed here, shared by [`TieredForest`] (under its read
/// lock) and [`TieredSnapshot`] (over owned tiers).
#[derive(Clone, Copy)]
struct View<'a, K> {
    base: Option<&'a Forest<K>>,
    frozen: &'a Memtable<K>,
    mem: &'a Memtable<K>,
}

impl<'a, K: Ord + Copy> View<'a, K> {
    fn len(&self) -> u64 {
        let adds = self.base.map_or(0, Forest::len)
            + self.frozen.inserts.len() as u64
            + self.mem.inserts.len() as u64;
        adds - (self.frozen.tombstones.len() + self.mem.tombstones.len()) as u64
    }

    /// Live keys `<= x` — the one formula everything else derives from.
    /// Additions are summed before tombstones are subtracted: the
    /// invariants guarantee every tombstone `<= x` is matched by a
    /// counted addition, so the subtraction cannot underflow.
    fn count_le(&self, x: K) -> u64 {
        let adds = self.base.map_or(0, |f| f.upper_bound_rank(x) - 1)
            + at_or_below(&self.frozen.inserts, x)
            + at_or_below(&self.mem.inserts, x);
        adds - at_or_below(&self.frozen.tombstones, x) - at_or_below(&self.mem.tombstones, x)
    }

    /// Live keys `< x`.
    fn count_lt(&self, x: K) -> u64 {
        let adds = self.base.map_or(0, |f| f.rank(x))
            + below(&self.frozen.inserts, x)
            + below(&self.mem.inserts, x);
        adds - below(&self.frozen.tombstones, x) - below(&self.mem.tombstones, x)
    }

    /// Tier resolution order for membership: the youngest tier that
    /// mentions a key decides.
    fn contains(&self, x: K) -> bool {
        if has(&self.mem.inserts, x) {
            return true;
        }
        if has(&self.mem.tombstones, x) {
            return false;
        }
        if has(&self.frozen.inserts, x) {
            return true;
        }
        if has(&self.frozen.tombstones, x) {
            return false;
        }
        self.base.is_some_and(|f| f.contains(x))
    }

    /// Resolves a key against the buffer tiers alone: `Some(found)`
    /// when the memtable or frozen buffer decides, `None` when the
    /// probe must descend into the base forest.
    fn buffer_lookup(&self, x: K) -> Option<bool> {
        if has(&self.mem.inserts, x) || has(&self.frozen.inserts, x) {
            // An insert shadowed by a younger tombstone was cancelled
            // on entry, so any insert hit is live.
            return Some(!has(&self.mem.tombstones, x));
        }
        if has(&self.mem.tombstones, x) || has(&self.frozen.tombstones, x) {
            return Some(false);
        }
        None
    }

    fn locate(&self, x: K) -> Option<TieredHit> {
        if !self.contains(x) {
            return None;
        }
        let rank = self.count_le(x);
        let place = if has(&self.mem.inserts, x) || has(&self.frozen.inserts, x) {
            TierPlace::Buffer
        } else {
            let hit = self.base?.locate(x)?;
            TierPlace::Shard {
                shard: hit.shard,
                position: hit.position,
            }
        };
        Some(TieredHit { rank, place })
    }

    /// The base key that would hold engine rank `r`, if any: the first
    /// base key whose engine-wide `count_le` reaches `r` (monotone in
    /// the base rank, hence a binary search).
    fn base_candidate(&self, r: u64) -> Option<K> {
        let f = self.base?;
        let (mut lo, mut hi) = (1u64, f.len());
        if self.count_le(f.select(hi)?) < r {
            return None;
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let key = f.select(mid).expect("mid is a valid base rank");
            if self.count_le(key) >= r {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        f.select(lo)
    }

    /// The buffered insert that would hold engine rank `r`, if any.
    fn slice_candidate(&self, slice: &[K], r: u64) -> Option<K> {
        let i = slice.partition_point(|&k| self.count_le(k) < r);
        slice.get(i).copied()
    }

    /// Selects the live key of engine-wide rank `r`: each tier proposes
    /// its first key reaching `count_le == r`; the (unique) proposal
    /// that is live *and* lands exactly on `r` is the answer.
    fn select(&self, r: u64) -> Option<K> {
        if r == 0 || r > self.len() {
            return None;
        }
        let candidates = [
            self.base_candidate(r),
            self.slice_candidate(&self.frozen.inserts, r),
            self.slice_candidate(&self.mem.inserts, r),
        ];
        let mut best: Option<K> = None;
        for key in candidates.into_iter().flatten() {
            if self.count_le(key) == r && self.contains(key) {
                best = Some(best.map_or(key, |b: K| b.min(key)));
            }
        }
        best
    }

    fn lower_bound_rank(&self, x: K) -> u64 {
        self.count_lt(x) + 1
    }

    fn upper_bound_rank(&self, x: K) -> u64 {
        self.count_le(x) + 1
    }

    fn lower_bound(&self, x: K) -> Option<K> {
        self.select(self.count_lt(x) + 1)
    }

    fn upper_bound(&self, x: K) -> Option<K> {
        self.select(self.count_le(x) + 1)
    }

    fn predecessor(&self, x: K) -> Option<K> {
        self.select(self.count_lt(x))
    }

    fn successor(&self, x: K) -> Option<K> {
        self.upper_bound(x)
    }

    fn rank_checksum(&self, probes: &[K]) -> u64 {
        let mut acc = 0u64;
        for &p in probes {
            if self.contains(p) {
                acc = acc.wrapping_add(self.count_le(p));
            }
        }
        acc
    }

    fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<TieredHit>>) -> Result<()> {
        if let Some(i) = keys.windows(2).position(|w| w[0] > w[1]) {
            return Err(Error::UnsortedBatch { index: i });
        }
        let mut base_hits: Vec<Option<(usize, u64)>> = Vec::new();
        if let Some(f) = self.base {
            f.search_sorted_batch(keys, &mut base_hits)?;
        } else {
            base_hits.resize(keys.len(), None);
        }
        out.clear();
        for (i, &key) in keys.iter().enumerate() {
            let hit = match self.buffer_lookup(key) {
                Some(false) => None,
                Some(true) => Some(TierPlace::Buffer),
                None => base_hits[i].map(|(shard, position)| TierPlace::Shard { shard, position }),
            };
            out.push(hit.map(|place| TieredHit {
                rank: self.count_le(key),
                place,
            }));
        }
        Ok(())
    }

    fn range(&self, bounds: &(Bound<K>, Bound<K>)) -> TieredRange<'a, K> {
        let hi = match bounds.1 {
            Bound::Unbounded => self.len(),
            Bound::Included(x) => self.count_le(x),
            Bound::Excluded(x) => self.count_lt(x),
        };
        let lo = match bounds.0 {
            Bound::Unbounded => 0,
            Bound::Included(x) => self.count_lt(x),
            Bound::Excluded(x) => self.count_le(x),
        };
        let remaining = hi.saturating_sub(lo);
        let base = self.base.filter(|_| remaining > 0).map(|f| Filtered {
            inner: f.range((bounds.0, bounds.1)),
            dead_a: &self.frozen.tombstones[..],
            dead_b: &self.mem.tombstones[..],
        });
        let frozen = Filtered {
            inner: window(&self.frozen.inserts, bounds).iter().copied(),
            dead_a: &self.mem.tombstones[..],
            dead_b: &[][..],
        };
        let mem = Filtered {
            inner: window(&self.mem.inserts, bounds).iter().copied(),
            dead_a: &[][..],
            dead_b: &[][..],
        };
        TieredRange {
            base: DePeek::new(base),
            frozen: DePeek::new(Some(frozen)),
            mem: DePeek::new(Some(mem)),
            remaining,
        }
    }
}

// ---------------------------------------------------------------------------
// Ranges and cursors
// ---------------------------------------------------------------------------

/// A double-ended stream with tombstone filtering: yields `inner`'s
/// keys that appear in neither sorted dead-list.
struct Filtered<'a, K, I> {
    inner: I,
    dead_a: &'a [K],
    dead_b: &'a [K],
}

impl<K: Ord + Copy, I: Iterator<Item = K>> Iterator for Filtered<'_, K, I> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        loop {
            let key = self.inner.next()?;
            if !has(self.dead_a, key) && !has(self.dead_b, key) {
                return Some(key);
            }
        }
    }
}

impl<K: Ord + Copy, I: DoubleEndedIterator<Item = K>> DoubleEndedIterator for Filtered<'_, K, I> {
    fn next_back(&mut self) -> Option<K> {
        loop {
            let key = self.inner.next_back()?;
            if !has(self.dead_a, key) && !has(self.dead_b, key) {
                return Some(key);
            }
        }
    }
}

/// A double-ended peekable wrapper: buffers one key at each end so the
/// three-way merge can compare stream heads without consuming them.
/// When the underlying stream runs dry the opposite-end buffer is the
/// last remaining element and migrates to whichever end peeks first.
struct DePeek<I: Iterator> {
    inner: Option<I>,
    front: Option<I::Item>,
    back: Option<I::Item>,
}

impl<K: Copy, I: DoubleEndedIterator<Item = K>> DePeek<I> {
    fn new(inner: Option<I>) -> Self {
        Self {
            inner,
            front: None,
            back: None,
        }
    }

    fn peek_front(&mut self) -> Option<K> {
        if self.front.is_none() {
            self.front = self
                .inner
                .as_mut()
                .and_then(Iterator::next)
                .or_else(|| self.back.take());
        }
        self.front
    }

    fn pop_front(&mut self) -> Option<K> {
        let key = self.peek_front();
        self.front = None;
        key
    }

    fn peek_back(&mut self) -> Option<K> {
        if self.back.is_none() {
            self.back = self
                .inner
                .as_mut()
                .and_then(DoubleEndedIterator::next_back)
                .or_else(|| self.front.take());
        }
        self.back
    }

    fn pop_back(&mut self) -> Option<K> {
        let key = self.peek_back();
        self.back = None;
        key
    }
}

type SliceStream<'a, K> = Filtered<'a, K, std::iter::Copied<std::slice::Iter<'a, K>>>;
type BaseStream<'a, K> = Filtered<'a, K, ForestRange<'a, K>>;

/// A double-ended in-order iterator over the live keys of a bounds
/// window, merging the three tiers on the fly: the base stream skips
/// tombstoned keys, the frozen stream skips re-tombstoned inserts, and
/// the streams are pairwise disjoint after filtering — so the merge is
/// a plain three-way min/max selection. Exact-size: the remaining count
/// is known up front from the tier count arithmetic.
pub struct TieredRange<'a, K: Ord + Copy> {
    base: DePeek<BaseStream<'a, K>>,
    frozen: DePeek<SliceStream<'a, K>>,
    mem: DePeek<SliceStream<'a, K>>,
    remaining: u64,
}

impl<K: Ord + Copy> Iterator for TieredRange<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let heads = [
            self.base.peek_front(),
            self.frozen.peek_front(),
            self.mem.peek_front(),
        ];
        let best = heads.into_iter().flatten().min()?;
        if self.base.peek_front() == Some(best) {
            self.base.pop_front()
        } else if self.frozen.peek_front() == Some(best) {
            self.frozen.pop_front()
        } else {
            self.mem.pop_front()
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).expect("range fits usize");
        (n, Some(n))
    }
}

impl<K: Ord + Copy> DoubleEndedIterator for TieredRange<'_, K> {
    fn next_back(&mut self) -> Option<K> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let tails = [
            self.base.peek_back(),
            self.frozen.peek_back(),
            self.mem.peek_back(),
        ];
        let best = tails.into_iter().flatten().max()?;
        if self.base.peek_back() == Some(best) {
            self.base.pop_back()
        } else if self.frozen.peek_back() == Some(best) {
            self.frozen.pop_back()
        } else {
            self.mem.pop_back()
        }
    }
}

impl<K: Ord + Copy> ExactSizeIterator for TieredRange<'_, K> {}

impl<K: Ord + Copy> std::fmt::Debug for TieredRange<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredRange")
            .field("remaining", &self.remaining)
            .finish()
    }
}

/// A bidirectional cursor over a [`TieredSnapshot`], tracking the
/// engine-wide tombstone-adjusted rank; mirrors
/// [`ForestCursor`](crate::ForestCursor)'s seek/next/prev surface.
pub struct TieredCursor<'a, K> {
    view: View<'a, K>,
    /// Engine-wide rank; `0` = before-first, `len + 1` = after-last.
    rank: u64,
}

impl<K: Ord + Copy> TieredCursor<'_, K> {
    /// Moves to the first live key `>= key` (the lower bound) and
    /// returns it; lands after-last when every key is smaller.
    pub fn seek(&mut self, key: K) -> Option<K> {
        self.rank = self.view.lower_bound_rank(key).min(self.view.len() + 1);
        self.key()
    }

    /// Moves onto the first entry and returns its key.
    pub fn seek_first(&mut self) -> Option<K> {
        self.rank = 1;
        self.key()
    }

    /// Moves onto the last entry and returns its key.
    pub fn seek_last(&mut self) -> Option<K> {
        self.rank = self.view.len();
        self.key()
    }

    /// Key under the cursor, `None` on a sentinel.
    #[must_use]
    pub fn key(&self) -> Option<K> {
        self.view.select(self.rank)
    }

    /// Engine-wide 1-based rank of the current entry, `None` on a
    /// sentinel.
    #[must_use]
    pub fn rank(&self) -> Option<u64> {
        (self.rank >= 1 && self.rank <= self.view.len()).then_some(self.rank)
    }

    /// Steps back one entry and returns the new current key; `None`
    /// (and the before-first state) when already at the front.
    pub fn prev(&mut self) -> Option<K> {
        if self.rank == 0 {
            return None;
        }
        self.rank -= 1;
        self.key()
    }
}

impl<K: Ord + Copy> Iterator for TieredCursor<'_, K> {
    type Item = K;

    /// Steps forward one entry and returns the new current key; `None`
    /// (and the after-last state) once the keys are exhausted.
    fn next(&mut self) -> Option<K> {
        if self.rank > self.view.len() {
            return None;
        }
        self.rank += 1;
        self.key()
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// An owned, immutable point-in-time view of a [`TieredForest`]: the
/// base forest by `Arc`, the frozen buffer by `Arc`, the active
/// memtable by clone. Queries, ranges and cursors over a snapshot are
/// wait-free and unaffected by concurrent writes or compactions.
pub struct TieredSnapshot<K> {
    base: Option<Arc<Forest<K>>>,
    frozen: Arc<Memtable<K>>,
    mem: Memtable<K>,
    epoch: u64,
}

impl<K: Ord + Copy> TieredSnapshot<K> {
    fn view(&self) -> View<'_, K> {
        View {
            base: self.base.as_deref(),
            frozen: &self.frozen,
            mem: &self.mem,
        }
    }

    /// The compaction epoch this snapshot was taken at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable base forest under the buffers, if one has been
    /// published — the tier cache replay descends into.
    #[must_use]
    pub fn base(&self) -> Option<&Forest<K>> {
        self.base.as_deref()
    }

    /// An owned handle to the base forest (shared with the engine).
    #[must_use]
    pub fn base_arc(&self) -> Option<Arc<Forest<K>>> {
        self.base.clone()
    }

    /// Resolves a probe against the buffer tiers alone: `Some(found)`
    /// when the memtable or frozen buffer decides the probe without
    /// touching the base, `None` when it must descend into a shard.
    #[must_use]
    pub fn buffer_lookup(&self, key: K) -> Option<bool> {
        self.view().buffer_lookup(key)
    }

    /// Live keys in the snapshot.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.view().len()
    }

    /// Whether the snapshot holds no live keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test across all three tiers.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.view().contains(key)
    }

    /// Locates a live key: engine-wide rank plus the serving tier.
    #[must_use]
    pub fn locate(&self, key: K) -> Option<TieredHit> {
        self.view().locate(key)
    }

    /// Live keys strictly below `key`.
    #[must_use]
    pub fn rank(&self, key: K) -> u64 {
        self.view().count_lt(key)
    }

    /// The live key of 1-based rank `rank`.
    #[must_use]
    pub fn select(&self, rank: u64) -> Option<K> {
        self.view().select(rank)
    }

    /// Rank of the first live key `>= key` (`len + 1` if none).
    #[must_use]
    pub fn lower_bound_rank(&self, key: K) -> u64 {
        self.view().lower_bound_rank(key)
    }

    /// Rank of the first live key `> key` (`len + 1` if none).
    #[must_use]
    pub fn upper_bound_rank(&self, key: K) -> u64 {
        self.view().upper_bound_rank(key)
    }

    /// Smallest live key `>= key`.
    #[must_use]
    pub fn lower_bound(&self, key: K) -> Option<K> {
        self.view().lower_bound(key)
    }

    /// Smallest live key `> key`.
    #[must_use]
    pub fn upper_bound(&self, key: K) -> Option<K> {
        self.view().upper_bound(key)
    }

    /// Largest live key `< key`.
    #[must_use]
    pub fn predecessor(&self, key: K) -> Option<K> {
        self.view().predecessor(key)
    }

    /// Smallest live key `> key`.
    #[must_use]
    pub fn successor(&self, key: K) -> Option<K> {
        self.view().successor(key)
    }

    /// Sums the engine-wide rank of every found probe (wrapping) — the
    /// partition-independent benchmark kernel; equals
    /// [`Forest::rank_checksum`] whenever the buffers are empty.
    #[must_use]
    pub fn rank_checksum(&self, probes: &[K]) -> u64 {
        self.view().rank_checksum(probes)
    }

    /// Searches an ascending probe batch across all tiers; one entry
    /// per probe.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<TieredHit>>) -> Result<()> {
        self.view().search_sorted_batch(keys, out)
    }

    /// Double-ended in-order iterator over the live keys in `bounds`.
    pub fn range(&self, bounds: impl std::ops::RangeBounds<K>) -> TieredRange<'_, K> {
        let bounds = (bounds.start_bound().cloned(), bounds.end_bound().cloned());
        self.view().range(&bounds)
    }

    /// Full ascending scan of the live keys.
    pub fn iter(&self) -> TieredRange<'_, K> {
        self.range(..)
    }

    /// A cursor starting before-first.
    #[must_use]
    pub fn cursor(&self) -> TieredCursor<'_, K> {
        TieredCursor {
            view: self.view(),
            rank: 0,
        }
    }
}

impl<K: Ord + Copy> std::fmt::Debug for TieredSnapshot<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredSnapshot")
            .field("epoch", &self.epoch)
            .field("len", &self.len())
            .field("buffered", &(self.frozen.entries() + self.mem.entries()))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Tiers (the mutable state under the RwLock)
// ---------------------------------------------------------------------------

/// The tier triple plus publication bookkeeping, guarded by the
/// engine's `RwLock`. `mem` is relative to the live set of
/// `(frozen, base)`; `frozen` is relative to `base`.
struct Tiers<K> {
    base: Option<Arc<Forest<K>>>,
    /// File generation of each dense base shard (directory mode;
    /// parallel to `base.shards()`).
    gens: Vec<u64>,
    /// The buffer currently being (or next to be) compacted.
    frozen: Arc<Memtable<K>>,
    /// The active write buffer.
    mem: Memtable<K>,
    /// Publication counter: bumped by every successful flush.
    epoch: u64,
    /// Next unused shard-file generation.
    next_gen: u64,
}

impl<K: Ord + Copy> Tiers<K> {
    fn blank() -> Self {
        Self {
            base: None,
            gens: Vec::new(),
            frozen: Arc::new(Memtable::default()),
            mem: Memtable::default(),
            epoch: 0,
            next_gen: 1,
        }
    }

    fn view(&self) -> View<'_, K> {
        View {
            base: self.base.as_deref(),
            frozen: &self.frozen,
            mem: &self.mem,
        }
    }

    fn is_blank(&self) -> bool {
        self.base.is_none() && self.frozen.is_empty() && self.mem.is_empty()
    }

    /// Applies an insert to the active memtable, upholding its
    /// invariants; returns whether the live set changed.
    fn insert(&mut self, key: K) -> bool {
        if let Ok(i) = self.mem.tombstones.binary_search(&key) {
            // Re-inserting a key we tombstoned: the key lives below, so
            // cancelling the tombstone is the whole operation.
            self.mem.tombstones.remove(i);
            return true;
        }
        if self.view().contains(key) {
            return false;
        }
        let at = self.mem.inserts.binary_search(&key).unwrap_err();
        self.mem.inserts.insert(at, key);
        true
    }

    /// Applies a removal; returns whether the live set changed.
    fn remove(&mut self, key: K) -> bool {
        if let Ok(i) = self.mem.inserts.binary_search(&key) {
            self.mem.inserts.remove(i);
            return true;
        }
        if has(&self.mem.tombstones, key) {
            return false;
        }
        // A tombstone is only recorded for keys live in the tiers
        // below (frozen over base) — otherwise rank arithmetic would
        // subtract a phantom.
        let lives_below = has(&self.frozen.inserts, key)
            || (!has(&self.frozen.tombstones, key)
                && self.base.as_deref().is_some_and(|f| f.contains(key)));
        if !lives_below {
            return false;
        }
        let at = self.mem.tombstones.binary_search(&key).unwrap_err();
        self.mem.tombstones.insert(at, key);
        true
    }
}

// ---------------------------------------------------------------------------
// Shared engine state + compaction
// ---------------------------------------------------------------------------

/// What a flush rebuilds.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FlushMode {
    /// Merge the buffer into the shards it touches; carry the rest
    /// forward by generation.
    Incremental,
    /// Rebuild every shard, re-partitioning evenly into
    /// `TieredConfig::shards` slots.
    Full,
}

/// What one shard of the next epoch is made from.
enum ShardPlan<K> {
    /// Reuse the existing shard file (no buffered delta routed to it).
    Carry {
        generation: u64,
        count: u64,
        bounds: (K, K),
    },
    /// Build a fresh tree over these keys (possibly none → empty slot).
    Build { keys: Vec<K> },
}

/// Worker wake-up state under its mutex.
struct WorkerState {
    pending: bool,
    shutdown: bool,
}

/// State shared between the [`TieredForest`] handle and the background
/// compaction worker.
struct Shared<K> {
    cfg: TieredConfig,
    dir: Option<PathBuf>,
    tiers: RwLock<Tiers<K>>,
    /// Serializes whole flushes (freeze → build → publish) without
    /// holding the tier lock across the build.
    flush_serial: Mutex<()>,
    worker: Mutex<WorkerState>,
    wake: Condvar,
    /// The most recent background-compaction error, for the writer to
    /// collect ([`TieredForest::take_compaction_error`]).
    last_error: Mutex<Option<Error>>,
    /// Successful flushes since the engine was built (monotone; cheap
    /// to read without the tier lock).
    flushes: AtomicU64,
    /// Completed scrub cycles over the base tier (survives the base
    /// forest being replaced at each flush).
    scrub_passes: AtomicU64,
    /// Quarantined shards healed by flush-time rebuilds.
    heals: AtomicU64,
}

fn relock<G>(result: std::result::Result<G, PoisonError<G>>) -> G {
    // A panic mid-flush poisons locks but leaves the tiers consistent:
    // every mutation section upholds the invariants before releasing.
    result.unwrap_or_else(PoisonError::into_inner)
}

impl<K> Shared<K> {
    fn read_tiers(&self) -> std::sync::RwLockReadGuard<'_, Tiers<K>> {
        relock(self.tiers.read())
    }

    fn write_tiers(&self) -> std::sync::RwLockWriteGuard<'_, Tiers<K>> {
        relock(self.tiers.write())
    }

    fn record_error(&self, e: Error) {
        *relock(self.last_error.lock()) = Some(e);
    }
}

impl<K: FixedKey> Shared<K> {
    fn fresh(cfg: TieredConfig, dir: Option<PathBuf>) -> Self {
        Self {
            cfg,
            dir,
            tiers: RwLock::new(Tiers::blank()),
            flush_serial: Mutex::new(()),
            worker: Mutex::new(WorkerState {
                pending: false,
                shutdown: false,
            }),
            wake: Condvar::new(),
            last_error: Mutex::new(None),
            flushes: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
            heals: AtomicU64::new(0),
        }
    }

    /// Opens a tiered store directory: scans for epoch-named manifests,
    /// loads the newest one that validates end-to-end (manifest
    /// checksums *and* every referenced shard file), and ignores
    /// younger invalid leftovers — the crash-recovery contract.
    fn open_dir(dir: &Path, cfg: TieredConfig) -> Result<Self> {
        cfg.io.create_dir_all(dir)?;
        let mut epochs: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| Error::io(&e))? {
            let entry = entry.map_err(|e| Error::io(&e))?;
            if let Some(name) = entry.file_name().to_str() {
                if let Some(epoch) = parse_numbered(name, "forest-e", ".cobf") {
                    epochs.push(epoch);
                }
            }
        }
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        let mut last_err = None;
        for &epoch in &epochs {
            match Self::load_epoch(dir, epoch, cfg.io.as_ref()) {
                Ok(tiers) => {
                    let mut shared = Self::fresh(cfg, Some(dir.to_path_buf()));
                    shared.tiers = RwLock::new(tiers);
                    return Ok(shared);
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            // No manifest at all: a fresh (or never-flushed) store.
            None => Ok(Self::fresh(cfg, Some(dir.to_path_buf()))),
            Some(e) => Err(e),
        }
    }

    fn load_epoch(dir: &Path, epoch: u64, io: &dyn StorageIo) -> Result<Tiers<K>> {
        let bytes = io.read(&dir.join(tiered_manifest_name(epoch)))?;
        let manifest: ManifestV2<K> = format::parse_manifest_v2(&bytes)?;
        if manifest.epoch != epoch {
            return Err(Error::Malformed {
                detail: format!(
                    "manifest file for epoch {epoch} records epoch {}",
                    manifest.epoch
                ),
            });
        }
        let (base, gens) = open_rows(dir, &manifest.shards, io)?;
        let next_gen = manifest
            .shards
            .iter()
            .map(|r| r.generation)
            .max()
            .unwrap_or(0)
            + 1;
        Ok(Tiers {
            base,
            gens,
            frozen: Arc::new(Memtable::default()),
            mem: Memtable::default(),
            epoch,
            next_gen,
        })
    }

    /// One complete flush: freeze the memtable, build the next epoch's
    /// artifacts with no locks held, publish under a brief write lock,
    /// then clean up superseded files. Returns whether anything was
    /// published.
    fn flush(&self, mode: FlushMode, io_override: Option<&dyn StorageIo>) -> Result<bool> {
        let _serial = relock(self.flush_serial.lock());
        let io: &dyn StorageIo = io_override.unwrap_or(self.cfg.io.as_ref());
        let (base, gens, next_gen, frozen, epoch, healing) = {
            let mut tiers = self.write_tiers();
            if !tiers.mem.is_empty() {
                // Fold the active buffer into the frozen one (which is
                // non-empty only when a previous flush failed and left
                // its input behind for retry).
                let mut combined = (*tiers.frozen).clone();
                combined.absorb(std::mem::take(&mut tiers.mem));
                tiers.frozen = Arc::new(combined);
            }
            // A quarantined shard in the base forces a publish even
            // with nothing buffered: the rebuild is the heal.
            let healing = tiers.base.as_deref().map_or(0, Forest::quarantined_count);
            if tiers.frozen.is_empty()
                && healing == 0
                && !(mode == FlushMode::Full && tiers.base.is_some())
            {
                return Ok(false);
            }
            (
                tiers.base.clone(),
                tiers.gens.clone(),
                tiers.next_gen,
                Arc::clone(&tiers.frozen),
                tiers.epoch,
                healing,
            )
        };
        // Build phase — no locks held; readers and writers proceed
        // against the (base, frozen, mem) triple, whose semantics the
        // publish below preserves exactly.
        let new_epoch = epoch + 1;
        let ((new_base, new_gens), new_next) = match &self.dir {
            None => (
                (
                    rebuild_in_memory(&self.cfg, base.as_deref(), &frozen)?,
                    Vec::new(),
                ),
                next_gen,
            ),
            Some(dir) => publish_to_dir(
                &self.cfg,
                dir,
                base.as_deref(),
                &gens,
                next_gen,
                &frozen,
                new_epoch,
                mode,
                io,
            )?,
        };
        {
            let mut tiers = self.write_tiers();
            tiers.base = new_base;
            tiers.gens = new_gens;
            tiers.frozen = Arc::new(Memtable::default());
            tiers.epoch = new_epoch;
            tiers.next_gen = new_next;
        }
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if healing > 0 {
            // The re-published base starts with every shard healthy —
            // the quarantined ranges were rebuilt from the surviving
            // tiers and are serving again.
            self.heals.fetch_add(healing as u64, Ordering::Relaxed);
        }
        if let Some(dir) = &self.dir {
            let keep: Vec<u64> = self.read_tiers().gens.clone();
            cleanup_dir(dir, new_epoch, &keep);
        }
        Ok(true)
    }
}

/// Rebuilds the base as one in-memory forest over the merged live keys.
fn rebuild_in_memory<K: FixedKey>(
    cfg: &TieredConfig,
    base: Option<&Forest<K>>,
    frozen: &Memtable<K>,
) -> Result<Option<Arc<Forest<K>>>> {
    let merged = merged_live(base, frozen);
    if merged.is_empty() {
        return Ok(None);
    }
    Forest::builder()
        .layout(cfg.layout)
        .storage(Storage::Implicit)
        .shards(cfg.shards)
        .keys(merged)
        .build()
        .map(|f| Some(Arc::new(f)))
}

/// The live keys of `(frozen over base)`, merged in ascending order.
fn merged_live<K: Ord + Copy>(base: Option<&Forest<K>>, frozen: &Memtable<K>) -> Vec<K> {
    let base_len = base.map_or(0, |f| f.len() as usize);
    let mut out = Vec::with_capacity(base_len + frozen.inserts.len());
    let mut ins = frozen.inserts.iter().copied().peekable();
    if let Some(f) = base {
        for key in f.iter() {
            while ins.peek().is_some_and(|&i| i < key) {
                out.push(ins.next().expect("peeked"));
            }
            if !has(&frozen.tombstones, key) {
                out.push(key);
            }
        }
    }
    out.extend(ins);
    out
}

/// Plans the next epoch's shards. Incremental mode routes each
/// buffered delta to the dense base shard owning its key range and
/// rebuilds only the shards that received one; full mode re-partitions
/// everything evenly.
fn plan_shards<K: FixedKey>(
    cfg: &TieredConfig,
    base: Option<&Forest<K>>,
    gens: &[u64],
    frozen: &Memtable<K>,
    mode: FlushMode,
) -> Vec<ShardPlan<K>> {
    if let (FlushMode::Incremental, Some(f)) = (mode, base) {
        let fences = f.router().fences();
        let dense = f.active_shards();
        debug_assert_eq!(gens.len(), dense);
        // Keys below the first fence route to shard 0 — some shard has
        // to absorb them, and the leftmost keeps fences ascending.
        let shard_of =
            |key: K| -> usize { fences.partition_point(|&x| x <= key).saturating_sub(1) };
        let mut ins_by = vec![Vec::new(); dense];
        let mut tomb_by = vec![false; dense];
        for &key in &frozen.inserts {
            ins_by[shard_of(key)].push(key);
        }
        for &key in &frozen.tombstones {
            tomb_by[shard_of(key)] = true;
        }
        let mut plans = Vec::with_capacity(dense);
        for (i, tree) in f.shards().enumerate() {
            // A quarantined shard is never carried: rebuilding it from
            // the still-intact in-memory tree under a fresh generation
            // IS the heal.
            if ins_by[i].is_empty() && !tomb_by[i] && !f.is_quarantined(i) {
                let count = tree.len();
                let bounds = (
                    tree.select(1).expect("shards are non-empty"),
                    tree.select(count).expect("shards are non-empty"),
                );
                plans.push(ShardPlan::Carry {
                    generation: gens[i],
                    count,
                    bounds,
                });
            } else {
                let mut keys = Vec::with_capacity(tree.len() as usize + ins_by[i].len());
                let mut ins = ins_by[i].iter().copied().peekable();
                for key in tree.iter() {
                    while ins.peek().is_some_and(|&x| x < key) {
                        keys.push(ins.next().expect("peeked"));
                    }
                    if !has(&frozen.tombstones, key) {
                        keys.push(key);
                    }
                }
                keys.extend(ins);
                plans.push(ShardPlan::Build { keys });
            }
        }
        return plans;
    }
    // Full rebuild: even range partition over the merged live set,
    // mirroring ForestBuilder's split.
    let merged = merged_live(base, frozen);
    let n = merged.len();
    let slots = cfg.shards.max(1);
    (0..slots)
        .map(|slot| ShardPlan::Build {
            keys: merged[slot * n / slots..(slot + 1) * n / slots].to_vec(),
        })
        .collect()
}

/// A freshly opened base tier: the mapped forest (`None` when the
/// store drained to zero keys) and the per-slot file generations that
/// serve it.
type OpenedBase<K> = (Option<Arc<Forest<K>>>, Vec<u64>);

/// Builds and durably writes the next epoch: fresh shard files first,
/// the epoch manifest last, then re-opens the published rows as the
/// new mapped base. Nothing the current epoch references is modified,
/// so a crash anywhere in here leaves the current epoch fully intact.
#[allow(clippy::too_many_arguments)]
fn publish_to_dir<K: FixedKey>(
    cfg: &TieredConfig,
    dir: &Path,
    base: Option<&Forest<K>>,
    gens: &[u64],
    next_gen: u64,
    frozen: &Memtable<K>,
    new_epoch: u64,
    mode: FlushMode,
    io: &dyn StorageIo,
) -> Result<(OpenedBase<K>, u64)> {
    let plans = plan_shards(cfg, base, gens, frozen, mode);
    let mut gen = next_gen;
    let mut rows: Vec<ShardRecord<K>> = Vec::with_capacity(plans.len());
    for plan in plans {
        match plan {
            ShardPlan::Carry {
                generation,
                count,
                bounds,
            } => rows.push(ShardRecord {
                key_count: count,
                bounds: Some(bounds),
                generation,
            }),
            ShardPlan::Build { keys } if keys.is_empty() => rows.push(ShardRecord {
                key_count: 0,
                bounds: None,
                generation: 0,
            }),
            ShardPlan::Build { keys } => {
                let tree = SearchTree::builder()
                    .layout(cfg.layout)
                    .storage(Storage::Implicit)
                    .keys(keys.iter().copied())
                    .build()?;
                let bytes = tree.encode(&SaveOptions::new())?;
                io.write_atomic(&dir.join(tiered_shard_name(gen)), &bytes)?;
                rows.push(ShardRecord {
                    key_count: keys.len() as u64,
                    bounds: Some((keys[0], *keys.last().expect("non-empty"))),
                    generation: gen,
                });
                gen += 1;
            }
        }
    }
    let manifest = ManifestV2 {
        epoch: new_epoch,
        flushed_inserts: frozen.inserts.len() as u64,
        flushed_tombstones: frozen.tombstones.len() as u64,
        shards: rows.clone(),
    };
    let bytes = format::encode_manifest_v2(&manifest)?;
    io.write_atomic(&dir.join(tiered_manifest_name(new_epoch)), &bytes)?;
    let opened = open_rows(dir, &rows, io)?;
    Ok((opened, gen))
}

/// Re-opens the shard files a manifest's rows reference as a mapped
/// [`Forest`], cross-checking each file against its row (count and
/// fence bounds), exactly like [`Forest::open`] does for v1 stores. A
/// checksummed shard file that parses clean but disagrees with its row
/// is trusted from the file and **quarantined** (its range answers
/// `UNAVAIL` until the next flush rebuilds it); an unreadable or
/// corrupt file remains a hard error, which the epoch recovery scan
/// turns into a fall-back to the previous manifest.
fn open_rows<K: FixedKey>(
    dir: &Path,
    rows: &[ShardRecord<K>],
    io: &dyn StorageIo,
) -> Result<OpenedBase<K>> {
    let mut counts_by_slot = Vec::with_capacity(rows.len());
    let mut trees = Vec::new();
    let mut slot_of = Vec::new();
    let mut gens = Vec::new();
    let mut paths = Vec::new();
    let mut quarantined = Vec::new();
    for (slot, row) in rows.iter().enumerate() {
        counts_by_slot.push(row.key_count);
        let Some((first, last)) = row.bounds else {
            continue;
        };
        let path = dir.join(tiered_shard_name(row.generation));
        let tree: SearchTree<K> = SearchTree::open_with_io(&path, io)?;
        if tree.len() != row.key_count
            || tree.select(1) != Some(first)
            || tree.select(tree.len()) != Some(last)
        {
            // The file's own checksums held; the manifest row is the
            // corrupt side. Serve the rest of the store and quarantine
            // this shard until a flush republishes consistent state.
            counts_by_slot[slot] = tree.len();
            quarantined.push(trees.len());
        }
        paths.push(Some(path));
        trees.push(tree);
        slot_of.push(slot);
        gens.push(row.generation);
    }
    if trees.is_empty() {
        return Ok((None, gens));
    }
    let mut forest = Forest::assemble(Storage::Mapped, rows.len(), counts_by_slot, trees, slot_of)?;
    forest.set_shard_paths(paths);
    for dense in quarantined {
        forest.quarantine(dense);
    }
    Ok((Some(Arc::new(forest)), gens))
}

/// Best-effort removal of files the published epoch no longer
/// references: manifests of older epochs and shard files whose
/// generation is not in `keep`. Runs only after a successful publish;
/// failures are ignored (a leftover file is re-collected next flush).
fn cleanup_dir(dir: &Path, current_epoch: u64, keep: &[u64]) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match (
            parse_numbered(name, "forest-e", ".cobf"),
            parse_numbered(name, "shard-g", ".cobt"),
        ) {
            (Some(epoch), _) => epoch < current_epoch,
            (_, Some(generation)) => !keep.contains(&generation),
            // Staging leftovers from a crashed atomic write: publishes
            // are serialized, so any `.tmp` present after a successful
            // one is garbage.
            _ => name.ends_with(".tmp"),
        };
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// The background compaction loop: sleep on the condvar, flush when a
/// budget-crossing write signals, exit on shutdown. Errors are parked
/// for [`TieredForest::take_compaction_error`]; the frozen buffer
/// stays behind for the next attempt, so no acknowledged write is ever
/// dropped by a failed compaction.
fn worker_loop<K: FixedKey>(shared: &Shared<K>) {
    let mut state = relock(shared.worker.lock());
    loop {
        while !state.pending && !state.shutdown {
            state = relock(shared.wake.wait(state));
        }
        if state.shutdown {
            return;
        }
        state.pending = false;
        drop(state);
        if let Err(e) = shared.flush(FlushMode::Incremental, None) {
            shared.record_error(e);
        }
        state = relock(shared.worker.lock());
    }
}

// ---------------------------------------------------------------------------
// The engine handle
// ---------------------------------------------------------------------------

/// The tiered write engine: a mutable memtable over an immutable
/// [`Forest`], compacted in the background, published atomically by
/// epoch-versioned manifest swap. See the [module docs](crate::tiered)
/// for the tier semantics and crash-consistency contract.
///
/// The handle is `Send + Sync`: readers query concurrently under a
/// read lock (or wait-free via [`TieredForest::snapshot`]); writers
/// and the compaction publisher take the write lock briefly — never
/// across a shard build.
pub struct TieredForest<K> {
    shared: Arc<Shared<K>>,
    worker: Option<JoinHandle<()>>,
}

// Compile-time audit, mirroring the forest's: the engine handle and
// its snapshots must be shareable across threads.
#[allow(dead_code)]
fn assert_tiered_is_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<TieredForest<u64>>();
    shareable::<TieredSnapshot<u64>>();
}

impl<K: FixedKey> TieredForest<K> {
    /// Starts a builder with the defaults (MINWEP layout, 4 shards,
    /// 4096-entry / 1 MiB memtable, in-memory, inline compaction).
    #[must_use]
    pub fn builder() -> TieredBuilder<K> {
        TieredBuilder::default()
    }

    /// Opens (or initializes) a tiered store directory with default
    /// configuration — recovery lands on the newest manifest that
    /// validates end-to-end.
    ///
    /// # Errors
    /// I/O errors, or typed format errors when manifests exist but
    /// none validates.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::builder().path(dir).build()
    }

    fn view_query<R>(&self, q: impl FnOnce(View<'_, K>) -> R) -> R {
        let tiers = self.shared.read_tiers();
        q(tiers.view())
    }

    /// Inserts a key; returns whether the live set changed. Crossing
    /// the memtable budget triggers compaction (inline, or a wake of
    /// the background worker).
    pub fn insert(&self, key: K) -> bool {
        let (changed, over) = {
            let mut tiers = self.shared.write_tiers();
            let changed = tiers.insert(key);
            let over = self.shared.cfg.over_budget(tiers.mem.entries(), K::WIDTH);
            (changed, over)
        };
        if over {
            self.kick();
        }
        changed
    }

    /// Removes a key; returns whether the live set changed. Removing a
    /// key that lives in an immutable tier records a tombstone.
    pub fn remove(&self, key: K) -> bool {
        let (changed, over) = {
            let mut tiers = self.shared.write_tiers();
            let changed = tiers.remove(key);
            let over = self.shared.cfg.over_budget(tiers.mem.entries(), K::WIDTH);
            (changed, over)
        };
        if over {
            self.kick();
        }
        changed
    }

    fn kick(&self) {
        if self.worker.is_some() {
            relock(self.shared.worker.lock()).pending = true;
            self.shared.wake.notify_all();
        } else if let Err(e) = self.shared.flush(FlushMode::Incremental, None) {
            self.shared.record_error(e);
        }
    }

    /// Drains the memtable into the base tier *now* (incremental: only
    /// shards a buffered delta routes to are rebuilt). Returns whether
    /// a new epoch was published (`false` = nothing buffered).
    ///
    /// # Errors
    /// Build or I/O errors; the buffered writes stay queued for retry.
    pub fn flush(&self) -> Result<bool> {
        self.shared.flush(FlushMode::Incremental, None)
    }

    /// Drains the memtable *and* rebuilds every shard, re-partitioning
    /// the live keys evenly over [`TieredConfig::shards`] slots —
    /// the heavyweight rebalance. Returns whether an epoch was
    /// published.
    ///
    /// # Errors
    /// Build or I/O errors; the buffered writes stay queued for retry.
    pub fn compact(&self) -> Result<bool> {
        self.shared.flush(FlushMode::Full, None)
    }

    /// Test-only flush whose `budget`-th file write fails — after
    /// writing half the bytes when `partial_last` is set — simulating
    /// a crash at an arbitrary point of the publish sequence. A thin
    /// compatibility shim over [`TieredForest::flush_with_io`] with a
    /// one-rule [`FaultIo`] schedule.
    #[doc(hidden)]
    pub fn flush_with_failpoint(&self, budget: usize, partial_last: bool) -> Result<bool> {
        let fault = FaultIo::scripted(vec![FaultRule {
            op: IoOp::Write,
            nth: budget as u64 + 1,
            kind: if partial_last {
                FaultKind::Torn
            } else {
                FaultKind::Fail
            },
        }]);
        self.flush_with_io(&fault)
    }

    /// An incremental flush driven through an explicit storage seam
    /// (overriding the configured one for this flush only) — the
    /// entry point for scripted crash and fault schedules.
    ///
    /// # Errors
    /// As for [`TieredForest::flush`].
    pub fn flush_with_io(&self, io: &dyn StorageIo) -> Result<bool> {
        self.shared.flush(FlushMode::Incremental, Some(io))
    }

    // -----------------------------------------------------------------
    // Shard health: scrubbing, quarantine, healing
    // -----------------------------------------------------------------

    /// One paced scrub step over the base tier: re-reads up to
    /// `budget` shard files (0 = all) through the configured storage
    /// seam, re-validating their checksums and quarantining any shard
    /// that no longer verifies. Engines without a mapped base (pure
    /// in-memory stores) report an empty step.
    pub fn scrub_step(&self, budget: usize) -> ScrubReport {
        let base = self.shared.read_tiers().base.clone();
        let Some(base) = base else {
            return ScrubReport::default();
        };
        let report = base.scrub_step(self.shared.cfg.io.as_ref(), budget);
        if report.completed_pass {
            self.shared.scrub_passes.fetch_add(1, Ordering::Relaxed);
        }
        report
    }

    /// Completed scrub cycles over the engine's lifetime (survives the
    /// base being replaced at each flush).
    #[must_use]
    pub fn scrub_passes(&self) -> u64 {
        self.shared.scrub_passes.load(Ordering::Relaxed)
    }

    /// Quarantined shards healed by flush-time rebuilds over the
    /// engine's lifetime.
    #[must_use]
    pub fn heals(&self) -> u64 {
        self.shared.heals.load(Ordering::Relaxed)
    }

    /// Number of currently quarantined base shards.
    #[must_use]
    pub fn quarantined_shards(&self) -> usize {
        self.shared
            .read_tiers()
            .base
            .as_deref()
            .map_or(0, Forest::quarantined_count)
    }

    /// Verifies that `key`'s owning base shard is serving.
    ///
    /// # Errors
    /// [`Error::ShardUnavailable`] when the base shard owning `key`'s
    /// range is quarantined. Keys resident only in the memtable tiers
    /// are always available.
    pub fn check_available(&self, key: K) -> Result<()> {
        match self.shared.read_tiers().base.as_deref() {
            Some(base) => base.check_available(key),
            None => Ok(()),
        }
    }

    /// Force-quarantines dense base shard `shard` (testing and
    /// operator tooling); returns whether the shard transitioned from
    /// healthy. The next flush heals it.
    pub fn quarantine_shard(&self, shard: usize) -> bool {
        self.shared
            .read_tiers()
            .base
            .as_deref()
            .is_some_and(|f| f.quarantine(shard))
    }

    /// An owned point-in-time view: wait-free queries, ranges and
    /// cursors, unaffected by later writes or compactions.
    #[must_use]
    pub fn snapshot(&self) -> TieredSnapshot<K> {
        let tiers = self.shared.read_tiers();
        TieredSnapshot {
            base: tiers.base.clone(),
            frozen: Arc::clone(&tiers.frozen),
            mem: tiers.mem.clone(),
            epoch: tiers.epoch,
        }
    }

    /// Live keys in the engine.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.view_query(|v| v.len())
    }

    /// Whether the engine holds no live keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test across all three tiers.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.view_query(|v| v.contains(key))
    }

    /// Locates a live key: engine-wide rank plus the serving tier.
    #[must_use]
    pub fn locate(&self, key: K) -> Option<TieredHit> {
        self.view_query(|v| v.locate(key))
    }

    /// Live keys strictly below `key` (the 0-based rank, mirroring
    /// [`Forest::rank`]).
    #[must_use]
    pub fn rank(&self, key: K) -> u64 {
        self.view_query(|v| v.count_lt(key))
    }

    /// The live key of 1-based rank `rank`.
    #[must_use]
    pub fn select(&self, rank: u64) -> Option<K> {
        self.view_query(|v| v.select(rank))
    }

    /// Rank of the first live key `>= key` (`len + 1` if none).
    #[must_use]
    pub fn lower_bound_rank(&self, key: K) -> u64 {
        self.view_query(|v| v.lower_bound_rank(key))
    }

    /// Rank of the first live key `> key` (`len + 1` if none).
    #[must_use]
    pub fn upper_bound_rank(&self, key: K) -> u64 {
        self.view_query(|v| v.upper_bound_rank(key))
    }

    /// Smallest live key `>= key`.
    #[must_use]
    pub fn lower_bound(&self, key: K) -> Option<K> {
        self.view_query(|v| v.lower_bound(key))
    }

    /// Smallest live key `> key`.
    #[must_use]
    pub fn upper_bound(&self, key: K) -> Option<K> {
        self.view_query(|v| v.upper_bound(key))
    }

    /// Largest live key `< key`.
    #[must_use]
    pub fn predecessor(&self, key: K) -> Option<K> {
        self.view_query(|v| v.predecessor(key))
    }

    /// Smallest live key `> key`.
    #[must_use]
    pub fn successor(&self, key: K) -> Option<K> {
        self.view_query(|v| v.successor(key))
    }

    /// Sums the engine-wide rank of every found probe (wrapping);
    /// equals [`Forest::rank_checksum`] whenever the buffers are empty.
    #[must_use]
    pub fn rank_checksum(&self, probes: &[K]) -> u64 {
        self.view_query(|v| v.rank_checksum(probes))
    }

    /// Searches an ascending probe batch across all tiers; `out` gets
    /// one entry per probe.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<TieredHit>>) -> Result<()> {
        self.view_query(|v| v.search_sorted_batch(keys, out))
    }

    /// The current compaction epoch (0 until the first flush).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.read_tiers().epoch
    }

    /// Successful flushes since the engine was built.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.shared.flushes.load(Ordering::Relaxed)
    }

    /// Entries currently buffered in the mutable tiers (active memtable
    /// plus any frozen buffer awaiting compaction).
    #[must_use]
    pub fn buffered(&self) -> usize {
        let tiers = self.shared.read_tiers();
        tiers.mem.entries() + tiers.frozen.entries()
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &TieredConfig {
        &self.shared.cfg
    }

    /// The backing directory, when the engine is durable.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.shared.dir.as_deref()
    }

    /// Takes (and clears) the most recent background-compaction error.
    /// Inline-compaction engines park budget-triggered flush errors
    /// here too; explicit [`TieredForest::flush`] calls return theirs
    /// directly.
    #[must_use]
    pub fn take_compaction_error(&self) -> Option<Error> {
        relock(self.shared.last_error.lock()).take()
    }
}

impl<K: Ord + Copy> std::fmt::Debug for TieredForest<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tiers = self.shared.read_tiers();
        f.debug_struct("TieredForest")
            .field("len", &tiers.view().len())
            .field("epoch", &tiers.epoch)
            .field("buffered", &(tiers.mem.entries() + tiers.frozen.entries()))
            .field("background", &self.worker.is_some())
            .finish()
    }
}

impl<K> Drop for TieredForest<K> {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            relock(self.shared.worker.lock()).shutdown = true;
            self.shared.wake.notify_all();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cobtree-tiered-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_matches_oracle(engine: &TieredForest<u64>, oracle: &BTreeSet<u64>, probes: &[u64]) {
        assert_eq!(engine.len(), oracle.len() as u64);
        let scanned: Vec<u64> = engine.snapshot().iter().collect();
        let expect: Vec<u64> = oracle.iter().copied().collect();
        assert_eq!(scanned, expect);
        for &p in probes {
            assert_eq!(engine.contains(p), oracle.contains(&p), "contains({p})");
            let lt = oracle.iter().filter(|&&k| k < p).count() as u64;
            assert_eq!(engine.rank(p), lt, "rank({p})");
            assert_eq!(
                engine.lower_bound(p),
                oracle.range(p..).next().copied(),
                "lower_bound({p})"
            );
            assert_eq!(
                engine.predecessor(p),
                oracle.range(..p).next_back().copied(),
                "predecessor({p})"
            );
        }
        for rank in [0, 1, oracle.len() as u64 / 2, oracle.len() as u64] {
            assert_eq!(
                engine.select(rank),
                (rank >= 1)
                    .then(|| expect.get(rank as usize - 1).copied())
                    .flatten(),
                "select({rank})"
            );
        }
        assert_eq!(engine.select(oracle.len() as u64 + 1), None);
    }

    #[test]
    fn memtable_only_engine_answers_the_ordered_api() {
        let engine = TieredForest::<u64>::builder().build().unwrap();
        assert!(engine.is_empty());
        assert_eq!(engine.select(1), None);
        assert_eq!(engine.lower_bound(0), None);
        let mut oracle = BTreeSet::new();
        for k in [50u64, 10, 30, 10, 70] {
            assert_eq!(engine.insert(k), oracle.insert(k), "insert({k})");
        }
        assert_eq!(engine.remove(30), oracle.remove(&30));
        assert!(!engine.remove(31));
        let probes: Vec<u64> = (0..90).collect();
        assert_matches_oracle(&engine, &oracle, &probes);
        assert_eq!(engine.epoch(), 0, "nothing crossed the budget");
        assert!(matches!(
            engine.locate(50),
            Some(TieredHit {
                place: TierPlace::Buffer,
                ..
            })
        ));
    }

    #[test]
    fn cross_tier_queries_after_in_memory_flush() {
        let engine = TieredForest::<u64>::builder()
            .shards(3)
            .keys((0..200u64).map(|k| k * 5))
            .build()
            .unwrap();
        let mut oracle: BTreeSet<u64> = (0..200u64).map(|k| k * 5).collect();
        assert_eq!(engine.epoch(), 1, "seed keys are compacted at build");
        // Straddle the tiers: buffered inserts between base keys,
        // tombstones over base keys, re-inserts, re-removes.
        for k in [3u64, 501, 997] {
            assert!(engine.insert(k));
            oracle.insert(k);
        }
        for k in [0u64, 500, 995] {
            assert_eq!(engine.remove(k), oracle.remove(&k));
        }
        assert!(engine.insert(500) && oracle.insert(500));
        let probes: Vec<u64> = (0..1100).collect();
        assert_matches_oracle(&engine, &oracle, &probes);
        // A base-resident key locates into a shard; a buffered one
        // into the buffer.
        assert!(matches!(
            engine.locate(5).unwrap().place,
            TierPlace::Shard { .. }
        ));
        assert!(matches!(engine.locate(3).unwrap().place, TierPlace::Buffer));
        // Flushing must not change a single answer.
        assert!(engine.flush().unwrap());
        assert_matches_oracle(&engine, &oracle, &probes);
        assert!(!engine.flush().unwrap(), "nothing left to flush");
    }

    #[test]
    fn ranges_cursors_and_batches_merge_tiers() {
        let engine = TieredForest::<u64>::builder()
            .shards(2)
            .keys((0..100u64).map(|k| k * 10))
            .build()
            .unwrap();
        engine.insert(15);
        engine.insert(985);
        engine.remove(20);
        engine.remove(980);
        let mut oracle: BTreeSet<u64> = (0..100u64).map(|k| k * 10).collect();
        oracle.insert(15);
        oracle.insert(985);
        oracle.remove(&20);
        oracle.remove(&980);
        let snap = engine.snapshot();

        let window: Vec<u64> = snap.range(12..=40).collect();
        assert_eq!(window, vec![15, 30, 40]);
        let back: Vec<u64> = snap.range(970..).rev().collect();
        assert_eq!(back, vec![990, 985, 970]);
        let r = snap.range(12..=40);
        assert_eq!(r.len(), 3, "exact size from rank arithmetic");
        // Mixed-direction consumption covers the DePeek hand-off.
        let mut mixed = snap.range(..);
        let expect: Vec<u64> = oracle.iter().copied().collect();
        let (mut lo, mut hi) = (0usize, expect.len());
        for step in 0..expect.len() {
            if step % 2 == 0 {
                assert_eq!(mixed.next(), Some(expect[lo]));
                lo += 1;
            } else {
                hi -= 1;
                assert_eq!(mixed.next_back(), Some(expect[hi]));
            }
        }
        assert_eq!(mixed.next(), None);
        assert_eq!(mixed.next_back(), None);

        let mut cursor = snap.cursor();
        assert_eq!(cursor.seek(16), Some(30));
        assert_eq!(cursor.rank(), Some(snap.rank(30) + 1));
        assert_eq!(cursor.prev(), Some(15));
        assert_eq!(cursor.next(), Some(30));
        assert_eq!(cursor.seek_last(), Some(990));
        assert_eq!(cursor.next(), None);

        let probes: Vec<u64> = vec![0, 10, 15, 20, 25, 980, 985, 990, 1000];
        let mut hits = Vec::new();
        snap.search_sorted_batch(&probes, &mut hits).unwrap();
        for (&p, hit) in probes.iter().zip(&hits) {
            assert_eq!(hit.is_some(), oracle.contains(&p), "batch({p})");
            if let Some(h) = hit {
                assert_eq!(snap.select(h.rank), Some(p), "batch rank({p})");
            }
        }
        assert_eq!(
            snap.search_sorted_batch(&[5, 3], &mut hits).unwrap_err(),
            Error::UnsortedBatch { index: 0 }
        );
    }

    #[test]
    fn durable_store_publishes_carries_and_reopens() {
        let dir = temp_dir("durable");
        let engine = TieredForest::<u64>::builder()
            .shards(4)
            .keys((0..400u64).map(|k| k * 3))
            .path(&dir)
            .build()
            .unwrap();
        assert_eq!(engine.epoch(), 1);
        // A delta confined to the low key range must rebuild only the
        // shard(s) it routes to; the rest carry their files forward.
        let before: BTreeSet<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| parse_numbered(e.file_name().to_str()?, "shard-g", ".cobt"))
            .collect();
        engine.insert(1);
        engine.remove(3);
        assert!(engine.flush().unwrap());
        assert_eq!(engine.epoch(), 2);
        let after: BTreeSet<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| parse_numbered(e.file_name().to_str()?, "shard-g", ".cobt"))
            .collect();
        let carried = before.intersection(&after).count();
        assert!(
            carried >= 3,
            "low-range delta must carry the untouched shards ({before:?} -> {after:?})"
        );
        drop(engine);

        let reopened = TieredForest::<u64>::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 2);
        assert_eq!(reopened.len(), 400);
        assert!(reopened.contains(1) && !reopened.contains(3) && reopened.contains(6));
        // Full compaction rebalances into cfg.shards slots and drops
        // the carried generations.
        reopened.insert(2);
        assert!(reopened.compact().unwrap());
        assert_eq!(reopened.len(), 401);
        assert!(matches!(
            reopened.locate(2).unwrap().place,
            TierPlace::Shard { .. }
        ));
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn draining_every_key_survives_reopen() {
        let dir = temp_dir("drain");
        let engine = TieredForest::<u64>::builder()
            .shards(2)
            .keys(1..=50u64)
            .path(&dir)
            .build()
            .unwrap();
        for k in 1..=50u64 {
            assert!(engine.remove(k));
        }
        assert!(engine.flush().unwrap());
        assert!(engine.is_empty());
        drop(engine);
        let reopened = TieredForest::<u64>::open(&dir).unwrap();
        assert!(reopened.is_empty(), "a drained store reopens empty");
        assert_eq!(reopened.select(1), None);
        reopened.insert(7);
        assert!(reopened.flush().unwrap());
        assert_eq!(reopened.len(), 1);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_crossing_triggers_inline_compaction() {
        let engine = TieredForest::<u64>::builder()
            .memtable_entries(8)
            .build()
            .unwrap();
        for k in 0..40u64 {
            engine.insert(k * 2);
        }
        assert!(engine.epoch() > 0, "budget crossings compacted inline");
        assert!(engine.buffered() <= 9);
        assert_eq!(engine.len(), 40);
        assert_eq!(engine.take_compaction_error(), None);
    }

    #[test]
    fn background_worker_compacts_and_readers_race_safely() {
        let engine = TieredForest::<u64>::builder()
            .memtable_entries(64)
            .background(true)
            .build()
            .unwrap();
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                // Hammer snapshots while the writer churns; every scan
                // must be strictly ascending and internally consistent.
                for _ in 0..200 {
                    let snap = engine.snapshot();
                    let scanned: Vec<u64> = snap.iter().collect();
                    assert!(scanned.windows(2).all(|w| w[0] < w[1]));
                    assert_eq!(scanned.len() as u64, snap.len());
                }
            });
            for k in 0..4000u64 {
                engine.insert(k);
                if k % 5 == 4 {
                    engine.remove(k - 2);
                }
            }
            reader.join().unwrap();
        });
        // Settle: force any stragglers through, then check the sum.
        engine.flush().unwrap();
        assert_eq!(engine.take_compaction_error(), None);
        assert_eq!(engine.len(), 4000 - 4000 / 5);
        assert!(engine.flushes() > 0, "the worker compacted at least once");
    }

    #[test]
    fn failed_flush_keeps_writes_queued_for_retry() {
        let dir = temp_dir("retry");
        let engine = TieredForest::<u64>::builder()
            .shards(1)
            .keys(1..=20u64)
            .path(&dir)
            .build()
            .unwrap();
        engine.insert(100);
        engine.remove(1);
        let err = engine.flush_with_failpoint(0, true).unwrap_err();
        assert!(matches!(err, Error::Io { .. }));
        assert_eq!(engine.epoch(), 1, "failed publish must not advance");
        // The acknowledged writes are still served and still flushable.
        assert!(engine.contains(100) && !engine.contains(1));
        engine.insert(101);
        assert!(engine.flush().unwrap());
        assert_eq!(engine.epoch(), 2);
        drop(engine);
        let reopened = TieredForest::<u64>::open(&dir).unwrap();
        assert_eq!(reopened.len(), 21);
        assert!(reopened.contains(100) && reopened.contains(101) && !reopened.contains(1));
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
