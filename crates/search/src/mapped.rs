//! The mapped storage backend: a [`SearchBackend`] served directly from
//! the bytes of a saved tree file — zero deserialization.
//!
//! This is the serving model the paper's layouts exist for: a
//! hierarchical layout is a *static artifact*, computed once, whose
//! payoff arrives when the byte order on the storage medium **is** the
//! layout order (Demaine et al. make the same point for external
//! memory). [`MappedTree`] closes that loop — it opens a file written
//! in the [`cobtree_core::format`] container and navigates it in place:
//!
//! * the descent reads keys straight out of the mapped key region at
//!   `key_region + position × key_width`;
//! * positions come from the file's layout descriptor — rebuilt
//!   arithmetic indexer for named layouts, or little-endian `u32` reads
//!   from the mapped index region for materialized ones;
//! * padding slots are detected arithmetically (in-order rank beyond
//!   the stored key count compares as `+∞`), so the file needs no
//!   sentinel values.
//!
//! Because the backend implements the full [`SearchBackend`] contract,
//! every cursor, range scan, rank/select query and sorted-batch search
//! from the ordered-map API works over a file verbatim — and visits
//! exactly the positions the in-memory backends visit, so cache-replay
//! results and `search_batch_checksum`s are identical across storage.
//!
//! The bytes behind the tree come from either a real `mmap(2)` (via the
//! `memmap2` shim — see `shims/README.md`) or an owned buffer
//! ([`MappedTree::read`] / [`MappedTree::from_bytes`]); validation and
//! navigation are oblivious to which.

use crate::backend::SearchBackend;
use crate::kernel::{self, FatPlane, MappedPlane, PosRef};
use cobtree_core::error::{Error, Result};
use cobtree_core::fat::{FatIndex, FatLayout};
use cobtree_core::format::{self, FixedKey, Geometry};
use cobtree_core::index::{PositionIndex, StepPlan};
use cobtree_core::{NamedLayout, Tree};
use std::marker::PhantomData;
use std::path::Path;

/// Where the file bytes live. Both variants are immutable for the
/// tree's lifetime.
enum Region {
    /// A buffer owned by this process (`read`/`from_bytes`).
    Owned(Vec<u8>),
    /// A read-only file mapping (`open`).
    Mapped(memmap2::Mmap),
}

impl Region {
    fn bytes(&self) -> &[u8] {
        match self {
            Region::Owned(v) => v,
            Region::Mapped(m) => m,
        }
    }
}

/// A search tree served from the raw bytes of a saved `.cobt` file.
///
/// Construction fully validates the container (magic, version,
/// checksums, shape, permutation) and then never copies: searches read
/// keys at `key_region + position × width` for exactly the nodes the
/// descent visits.
///
/// ```
/// use cobtree_search::{MappedTree, SaveOptions, SearchBackend, SearchTree, Storage};
/// use cobtree_core::NamedLayout;
///
/// let tree = SearchTree::builder()
///     .layout(NamedLayout::MinWep)
///     .storage(Storage::Implicit)
///     .keys((1..=100u64).map(|k| k * 3))
///     .build()?;
/// let mapped: MappedTree<u64> = MappedTree::from_bytes(tree.encode(&SaveOptions::new())?)?;
/// assert_eq!(mapped.key_count(), 100);
/// assert_eq!(mapped.search(30), tree.search(30)); // identical positions
/// assert_eq!(mapped.search(31), None);
/// # Ok::<(), cobtree_core::Error>(())
/// ```
pub struct MappedTree<K> {
    region: Region,
    geometry: Geometry,
    tree: Tree,
    /// `Some` for named-layout files (arithmetic positions); `None` for
    /// table files (positions read from the mapped index region).
    arithmetic: Option<Box<dyn PositionIndex>>,
    /// Compiled descent plan for named-layout files whose arithmetic
    /// compiles (see [`cobtree_core::index::StepPlan`]). Deliberately
    /// *not* a materialized table: open stays zero-copy — table files
    /// read positions from the mapped index region instead.
    plan: Option<StepPlan>,
    /// The named layout, when the file carries one (drives re-save).
    named: Option<NamedLayout>,
    /// `Some` for fat-node files (header arity > 0): rank-of-key
    /// descent over whole mapped chunks instead of binary descent.
    fat_index: Option<FatIndex>,
    label: String,
    _keys: PhantomData<fn() -> K>,
}

/// The fat kernels' view of a mapped fat-node file: raw little-endian
/// key bytes in chunk order, padding masked by real-key count (padding
/// slot *bytes* are zeros in the file and must never be compared —
/// unlike the heap plane's explicit suprema).
struct FatBytesPlane<'a, K> {
    index: &'a FatIndex,
    bytes: &'a [u8],
    key_count: u64,
    _keys: PhantomData<fn() -> K>,
}

impl<K: FixedKey> FatPlane for FatBytesPlane<'_, K> {
    type Key = K;

    #[inline]
    fn fat_index(&self) -> &FatIndex {
        self.index
    }

    #[inline]
    fn live_count(&self, fat_depth: u32, t: u64) -> u32 {
        self.index.chunk_real_count(fat_depth, t, self.key_count)
    }

    #[inline]
    fn rank_in_chunk(&self, base: u64, live: u32, probe: K, upper: bool) -> (u32, Option<u32>) {
        kernel::byte_rank_in_chunk::<K>(self.bytes, base, self.index.stride(), live, probe, upper)
    }

    #[inline]
    fn prefetch_chunk(&self, base: u64) {
        let off = base as usize * K::WIDTH;
        if off < self.bytes.len() {
            kernel::prefetch_read(&self.bytes[off]);
        }
    }
}

impl<K: FixedKey> MappedTree<K> {
    /// Memory-maps `path` and validates it as a tree file of `K` keys.
    ///
    /// # Errors
    /// [`Error::Io`] on filesystem failures, [`Error::KeyTypeMismatch`]
    /// when the file stores a different key type, and every
    /// [`cobtree_core::format::parse`] error on malformed bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::File::open(path).map_err(|e| Error::io(&e))?;
        // Safety contract (see the memmap2 shim): tree files are
        // written once and only read afterwards.
        let map = unsafe { memmap2::Mmap::map(&file) }.map_err(|e| Error::io(&e))?;
        Self::from_region(Region::Mapped(map))
    }

    /// Reads `path` into an owned buffer instead of mapping it — same
    /// validation, same behaviour, no page-cache sharing.
    ///
    /// # Errors
    /// As for [`MappedTree::open`].
    pub fn read(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(|e| Error::io(&e))?;
        Self::from_bytes(bytes)
    }

    /// [`MappedTree::open`] through an explicit storage seam: real
    /// seams memory-map as usual, while fault schedules
    /// (`supports_mmap() == false`) load the file through `io.read`
    /// into owned memory so scripted read faults reach the validation
    /// path instead of being hidden by the page cache.
    ///
    /// # Errors
    /// As for [`MappedTree::open`].
    pub fn open_with_io(
        path: impl AsRef<Path>,
        io: &dyn cobtree_core::io::StorageIo,
    ) -> Result<Self> {
        if io.supports_mmap() {
            Self::open(path)
        } else {
            Self::from_bytes(io.read(path.as_ref())?)
        }
    }

    /// Serves a tree from an in-memory image (e.g. the output of
    /// `SearchTree::encode`, or bytes fetched from object
    /// storage).
    ///
    /// # Errors
    /// As for [`MappedTree::open`], minus the I/O cases.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        Self::from_region(Region::Owned(bytes))
    }

    fn from_region(region: Region) -> Result<Self> {
        let geometry = format::parse(region.bytes())?;
        format::expect_key_type::<K>(&geometry)?;
        let tree = Tree::try_new(geometry.height)?;
        let label = geometry.descriptor_str(region.bytes()).to_string();
        let (arithmetic, named, fat_index) = if geometry.arity > 0 {
            // `parse` already cross-checked the label against the
            // header arity, so this parse cannot fail on a valid file.
            let layout: FatLayout = label.parse()?;
            (
                None,
                None,
                Some(FatIndex::try_new(layout, geometry.height)?),
            )
        } else {
            match geometry.kind {
                format::DescriptorKind::Named => {
                    let layout: NamedLayout = label.parse()?;
                    (
                        Some(layout.try_indexer(geometry.height)?),
                        Some(layout),
                        None,
                    )
                }
                format::DescriptorKind::Table => (None, None, None),
            }
        };
        let plan = arithmetic.as_ref().and_then(|ix| ix.compile_plan());
        Ok(Self {
            region,
            geometry,
            tree,
            arithmetic,
            named,
            fat_index,
            plan,
            label,
            _keys: PhantomData,
        })
    }

    /// The descent plane the kernels run on: keys straight from the
    /// mapped key region, positions from the compiled plan (named
    /// layouts), the mapped `u32` index region (table files), or the
    /// virtual indexer (named layouts that do not compile).
    #[inline]
    fn plane(&self) -> MappedPlane<'_, K> {
        let file = self.region.bytes();
        let pos = match (&self.plan, &self.arithmetic) {
            (Some(plan), _) => PosRef::Plan(plan),
            (None, Some(ix)) => PosRef::Index(ix.as_ref()),
            (None, None) => {
                let (off, len) = self.geometry.index;
                PosRef::Raw32(&file[off..off + len])
            }
        };
        let (koff, klen) = self.geometry.keys;
        MappedPlane::new(
            &file[koff..koff + klen],
            pos,
            self.geometry.height,
            self.geometry.key_count,
        )
    }

    /// The fat descent plane, when the file stores a fat-node layout.
    #[inline]
    fn fat_plane(&self) -> Option<FatBytesPlane<'_, K>> {
        self.fat_index.as_ref().map(|index| {
            let (koff, klen) = self.geometry.keys;
            FatBytesPlane {
                index,
                bytes: &self.region.bytes()[koff..koff + klen],
                key_count: self.geometry.key_count,
                _keys: PhantomData,
            }
        })
    }

    /// Tree height `h` of the (padded) complete tree.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.geometry.height
    }

    /// Number of stored (real) keys.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.geometry.key_count
    }

    /// `false`; files carry at least one key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total slots including padding, `2^h − 1`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.geometry.capacity()
    }

    /// The layout name or label stored in the file's descriptor.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The named layout, when the file's descriptor carries one.
    #[must_use]
    pub fn named_layout(&self) -> Option<NamedLayout> {
        self.named
    }

    /// The fat-node layout, when the file stores one (header arity > 0).
    #[must_use]
    pub fn fat_layout(&self) -> Option<FatLayout> {
        self.fat_index.as_ref().map(FatIndex::layout)
    }

    /// Block alignment the writer used.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.geometry.block_bytes
    }

    /// Layout position of BFS `node` at `depth` — arithmetic for named
    /// and fat layouts, one mapped `u32` read for table files.
    #[inline]
    fn position(&self, node: u64, depth: u32) -> u64 {
        if let Some(fi) = &self.fat_index {
            return fi.position(node, depth);
        }
        match &self.arithmetic {
            Some(index) => index.position(node, depth),
            None => self.geometry.table_position(self.region.bytes(), node),
        }
    }

    /// Key stored at layout position `pos` (must not be a padding slot).
    #[inline]
    fn key_at_position(&self, pos: u64) -> K {
        self.geometry.key_at_position::<K>(self.region.bytes(), pos)
    }

    /// Searches for `key`, reading one mapped key per visited node (one
    /// mapped chunk per fat level for fat files); returns the layout
    /// position of the match.
    ///
    /// Runs on the compiled descent kernel (the rank-of-key fat kernel
    /// for fat files); bit-identical to
    /// [`MappedTree::search_reference`].
    #[inline]
    #[must_use]
    pub fn search(&self, key: K) -> Option<u64> {
        match self.fat_plane() {
            Some(p) => kernel::fat_search(&p, key),
            None => kernel::search(&self.plane(), key),
        }
    }

    /// The pre-kernel descent, kept as the verification oracle.
    #[inline]
    #[must_use]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        let h = self.tree.height();
        let n = self.geometry.key_count;
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.position(i, d);
            // Padding slots (rank beyond the stored keys) compare as
            // +∞: descend left without touching the key bytes.
            let go_right = if self.tree.in_order_rank(i) > n {
                false
            } else {
                match key.cmp(&self.key_at_position(p)) {
                    std::cmp::Ordering::Equal => return Some(p),
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Greater => true,
                }
            };
            i = (i << 1) | u64::from(go_right);
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// [`MappedTree::search`], recording every visited layout position.
    /// Fat files record at **chunk granularity** (all slots of each
    /// entered chunk — a rank-of-key loads the whole chunk), matching
    /// the heap fat backend's traces slot for slot.
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let h = self.tree.height();
        let n = self.geometry.key_count;
        let stride = self.fat_index.as_ref().map(FatIndex::stride);
        let mut last_chunk = u64::MAX;
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.position(i, d);
            match stride {
                None => visited.push(p),
                Some(s) => {
                    let chunk = p / s;
                    if chunk != last_chunk {
                        let base = chunk * s;
                        for off in 0..s {
                            visited.push(base + off);
                        }
                        last_chunk = chunk;
                    }
                }
            }
            let go_right = if self.tree.in_order_rank(i) > n {
                false
            } else {
                match key.cmp(&self.key_at_position(p)) {
                    std::cmp::Ordering::Equal => return Some(p),
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Greater => true,
                }
            };
            i = (i << 1) | u64::from(go_right);
            d += 1;
            if d >= h {
                return None;
            }
        }
    }
}

impl<K> MappedTree<K> {
    /// Total size of the backing file image in bytes.
    #[must_use]
    pub fn file_len(&self) -> u64 {
        self.region.bytes().len() as u64
    }

    /// Byte offset of the key region inside the file — the `base` to
    /// hand a cache replay so simulated addresses equal real file
    /// offsets (the region is aligned to [`MappedTree::block_bytes`]).
    #[must_use]
    pub fn key_region_offset(&self) -> u64 {
        self.geometry.keys.0 as u64
    }

    /// `true` when the bytes come from a live `mmap` rather than an
    /// owned buffer.
    #[must_use]
    pub fn is_memory_mapped(&self) -> bool {
        matches!(self.region, Region::Mapped(_))
    }
}

impl<K: FixedKey> SearchBackend<K> for MappedTree<K> {
    fn height(&self) -> u32 {
        self.geometry.height
    }

    fn key_count(&self) -> u64 {
        self.geometry.key_count
    }

    fn search(&self, key: K) -> Option<u64> {
        MappedTree::search(self, key)
    }

    fn search_reference(&self, key: K) -> Option<u64> {
        MappedTree::search_reference(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        MappedTree::search_traced(self, key, visited)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        match self.fat_plane() {
            Some(p) => kernel::fat_search_traced(&p, key, visited),
            None => kernel::search_traced(&self.plane(), key, visited),
        }
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        match self.fat_plane() {
            Some(p) => kernel::fat_search_batch_interleaved(&p, keys, width, out),
            None => kernel::search_batch_interleaved(&self.plane(), keys, width, out),
        }
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        match self.fat_plane() {
            Some(p) => kernel::fat_batch_checksum(&p, keys, kernel::DEFAULT_LANES),
            None => kernel::batch_checksum(&self.plane(), keys, kernel::DEFAULT_LANES),
        }
    }

    fn lower_bound_rank(&self, key: K) -> u64 {
        match self.fat_plane() {
            Some(p) => kernel::fat_bound_rank::<_, false>(&p, key),
            None => kernel::bound_rank::<_, false>(&self.plane(), key),
        }
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        match self.fat_plane() {
            Some(p) => kernel::fat_bound_rank::<_, true>(&p, key),
            None => kernel::bound_rank::<_, true>(&self.plane(), key),
        }
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        (rank >= 1 && rank <= self.geometry.key_count).then(|| {
            let node = self.tree.node_at_in_order(rank);
            self.key_at_position(self.position(node, self.tree.depth(node)))
        })
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        (rank >= 1 && rank <= self.tree.len()).then(|| {
            let node = self.tree.node_at_in_order(rank);
            self.position(node, self.tree.depth(node))
        })
    }
}

impl<K> std::fmt::Debug for MappedTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedTree")
            .field("layout", &self.label)
            .field("height", &self.geometry.height)
            .field("len", &self.geometry.key_count)
            .field("file_len", &self.file_len())
            .field("mmap", &self.is_memory_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{SaveOptions, SearchTree, Storage};
    use cobtree_core::NamedLayout;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cobtree-mapped-{}-{name}.cobt", std::process::id()))
    }

    fn build(layout: NamedLayout, n: u64) -> SearchTree<u64> {
        SearchTree::builder()
            .layout(layout)
            .storage(Storage::Implicit)
            .keys((1..=n).map(|k| k * 7))
            .build()
            .unwrap()
    }

    #[test]
    fn mapped_file_agrees_with_implicit_on_everything() {
        let source = build(NamedLayout::MinWep, 300);
        let path = temp_path("agree");
        source.write_file(&path, &SaveOptions::new()).unwrap();
        let mapped: MappedTree<u64> = MappedTree::open(&path).unwrap();
        assert!(mapped.is_memory_mapped());
        assert_eq!(mapped.len(), 300);
        assert_eq!(mapped.label(), "MINWEP");
        assert_eq!(mapped.named_layout(), Some(NamedLayout::MinWep));
        for probe in 0..=2200u64 {
            assert_eq!(mapped.search(probe), source.search(probe), "probe {probe}");
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for probe in [7u64, 1050, 2100, 9999] {
            a.clear();
            b.clear();
            assert_eq!(
                mapped.search_traced(probe, &mut a),
                source.search_traced(probe, &mut b)
            );
            assert_eq!(a, b, "trace for {probe}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_and_open_validate_identically() {
        let source = build(NamedLayout::PreVeb, 64);
        let path = temp_path("read");
        source.write_file(&path, &SaveOptions::new()).unwrap();
        let via_read: MappedTree<u64> = MappedTree::read(&path).unwrap();
        assert!(!via_read.is_memory_mapped());
        let via_open: MappedTree<u64> = MappedTree::open(&path).unwrap();
        let probes: Vec<u64> = (0..500).collect();
        assert_eq!(
            via_read.search_batch_checksum(&probes),
            via_open.search_batch_checksum(&probes)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_and_wrong_key_type_are_typed_errors() {
        assert!(matches!(
            MappedTree::<u64>::open(temp_path("nonexistent")).unwrap_err(),
            Error::Io { .. }
        ));
        let bytes = build(NamedLayout::InOrder, 20)
            .encode(&SaveOptions::new())
            .unwrap();
        assert_eq!(
            MappedTree::<u32>::from_bytes(bytes).unwrap_err(),
            Error::KeyTypeMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn table_descriptor_files_serve_without_an_indexer() {
        // A materialized-layout source round-trips through the table
        // descriptor kind: positions come from the mapped index region.
        let layout = NamedLayout::HalfWep.materialize(6);
        let tree = SearchTree::builder()
            .layout(layout)
            .storage(Storage::Implicit)
            .keys((1..=63u64).map(|k| k * 2))
            .build()
            .unwrap();
        let mapped: MappedTree<u64> =
            MappedTree::from_bytes(tree.encode(&SaveOptions::new()).unwrap()).unwrap();
        assert_eq!(mapped.named_layout(), None);
        for probe in 0..=130u64 {
            assert_eq!(mapped.search(probe), tree.search(probe), "probe {probe}");
        }
    }
}
