//! The unified `SearchTree` facade: one builder API over every layout ×
//! storage combination.
//!
//! The paper's central claim is that MINWEP is a drop-in *layout choice*
//! — the search algorithm is identical across vEB, MINWEP, B-tree-ish
//! and in-order layouts; only the position computation changes. This
//! module makes the claim operational:
//!
//! ```
//! use cobtree_search::{SearchTree, Storage};
//! use cobtree_core::NamedLayout;
//!
//! let keys: Vec<u64> = (1..=1000).map(|k| k * 3).collect();
//! let tree = SearchTree::builder()
//!     .layout(NamedLayout::MinWep)        // or a RecursiveSpec, or a Layout
//!     .storage(Storage::Implicit)         // ⇄ Explicit ⇄ IndexOnly, one line
//!     .keys(keys.iter().copied())
//!     .build()?;
//! assert!(tree.contains(30));
//! assert!(!tree.contains(31));
//! # Ok::<(), cobtree_core::Error>(())
//! ```
//!
//! Key count — not tree height — is the sizing parameter: the builder
//! picks the smallest complete tree that fits and pads the remainder
//! with supremum sentinels internally, so any non-empty strictly-sorted key set
//! works. All three storage backends built from one configuration share
//! a single position index, so `search` returns the *same* positions —
//! and [`SearchTree::search_batch_checksum`] the same checksums — no
//! matter which storage is selected.

use crate::backend::SearchBackend;
use crate::cursor::{range_of, Cursor, Range};
use crate::explicit::ExplicitTree;
use crate::fat::FatHeapTree;
use crate::implicit::ImplicitTree;
use crate::index_only::IndexOnlyTree;
use crate::kernel;
use crate::mapped::MappedTree;
use crate::slot::{padded_slots, Slot};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::fat::{FatIndex, FatLayout};
use cobtree_core::format::{self, Descriptor, FixedKey};
use cobtree_core::index::generic::GenericIndexer;
use cobtree_core::index::{MaterializedIndex, PositionIndex};
use cobtree_core::weights::{encode_weight_profile, hot_path_layout, parse_weight_profile};
use cobtree_core::{EdgeWeights, Layout, NamedLayout, ObservedProfile, RecursiveSpec, Tree};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Hard ceiling on key counts: `2^31 − 1` (positions are stored as
/// `u32` by the materialized layouts and explicit nodes).
pub const MAX_KEYS: u64 = (1 << 31) - 1;

/// How the tree is stored and navigated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// Nodes with embedded child pointers, in layout order — the paper's
    /// wall-clock champion (§II-B).
    Explicit,
    /// Keys only, in layout order; every transition recomputes the child
    /// position arithmetically (§IV-E).
    Implicit,
    /// Keys in plain sorted order; layout positions are computed on
    /// demand and never stored (the §IV-E index-timing discipline,
    /// generalized to arbitrary keys).
    IndexOnly,
    /// Keys served zero-copy from the bytes of a saved tree file
    /// (`docs/FORMAT.md`), memory-mapped or owned. Created by
    /// [`SearchTree::open`] / [`SearchTree::open_bytes`] — never by the
    /// key-set builder, which has no file to map.
    Mapped,
}

impl Storage {
    /// The storage backends the key-set builder can construct, for
    /// generic iteration in benches and tests. [`Storage::Mapped`] is
    /// deliberately absent: mapped trees are opened from a saved file
    /// ([`SearchTree::open`]), not built from keys.
    pub const ALL: [Storage; 3] = [Storage::Explicit, Storage::Implicit, Storage::IndexOnly];
}

impl std::fmt::Display for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Storage::Explicit => "explicit",
            Storage::Implicit => "implicit",
            Storage::IndexOnly => "index-only",
            Storage::Mapped => "mapped",
        })
    }
}

/// Where a layout comes from: a named layout from the paper's Table I, a
/// raw [`RecursiveSpec`], or a pre-materialized [`Layout`] permutation.
#[derive(Clone)]
pub enum LayoutSource {
    /// One of the thirteen named Recursive Layouts (fast dedicated
    /// indexers where the paper has them).
    Named(NamedLayout),
    /// An arbitrary Recursive Layout, served by the generic
    /// spec-interpreting indexer.
    Spec(RecursiveSpec),
    /// A pre-materialized permutation (e.g. MINLA/MINBW baselines or a
    /// layout loaded from JSON); its height must match the key count.
    Materialized(Layout),
    /// A B-ary fat-node layout (wide nodes searched by rank-of-key —
    /// see [`cobtree_core::fat`]). Sparse: chunks are padded to a
    /// power-of-two stride, so positions exceed `2^h − 1` and each
    /// storage builds through its sparse path.
    Fat(FatLayout),
    /// Any base source annotated with an edge-weight model — the
    /// first-class form of "build this layout for that traffic".
    /// Geometric models ([`EdgeWeights::Approximate`] /
    /// [`EdgeWeights::Exact`] / [`EdgeWeights::Unweighted`]) are
    /// provenance only: the named layouts are already the paper's
    /// optima for them, so the base resolves unchanged. An
    /// [`EdgeWeights::Observed`] profile with real mass and a matching
    /// height *re-materializes* the layout via greedy hot-path packing
    /// ([`cobtree_core::weights::hot_path_layout`]); the adaptive
    /// planner substitutes the optimizer crate's stronger
    /// `optimize_for_profile` result as a [`LayoutSource::Materialized`]
    /// when it has one.
    Weighted {
        /// The underlying layout choice.
        base: Box<LayoutSource>,
        /// The traffic model the tree is built for.
        weights: EdgeWeights,
    },
}

impl From<NamedLayout> for LayoutSource {
    fn from(layout: NamedLayout) -> Self {
        LayoutSource::Named(layout)
    }
}

impl From<RecursiveSpec> for LayoutSource {
    fn from(spec: RecursiveSpec) -> Self {
        LayoutSource::Spec(spec)
    }
}

impl From<Layout> for LayoutSource {
    fn from(layout: Layout) -> Self {
        LayoutSource::Materialized(layout)
    }
}

impl From<FatLayout> for LayoutSource {
    fn from(layout: FatLayout) -> Self {
        LayoutSource::Fat(layout)
    }
}

impl std::fmt::Debug for LayoutSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl LayoutSource {
    /// Human-readable description of the source. Weighted sources
    /// report their provenance as `base+model`, e.g. `MINWEP+observed`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            LayoutSource::Named(l) => l.label().to_string(),
            LayoutSource::Spec(s) => s.nomenclature(),
            LayoutSource::Materialized(l) => format!("materialized(h={})", l.height()),
            LayoutSource::Fat(l) => l.label().to_string(),
            LayoutSource::Weighted { base, weights } => {
                format!("{}+{}", base.label(), weights.tag())
            }
        }
    }

    /// Annotates this source with an edge-weight model (builder sugar
    /// for constructing [`LayoutSource::Weighted`] by hand).
    #[must_use]
    pub fn with_weights(self, weights: EdgeWeights) -> LayoutSource {
        LayoutSource::Weighted {
            base: Box::new(self),
            weights,
        }
    }

    /// Collapses weighted annotations into a resolvable source for a
    /// tree of `height`: an observed profile with real mass and a
    /// matching height re-materializes the layout by hot-path packing;
    /// every other annotation resolves as its base (the geometric
    /// models are exactly what the named layouts already optimize).
    fn normalized(self, height: u32) -> LayoutSource {
        match self {
            LayoutSource::Weighted { base, weights } => {
                let base = base.normalized(height);
                if !matches!(base, LayoutSource::Fat(_)) {
                    if let Some(p) = weights.observed() {
                        if p.height() == height && p.total() > 0 {
                            return LayoutSource::Materialized(hot_path_layout(p));
                        }
                    }
                }
                base
            }
            other => other,
        }
    }

    /// Resolves the source into a position index for a tree of `height`
    /// levels. Every backend of one [`SearchTree`] shares this index, so
    /// positions agree across storage kinds.
    ///
    /// # Errors
    /// [`Error::HeightOutOfRange`] for unrepresentable heights;
    /// [`Error::HeightMismatch`] if a pre-materialized layout does not
    /// match `height`.
    pub fn resolve(&self, height: u32) -> Result<Box<dyn PositionIndex>> {
        match self {
            LayoutSource::Named(l) => l.try_indexer(height),
            LayoutSource::Spec(s) => {
                Tree::try_new(height)?;
                Ok(Box::new(GenericIndexer::new(s.clone(), height)))
            }
            LayoutSource::Materialized(l) => {
                if l.height() != height {
                    return Err(Error::HeightMismatch {
                        expected: l.height(),
                        got: height,
                    });
                }
                Ok(Box::new(MaterializedIndex::new(l.clone())))
            }
            LayoutSource::Fat(l) => Ok(Box::new(FatIndex::try_new(*l, height)?)),
            LayoutSource::Weighted { .. } => self.clone().normalized(height).resolve(height),
        }
    }
}

/// Configures and builds a [`SearchTree`]. Created by
/// [`SearchTree::builder`].
pub struct SearchTreeBuilder<K> {
    source: LayoutSource,
    storage: Storage,
    weights: Option<EdgeWeights>,
    keys: Vec<K>,
}

impl<K: Ord + Copy> Default for SearchTreeBuilder<K> {
    fn default() -> Self {
        Self {
            source: LayoutSource::Named(NamedLayout::MinWep),
            storage: Storage::Explicit,
            weights: None,
            keys: Vec::new(),
        }
    }
}

impl<K: Ord + Copy> SearchTreeBuilder<K> {
    /// Chooses the layout (default: MINWEP). Accepts a [`NamedLayout`],
    /// a [`RecursiveSpec`], or a pre-materialized [`Layout`].
    #[must_use]
    pub fn layout(mut self, source: impl Into<LayoutSource>) -> Self {
        self.source = source.into();
        self
    }

    /// Chooses the storage backend (default: explicit).
    #[must_use]
    pub fn storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Annotates the layout with an edge-weight model; composes with
    /// any named/spec/fat source. An [`EdgeWeights::Observed`] traffic
    /// profile (with mass, at the tree's height) re-materializes the
    /// layout for that traffic; the geometric models record provenance.
    /// Either way [`SearchTree::layout_label`] reports `base+model`.
    ///
    /// ```
    /// use cobtree_search::SearchTree;
    /// use cobtree_core::EdgeWeights;
    ///
    /// // Height-3 tree (7 slots); rank 1 is scorching hot.
    /// let tree = SearchTree::builder()
    ///     .weights(EdgeWeights::from_access_counts(&[900, 1, 1, 1, 1, 1, 1]))
    ///     .keys([10u64, 20, 30, 40, 50, 60, 70])
    ///     .build()?;
    /// assert_eq!(tree.layout_label(), "MINWEP+observed");
    /// assert!(tree.contains(10));
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    #[must_use]
    pub fn weights(mut self, weights: EdgeWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Sets the key set (must end up non-empty and strictly ascending;
    /// validated by [`SearchTreeBuilder::build`]).
    #[must_use]
    pub fn keys(mut self, keys: impl IntoIterator<Item = K>) -> Self {
        self.keys = keys.into_iter().collect();
        self
    }

    /// Validates the configuration and builds the tree.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::TooManyKeys`] on bad key sets;
    /// [`Error::HeightMismatch`] when a pre-materialized layout does not
    /// fit the key count; [`Error::HeightOutOfRange`] if the layout
    /// source cannot serve the required height.
    pub fn build(self) -> Result<SearchTree<K>> {
        if self.storage == Storage::Mapped {
            return Err(Error::MappedStorageRequiresFile);
        }
        check_sorted_keys(&self.keys)?;
        let n = self.keys.len() as u64;
        if n > MAX_KEYS {
            return Err(Error::TooManyKeys {
                got: n,
                max: MAX_KEYS,
            });
        }
        // Smallest complete tree that fits every key.
        let mut height = 1u32;
        while ((1u64 << height) - 1) < n {
            height += 1;
        }
        let slots = padded_slots(&self.keys, height);
        // Fold the builder's weight annotation into the source, keep
        // its provenance label, then collapse it into a directly
        // resolvable source (an observed profile may re-materialize
        // the layout for its traffic).
        let source = match self.weights {
            Some(weights) => self.source.with_weights(weights),
            None => self.source,
        };
        let layout_label = source.label();
        let source = source.normalized(height);
        let inner = match self.storage {
            // A pre-materialized source already *is* the layout — use it
            // directly rather than round-tripping through its index.
            Storage::Explicit => {
                if let LayoutSource::Materialized(layout) = &source {
                    if layout.height() != height {
                        return Err(Error::HeightMismatch {
                            expected: layout.height(),
                            got: height,
                        });
                    }
                    Inner::Explicit(ExplicitTree::try_build(layout, &slots)?)
                } else if matches!(source, LayoutSource::Fat(_)) {
                    // Fat layouts are sparse (positions beyond
                    // `2^h − 1`), so they skip the permutation
                    // materialization and build node-per-slot directly.
                    let index = source.resolve(height)?;
                    Inner::Explicit(ExplicitTree::try_build_from_index(index.as_ref(), &slots)?)
                } else {
                    // Materialize the *index* (not the engine) so explicit
                    // positions are bit-identical to the arithmetic
                    // backends even where an indexer is an automorphic
                    // image of the engine's output.
                    let index = source.resolve(height)?;
                    let tree = Tree::new(height);
                    let positions: Vec<u32> = tree
                        .nodes()
                        .map(|i| index.position(i, tree.depth(i)) as u32)
                        .collect();
                    let layout = Layout::try_from_positions(height, positions)?;
                    Inner::Explicit(ExplicitTree::try_build(&layout, &slots)?)
                }
            }
            Storage::Implicit => {
                if let LayoutSource::Fat(layout) = &source {
                    // The implicit realization of a fat layout is the
                    // chunked heap plane searched by rank-of-key.
                    Inner::FatHeap(FatHeapTree::try_build(
                        FatIndex::try_new(*layout, height)?,
                        &slots,
                    )?)
                } else {
                    Inner::Implicit(ImplicitTree::try_build(source.resolve(height)?, &slots)?)
                }
            }
            Storage::IndexOnly => {
                Inner::IndexOnly(IndexOnlyTree::try_build(source.resolve(height)?, &slots)?)
            }
            Storage::Mapped => unreachable!("rejected above"),
        };
        let provenance = match &source {
            LayoutSource::Named(layout) => Provenance::Named(*layout),
            LayoutSource::Fat(layout) => Provenance::Fat(*layout),
            _ => Provenance::Opaque,
        };
        Ok(SearchTree {
            storage: self.storage,
            layout_label,
            provenance,
            height,
            key_len: n,
            inner,
        })
    }
}

enum Inner<K> {
    Explicit(ExplicitTree<Slot<K>>),
    Implicit(ImplicitTree<Slot<K>>),
    /// Implicit storage of a fat layout: the chunked heap plane.
    FatHeap(FatHeapTree<Slot<K>>),
    IndexOnly(IndexOnlyTree<Slot<K>>),
    /// A mapped file backend, type-erased so the facade stays generic
    /// over plain `Ord + Copy` keys (the `FixedKey` bound applies only
    /// at open/save time, where the erasure happens).
    Mapped(Box<dyn SearchBackend<K> + Send + Sync>),
}

/// Where the layout came from — drives the descriptor kind
/// [`SearchTree::save`] writes: named layouts travel by name (no
/// position table in the file), everything else as a materialized
/// table.
#[derive(Clone, Copy)]
enum Provenance {
    Named(NamedLayout),
    /// Fat layouts travel by label + header arity; the file's key
    /// region is sized by the sparse slot capacity.
    Fat(FatLayout),
    Opaque,
}

/// A static cache-oblivious search tree: any layout, any storage
/// backend, one API. Built by [`SearchTree::builder`].
pub struct SearchTree<K> {
    storage: Storage,
    layout_label: String,
    provenance: Provenance,
    height: u32,
    key_len: u64,
    inner: Inner<K>,
}

/// The two key disciplines an inner backend can speak: padded
/// [`Slot`]s (in-memory backends) or raw keys (the mapped backend,
/// which detects padding arithmetically).
enum InnerRef<'a, K> {
    Slots(&'a dyn SearchBackend<Slot<K>>),
    Keys(&'a dyn SearchBackend<K>),
}

impl<K: Ord + Copy> SearchTree<K> {
    /// Starts a builder with the defaults (MINWEP layout, explicit
    /// storage, no keys).
    #[must_use]
    pub fn builder() -> SearchTreeBuilder<K> {
        SearchTreeBuilder::default()
    }

    /// Number of (real) keys.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.key_len
    }

    /// `false`; building requires at least one key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the (padded) complete tree.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total slots including padding, `2^h − 1`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        (1u64 << self.height) - 1
    }

    /// The storage backend in use.
    #[must_use]
    pub fn storage(&self) -> Storage {
        self.storage
    }

    /// Human-readable layout description.
    #[must_use]
    pub fn layout_label(&self) -> &str {
        &self.layout_label
    }

    /// The inner storage backend, in whichever key discipline it speaks.
    fn inner(&self) -> InnerRef<'_, K> {
        match &self.inner {
            Inner::Explicit(t) => InnerRef::Slots(t),
            Inner::Implicit(t) => InnerRef::Slots(t),
            Inner::FatHeap(t) => InnerRef::Slots(t),
            Inner::IndexOnly(t) => InnerRef::Slots(t),
            Inner::Mapped(t) => InnerRef::Keys(t.as_ref()),
        }
    }

    /// Searches for `key`; returns the 0-based layout position of its
    /// node. Positions are identical across storage backends for the
    /// same layout and keys.
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        match self.inner() {
            InnerRef::Slots(b) => b.search(Slot::Key(key)),
            InnerRef::Keys(b) => b.search(key),
        }
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.search(key).is_some()
    }

    /// Searches while recording every visited layout position (for cache
    /// simulation).
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        match self.inner() {
            InnerRef::Slots(b) => b.search_traced(Slot::Key(key), visited),
            InnerRef::Keys(b) => b.search_traced(key, visited),
        }
    }

    /// The pre-kernel descent of the selected backend, kept as the
    /// oracle the compiled kernels are verified against.
    #[inline]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        match self.inner() {
            InnerRef::Slots(b) => b.search_reference(Slot::Key(key)),
            InnerRef::Keys(b) => b.search_reference(key),
        }
    }

    /// Searches an arbitrary-order probe batch with up to `width`
    /// lookups interleaved in flight on the selected backend's kernel
    /// (see [`crate::kernel`]). `out` is cleared and filled in probe
    /// order; results are bit-identical to mapping
    /// [`SearchTree::search`].
    ///
    /// Probes for slot-keyed inner backends are converted chunk-wise
    /// through a lane-sized stack buffer — never a probes-length
    /// allocation, so the kernel's cost is what gets measured.
    pub fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        match self.inner() {
            InnerRef::Slots(b) => {
                let width = width.clamp(1, kernel::MAX_LANES);
                out.clear();
                out.reserve(keys.len());
                let mut slots = [Slot::Sup(0); kernel::MAX_LANES];
                let mut lane_out = Vec::with_capacity(kernel::MAX_LANES);
                for chunk in keys.chunks(width) {
                    for (slot, &k) in slots.iter_mut().zip(chunk) {
                        *slot = Slot::Key(k);
                    }
                    b.search_batch_interleaved(&slots[..chunk.len()], width, &mut lane_out);
                    out.extend_from_slice(&lane_out);
                }
            }
            InnerRef::Keys(b) => b.search_batch_interleaved(keys, width, out),
        }
    }

    /// Benchmark kernel: sum of found positions, identical across
    /// storage backends. Dispatches to the selected backend's
    /// interleaved checksum kernel (chunk-wise slot conversion, as in
    /// [`SearchTree::search_batch_interleaved`]).
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        match self.inner() {
            InnerRef::Slots(b) => {
                let mut acc = 0u64;
                let mut slots = [Slot::Sup(0); kernel::MAX_LANES];
                for chunk in keys.chunks(kernel::DEFAULT_LANES) {
                    for (slot, &k) in slots.iter_mut().zip(chunk) {
                        *slot = Slot::Key(k);
                    }
                    acc = acc.wrapping_add(b.search_batch_checksum(&slots[..chunk.len()]));
                }
                acc
            }
            InnerRef::Keys(b) => b.search_batch_checksum(keys),
        }
    }

    // ------------------------------------------------------------------
    // Ordered-map queries (inherited from `SearchBackend`, re-exposed
    // inherently so callers don't need the trait in scope).
    // ------------------------------------------------------------------

    /// Number of stored keys strictly less than `key`.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys([10u64, 20, 30]).build()?;
    /// assert_eq!(t.rank(25), 2);
    /// assert_eq!(t.select(t.rank(25) + 1), Some(30));
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    #[must_use]
    pub fn rank(&self, key: K) -> u64 {
        SearchBackend::rank(self, key)
    }

    /// The `rank`-th smallest key (1-based); `None` outside `1..=len`.
    #[must_use]
    pub fn select(&self, rank: u64) -> Option<K> {
        SearchBackend::select(self, rank)
    }

    /// Smallest stored key `>= key` (`key` itself when present).
    #[must_use]
    pub fn lower_bound(&self, key: K) -> Option<K> {
        SearchBackend::lower_bound(self, key)
    }

    /// Smallest stored key `> key` — the in-order successor.
    #[must_use]
    pub fn upper_bound(&self, key: K) -> Option<K> {
        SearchBackend::upper_bound(self, key)
    }

    /// Largest stored key `< key` — the in-order predecessor.
    #[must_use]
    pub fn predecessor(&self, key: K) -> Option<K> {
        SearchBackend::predecessor(self, key)
    }

    /// Alias for [`SearchTree::upper_bound`].
    #[must_use]
    pub fn successor(&self, key: K) -> Option<K> {
        SearchBackend::successor(self, key)
    }

    /// A [`Cursor`] positioned before the first key.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys((1..=50u64).map(|k| k * 2)).build()?;
    /// let mut cur = t.cursor();
    /// assert_eq!(cur.seek(31), Some(32));
    /// assert_eq!(cur.next(), Some(34));
    /// assert_eq!(cur.prev(), Some(32));
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    #[must_use]
    pub fn cursor(&self) -> Cursor<'_, K> {
        Cursor::new(self)
    }

    /// The stored keys within `bounds`, ascending — `BTreeSet::range`
    /// for a cache-oblivious layout.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys((1..=100u64).map(|k| k * 3)).build()?;
    /// let window: Vec<u64> = t.range(10..=21).collect();
    /// assert_eq!(window, vec![12, 15, 18, 21]);
    /// assert_eq!(t.range(..).count(), 100);
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    pub fn range(&self, bounds: impl std::ops::RangeBounds<K>) -> Range<'_, K> {
        range_of(self, bounds)
    }

    /// Ascending iterator over all stored keys.
    pub fn iter(&self) -> Range<'_, K> {
        self.range(..)
    }

    /// Searches an ascending probe batch with shared-prefix restarts —
    /// see [`SearchBackend::search_sorted_batch`].
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        SearchBackend::search_sorted_batch(self, keys, out)
    }

    /// Traced variant of [`SearchTree::search_sorted_batch`] — see
    /// [`SearchBackend::search_sorted_batch_traced`].
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        SearchBackend::search_sorted_batch_traced(self, keys, out, visited)
    }
}

/// Which layout descriptor a saved tree file carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DescriptorKind {
    /// Provenance-driven (the default): trees built from a
    /// [`NamedLayout`] travel by name (no position table in the file,
    /// the reader rebuilds the arithmetic indexer), fat layouts by
    /// label + arity, everything else as a materialized `u32` position
    /// table.
    #[default]
    Auto,
    /// Force the materialized position table even for named layouts —
    /// for readers that must not depend on the named-indexer registry.
    /// Fat layouts ignore this (their sparse geometry has no dense
    /// table form) and still travel by label.
    Table,
}

/// One builder for every way a [`SearchTree`] reaches disk: block
/// alignment, descriptor kind, and the traffic profile the layout was
/// built for (written as a `.cobw` sidecar next to the tree file —
/// byte spec in `docs/FORMAT.md`). Consumed by [`SearchTree::encode`]
/// and [`SearchTree::write_file`]; the pre-redesign methods
/// (`save`/`save_with`/`to_file_bytes`/`to_file_bytes_with`) remain as
/// deprecated wrappers over these two.
///
/// ```
/// use cobtree_search::{SaveOptions, SearchTree};
///
/// let tree = SearchTree::builder().keys((1..=100u64).map(|k| k * 2)).build()?;
/// let bytes = tree.encode(&SaveOptions::new().block_bytes(1 << 12))?;
/// let reopened: SearchTree<u64> = SearchTree::open_bytes(bytes)?;
/// assert_eq!(reopened.len(), 100);
/// # Ok::<(), cobtree_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SaveOptions {
    block_bytes: Option<u64>,
    descriptor: DescriptorKind,
    weights: Option<Arc<ObservedProfile>>,
}

impl SaveOptions {
    /// Default options: [`cobtree_core::format::DEFAULT_BLOCK_BYTES`]
    /// alignment, provenance-driven descriptor, no weight sidecar.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Region alignment for the encoded file (must be a power of two;
    /// pick the serving medium's transfer-block size).
    #[must_use]
    pub fn block_bytes(mut self, block_bytes: u64) -> Self {
        self.block_bytes = Some(block_bytes);
        self
    }

    /// Which layout descriptor the file carries.
    #[must_use]
    pub fn descriptor(mut self, kind: DescriptorKind) -> Self {
        self.descriptor = kind;
        self
    }

    /// The observed traffic profile this tree's layout was optimized
    /// for. [`SearchTree::write_file`] records it as a checksummed
    /// `.cobw` sidecar next to the tree file (the `.cobt` bytes
    /// themselves are unchanged), so the adaptive planner can later
    /// measure how far live traffic has drifted from it.
    #[must_use]
    pub fn weight_profile(mut self, profile: impl Into<Arc<ObservedProfile>>) -> Self {
        self.weights = Some(profile.into());
        self
    }

    /// Where the weight sidecar for a tree file lives: the same path
    /// with the extension swapped to `cobw`.
    #[must_use]
    pub fn sidecar_path(tree_path: &Path) -> PathBuf {
        tree_path.with_extension("cobw")
    }
}

/// Reads the `.cobw` weight sidecar accompanying a tree file, if one
/// exists. `Ok(None)` when there is no sidecar; parse errors on a
/// present-but-corrupt sidecar are real errors.
///
/// # Errors
/// [`Error::Io`] on filesystem failures other than absence, plus every
/// [`cobtree_core::weights::parse_weight_profile`] error.
pub fn read_weight_sidecar(tree_path: impl AsRef<Path>) -> Result<Option<ObservedProfile>> {
    let sidecar = SaveOptions::sidecar_path(tree_path.as_ref());
    match std::fs::read(&sidecar) {
        Ok(bytes) => Ok(Some(parse_weight_profile(&bytes)?)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(Error::io(&e)),
    }
}

/// Persistence: every `SearchTree` whose key type has a fixed wire
/// encoding ([`FixedKey`]) can be saved to the zero-copy `.cobt` format
/// and served back through the mapped backend. See `docs/FORMAT.md`
/// for the byte-level container specification.
impl<K: Ord + Copy + FixedKey> SearchTree<K> {
    /// Serializes the tree to the on-disk format under `opts` (block
    /// alignment and descriptor kind; the weight profile, being a
    /// sidecar, only affects [`SearchTree::write_file`]).
    ///
    /// With the default [`DescriptorKind::Auto`], trees built from a
    /// [`NamedLayout`] travel by name — the file carries no position
    /// table and the reader rebuilds the arithmetic indexer. Every
    /// other source (specs, materialized layouts, opened table files)
    /// is stored with its materialized `u32` position table. Either
    /// way, a reopened tree visits the same positions and returns the
    /// same checksums as this one.
    ///
    /// # Errors
    /// Propagates [`cobtree_core::format::encode_tree`] errors.
    pub fn encode(&self, opts: &SaveOptions) -> Result<Vec<u8>> {
        let block_bytes = opts.block_bytes.unwrap_or(format::DEFAULT_BLOCK_BYTES);
        let tree = Tree::new(self.height);
        let capacity = tree.len();
        // Sparse fat layouts address more slots than ranks; the extra
        // slots stay `None` (zero bytes in the file).
        let slot_capacity = match self.provenance {
            Provenance::Fat(layout) => FatIndex::try_new(layout, self.height)?.slot_capacity(),
            _ => capacity,
        };
        // Layout-ordered key image, assembled through the public rank
        // surface so any inner backend — including a mapped one — can
        // be re-serialized.
        let mut keys_by_position: Vec<Option<K>> = vec![None; slot_capacity as usize];
        for rank in 1..=self.key_len {
            let p = SearchBackend::position_of_rank(self, rank).expect("stored rank has a node");
            keys_by_position[p as usize] = SearchBackend::key_at_rank(self, rank);
        }
        let key_at = |p: u64| keys_by_position[p as usize];
        match self.provenance {
            Provenance::Named(layout) if opts.descriptor != DescriptorKind::Table => {
                format::encode_tree(
                    self.height,
                    self.key_len,
                    block_bytes,
                    &Descriptor::Named(layout),
                    key_at,
                )
            }
            Provenance::Fat(layout) => format::encode_tree(
                self.height,
                self.key_len,
                block_bytes,
                &Descriptor::Fat(layout),
                key_at,
            ),
            _ => {
                let mut positions_by_node = vec![0u32; capacity as usize];
                for rank in 1..=capacity {
                    let node = tree.node_at_in_order(rank);
                    let p =
                        SearchBackend::position_of_rank(self, rank).expect("every rank has a node");
                    positions_by_node[(node - 1) as usize] = p as u32;
                }
                format::encode_tree(
                    self.height,
                    self.key_len,
                    block_bytes,
                    &Descriptor::Table {
                        label: &self.layout_label,
                        positions_by_node: &positions_by_node,
                    },
                    key_at,
                )
            }
        }
    }

    /// Writes the tree to `path` in the zero-copy on-disk format, then
    /// [`SearchTree::open`] serves it back without deserialization:
    ///
    /// ```
    /// use cobtree_search::{SaveOptions, SearchTree, Storage};
    /// use cobtree_core::NamedLayout;
    ///
    /// let path = std::env::temp_dir().join(format!("facade-doctest-{}.cobt", std::process::id()));
    /// let tree = SearchTree::builder()
    ///     .layout(NamedLayout::MinWep)
    ///     .keys((1..=1000u64).map(|k| k * 3))
    ///     .build()?;
    /// tree.write_file(&path, &SaveOptions::new())?;
    ///
    /// let served: SearchTree<u64> = SearchTree::open(&path)?;
    /// assert_eq!(served.storage(), Storage::Mapped);
    /// assert_eq!(served.len(), 1000);
    /// assert!(served.contains(30) && !served.contains(31));
    /// // Same layout ⇒ same positions ⇒ same checksums as in memory.
    /// let probes: Vec<u64> = (0..500).collect();
    /// assert_eq!(
    ///     served.search_batch_checksum(&probes),
    ///     tree.search_batch_checksum(&probes),
    /// );
    /// # std::fs::remove_file(&path).unwrap();
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    ///
    /// When `opts` carries a weight profile, it is written as a
    /// checksummed `.cobw` sidecar at
    /// [`SaveOptions::sidecar_path`]`(path)`; without one, any stale
    /// sidecar from a previous save is removed so a profile on disk
    /// always describes the tree bytes next to it.
    ///
    /// # Errors
    /// [`Error::Io`] on filesystem failures, plus the
    /// [`SearchTree::encode`] encoding errors.
    pub fn write_file(&self, path: impl AsRef<Path>, opts: &SaveOptions) -> Result<()> {
        self.write_file_io(path, opts, &cobtree_core::io::RealIo)
    }

    /// [`SearchTree::write_file`] through an explicit storage seam:
    /// the tree image and any `.cobw` sidecar are published with
    /// `io`'s atomic-write discipline (temp file → fsync → rename →
    /// parent-dir fsync), and fault schedules
    /// ([`cobtree_core::io::FaultIo`]) can fail or tear any step.
    ///
    /// # Errors
    /// As for [`SearchTree::write_file`].
    pub fn write_file_io(
        &self,
        path: impl AsRef<Path>,
        opts: &SaveOptions,
        io: &dyn cobtree_core::io::StorageIo,
    ) -> Result<()> {
        let path = path.as_ref();
        let bytes = self.encode(opts)?;
        io.write_atomic(path, &bytes)?;
        let sidecar = SaveOptions::sidecar_path(path);
        match &opts.weights {
            Some(profile) => io.write_atomic(&sidecar, &encode_weight_profile(profile)),
            None => io.remove(&sidecar),
        }
    }

    /// Serializes with all-default [`SaveOptions`].
    ///
    /// # Errors
    /// As for [`SearchTree::encode`].
    #[deprecated(since = "0.3.0", note = "use `encode(&SaveOptions::new())`")]
    pub fn to_file_bytes(&self) -> Result<Vec<u8>> {
        self.encode(&SaveOptions::new())
    }

    /// Serializes with an explicit block alignment.
    ///
    /// # Errors
    /// As for [`SearchTree::encode`].
    #[deprecated(
        since = "0.3.0",
        note = "use `encode(&SaveOptions::new().block_bytes(...))`"
    )]
    pub fn to_file_bytes_with(&self, block_bytes: u64) -> Result<Vec<u8>> {
        self.encode(&SaveOptions::new().block_bytes(block_bytes))
    }

    /// Writes to `path` with all-default [`SaveOptions`].
    ///
    /// # Errors
    /// As for [`SearchTree::write_file`].
    #[deprecated(since = "0.3.0", note = "use `write_file(path, &SaveOptions::new())`")]
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.write_file(path, &SaveOptions::new())
    }

    /// Writes to `path` with an explicit block alignment.
    ///
    /// # Errors
    /// As for [`SearchTree::write_file`].
    #[deprecated(
        since = "0.3.0",
        note = "use `write_file(path, &SaveOptions::new().block_bytes(...))`"
    )]
    pub fn save_with(&self, path: impl AsRef<Path>, block_bytes: u64) -> Result<()> {
        self.write_file(path, &SaveOptions::new().block_bytes(block_bytes))
    }

    /// Memory-maps a saved tree file and serves it as a
    /// [`Storage::Mapped`] tree — the full ordered-map API (cursors,
    /// ranges, rank/select, sorted batches) over the file bytes with
    /// zero deserialization.
    ///
    /// # Errors
    /// [`Error::Io`] on filesystem failures, [`Error::KeyTypeMismatch`]
    /// when the file stores a different key type, and every
    /// [`cobtree_core::format::parse`] error on malformed bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::from_mapped(MappedTree::open(path)?))
    }

    /// [`SearchTree::open`] through an explicit storage seam. When
    /// `io` supports `mmap` (the real seam) this is plain
    /// [`SearchTree::open`]; fault schedules answer
    /// `supports_mmap() == false`, routing the file through `io.read`
    /// into owned memory so scripted read faults (short reads, bit
    /// flips) hit the open path deterministically — and are caught by
    /// the container checksums.
    ///
    /// # Errors
    /// As for [`SearchTree::open`].
    pub fn open_with_io(
        path: impl AsRef<Path>,
        io: &dyn cobtree_core::io::StorageIo,
    ) -> Result<Self> {
        Ok(Self::from_mapped(MappedTree::open_with_io(path, io)?))
    }

    /// [`SearchTree::open`] over an in-memory file image (no
    /// filesystem; the buffer is owned, not mapped).
    ///
    /// # Errors
    /// As for [`SearchTree::open`], minus the I/O cases.
    pub fn open_bytes(bytes: Vec<u8>) -> Result<Self> {
        Ok(Self::from_mapped(MappedTree::from_bytes(bytes)?))
    }

    fn from_mapped(mapped: MappedTree<K>) -> Self {
        let provenance = match (mapped.named_layout(), mapped.fat_layout()) {
            (Some(layout), _) => Provenance::Named(layout),
            (None, Some(layout)) => Provenance::Fat(layout),
            (None, None) => Provenance::Opaque,
        };
        SearchTree {
            storage: Storage::Mapped,
            layout_label: mapped.label().to_string(),
            provenance,
            height: mapped.height(),
            key_len: mapped.len(),
            inner: Inner::Mapped(Box::new(mapped)),
        }
    }
}

impl<K: Ord + Copy> SearchBackend<K> for SearchTree<K> {
    fn height(&self) -> u32 {
        self.height
    }

    fn key_count(&self) -> u64 {
        self.key_len
    }

    fn search(&self, key: K) -> Option<u64> {
        SearchTree::search(self, key)
    }

    fn search_reference(&self, key: K) -> Option<u64> {
        SearchTree::search_reference(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        SearchTree::search_traced(self, key, visited)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        match self.inner() {
            InnerRef::Slots(b) => b.search_traced_kernel(Slot::Key(key), visited),
            InnerRef::Keys(b) => b.search_traced_kernel(key, visited),
        }
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        SearchTree::search_batch_interleaved(self, keys, width, out);
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        SearchTree::search_batch_checksum(self, keys)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        if rank < 1 || rank > self.key_len {
            return None;
        }
        match self.inner() {
            InnerRef::Slots(b) => match b.key_at_rank(rank) {
                Some(Slot::Key(k)) => Some(k),
                // Ranks 1..=len hold real keys by construction.
                _ => None,
            },
            InnerRef::Keys(b) => b.key_at_rank(rank),
        }
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        // Deliberately *not* clamped to `len`: padding nodes have
        // positions too, and traced descents must record them exactly as
        // `search_traced` does.
        match self.inner() {
            InnerRef::Slots(b) => b.position_of_rank(rank),
            InnerRef::Keys(b) => b.position_of_rank(rank),
        }
    }

    // Forwarded to the inner backend so storage-specific fast paths
    // apply (explicit storage descends by pointer instead of the
    // generic rank walk). Ranks are storage-independent, and both
    // padding disciplines — supremum slots in memory, rank-derived +∞
    // in mapped files — sort above every real probe, so the inner
    // answer is at most `len + 1` — exactly this facade's
    // `key_count() + 1` "absent" sentinel; no clamping is needed.

    fn lower_bound_rank(&self, key: K) -> u64 {
        match self.inner() {
            InnerRef::Slots(b) => b.lower_bound_rank(Slot::Key(key)),
            InnerRef::Keys(b) => b.lower_bound_rank(key),
        }
    }

    fn lower_bound_rank_traced(&self, key: K, visited: &mut Vec<u64>) -> u64 {
        match self.inner() {
            InnerRef::Slots(b) => b.lower_bound_rank_traced(Slot::Key(key), visited),
            InnerRef::Keys(b) => b.lower_bound_rank_traced(key, visited),
        }
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        match self.inner() {
            InnerRef::Slots(b) => b.upper_bound_rank(Slot::Key(key)),
            InnerRef::Keys(b) => b.upper_bound_rank(key),
        }
    }

    fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        match self.inner() {
            InnerRef::Slots(b) => {
                let slots: Vec<Slot<K>> = keys.iter().map(|&k| Slot::Key(k)).collect();
                b.search_sorted_batch(&slots, out)
            }
            InnerRef::Keys(b) => b.search_sorted_batch(keys, out),
        }
    }

    fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        match self.inner() {
            InnerRef::Slots(b) => {
                let slots: Vec<Slot<K>> = keys.iter().map(|&k| Slot::Key(k)).collect();
                b.search_sorted_batch_traced(&slots, out, visited)
            }
            InnerRef::Keys(b) => b.search_sorted_batch_traced(keys, out, visited),
        }
    }
}

impl<K> std::fmt::Debug for SearchTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchTree")
            .field("layout", &self.layout_label)
            .field("storage", &self.storage)
            .field("height", &self.height)
            .field("len", &self.key_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|k| k * 7 + 1).collect()
    }

    #[test]
    fn storages_return_identical_positions_and_checksums() {
        let ks = keys(300); // padded: height 9, 511 slots
        let probes: Vec<u64> = (0..2400).collect();
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::PreVeb,
            NamedLayout::InVebA,
        ] {
            let trees: Vec<SearchTree<u64>> = Storage::ALL
                .iter()
                .map(|&storage| {
                    SearchTree::builder()
                        .layout(layout)
                        .storage(storage)
                        .keys(ks.iter().copied())
                        .build()
                        .unwrap()
                })
                .collect();
            let reference = trees[0].search_batch_checksum(&probes);
            assert_ne!(reference, 0);
            for t in &trees[1..] {
                assert_eq!(
                    t.search_batch_checksum(&probes),
                    reference,
                    "{layout}/{} checksum diverged",
                    t.storage()
                );
            }
            for &p in &probes {
                let expect = trees[0].search(p);
                for t in &trees[1..] {
                    assert_eq!(t.search(p), expect, "{layout}/{} probe {p}", t.storage());
                }
            }
        }
    }

    #[test]
    fn mapped_backend_joins_the_interchange_guarantee() {
        // A tree saved and reopened (any source kind) returns the same
        // positions and checksums as every in-memory storage.
        let ks = keys(300);
        let probes: Vec<u64> = (0..2400).collect();
        for source in [
            LayoutSource::Named(NamedLayout::MinWep),
            LayoutSource::Spec(NamedLayout::MinWep.spec()),
            LayoutSource::Materialized(NamedLayout::MinWep.materialize(9)),
        ] {
            let built = SearchTree::builder()
                .layout(source.clone())
                .storage(Storage::Implicit)
                .keys(ks.iter().copied())
                .build()
                .unwrap();
            let opened: SearchTree<u64> =
                SearchTree::open_bytes(built.encode(&SaveOptions::new()).unwrap()).unwrap();
            assert_eq!(opened.storage(), Storage::Mapped);
            assert_eq!(opened.len(), built.len());
            assert_eq!(opened.height(), built.height());
            assert_eq!(
                opened.search_batch_checksum(&probes),
                built.search_batch_checksum(&probes),
                "{source:?}"
            );
            // Re-saving an opened tree reproduces a working file.
            let resaved: SearchTree<u64> =
                SearchTree::open_bytes(opened.encode(&SaveOptions::new()).unwrap()).unwrap();
            assert_eq!(
                resaved.search_batch_checksum(&probes),
                built.search_batch_checksum(&probes),
                "re-save {source:?}"
            );
        }
    }

    #[test]
    fn fat_layouts_join_the_interchange_guarantee() {
        // Every storage of a fat layout — including a saved-and-reopened
        // mapped file — returns the same positions and checksums.
        let ks = keys(300); // height 9, sparse slot capacity > 511
        let probes: Vec<u64> = (0..2400).collect();
        for layout in FatLayout::ALL {
            let trees: Vec<SearchTree<u64>> = Storage::ALL
                .iter()
                .map(|&storage| {
                    SearchTree::builder()
                        .layout(layout)
                        .storage(storage)
                        .keys(ks.iter().copied())
                        .build()
                        .unwrap()
                })
                .collect();
            let reference = trees[0].search_batch_checksum(&probes);
            assert_ne!(reference, 0);
            for t in &trees[1..] {
                assert_eq!(
                    t.search_batch_checksum(&probes),
                    reference,
                    "{layout}/{} checksum diverged",
                    t.storage()
                );
            }
            let opened: SearchTree<u64> =
                SearchTree::open_bytes(trees[0].encode(&SaveOptions::new()).unwrap()).unwrap();
            assert_eq!(opened.storage(), Storage::Mapped);
            assert_eq!(opened.layout_label(), layout.label());
            assert_eq!(opened.search_batch_checksum(&probes), reference, "{layout}");
            for &p in &probes {
                assert_eq!(opened.search(p), trees[0].search(p), "{layout} probe {p}");
            }
            // Re-saving the mapped tree reproduces a working fat file.
            let resaved: SearchTree<u64> =
                SearchTree::open_bytes(opened.encode(&SaveOptions::new()).unwrap()).unwrap();
            assert_eq!(resaved.search_batch_checksum(&probes), reference);
        }
    }

    #[test]
    fn builder_rejects_mapped_storage() {
        assert_eq!(
            SearchTree::builder()
                .storage(Storage::Mapped)
                .keys([1u64, 2, 3])
                .build()
                .unwrap_err(),
            Error::MappedStorageRequiresFile
        );
    }

    #[test]
    fn all_sources_build() {
        let ks = keys(40);
        for source in [
            LayoutSource::Named(NamedLayout::HalfWep),
            LayoutSource::Spec(NamedLayout::HalfWep.spec()),
            LayoutSource::Materialized(NamedLayout::HalfWep.materialize(6)),
        ] {
            let t = SearchTree::builder()
                .layout(source)
                .keys(ks.iter().copied())
                .build()
                .unwrap();
            assert_eq!(t.height(), 6);
            assert_eq!(t.len(), 40);
            assert_eq!(t.capacity(), 63);
            for &k in &ks {
                assert!(t.contains(k));
                assert!(!t.contains(k + 1));
            }
        }
    }

    #[test]
    fn named_and_spec_sources_agree_exactly() {
        // A spec source uses the generic interpreter, a named source the
        // fast indexer; when the two agree bit-for-bit (non-automorphic
        // layouts like IN-ORDER), positions must match across sources.
        let ks = keys(100);
        let a = SearchTree::builder()
            .layout(NamedLayout::InOrder)
            .keys(ks.iter().copied())
            .build()
            .unwrap();
        let b = SearchTree::builder()
            .layout(NamedLayout::InOrder.spec())
            .keys(ks.iter().copied())
            .build()
            .unwrap();
        for &k in &ks {
            assert_eq!(a.search(k), b.search(k));
        }
    }

    #[test]
    fn builder_error_cases() {
        // Empty keys.
        assert_eq!(
            SearchTree::<u64>::builder().build().unwrap_err(),
            Error::EmptyKeys
        );
        // Unsorted keys.
        assert_eq!(
            SearchTree::builder()
                .keys([3u64, 1, 2])
                .build()
                .unwrap_err(),
            Error::UnsortedKeys { index: 0 }
        );
        // Duplicate keys count as unsorted.
        assert_eq!(
            SearchTree::builder()
                .keys([1u64, 2, 2])
                .build()
                .unwrap_err(),
            Error::UnsortedKeys { index: 1 }
        );
        // Materialized layout of the wrong height.
        assert_eq!(
            SearchTree::builder()
                .layout(NamedLayout::MinWep.materialize(4))
                .keys(keys(100))
                .build()
                .unwrap_err(),
            Error::HeightMismatch {
                expected: 4,
                got: 7
            }
        );
    }

    #[test]
    fn trace_depth_bounded_by_height() {
        let t = SearchTree::builder()
            .storage(Storage::IndexOnly)
            .keys(keys(500))
            .build()
            .unwrap();
        let mut visited = Vec::new();
        for probe in [8u64, 701, 3501, 9999] {
            visited.clear();
            t.search_traced(probe, &mut visited);
            assert!(!visited.is_empty());
            assert!(visited.len() <= t.height() as usize);
        }
    }

    #[test]
    fn padding_never_matches_probes() {
        // 5 keys pad a height-3 tree with two suprema; no probe may land
        // on a padding slot.
        let t = SearchTree::builder()
            .storage(Storage::Implicit)
            .keys([10u64, 20, 30, 40, 50])
            .build()
            .unwrap();
        assert_eq!(t.capacity(), 7);
        let mut found = 0;
        for probe in 0..=100u64 {
            if t.contains(probe) {
                found += 1;
                assert_eq!(probe % 10, 0);
            }
        }
        assert_eq!(found, 5);
    }

    #[test]
    fn debug_and_labels() {
        let t = SearchTree::builder()
            .layout(NamedLayout::MinWep)
            .keys([1u64, 2, 3])
            .build()
            .unwrap();
        assert_eq!(t.layout_label(), "MINWEP");
        assert_eq!(t.storage(), Storage::Explicit);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("MINWEP") && dbg.contains("Explicit"));
    }
}
