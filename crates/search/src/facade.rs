//! The unified `SearchTree` facade: one builder API over every layout ×
//! storage combination.
//!
//! The paper's central claim is that MINWEP is a drop-in *layout choice*
//! — the search algorithm is identical across vEB, MINWEP, B-tree-ish
//! and in-order layouts; only the position computation changes. This
//! module makes the claim operational:
//!
//! ```
//! use cobtree_search::{SearchTree, Storage};
//! use cobtree_core::NamedLayout;
//!
//! let keys: Vec<u64> = (1..=1000).map(|k| k * 3).collect();
//! let tree = SearchTree::builder()
//!     .layout(NamedLayout::MinWep)        // or a RecursiveSpec, or a Layout
//!     .storage(Storage::Implicit)         // ⇄ Explicit ⇄ IndexOnly, one line
//!     .keys(keys.iter().copied())
//!     .build()?;
//! assert!(tree.contains(30));
//! assert!(!tree.contains(31));
//! # Ok::<(), cobtree_core::Error>(())
//! ```
//!
//! Key count — not tree height — is the sizing parameter: the builder
//! picks the smallest complete tree that fits and pads the remainder
//! with supremum sentinels internally (the same scheme
//! [`crate::LayoutMap`] uses), so any non-empty strictly-sorted key set
//! works. All three storage backends built from one configuration share
//! a single position index, so `search` returns the *same* positions —
//! and [`SearchTree::search_batch_checksum`] the same checksums — no
//! matter which storage is selected.

use crate::backend::SearchBackend;
use crate::cursor::{range_of, Cursor, Range};
use crate::explicit::ExplicitTree;
use crate::implicit::ImplicitTree;
use crate::index_only::IndexOnlyTree;
use crate::slot::{padded_slots, Slot};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::index::generic::GenericIndexer;
use cobtree_core::index::{MaterializedIndex, PositionIndex};
use cobtree_core::{Layout, NamedLayout, RecursiveSpec, Tree};

/// Hard ceiling on key counts: `2^31 − 1` (positions are stored as
/// `u32` by the materialized layouts and explicit nodes).
pub const MAX_KEYS: u64 = (1 << 31) - 1;

/// How the tree is stored and navigated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Storage {
    /// Nodes with embedded child pointers, in layout order — the paper's
    /// wall-clock champion (§II-B).
    Explicit,
    /// Keys only, in layout order; every transition recomputes the child
    /// position arithmetically (§IV-E).
    Implicit,
    /// Keys in plain sorted order; layout positions are computed on
    /// demand and never stored (the §IV-E index-timing discipline,
    /// generalized to arbitrary keys).
    IndexOnly,
}

impl Storage {
    /// All storage backends, for generic iteration in benches and tests.
    pub const ALL: [Storage; 3] = [Storage::Explicit, Storage::Implicit, Storage::IndexOnly];
}

impl std::fmt::Display for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Storage::Explicit => "explicit",
            Storage::Implicit => "implicit",
            Storage::IndexOnly => "index-only",
        })
    }
}

/// Where a layout comes from: a named layout from the paper's Table I, a
/// raw [`RecursiveSpec`], or a pre-materialized [`Layout`] permutation.
#[derive(Clone)]
pub enum LayoutSource {
    /// One of the thirteen named Recursive Layouts (fast dedicated
    /// indexers where the paper has them).
    Named(NamedLayout),
    /// An arbitrary Recursive Layout, served by the generic
    /// spec-interpreting indexer.
    Spec(RecursiveSpec),
    /// A pre-materialized permutation (e.g. MINLA/MINBW baselines or a
    /// layout loaded from JSON); its height must match the key count.
    Materialized(Layout),
}

impl From<NamedLayout> for LayoutSource {
    fn from(layout: NamedLayout) -> Self {
        LayoutSource::Named(layout)
    }
}

impl From<RecursiveSpec> for LayoutSource {
    fn from(spec: RecursiveSpec) -> Self {
        LayoutSource::Spec(spec)
    }
}

impl From<Layout> for LayoutSource {
    fn from(layout: Layout) -> Self {
        LayoutSource::Materialized(layout)
    }
}

impl std::fmt::Debug for LayoutSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl LayoutSource {
    /// Human-readable description of the source.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            LayoutSource::Named(l) => l.label().to_string(),
            LayoutSource::Spec(s) => s.nomenclature(),
            LayoutSource::Materialized(l) => format!("materialized(h={})", l.height()),
        }
    }

    /// Resolves the source into a position index for a tree of `height`
    /// levels. Every backend of one [`SearchTree`] shares this index, so
    /// positions agree across storage kinds.
    ///
    /// # Errors
    /// [`Error::HeightOutOfRange`] for unrepresentable heights;
    /// [`Error::HeightMismatch`] if a pre-materialized layout does not
    /// match `height`.
    pub fn resolve(&self, height: u32) -> Result<Box<dyn PositionIndex>> {
        match self {
            LayoutSource::Named(l) => l.try_indexer(height),
            LayoutSource::Spec(s) => {
                Tree::try_new(height)?;
                Ok(Box::new(GenericIndexer::new(s.clone(), height)))
            }
            LayoutSource::Materialized(l) => {
                if l.height() != height {
                    return Err(Error::HeightMismatch {
                        expected: l.height(),
                        got: height,
                    });
                }
                Ok(Box::new(MaterializedIndex::new(l.clone())))
            }
        }
    }
}

/// Configures and builds a [`SearchTree`]. Created by
/// [`SearchTree::builder`].
pub struct SearchTreeBuilder<K> {
    source: LayoutSource,
    storage: Storage,
    keys: Vec<K>,
}

impl<K: Ord + Copy> Default for SearchTreeBuilder<K> {
    fn default() -> Self {
        Self {
            source: LayoutSource::Named(NamedLayout::MinWep),
            storage: Storage::Explicit,
            keys: Vec::new(),
        }
    }
}

impl<K: Ord + Copy> SearchTreeBuilder<K> {
    /// Chooses the layout (default: MINWEP). Accepts a [`NamedLayout`],
    /// a [`RecursiveSpec`], or a pre-materialized [`Layout`].
    #[must_use]
    pub fn layout(mut self, source: impl Into<LayoutSource>) -> Self {
        self.source = source.into();
        self
    }

    /// Chooses the storage backend (default: explicit).
    #[must_use]
    pub fn storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the key set (must end up non-empty and strictly ascending;
    /// validated by [`SearchTreeBuilder::build`]).
    #[must_use]
    pub fn keys(mut self, keys: impl IntoIterator<Item = K>) -> Self {
        self.keys = keys.into_iter().collect();
        self
    }

    /// Validates the configuration and builds the tree.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::TooManyKeys`] on bad key sets;
    /// [`Error::HeightMismatch`] when a pre-materialized layout does not
    /// fit the key count; [`Error::HeightOutOfRange`] if the layout
    /// source cannot serve the required height.
    pub fn build(self) -> Result<SearchTree<K>> {
        check_sorted_keys(&self.keys)?;
        let n = self.keys.len() as u64;
        if n > MAX_KEYS {
            return Err(Error::TooManyKeys {
                got: n,
                max: MAX_KEYS,
            });
        }
        // Smallest complete tree that fits every key.
        let mut height = 1u32;
        while ((1u64 << height) - 1) < n {
            height += 1;
        }
        let slots = padded_slots(&self.keys, height);
        let inner = match self.storage {
            // A pre-materialized source already *is* the layout — use it
            // directly rather than round-tripping through its index.
            Storage::Explicit => {
                if let LayoutSource::Materialized(layout) = &self.source {
                    if layout.height() != height {
                        return Err(Error::HeightMismatch {
                            expected: layout.height(),
                            got: height,
                        });
                    }
                    Inner::Explicit(ExplicitTree::try_build(layout, &slots)?)
                } else {
                    // Materialize the *index* (not the engine) so explicit
                    // positions are bit-identical to the arithmetic
                    // backends even where an indexer is an automorphic
                    // image of the engine's output.
                    let index = self.source.resolve(height)?;
                    let tree = Tree::new(height);
                    let positions: Vec<u32> = tree
                        .nodes()
                        .map(|i| index.position(i, tree.depth(i)) as u32)
                        .collect();
                    let layout = Layout::try_from_positions(height, positions)?;
                    Inner::Explicit(ExplicitTree::try_build(&layout, &slots)?)
                }
            }
            Storage::Implicit => Inner::Implicit(ImplicitTree::try_build(
                self.source.resolve(height)?,
                &slots,
            )?),
            Storage::IndexOnly => Inner::IndexOnly(IndexOnlyTree::try_build(
                self.source.resolve(height)?,
                &slots,
            )?),
        };
        Ok(SearchTree {
            storage: self.storage,
            layout_label: self.source.label(),
            height,
            key_len: n,
            inner,
        })
    }
}

enum Inner<K> {
    Explicit(ExplicitTree<Slot<K>>),
    Implicit(ImplicitTree<Slot<K>>),
    IndexOnly(IndexOnlyTree<Slot<K>>),
}

/// A static cache-oblivious search tree: any layout, any storage
/// backend, one API. Built by [`SearchTree::builder`].
pub struct SearchTree<K> {
    storage: Storage,
    layout_label: String,
    height: u32,
    key_len: u64,
    inner: Inner<K>,
}

impl<K: Ord + Copy> SearchTree<K> {
    /// Starts a builder with the defaults (MINWEP layout, explicit
    /// storage, no keys).
    #[must_use]
    pub fn builder() -> SearchTreeBuilder<K> {
        SearchTreeBuilder::default()
    }

    /// Number of (real) keys.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.key_len
    }

    /// `false`; building requires at least one key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Height of the (padded) complete tree.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total slots including padding, `2^h − 1`.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        (1u64 << self.height) - 1
    }

    /// The storage backend in use.
    #[must_use]
    pub fn storage(&self) -> Storage {
        self.storage
    }

    /// Human-readable layout description.
    #[must_use]
    pub fn layout_label(&self) -> &str {
        &self.layout_label
    }

    /// The inner storage backend as a slot-level trait object.
    fn inner(&self) -> &dyn SearchBackend<Slot<K>> {
        match &self.inner {
            Inner::Explicit(t) => t,
            Inner::Implicit(t) => t,
            Inner::IndexOnly(t) => t,
        }
    }

    /// Searches for `key`; returns the 0-based layout position of its
    /// node. Positions are identical across storage backends for the
    /// same layout and keys.
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        self.inner().search(Slot::Key(key))
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        self.search(key).is_some()
    }

    /// Searches while recording every visited layout position (for cache
    /// simulation).
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        self.inner().search_traced(Slot::Key(key), visited)
    }

    /// Benchmark kernel: sum of found positions, identical across
    /// storage backends.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        let mut acc = 0u64;
        for &k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }

    // ------------------------------------------------------------------
    // Ordered-map queries (inherited from `SearchBackend`, re-exposed
    // inherently so callers don't need the trait in scope).
    // ------------------------------------------------------------------

    /// Number of stored keys strictly less than `key`.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys([10u64, 20, 30]).build()?;
    /// assert_eq!(t.rank(25), 2);
    /// assert_eq!(t.select(t.rank(25) + 1), Some(30));
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    #[must_use]
    pub fn rank(&self, key: K) -> u64 {
        SearchBackend::rank(self, key)
    }

    /// The `rank`-th smallest key (1-based); `None` outside `1..=len`.
    #[must_use]
    pub fn select(&self, rank: u64) -> Option<K> {
        SearchBackend::select(self, rank)
    }

    /// Smallest stored key `>= key` (`key` itself when present).
    #[must_use]
    pub fn lower_bound(&self, key: K) -> Option<K> {
        SearchBackend::lower_bound(self, key)
    }

    /// Smallest stored key `> key` — the in-order successor.
    #[must_use]
    pub fn upper_bound(&self, key: K) -> Option<K> {
        SearchBackend::upper_bound(self, key)
    }

    /// Largest stored key `< key` — the in-order predecessor.
    #[must_use]
    pub fn predecessor(&self, key: K) -> Option<K> {
        SearchBackend::predecessor(self, key)
    }

    /// Alias for [`SearchTree::upper_bound`].
    #[must_use]
    pub fn successor(&self, key: K) -> Option<K> {
        SearchBackend::successor(self, key)
    }

    /// A [`Cursor`] positioned before the first key.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys((1..=50u64).map(|k| k * 2)).build()?;
    /// let mut cur = t.cursor();
    /// assert_eq!(cur.seek(31), Some(32));
    /// assert_eq!(cur.next(), Some(34));
    /// assert_eq!(cur.prev(), Some(32));
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    #[must_use]
    pub fn cursor(&self) -> Cursor<'_, K> {
        Cursor::new(self)
    }

    /// The stored keys within `bounds`, ascending — `BTreeSet::range`
    /// for a cache-oblivious layout.
    ///
    /// ```
    /// # use cobtree_search::SearchTree;
    /// let t = SearchTree::builder().keys((1..=100u64).map(|k| k * 3)).build()?;
    /// let window: Vec<u64> = t.range(10..=21).collect();
    /// assert_eq!(window, vec![12, 15, 18, 21]);
    /// assert_eq!(t.range(..).count(), 100);
    /// # Ok::<(), cobtree_core::Error>(())
    /// ```
    pub fn range(&self, bounds: impl std::ops::RangeBounds<K>) -> Range<'_, K> {
        range_of(self, bounds)
    }

    /// Ascending iterator over all stored keys.
    pub fn iter(&self) -> Range<'_, K> {
        self.range(..)
    }

    /// Searches an ascending probe batch with shared-prefix restarts —
    /// see [`SearchBackend::search_sorted_batch`].
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        SearchBackend::search_sorted_batch(self, keys, out)
    }

    /// Traced variant of [`SearchTree::search_sorted_batch`] — see
    /// [`SearchBackend::search_sorted_batch_traced`].
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        SearchBackend::search_sorted_batch_traced(self, keys, out, visited)
    }
}

impl<K: Ord + Copy> SearchBackend<K> for SearchTree<K> {
    fn height(&self) -> u32 {
        self.height
    }

    fn key_count(&self) -> u64 {
        self.key_len
    }

    fn search(&self, key: K) -> Option<u64> {
        SearchTree::search(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        SearchTree::search_traced(self, key, visited)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        if rank < 1 || rank > self.key_len {
            return None;
        }
        match self.inner().key_at_rank(rank) {
            Some(Slot::Key(k)) => Some(k),
            // Ranks 1..=len hold real keys by construction.
            _ => None,
        }
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        // Deliberately *not* clamped to `len`: padding nodes have
        // positions too, and traced descents must record them exactly as
        // `search_traced` does.
        self.inner().position_of_rank(rank)
    }

    // Forwarded to the slot-level backend so storage-specific fast
    // paths apply (explicit storage descends by pointer instead of the
    // generic rank walk). Ranks are storage-independent, and supremum
    // padding sorts above every `Slot::Key` probe, so the inner answer
    // is at most `len + 1` — exactly this facade's `key_count() + 1`
    // "absent" sentinel; no clamping is needed.

    fn lower_bound_rank(&self, key: K) -> u64 {
        self.inner().lower_bound_rank(Slot::Key(key))
    }

    fn lower_bound_rank_traced(&self, key: K, visited: &mut Vec<u64>) -> u64 {
        self.inner()
            .lower_bound_rank_traced(Slot::Key(key), visited)
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        self.inner().upper_bound_rank(Slot::Key(key))
    }

    fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        let slots: Vec<Slot<K>> = keys.iter().map(|&k| Slot::Key(k)).collect();
        self.inner().search_sorted_batch(&slots, out)
    }

    fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        let slots: Vec<Slot<K>> = keys.iter().map(|&k| Slot::Key(k)).collect();
        self.inner()
            .search_sorted_batch_traced(&slots, out, visited)
    }
}

impl<K> std::fmt::Debug for SearchTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchTree")
            .field("layout", &self.layout_label)
            .field("storage", &self.storage)
            .field("height", &self.height)
            .field("len", &self.key_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|k| k * 7 + 1).collect()
    }

    #[test]
    fn storages_return_identical_positions_and_checksums() {
        let ks = keys(300); // padded: height 9, 511 slots
        let probes: Vec<u64> = (0..2400).collect();
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::PreVeb,
            NamedLayout::InVebA,
        ] {
            let trees: Vec<SearchTree<u64>> = Storage::ALL
                .iter()
                .map(|&storage| {
                    SearchTree::builder()
                        .layout(layout)
                        .storage(storage)
                        .keys(ks.iter().copied())
                        .build()
                        .unwrap()
                })
                .collect();
            let reference = trees[0].search_batch_checksum(&probes);
            assert_ne!(reference, 0);
            for t in &trees[1..] {
                assert_eq!(
                    t.search_batch_checksum(&probes),
                    reference,
                    "{layout}/{} checksum diverged",
                    t.storage()
                );
            }
            for &p in &probes {
                let expect = trees[0].search(p);
                for t in &trees[1..] {
                    assert_eq!(t.search(p), expect, "{layout}/{} probe {p}", t.storage());
                }
            }
        }
    }

    #[test]
    fn all_sources_build() {
        let ks = keys(40);
        for source in [
            LayoutSource::Named(NamedLayout::HalfWep),
            LayoutSource::Spec(NamedLayout::HalfWep.spec()),
            LayoutSource::Materialized(NamedLayout::HalfWep.materialize(6)),
        ] {
            let t = SearchTree::builder()
                .layout(source)
                .keys(ks.iter().copied())
                .build()
                .unwrap();
            assert_eq!(t.height(), 6);
            assert_eq!(t.len(), 40);
            assert_eq!(t.capacity(), 63);
            for &k in &ks {
                assert!(t.contains(k));
                assert!(!t.contains(k + 1));
            }
        }
    }

    #[test]
    fn named_and_spec_sources_agree_exactly() {
        // A spec source uses the generic interpreter, a named source the
        // fast indexer; when the two agree bit-for-bit (non-automorphic
        // layouts like IN-ORDER), positions must match across sources.
        let ks = keys(100);
        let a = SearchTree::builder()
            .layout(NamedLayout::InOrder)
            .keys(ks.iter().copied())
            .build()
            .unwrap();
        let b = SearchTree::builder()
            .layout(NamedLayout::InOrder.spec())
            .keys(ks.iter().copied())
            .build()
            .unwrap();
        for &k in &ks {
            assert_eq!(a.search(k), b.search(k));
        }
    }

    #[test]
    fn builder_error_cases() {
        // Empty keys.
        assert_eq!(
            SearchTree::<u64>::builder().build().unwrap_err(),
            Error::EmptyKeys
        );
        // Unsorted keys.
        assert_eq!(
            SearchTree::builder()
                .keys([3u64, 1, 2])
                .build()
                .unwrap_err(),
            Error::UnsortedKeys { index: 0 }
        );
        // Duplicate keys count as unsorted.
        assert_eq!(
            SearchTree::builder()
                .keys([1u64, 2, 2])
                .build()
                .unwrap_err(),
            Error::UnsortedKeys { index: 1 }
        );
        // Materialized layout of the wrong height.
        assert_eq!(
            SearchTree::builder()
                .layout(NamedLayout::MinWep.materialize(4))
                .keys(keys(100))
                .build()
                .unwrap_err(),
            Error::HeightMismatch {
                expected: 4,
                got: 7
            }
        );
    }

    #[test]
    fn trace_depth_bounded_by_height() {
        let t = SearchTree::builder()
            .storage(Storage::IndexOnly)
            .keys(keys(500))
            .build()
            .unwrap();
        let mut visited = Vec::new();
        for probe in [8u64, 701, 3501, 9999] {
            visited.clear();
            t.search_traced(probe, &mut visited);
            assert!(!visited.is_empty());
            assert!(visited.len() <= t.height() as usize);
        }
    }

    #[test]
    fn padding_never_matches_probes() {
        // 5 keys pad a height-3 tree with two suprema; no probe may land
        // on a padding slot.
        let t = SearchTree::builder()
            .storage(Storage::Implicit)
            .keys([10u64, 20, 30, 40, 50])
            .build()
            .unwrap();
        assert_eq!(t.capacity(), 7);
        let mut found = 0;
        for probe in 0..=100u64 {
            if t.contains(probe) {
                found += 1;
                assert_eq!(probe % 10, 0);
            }
        }
        assert_eq!(found, 5);
    }

    #[test]
    fn debug_and_labels() {
        let t = SearchTree::builder()
            .layout(NamedLayout::MinWep)
            .keys([1u64, 2, 3])
            .build()
            .unwrap();
        assert_eq!(t.layout_label(), "MINWEP");
        assert_eq!(t.storage(), Storage::Explicit);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("MINWEP") && dbg.contains("Explicit"));
    }
}
