//! Padding-aware key slots, used by the [`crate::SearchTree`] facade
//! (and through it by every engine that builds trees — the forest and
//! the tiered write path included).
//!
//! The paper's trees are complete (`2^h − 1` nodes); arbitrary key
//! counts are supported by padding the key sequence with *supremum*
//! sentinels that compare greater than every real key. Suprema carry a
//! distinct index so the padded sequence stays strictly sorted, which is
//! what the backend constructors require.

/// One storage slot: a real key, or the `i`-th supremum sentinel.
///
/// The derived ordering makes every `Key(_)` sort below every `Sup(_)`
/// (variant order), and suprema sort among themselves by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Slot<K> {
    /// A real key.
    Key(K),
    /// The `i`-th padding sentinel (`i` keeps the sequence strict).
    Sup(u32),
}

/// Pads `keys` (strictly sorted) to the `2^height − 1` slots of a
/// complete tree, in key order: real keys first, then suprema.
pub(crate) fn padded_slots<K: Ord + Copy>(keys: &[K], height: u32) -> Vec<Slot<K>> {
    let total = (1u64 << height) - 1;
    debug_assert!(keys.len() as u64 <= total);
    let mut slots = Vec::with_capacity(total as usize);
    slots.extend(keys.iter().map(|&k| Slot::Key(k)));
    slots.extend((0..total - keys.len() as u64).map(|i| Slot::Sup(i as u32)));
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_keeps_keys_below_suprema() {
        assert!(Slot::Key(u64::MAX) < Slot::<u64>::Sup(0));
        assert!(Slot::<u64>::Sup(0) < Slot::<u64>::Sup(1));
        assert!(Slot::Key(1u64) < Slot::Key(2u64));
    }

    #[test]
    fn padding_is_strictly_sorted() {
        let slots = padded_slots(&[10u64, 20, 30], 3);
        assert_eq!(slots.len(), 7);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(slots[0], Slot::Key(10));
        assert_eq!(slots[3], Slot::Sup(0));
    }
}
