//! Pointer-based ("explicit") laid-out search trees.
//!
//! "To ensure that the wall clock search time is not affected by the time
//! taken to compute the position of a node in the layout, we store two
//! child 'pointers' with each node." (§II-B). Nodes live in layout order;
//! child pointers are 32-bit positions (`u32::MAX` = missing child).

use crate::backend::SearchBackend;
use crate::kernel;
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::Layout;

/// One stored node: key plus two child positions.
///
/// 12 bytes with `K = u32` (the closest practical realization of the
/// paper's small explicit nodes), 16 bytes with `K = u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Node<K> {
    /// Search key.
    pub key: K,
    /// Position of the left child, or [`ExplicitTree::NIL`].
    pub left: u32,
    /// Position of the right child, or [`ExplicitTree::NIL`].
    pub right: u32,
}

/// A complete BST stored as an array of [`Node`]s in layout order.
///
/// Permutation layouts fill the array densely (`2^h − 1` nodes). Sparse
/// layouts — the fat-node family, which pads every chunk to a
/// power-of-two stride — leave holes ([`ExplicitTree::try_build_from_index`]);
/// holes carry [`ExplicitTree::NIL`] children and are never reachable
/// from the root, so every search path sees only real nodes.
#[derive(Debug, Clone)]
pub struct ExplicitTree<K> {
    height: u32,
    root_pos: u32,
    /// Stored keys: `2^h − 1`, regardless of array holes.
    key_count: u64,
    nodes: Vec<Node<K>>,
}

impl<K: Ord + Copy> ExplicitTree<K> {
    /// Missing-child sentinel.
    pub const NIL: u32 = u32::MAX;

    /// Builds the tree from `keys` (must be strictly sorted ascending;
    /// its length must be `2^h − 1` for the layout's height `h`). Key
    /// `keys[r-1]` goes to the node with in-order rank `r`.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build(layout: &Layout, keys: &[K]) -> Result<Self> {
        let tree = layout.tree();
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        let mut nodes = vec![
            Node {
                key: keys[0],
                left: Self::NIL,
                right: Self::NIL,
            };
            keys.len()
        ];
        for i in tree.nodes() {
            let p = layout.position(i) as usize;
            nodes[p] = Node {
                key: keys[(tree.in_order_rank(i) - 1) as usize],
                left: tree
                    .left(i)
                    .map_or(Self::NIL, |c| layout.position(c) as u32),
                right: tree
                    .right(i)
                    .map_or(Self::NIL, |c| layout.position(c) as u32),
            };
        }
        Ok(Self {
            height: tree.height(),
            root_pos: layout.position(1) as u32,
            key_count: tree.len(),
            nodes,
        })
    }

    /// Builds from any [`PositionIndex`](cobtree_core::index::PositionIndex)
    /// — including *sparse* ones, where
    /// [`slot_capacity`](cobtree_core::index::PositionIndex::slot_capacity)
    /// exceeds `2^h − 1`. The node array gets one slot per layout
    /// position; slots no node maps to hold the smallest key with `NIL`
    /// children and are unreachable (the root path only ever follows
    /// real child pointers). This is how the `Explicit` storage serves
    /// fat-node layouts: same chunked addresses as the implicit fat
    /// plane, navigated purely by pointers.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build_from_index(
        index: &dyn cobtree_core::index::PositionIndex,
        keys: &[K],
    ) -> Result<Self> {
        let tree = cobtree_core::Tree::try_new(index.height())?;
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        let mut nodes = vec![
            Node {
                key: keys[0],
                left: Self::NIL,
                right: Self::NIL,
            };
            index.slot_capacity() as usize
        ];
        for i in tree.nodes() {
            let p = index.position(i, tree.depth(i)) as usize;
            nodes[p] = Node {
                key: keys[(tree.in_order_rank(i) - 1) as usize],
                left: tree
                    .left(i)
                    .map_or(Self::NIL, |c| index.position(c, tree.depth(c)) as u32),
                right: tree
                    .right(i)
                    .map_or(Self::NIL, |c| index.position(c, tree.depth(c)) as u32),
            };
        }
        Ok(Self {
            height: tree.height(),
            root_pos: index.position(1, 0) as u32,
            key_count: tree.len(),
            nodes,
        })
    }

    /// Builds the tree, panicking where [`ExplicitTree::try_build`]
    /// errors — convenience for tests and examples.
    ///
    /// # Panics
    /// See [`ExplicitTree::try_build`].
    #[must_use]
    pub fn build(layout: &Layout, keys: &[K]) -> Self {
        match Self::try_build(layout, keys) {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    /// Tree height.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`; the tree always holds at least the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Position of the root node in the array.
    #[must_use]
    pub fn root_position(&self) -> u64 {
        u64::from(self.root_pos)
    }

    /// Raw node array (layout order) — used to derive address traces.
    #[must_use]
    pub fn nodes(&self) -> &[Node<K>] {
        &self.nodes
    }

    /// Searches for `key`; returns its array position if present.
    ///
    /// Runs on the branch-free pointer kernel (conditional child
    /// select, both children prefetched a level ahead — see
    /// [`crate::kernel::explicit_search`]); results are bit-identical
    /// to [`ExplicitTree::search_reference`].
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        kernel::explicit_search(&self.nodes, self.root_pos, self.height, key)
    }

    /// The pre-kernel hot loop the paper times — follow child
    /// positions, compare keys, no arithmetic — kept as the oracle the
    /// kernel is verified against.
    #[inline]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        let mut pos = self.root_pos;
        while pos != Self::NIL {
            // Safety bounds: positions come from the validated layout.
            let node = &self.nodes[pos as usize];
            pos = match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return Some(u64::from(pos)),
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
            };
        }
        None
    }

    /// Searches an arbitrary-order probe batch with up to `width`
    /// pointer descents interleaved in flight
    /// ([`crate::kernel::explicit_fold_interleaved`]). `out` is cleared
    /// and filled in probe order, bit-identical to mapping
    /// [`ExplicitTree::search`].
    pub fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        out.clear();
        out.resize(keys.len(), None);
        kernel::explicit_fold_interleaved(
            &self.nodes,
            self.root_pos,
            self.height,
            keys,
            width,
            |idx, r| out[idx] = r,
        );
    }

    /// Like [`ExplicitTree::search`] but records every visited position
    /// (for cache-simulation traces).
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let mut pos = self.root_pos;
        while pos != Self::NIL {
            visited.push(u64::from(pos));
            let node = &self.nodes[pos as usize];
            pos = match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return Some(u64::from(pos)),
                std::cmp::Ordering::Less => node.left,
                std::cmp::Ordering::Greater => node.right,
            };
        }
        None
    }

    /// Sums the positions of many lookups — a benchmark kernel whose
    /// result must be consumed to defeat dead-code elimination.
    /// Dispatches to the shared interleaved checksum kernel; the sum is
    /// identical to accumulating per-probe searches.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        kernel::explicit_batch_checksum(
            &self.nodes,
            self.root_pos,
            self.height,
            keys,
            kernel::DEFAULT_LANES,
        )
    }
}

impl<K: Ord + Copy> ExplicitTree<K> {
    /// Array position of the node with 1-based in-order `rank`, found by
    /// walking child pointers along its root path (`O(depth)`; no index
    /// arithmetic is stored with an explicit tree).
    fn walk_to_rank(&self, rank: u64) -> Option<u32> {
        let tree = cobtree_core::Tree::try_new(self.height).ok()?;
        if rank < 1 || rank > tree.len() {
            return None;
        }
        let target = tree.node_at_in_order(rank);
        let d = tree.depth(target);
        let mut pos = self.root_pos;
        for k in 1..=d {
            let node = &self.nodes[pos as usize];
            pos = if (target >> (d - k)) & 1 == 1 {
                node.right
            } else {
                node.left
            };
        }
        Some(pos)
    }
}

impl ExplicitTree<u64> {
    /// Builds with keys equal to in-order ranks `1..=n` (the paper's
    /// setup).
    #[must_use]
    pub fn with_rank_keys(layout: &Layout) -> ExplicitTree<u64> {
        let n = layout.len();
        let keys: Vec<u64> = (1..=n).collect();
        ExplicitTree::build(layout, &keys)
    }
}

impl<K: Ord + Copy> SearchBackend<K> for ExplicitTree<K> {
    fn height(&self) -> u32 {
        self.height
    }

    fn key_count(&self) -> u64 {
        self.key_count
    }

    fn search(&self, key: K) -> Option<u64> {
        ExplicitTree::search(self, key)
    }

    fn search_reference(&self, key: K) -> Option<u64> {
        ExplicitTree::search_reference(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        ExplicitTree::search_traced(self, key, visited)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        kernel::explicit_search_traced(&self.nodes, self.root_pos, self.height, key, visited)
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        ExplicitTree::search_batch_interleaved(self, keys, width, out);
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        ExplicitTree::search_batch_checksum(self, keys)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        self.walk_to_rank(rank).map(|p| self.nodes[p as usize].key)
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        self.walk_to_rank(rank).map(u64::from)
    }

    // The generic descent would pay an O(depth) pointer walk per visited
    // node; these overrides follow child pointers directly (O(h) total)
    // while tracking the BFS index for the rank arithmetic.

    fn lower_bound_rank(&self, key: K) -> u64 {
        self.explicit_lower_bound(key, None)
    }

    fn lower_bound_rank_traced(&self, key: K, visited: &mut Vec<u64>) -> u64 {
        self.explicit_lower_bound(key, Some(visited))
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        let mut pos = self.root_pos;
        let mut i = 1u64;
        for _ in 0..self.height {
            let node = &self.nodes[pos as usize];
            let go_right = key >= node.key;
            pos = if go_right { node.right } else { node.left };
            i = (i << 1) | u64::from(go_right);
        }
        (i - (1u64 << self.height)) + 1
    }

    fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        self.explicit_sorted_batch(keys, out, None)
    }

    fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        self.explicit_sorted_batch(keys, out, Some(visited))
    }
}

impl<K: Ord + Copy> ExplicitTree<K> {
    /// Pointer-stack variant of the generic sorted-batch kernel: the
    /// descent stack carries array positions, so each newly visited node
    /// is one pointer dereference instead of an O(depth) root walk.
    fn explicit_sorted_batch(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        mut visited: Option<&mut Vec<u64>>,
    ) -> Result<()> {
        out.clear();
        out.reserve(keys.len());
        // (array position, key, exclusive upper bound from ancestors).
        let mut stack: Vec<(u32, K, Option<K>)> = Vec::with_capacity(self.height as usize);
        let mut prev: Option<K> = None;
        for (idx, &probe) in keys.iter().enumerate() {
            if let Some(p) = prev {
                if probe < p {
                    return Err(Error::UnsortedBatch { index: idx - 1 });
                }
            }
            prev = Some(probe);
            while let Some(&(_, _, upper)) = stack.last() {
                match upper {
                    Some(u) if probe >= u => {
                        stack.pop();
                    }
                    _ => break,
                }
            }
            if stack.is_empty() {
                if let Some(v) = visited.as_deref_mut() {
                    v.push(u64::from(self.root_pos));
                }
                stack.push((self.root_pos, self.nodes[self.root_pos as usize].key, None));
            }
            let result = loop {
                let &(pos, k, upper) = stack.last().expect("stack holds at least the root");
                let go_right = match probe.cmp(&k) {
                    std::cmp::Ordering::Equal => break Some(u64::from(pos)),
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Greater => true,
                };
                let node = &self.nodes[pos as usize];
                let child = if go_right { node.right } else { node.left };
                if child == Self::NIL {
                    break None;
                }
                if let Some(v) = visited.as_deref_mut() {
                    v.push(u64::from(child));
                }
                let cupper = if go_right { upper } else { Some(k) };
                stack.push((child, self.nodes[child as usize].key, cupper));
            };
            out.push(result);
        }
        Ok(())
    }

    fn explicit_lower_bound(&self, key: K, mut visited: Option<&mut Vec<u64>>) -> u64 {
        let tree = cobtree_core::Tree::new(self.height);
        let mut pos = self.root_pos;
        let mut i = 1u64;
        for _ in 0..self.height {
            if let Some(v) = visited.as_deref_mut() {
                v.push(u64::from(pos));
            }
            let node = &self.nodes[pos as usize];
            match key.cmp(&node.key) {
                std::cmp::Ordering::Equal => return tree.in_order_rank(i),
                std::cmp::Ordering::Less => {
                    pos = node.left;
                    i <<= 1;
                }
                std::cmp::Ordering::Greater => {
                    pos = node.right;
                    i = (i << 1) | 1;
                }
            }
        }
        (i - (1u64 << self.height)) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;

    #[test]
    fn finds_every_key_in_every_layout() {
        for layout in NamedLayout::ALL {
            let l = layout.materialize(8);
            let t = ExplicitTree::with_rank_keys(&l);
            for k in 1..=l.len() {
                // The found position must exist and hold the key.
                assert_eq!(
                    t.search(k).map(|pos| t.nodes()[pos as usize].key),
                    Some(k),
                    "{layout} lost key {k}"
                );
            }
            assert_eq!(t.search(0), None);
            assert_eq!(t.search(l.len() + 1), None);
        }
    }

    #[test]
    fn custom_keys_respect_order() {
        let l = NamedLayout::MinWep.materialize(4);
        let keys: Vec<i64> = (0..15).map(|i| i * 10 - 40).collect();
        let t = ExplicitTree::build(&l, &keys);
        for &k in &keys {
            assert!(t.search(k).is_some());
        }
        assert!(t.search(5).is_none());
    }

    #[test]
    fn search_path_length_bounded_by_height() {
        let l = NamedLayout::PreVeb.materialize(10);
        let t = ExplicitTree::with_rank_keys(&l);
        let mut visited = Vec::new();
        for k in [1u64, 512, 1023] {
            visited.clear();
            t.search_traced(k, &mut visited);
            assert!(visited.len() <= 10);
            assert_eq!(visited[0], t.root_position());
        }
    }

    #[test]
    fn traced_path_is_root_to_node_path() {
        let l = NamedLayout::InOrder.materialize(6);
        let t = ExplicitTree::with_rank_keys(&l);
        let tree = cobtree_core::Tree::new(6);
        let mut visited = Vec::new();
        for key in 1..=tree.len() {
            visited.clear();
            t.search_traced(key, &mut visited);
            let expect: Vec<u64> = tree
                .search_path(key)
                .into_iter()
                .map(|i| l.position(i))
                .collect();
            assert_eq!(visited, expect, "key {key}");
        }
    }

    #[test]
    fn try_build_rejects_bad_keys() {
        let l = NamedLayout::InOrder.materialize(2);
        assert_eq!(
            ExplicitTree::try_build(&l, &[3u64, 2, 1]).unwrap_err(),
            Error::UnsortedKeys { index: 0 }
        );
        assert_eq!(
            ExplicitTree::<u64>::try_build(&l, &[]).unwrap_err(),
            Error::EmptyKeys
        );
        assert_eq!(
            ExplicitTree::try_build(&l, &[1u64, 2]).unwrap_err(),
            Error::KeyCountMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn build_panics_on_unsorted_keys() {
        let l = NamedLayout::InOrder.materialize(2);
        let _ = ExplicitTree::build(&l, &[3u64, 2, 1]);
    }

    #[test]
    fn sparse_fat_index_build_matches_dense_semantics() {
        use cobtree_core::fat::{FatIndex, FatLayout, FatOrder};
        use cobtree_core::index::PositionIndex;
        let index = FatIndex::try_new(FatLayout::new(FatOrder::Veb, 16).unwrap(), 7).unwrap();
        let keys: Vec<u64> = (1..=127).map(|k| k * 5).collect();
        let t = ExplicitTree::try_build_from_index(&index, &keys).unwrap();
        assert_eq!(t.nodes().len() as u64, index.slot_capacity());
        assert_eq!(SearchBackend::key_count(&t), 127);
        assert_eq!(t.root_position(), index.position(1, 0));
        let tree = cobtree_core::Tree::new(7);
        for k in 1..=127u64 {
            // Found at the fat-layout position of the in-order node.
            let node = tree.node_at_in_order(k);
            assert_eq!(
                t.search(k * 5),
                Some(index.position(node, tree.depth(node)))
            );
            assert_eq!(t.search(k * 5 + 1), None);
        }
        let sorted: Vec<u64> = keys.clone();
        for probe in 0..=640u64 {
            let lb = sorted.partition_point(|&k| k < probe) as u64 + 1;
            assert_eq!(
                SearchBackend::lower_bound_rank(&t, probe),
                lb,
                "lb({probe})"
            );
        }
    }

    #[test]
    fn checksum_is_stable() {
        let l = NamedLayout::HalfWep.materialize(8);
        let t = ExplicitTree::with_rank_keys(&l);
        let keys: Vec<u64> = (1..=255).collect();
        let a = t.search_batch_checksum(&keys);
        let b = t.search_batch_checksum(&keys);
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}
