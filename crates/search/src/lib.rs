//! # cobtree-search
//!
//! Search-tree substrate: the data structures whose wall-clock behaviour
//! the paper measures (§II-B, §IV-D/E/F), unified behind one facade.
//!
//! * [`facade`] — **start here**: [`SearchTree`] builds any layout ×
//!   storage combination from a plain sorted key set
//!   (`SearchTree::builder().layout(..).storage(..).keys(..).build()`),
//!   padding to the next complete tree internally;
//! * [`backend`] — the [`SearchBackend`] trait every storage kind
//!   implements: point search *plus* the full ordered-index surface
//!   (`lower_bound`/`upper_bound`, `rank`/`select`, sorted-batch search
//!   with shared-prefix restarts), so harnesses iterate backends
//!   generically;
//! * [`cursor`] — lending [`cursor::Cursor`] (seek/next/prev) and
//!   [`cursor::Range`] iterators over any backend, built on the
//!   position ⇄ in-order-rank contract;
//! * [`explicit`] — *pointer-based* trees: each node stores its key and
//!   two child positions, laid out in an arbitrary layout order; a search
//!   follows positions with no index arithmetic (Figure 2 / Figure 4
//!   "explicit search time");
//! * [`implicit`] — *pointer-less* trees: only keys are stored, in layout
//!   order; every transition recomputes the child's position via
//!   [`cobtree_core::index::PositionIndex`] (Figure 4 "implicit search"),
//!   including the memory-access-free variant used to time pure index
//!   computation (keys `1..=n` inferred from the BFS index, §IV-E
//!   footnote 1);
//! * [`index_only`] — keys in plain sorted order, layout positions
//!   computed on demand (the §IV-E discipline generalized to arbitrary
//!   keys);
//! * [`kernel`] — the *compiled descent kernels* every backend's hot
//!   path dispatches into: devirtualized per-layout
//!   [`cobtree_core::index::StepPlan`]s, branch-free descent with the
//!   equality check hoisted out of the loop, software prefetch of both
//!   candidate children, and an interleaved multi-query kernel that
//!   keeps up to 16 lookups in flight (the original per-level loops
//!   remain as `search_reference`, the verification oracle);
//! * [`mapped`] — the *serving* backend: [`mapped::MappedTree`] answers
//!   the full ordered surface zero-copy from the bytes of a saved tree
//!   file (`SearchTree::save`/`open`, format spec in `docs/FORMAT.md`),
//!   memory-mapped so the byte order on storage *is* the layout order;
//! * [`adaptive`] — the *adaptive serving engine*:
//!   [`adaptive::AdaptiveForest`] wraps a forest behind an atomically
//!   swappable handle so the traffic-adaptive layout loop can publish
//!   re-optimized shards (validated to serve the identical key set)
//!   while readers keep pinned snapshots — plus built-for profile
//!   bookkeeping and `.cobw` sidecar persistence;
//! * [`forest`] — the *serving engine*: [`forest::Forest`]
//!   range-partitions a key set across N per-shard `SearchTree`s behind
//!   a fence router, answers the global ordered surface (rank/select,
//!   stitched cursors/ranges, split-and-dispatch sorted batches), fans
//!   reads out over scoped threads (`par_search_batch`/`par_range`),
//!   and saves/opens as one `.cobt` file per shard plus a manifest;
//! * [`stepping`] — the incremental [`stepping::SteppingTree`] descent
//!   optimization this reproduction adds on top of the paper;
//! * [`tiered`] — the *write path*: [`TieredForest`] layers an
//!   LSM-style memtable (sorted inserts + tombstones) over an immutable
//!   `Forest` base, keeps the full ordered surface rank-correct across
//!   tiers, and compacts in the background into fresh `.cobt` shards
//!   published by atomic epoch-versioned manifest swap;
//! * [`map`] — [`LayoutMap`], a minimal dynamic ordered-set facade over
//!   a single-shard in-memory [`TieredForest`];
//! * [`workload`] — reproducible workloads: uniform random keys (the
//!   paper's 10 M random searches), the §II-A affinity-graph random walk,
//!   and skewed variants for extensions;
//! * [`trace`] — position/address trace collection for the cache
//!   simulator, from bare indexers or whole backends.

pub mod adaptive;
pub mod backend;
pub mod cursor;
pub mod explicit;
pub mod facade;
pub mod fat;
pub mod forest;
pub mod implicit;
pub mod index_only;
pub mod kernel;
pub mod map;
pub mod mapped;
pub(crate) mod slot;
pub mod stepping;
pub mod tiered;
pub mod trace;
pub mod workload;

pub use adaptive::AdaptiveForest;
pub use backend::SearchBackend;
pub use cursor::{range_of, Cursor, Range};
pub use explicit::ExplicitTree;
pub use facade::{
    read_weight_sidecar, DescriptorKind, LayoutSource, SaveOptions, SearchTree, SearchTreeBuilder,
    Storage,
};
pub use fat::FatHeapTree;
pub use forest::{
    Forest, ForestBuilder, ForestCursor, ForestHit, ForestRange, ScrubReport, ShardRouter,
};
pub use implicit::{ImplicitTree, IndexOnlySearcher};
pub use index_only::IndexOnlyTree;
pub use map::LayoutMap;
pub use mapped::MappedTree;
pub use stepping::SteppingTree;
pub use tiered::{
    TierPlace, TieredBuilder, TieredConfig, TieredCursor, TieredForest, TieredHit, TieredRange,
    TieredSnapshot,
};
pub use workload::{UniformKeys, ZipfKeys, ZipfTable};
