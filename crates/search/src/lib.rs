//! # cobtree-search
//!
//! Search-tree substrate: the data structures whose wall-clock behaviour
//! the paper measures (§II-B, §IV-D/E/F).
//!
//! * [`explicit`] — *pointer-based* trees: each node stores its key and
//!   two child positions, laid out in an arbitrary layout order; a search
//!   follows positions with no index arithmetic (Figure 2 / Figure 4
//!   "explicit search time");
//! * [`implicit`] — *pointer-less* trees: only keys are stored, in layout
//!   order; every transition recomputes the child's position via
//!   [`cobtree_core::index::PositionIndex`] (Figure 4 "implicit search"),
//!   including the memory-access-free variant used to time pure index
//!   computation (keys `1..=n` inferred from the BFS index, §IV-E
//!   footnote 1);
//! * [`workload`] — reproducible workloads: uniform random keys (the
//!   paper's 10 M random searches), the §II-A affinity-graph random walk,
//!   and skewed variants for extensions;
//! * [`trace`] — position/address trace collection for the cache
//!   simulator.

pub mod explicit;
pub mod implicit;
pub mod map;
pub mod stepping;
pub mod trace;
pub mod workload;

pub use explicit::ExplicitTree;
pub use implicit::{ImplicitTree, IndexOnlySearcher};
pub use map::LayoutMap;
pub use workload::UniformKeys;
