//! Lending cursors and range iterators over any [`SearchBackend`].
//!
//! Both types speak **in-order ranks** (see the [`crate::backend`]
//! module docs for the position ⇄ rank contract) and work on
//! `&dyn SearchBackend<K>`, so one implementation serves every layout ×
//! storage combination — including the [`crate::SearchTree`] facade,
//! which exposes them as [`crate::SearchTree::cursor`] and
//! [`crate::SearchTree::range`].
//!
//! ```
//! use cobtree_search::cursor::Cursor;
//! use cobtree_search::{SearchTree, Storage};
//!
//! let tree = SearchTree::builder()
//!     .storage(Storage::Implicit)
//!     .keys((1..=100u64).map(|k| k * 10))
//!     .build()?;
//! let mut cur = Cursor::new(&tree);
//! assert_eq!(cur.seek(95), Some(100)); // lands on the lower bound
//! assert_eq!(cur.next(), Some(110)); // Iterator::next advances
//! assert_eq!(cur.prev(), Some(100));
//! # Ok::<(), cobtree_core::Error>(())
//! ```

use crate::backend::SearchBackend;
use std::ops::{Bound, RangeBounds};

/// A bidirectional cursor borrowing a backend ("lending": keys are read
/// on demand, nothing is copied out of the tree up front).
///
/// The cursor sits either on an entry (rank `1..=len`) or on one of two
/// sentinels: *before-first* (the initial state) and *after-last*.
/// [`Iterator::next`] and [`Cursor::prev`] move one entry and return the
/// new current key; [`Cursor::seek`] jumps to the lower bound of a key.
pub struct Cursor<'a, K: Copy + Ord> {
    backend: &'a dyn SearchBackend<K>,
    len: u64,
    /// Current rank; `0` = before-first, `len + 1` = after-last.
    rank: u64,
}

impl<'a, K: Copy + Ord> Cursor<'a, K> {
    /// A cursor positioned before the first entry.
    #[must_use]
    pub fn new(backend: &'a dyn SearchBackend<K>) -> Self {
        Self {
            backend,
            len: backend.key_count(),
            rank: 0,
        }
    }

    /// Moves to the first stored key `>= key` (the lower bound) and
    /// returns it; lands after-last (returning `None`) when every key
    /// is smaller.
    pub fn seek(&mut self, key: K) -> Option<K> {
        self.rank = self.backend.lower_bound_rank(key).min(self.len + 1);
        self.key()
    }

    /// Moves onto the first entry and returns its key.
    pub fn seek_first(&mut self) -> Option<K> {
        self.rank = 1.min(self.len + 1);
        self.key()
    }

    /// Moves onto the last entry and returns its key.
    pub fn seek_last(&mut self) -> Option<K> {
        self.rank = self.len;
        self.key()
    }

    /// Key under the cursor, `None` on a sentinel.
    ///
    /// The stored-key bound is hoisted here against the `len` cached at
    /// construction (and clamped once per [`Cursor::seek`]), so
    /// navigation never asks the backend about sentinel ranks — on a
    /// padded mapped tree, `key_at_rank` would otherwise re-derive the
    /// padding bound arithmetically on every step.
    #[must_use]
    pub fn key(&self) -> Option<K> {
        if self.rank < 1 || self.rank > self.len {
            return None;
        }
        self.backend.key_at_rank(self.rank)
    }

    /// 1-based in-order rank of the current entry, `None` on a sentinel.
    #[must_use]
    pub fn rank(&self) -> Option<u64> {
        (self.rank >= 1 && self.rank <= self.len).then_some(self.rank)
    }

    /// Layout position of the current entry, `None` on a sentinel.
    #[must_use]
    pub fn position(&self) -> Option<u64> {
        self.rank().and_then(|r| self.backend.position_of_rank(r))
    }

    /// Steps back one entry and returns the new current key; `None`
    /// (and the before-first state) when already at the front.
    pub fn prev(&mut self) -> Option<K> {
        self.rank = self.rank.saturating_sub(1);
        self.key()
    }
}

impl<K: Copy + Ord> Iterator for Cursor<'_, K> {
    type Item = K;

    /// Steps forward one entry and returns the new current key; `None`
    /// (and the after-last state) once the keys are exhausted.
    fn next(&mut self) -> Option<K> {
        if self.rank <= self.len {
            self.rank += 1;
        }
        self.key()
    }
}

impl<K: Copy + Ord> std::fmt::Debug for Cursor<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor")
            .field("rank", &self.rank)
            .field("len", &self.len)
            .finish()
    }
}

/// Double-ended iterator over the keys in a contiguous rank window.
/// Built by [`range_of`] / [`crate::SearchTree::range`], or directly
/// from a rank interval with [`Range::from_ranks`].
pub struct Range<'a, K: Copy + Ord> {
    backend: &'a dyn SearchBackend<K>,
    /// Next rank the front will yield; the window is empty once
    /// `front > back`.
    front: u64,
    /// Next rank the back will yield (inclusive).
    back: u64,
}

impl<'a, K: Copy + Ord> Range<'a, K> {
    /// The window of ranks `lo..=hi` (1-based, clamped to the stored
    /// keys; `lo > hi` yields nothing). Clamping here hoists the
    /// stored-key bound out of the iteration: every rank the window
    /// yields is a real key, so per-step `key_at_rank` calls never land
    /// on padding.
    #[must_use]
    pub fn from_ranks(backend: &'a dyn SearchBackend<K>, lo: u64, hi: u64) -> Self {
        Self {
            backend,
            front: lo.max(1),
            back: hi.min(backend.key_count()),
        }
    }

    /// Remaining `(rank, key, layout position)` triples — the variant
    /// scans feed to cache replay when positions matter.
    pub fn entries(self) -> impl Iterator<Item = (u64, K, u64)> + 'a {
        let backend = self.backend;
        // An inverted window (`front > back`) is simply empty.
        (self.front..=self.back).filter_map(move |r| {
            let k = backend.key_at_rank(r)?;
            let p = backend.position_of_rank(r)?;
            Some((r, k, p))
        })
    }
}

impl<K: Copy + Ord> Iterator for Range<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        if self.front > self.back {
            return None;
        }
        let k = self.backend.key_at_rank(self.front);
        self.front += 1;
        k
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.back + 1).saturating_sub(self.front) as usize;
        (n, Some(n))
    }
}

impl<K: Copy + Ord> DoubleEndedIterator for Range<'_, K> {
    fn next_back(&mut self) -> Option<K> {
        if self.front > self.back {
            return None;
        }
        let k = self.backend.key_at_rank(self.back);
        self.back -= 1;
        k
    }
}

impl<K: Copy + Ord> ExactSizeIterator for Range<'_, K> {}

impl<K: Copy + Ord> std::fmt::Debug for Range<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Range")
            .field("front", &self.front)
            .field("back", &self.back)
            .finish()
    }
}

/// Keys of `backend` within `bounds`, in ascending order — the
/// `BTreeSet::range` equivalent for any layout × storage backend.
/// Inverted bounds (start past end) yield an empty iterator.
pub fn range_of<'a, K: Copy + Ord>(
    backend: &'a dyn SearchBackend<K>,
    bounds: impl RangeBounds<K>,
) -> Range<'a, K> {
    let lo = match bounds.start_bound() {
        Bound::Unbounded => 1,
        Bound::Included(&a) => backend.lower_bound_rank(a),
        Bound::Excluded(&a) => backend.upper_bound_rank(a),
    };
    let hi = match bounds.end_bound() {
        Bound::Unbounded => backend.key_count(),
        Bound::Included(&b) => backend.upper_bound_rank(b) - 1,
        Bound::Excluded(&b) => backend.lower_bound_rank(b) - 1,
    };
    Range::from_ranks(backend, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitTree;
    use cobtree_core::NamedLayout;

    fn tree() -> ImplicitTree<u64> {
        let keys: Vec<u64> = (1..=63u64).map(|k| k * 10).collect();
        ImplicitTree::build(NamedLayout::MinWep.indexer(6), &keys)
    }

    #[test]
    fn cursor_walks_the_whole_key_set_in_order() {
        let t = tree();
        let forward: Vec<u64> = Cursor::new(&t).collect();
        let expect: Vec<u64> = (1..=63u64).map(|k| k * 10).collect();
        assert_eq!(forward, expect);
        let mut cur = Cursor::new(&t);
        assert_eq!(cur.seek_last(), Some(630));
        let mut backward = vec![630u64];
        while let Some(k) = cur.prev() {
            backward.push(k);
        }
        backward.reverse();
        assert_eq!(backward, expect);
    }

    #[test]
    fn cursor_seek_rank_and_position_agree_with_the_backend() {
        let t = tree();
        let mut cur = Cursor::new(&t);
        assert_eq!(cur.seek(95), Some(100));
        assert_eq!(cur.rank(), Some(10));
        assert_eq!(cur.position(), t.search(100));
        assert_eq!(cur.seek(630), Some(630));
        assert_eq!(cur.next(), None); // after-last sentinel
        assert_eq!(cur.rank(), None);
        assert_eq!(cur.position(), None);
        assert_eq!(cur.prev(), Some(630)); // steps back onto the last key
        assert_eq!(cur.seek(631), None);
        assert_eq!(cur.seek_first(), Some(10));
        assert_eq!(cur.prev(), None); // before-first sentinel
    }

    #[test]
    fn range_matches_a_sorted_vec_oracle_for_all_bound_kinds() {
        let t = tree();
        let keys: Vec<u64> = (1..=63u64).map(|k| k * 10).collect();
        for a in [0u64, 10, 95, 100, 300, 630, 700] {
            for b in [0u64, 10, 105, 300, 629, 630, 700] {
                let got: Vec<u64> = range_of(&t, a..b).collect();
                let expect: Vec<u64> = keys.iter().copied().filter(|&k| a <= k && k < b).collect();
                assert_eq!(got, expect, "{a}..{b}");
                let got: Vec<u64> = range_of(&t, a..=b).collect();
                let expect: Vec<u64> = keys.iter().copied().filter(|&k| a <= k && k <= b).collect();
                assert_eq!(got, expect, "{a}..={b}");
            }
        }
        let all: Vec<u64> = range_of(&t, ..).collect();
        assert_eq!(all, keys);
        let tail: Vec<u64> = range_of(
            &t,
            (
                std::ops::Bound::Excluded(600u64),
                std::ops::Bound::Unbounded,
            ),
        )
        .collect();
        assert_eq!(tail, vec![610, 620, 630]);
    }

    #[test]
    fn range_is_double_ended_and_exact_size() {
        let t = tree();
        let r = range_of(&t, 100u64..=150);
        assert_eq!(r.len(), 6);
        let rev: Vec<u64> = range_of(&t, 100u64..=150).rev().collect();
        assert_eq!(rev, vec![150, 140, 130, 120, 110, 100]);
        let mut r = range_of(&t, 100u64..=130);
        assert_eq!(r.next(), Some(100));
        assert_eq!(r.next_back(), Some(130));
        assert_eq!(r.next(), Some(110));
        assert_eq!(r.next_back(), Some(120));
        assert_eq!(r.next(), None);
        assert_eq!(r.next_back(), None);
    }

    #[test]
    fn entries_report_consistent_positions() {
        let t = tree();
        for (rank, key, pos) in range_of(&t, 200u64..=260).entries() {
            assert_eq!(t.key_at_rank(rank), Some(key));
            assert_eq!(t.search(key), Some(pos));
        }
        assert_eq!(range_of(&t, 200u64..=260).entries().count(), 7);
    }
}
