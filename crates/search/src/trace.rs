//! Address-trace generation for the cache simulator.
//!
//! Figure 2's miss-rate panel counts "L1 and L2 cache misses incurred in
//! memory accesses to the binary tree (stored as a linear array)". These
//! helpers turn search workloads into byte-address traces over that
//! array, parameterized by the stored node size (the paper's β analysis
//! uses 4-byte nodes: "a block size of 16 nodes mimics a cache line size
//! of 64 bytes").

use crate::backend::SearchBackend;
use cobtree_core::index::PositionIndex;
use cobtree_core::Tree;

/// Emits the byte addresses touched by searching `keys` on *any* storage
/// backend (`node_bytes` per element, starting at `base`). This is the
/// generic sibling of [`search_addresses`]: where that function assumes
/// an implicit tree served by a bare index, this one replays whatever
/// access pattern the backend actually performs.
pub fn backend_search_addresses<K: Copy + Ord>(
    backend: &dyn SearchBackend<K>,
    node_bytes: u64,
    base: u64,
    keys: &[K],
    mut sink: impl FnMut(u64),
) {
    let mut visited = Vec::with_capacity(backend.height() as usize);
    for &key in keys {
        visited.clear();
        backend.search_traced(key, &mut visited);
        for &p in &visited {
            sink(base + p * node_bytes);
        }
    }
}

/// Emits the byte addresses touched by searching `keys` on an implicit
/// tree served by `index`, with `node_bytes` per element, starting at
/// `base` (callers can offset to model arbitrary array placement).
pub fn search_addresses(
    index: &dyn PositionIndex,
    node_bytes: u64,
    base: u64,
    keys: impl IntoIterator<Item = u64>,
    mut sink: impl FnMut(u64),
) {
    let tree = Tree::new(index.height());
    for key in keys {
        debug_assert!(key >= 1 && key <= tree.len());
        let target = tree.node_at_in_order(key);
        let d = tree.depth(target);
        for k in 0..=d {
            let node = target >> (d - k);
            let p = index.position(node, k);
            sink(base + p * node_bytes);
        }
    }
}

/// Collects the position (not address) sequence of the searches — the
/// element-granularity trace used by the single-block model.
#[must_use]
pub fn search_positions(
    index: &dyn PositionIndex,
    keys: impl IntoIterator<Item = u64>,
) -> Vec<u64> {
    let mut out = Vec::new();
    search_addresses(index, 1, 0, keys, |a| out.push(a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobtree_core::NamedLayout;

    #[test]
    fn trace_length_is_total_path_length() {
        let idx = NamedLayout::MinWep.indexer(6);
        let tree = Tree::new(6);
        let keys: Vec<u64> = (1..=63).collect();
        let trace = search_positions(idx.as_ref(), keys.iter().copied());
        let expect: usize = keys
            .iter()
            .map(|&k| tree.depth(tree.node_at_in_order(k)) as usize + 1)
            .sum();
        assert_eq!(trace.len(), expect);
    }

    #[test]
    fn addresses_scale_with_node_size() {
        let idx = NamedLayout::PreVeb.indexer(5);
        let mut small = Vec::new();
        let mut big = Vec::new();
        search_addresses(idx.as_ref(), 4, 0, [7u64], |a| small.push(a));
        search_addresses(idx.as_ref(), 16, 0, [7u64], |a| big.push(a));
        assert_eq!(small.len(), big.len());
        for (s, b) in small.iter().zip(&big) {
            assert_eq!(s * 4, *b);
        }
    }

    #[test]
    fn every_trace_starts_at_the_root() {
        for layout in [NamedLayout::InVeb, NamedLayout::PreBreadth] {
            let idx = layout.indexer(7);
            let root_pos = idx.position(1, 0);
            let trace = search_positions(idx.as_ref(), [1u64, 64, 127]);
            assert_eq!(trace[0], root_pos);
        }
    }

    #[test]
    fn backend_trace_matches_index_trace_for_found_keys() {
        // For full trees with rank keys, an implicit backend's traced
        // accesses equal the index-derived address trace.
        let h = 6;
        let idx = NamedLayout::MinWep.indexer(h);
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let tree = crate::ImplicitTree::build(NamedLayout::MinWep.indexer(h), &keys);
        let mut via_backend = Vec::new();
        backend_search_addresses(&tree, 4, 16, &keys, |a| via_backend.push(a));
        let mut via_index = Vec::new();
        search_addresses(idx.as_ref(), 4, 16, keys.iter().copied(), |a| {
            via_index.push(a);
        });
        assert_eq!(via_backend, via_index);
    }
}
