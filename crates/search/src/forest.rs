//! The sharded serving engine: a [`Forest`] of per-shard
//! [`SearchTree`]s behind one ordered-map API, with a concurrent read
//! path.
//!
//! The paper's layouts make a *single* static tree cheap to serve; a
//! serving engine additionally needs to scale across cores and across
//! memory — Alstrup et al.'s multilevel hierarchies and the "Everything
//! Beats std::set" measurements both show the layout win only
//! materializes under realistic high-throughput workloads. This module
//! supplies the substrate:
//!
//! * a [`Forest`] **range-partitions** a sorted key set across `N`
//!   shards, each an independent `SearchTree` (any layout × storage —
//!   including [`Storage::Mapped`], one `.cobt` file per shard plus a
//!   small manifest, see [`Forest::save`] / [`Forest::open`]);
//! * a [`ShardRouter`] — a binary search over the shards' *fence keys*
//!   (each shard's smallest key) — sends every point probe to exactly
//!   one shard, and splits sorted probe batches into per-shard
//!   sub-batches ([`Forest::search_sorted_batch`]);
//! * global **rank/select** arithmetic rides on per-shard prefix key
//!   counts: a key's forest-wide in-order rank is the number of keys in
//!   the shards before it plus its in-shard rank, so
//!   [`Forest::rank`]/[`Forest::select`] and the stitched
//!   [`ForestRange`]/[`ForestCursor`] answer exactly what one unsharded
//!   tree over the same keys would answer;
//! * the read path is **concurrent**: every storage backend is
//!   `Send + Sync` (asserted at compile time below), so
//!   [`Forest::par_search_batch`] and [`Forest::par_range`] fan the
//!   per-shard work out over a scoped thread pool with no locks — the
//!   shards are immutable, threads only share `&Forest`.
//!
//! ```
//! use cobtree_search::Forest;
//! use cobtree_core::NamedLayout;
//!
//! let forest = Forest::builder()
//!     .layout(NamedLayout::MinWep)
//!     .shards(4)
//!     .keys((1..=10_000u64).map(|k| k * 3))
//!     .build()?;
//! assert_eq!(forest.len(), 10_000);
//! assert!(forest.contains(30) && !forest.contains(31));
//! // Global rank/select agree with one unsharded tree over the keys.
//! assert_eq!(forest.rank(31), 10);
//! assert_eq!(forest.select(10), Some(30));
//! // Ranges stitch across shard fences transparently.
//! let window: Vec<u64> = forest.range(25u64..=40).collect();
//! assert_eq!(window, vec![27, 30, 33, 36, 39]);
//! # Ok::<(), cobtree_core::Error>(())
//! ```

use crate::backend::SearchBackend;
use crate::cursor::Range;
use crate::facade::{LayoutSource, SaveOptions, SearchTree, Storage};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::format::{self, FixedKey, ShardManifest};
use cobtree_core::io::{RealIo, StorageIo};
use cobtree_core::NamedLayout;
use cobtree_core::ObservedProfile;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// File name of the forest manifest inside a saved forest directory.
pub const MANIFEST_FILE: &str = "forest.cobf";

/// File name of the shard tree for partition slot `slot` inside a saved
/// forest directory.
#[must_use]
pub fn shard_file_name(slot: usize) -> String {
    format!("shard-{slot:04}.cobt")
}

// Compile-time concurrency audit: the whole read path is shared across
// threads by reference, so every storage backend — and the facade and
// forest over them — must be `Send + Sync`. A backend gaining interior
// mutability would fail this function's bounds, not a test at runtime.
#[allow(dead_code)]
fn assert_read_path_is_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<crate::explicit::ExplicitTree<u64>>();
    shareable::<crate::implicit::ImplicitTree<u64>>();
    shareable::<crate::index_only::IndexOnlyTree<u64>>();
    shareable::<crate::mapped::MappedTree<u64>>();
    shareable::<SearchTree<u64>>();
    shareable::<Forest<u64>>();
}

/// Sums, for every probe found in `backend`, the probe's 1-based
/// in-order rank (wrapping) — the storage- and shard-independent
/// benchmark kernel. Unlike `search_batch_checksum` (which sums layout
/// positions and therefore differs between a sharded forest and one big
/// tree), rank checksums are a pure function of the key set, so
/// [`Forest::rank_checksum`] over any partitioning must equal this over
/// the unsharded tree — the acceptance check the forest tests enforce.
#[must_use]
pub fn rank_checksum<K: Copy + Ord>(backend: &dyn SearchBackend<K>, probes: &[K]) -> u64 {
    let mut acc = 0u64;
    for &k in probes {
        let lb = backend.lower_bound_rank(k);
        if backend.key_at_rank(lb) == Some(k) {
            acc = acc.wrapping_add(lb);
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Routes keys to shards by binary search over *fence keys* — each
/// (non-empty) shard's smallest key, in ascending shard order.
///
/// Routing is exact for point probes: a probe `k` belongs to the last
/// shard whose fence is `<= k` (no shard, when `k` sorts below every
/// fence — then no shard can contain it). For ordered queries the same
/// rule is *rank-correct*: a lower-bound miss at the routed shard's
/// right edge lands on the next shard's fence rank, because fences are
/// the partition boundaries.
#[derive(Debug, Clone)]
pub struct ShardRouter<K> {
    fences: Vec<K>,
}

impl<K: Copy + Ord> ShardRouter<K> {
    /// Builds a router from ascending fence keys (one per shard).
    fn new(fences: Vec<K>) -> Self {
        debug_assert!(fences.windows(2).all(|w| w[0] < w[1]));
        Self { fences }
    }

    /// The fence keys, ascending (one per non-empty shard).
    #[must_use]
    pub fn fences(&self) -> &[K] {
        &self.fences
    }

    /// Index of the shard responsible for `key`, or `None` when `key`
    /// sorts below every fence (no shard can contain it).
    #[must_use]
    pub fn route(&self, key: K) -> Option<usize> {
        match self.fences.partition_point(|&f| f <= key) {
            0 => None,
            i => Some(i - 1),
        }
    }

    /// Splits an ascending probe slice at the fences: `cuts[i]` is the
    /// index of the first probe belonging to shard `i` (probes before
    /// `cuts[0]` sort below every fence), `cuts[len]` is `keys.len()`.
    #[must_use]
    pub fn split_sorted(&self, keys: &[K]) -> Vec<usize> {
        let mut cuts = Vec::with_capacity(self.fences.len() + 1);
        for &f in &self.fences {
            cuts.push(keys.partition_point(|&k| k < f));
        }
        cuts.push(keys.len());
        cuts
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`Forest`]. Created by [`Forest::builder`].
pub struct ForestBuilder<K> {
    source: LayoutSource,
    storage: Storage,
    shards: usize,
    keys: Vec<K>,
}

impl<K: Ord + Copy> Default for ForestBuilder<K> {
    fn default() -> Self {
        Self {
            source: LayoutSource::Named(NamedLayout::MinWep),
            storage: Storage::Explicit,
            shards: 4,
            keys: Vec::new(),
        }
    }
}

impl<K: Ord + Copy> ForestBuilder<K> {
    /// Chooses the per-shard layout (default: MINWEP). Every shard uses
    /// the same source, resolved at its own height.
    #[must_use]
    pub fn layout(mut self, source: impl Into<LayoutSource>) -> Self {
        self.source = source.into();
        self
    }

    /// Chooses the per-shard storage backend (default: explicit).
    /// [`Storage::Mapped`] forests are opened from a saved directory
    /// ([`Forest::open`]), not built from keys.
    #[must_use]
    pub fn storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Number of range partitions (default: 4). Slots that receive no
    /// keys (more shards than keys) stay empty and answer nothing.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the key set (must end up non-empty and strictly ascending;
    /// validated by [`ForestBuilder::build`]).
    #[must_use]
    pub fn keys(mut self, keys: impl IntoIterator<Item = K>) -> Self {
        self.keys = keys.into_iter().collect();
        self
    }

    /// Validates the configuration, range-partitions the keys and
    /// builds one [`SearchTree`] per non-empty slot.
    ///
    /// # Errors
    /// [`Error::Malformed`] for zero shards,
    /// [`Error::MappedStorageRequiresFile`] for mapped storage, plus
    /// every per-shard [`SearchTreeBuilder::build`](crate::SearchTreeBuilder::build) error
    /// (`EmptyKeys`/`UnsortedKeys`/`TooManyKeys`/…).
    pub fn build(self) -> Result<Forest<K>> {
        if self.shards == 0 {
            return Err(Error::Malformed {
                detail: "a forest needs at least one shard".into(),
            });
        }
        if self.storage == Storage::Mapped {
            return Err(Error::MappedStorageRequiresFile);
        }
        check_sorted_keys(&self.keys)?;
        let n = self.keys.len();
        let slots = self.shards;
        let mut counts_by_slot = vec![0u64; slots];
        let mut trees = Vec::new();
        let mut slot_of = Vec::new();
        for (slot, count) in counts_by_slot.iter_mut().enumerate() {
            // Even range partition: slot `i` gets keys[i·n/N .. (i+1)·n/N].
            let lo = slot * n / slots;
            let hi = (slot + 1) * n / slots;
            *count = (hi - lo) as u64;
            if lo == hi {
                continue;
            }
            let tree = SearchTree::builder()
                .layout(self.source.clone())
                .storage(self.storage)
                .keys(self.keys[lo..hi].iter().copied())
                .build()?;
            trees.push(tree);
            slot_of.push(slot);
        }
        Forest::assemble(self.storage, slots, counts_by_slot, trees, slot_of)
    }
}

// ---------------------------------------------------------------------------
// Forest
// ---------------------------------------------------------------------------

/// What one scrub step ([`Forest::scrub_step`]) observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Dense shards the step examined (budget consumed).
    pub scanned: usize,
    /// Shards skipped — already quarantined or without a backing file.
    pub skipped: usize,
    /// Dense indices newly quarantined by this step.
    pub newly_quarantined: Vec<usize>,
    /// Whether this step completed a full cycle over all shards.
    pub completed_pass: bool,
}

impl ScrubReport {
    /// Folds another step's observations into this report.
    pub fn merge(&mut self, other: ScrubReport) {
        self.scanned += other.scanned;
        self.skipped += other.skipped;
        self.newly_quarantined.extend(other.newly_quarantined);
        self.completed_pass |= other.completed_pass;
    }
}

/// Where a found key lives inside a [`Forest`]: which shard, the layout
/// position inside that shard's tree, and the forest-wide in-order
/// rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestHit {
    /// Dense shard index (into [`Forest::shards`] iteration order).
    pub shard: usize,
    /// Partition slot the shard occupies (differs from `shard` only
    /// when earlier slots are empty).
    pub slot: usize,
    /// 0-based layout position inside the shard's tree.
    pub position: u64,
    /// 1-based forest-wide in-order rank of the key.
    pub rank: u64,
}

/// A sharded, read-optimized serving engine: `N` range-partitioned
/// [`SearchTree`] shards behind the full ordered-map API, with a
/// scoped-thread-pool concurrent read path. Built by
/// [`Forest::builder`], or opened from a saved directory (one `.cobt`
/// file per shard plus a manifest) by [`Forest::open`].
pub struct Forest<K> {
    storage: Storage,
    layout_label: String,
    /// Requested partition slot count, empty slots included.
    slots: usize,
    /// Keys per partition slot (zeros mark empty slots).
    counts_by_slot: Vec<u64>,
    /// The non-empty shard trees, in ascending key order. Each shard is
    /// reference-counted so a re-optimized forest
    /// ([`Forest::with_swapped_shard`]) shares the unchanged shards
    /// with its predecessor instead of copying them.
    trees: Vec<Arc<SearchTree<K>>>,
    /// Partition slot of each tree in `trees`.
    slot_of: Vec<usize>,
    router: ShardRouter<K>,
    /// `prefix[i]` = keys held by `trees[..i]`; `prefix[trees.len()]`
    /// is the total — the translation table between forest-wide ranks
    /// and (shard, in-shard rank) pairs.
    prefix: Vec<u64>,
    /// Per-dense-shard health flag: 0 = healthy, 1 = quarantined.
    /// Atomic because quarantine is declared through shared `Arc`
    /// handles (the scrubber and the read path race benignly).
    health: Vec<AtomicU8>,
    /// On-disk file backing each dense shard — what the scrubber
    /// re-reads. `None` for shards without a file (in-memory builds).
    shard_paths: Vec<Option<PathBuf>>,
    /// Completed scrub cycles over all shards.
    scrub_passes: AtomicU64,
    /// Next dense shard the paced scrubber will examine.
    scrub_cursor: AtomicUsize,
}

impl<K: Ord + Copy> Forest<K> {
    /// Starts a builder with the defaults (MINWEP layout, explicit
    /// storage, 4 shards, no keys).
    #[must_use]
    pub fn builder() -> ForestBuilder<K> {
        ForestBuilder::default()
    }

    /// Crate-internal constructor from pre-built shard trees — shared
    /// by the builder, [`Forest::open`] and the tiered engine's
    /// compaction publisher ([`crate::tiered`]).
    pub(crate) fn assemble(
        storage: Storage,
        slots: usize,
        counts_by_slot: Vec<u64>,
        trees: Vec<SearchTree<K>>,
        slot_of: Vec<usize>,
    ) -> Result<Self> {
        Self::assemble_arcs(
            storage,
            slots,
            counts_by_slot,
            trees.into_iter().map(Arc::new).collect(),
            slot_of,
        )
    }

    /// [`Forest::assemble`] from already reference-counted shards —
    /// the shard-swap path ([`Forest::with_swapped_shard`]) re-assembles
    /// here so unchanged shards are shared, not rebuilt.
    pub(crate) fn assemble_arcs(
        storage: Storage,
        slots: usize,
        counts_by_slot: Vec<u64>,
        trees: Vec<Arc<SearchTree<K>>>,
        slot_of: Vec<usize>,
    ) -> Result<Self> {
        debug_assert_eq!(trees.len(), slot_of.len());
        let mut fences = Vec::with_capacity(trees.len());
        let mut prefix = Vec::with_capacity(trees.len() + 1);
        prefix.push(0);
        for tree in &trees {
            fences.push(tree.select(1).expect("shard trees are non-empty"));
            prefix.push(prefix.last().expect("seeded") + tree.len());
        }
        if fences.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::Malformed {
                detail: "shard fences are not strictly ascending".into(),
            });
        }
        let layout_label = trees
            .first()
            .map(|t| t.layout_label().to_string())
            .unwrap_or_default();
        let dense = trees.len();
        Ok(Self {
            storage,
            layout_label,
            slots,
            counts_by_slot,
            trees,
            slot_of,
            router: ShardRouter::new(fences),
            prefix,
            health: (0..dense).map(|_| AtomicU8::new(0)).collect(),
            shard_paths: vec![None; dense],
            scrub_passes: AtomicU64::new(0),
            scrub_cursor: AtomicUsize::new(0),
        })
    }

    /// Total number of stored keys across all shards.
    #[must_use]
    pub fn len(&self) -> u64 {
        *self.prefix.last().expect("prefix is seeded with 0")
    }

    /// `false`; building (and opening) requires at least one key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Requested partition slot count, empty slots included.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.slots
    }

    /// Number of non-empty shards actually holding trees.
    #[must_use]
    pub fn active_shards(&self) -> usize {
        self.trees.len()
    }

    /// The per-shard storage backend in use.
    #[must_use]
    pub fn storage(&self) -> Storage {
        self.storage
    }

    /// Human-readable layout description (shared by every shard).
    #[must_use]
    pub fn layout_label(&self) -> &str {
        &self.layout_label
    }

    /// The fence router.
    #[must_use]
    pub fn router(&self) -> &ShardRouter<K> {
        &self.router
    }

    /// The non-empty shard trees, in ascending key order.
    pub fn shards(&self) -> impl ExactSizeIterator<Item = &SearchTree<K>> {
        self.trees.iter().map(AsRef::as_ref)
    }

    /// The `shard`-th non-empty shard tree (dense index).
    #[must_use]
    pub fn shard(&self, shard: usize) -> Option<&SearchTree<K>> {
        self.trees.get(shard).map(AsRef::as_ref)
    }

    /// Partition slot occupied by the `shard`-th non-empty tree (dense
    /// index) — the slot names the on-disk file ([`shard_file_name`]).
    #[must_use]
    pub fn slot_of(&self, shard: usize) -> Option<usize> {
        self.slot_of.get(shard).copied()
    }

    /// The `shard`-th non-empty shard tree as a shared handle (dense
    /// index) — the currency of [`Forest::with_swapped_shard`] and the
    /// adaptive engine ([`crate::adaptive`]).
    #[must_use]
    pub fn shard_arc(&self, shard: usize) -> Option<Arc<SearchTree<K>>> {
        self.trees.get(shard).cloned()
    }

    /// Number of keys stored in shards before dense shard `shard`, i.e.
    /// the offset that turns an in-shard 1-based rank into the
    /// forest-wide rank [`Forest::locate`] reports (and back).
    #[must_use]
    pub fn rank_base(&self, shard: usize) -> Option<u64> {
        (shard < self.trees.len()).then(|| self.prefix[shard])
    }

    // -----------------------------------------------------------------
    // Shard health: quarantine + scrubbing
    // -----------------------------------------------------------------

    /// Whether dense shard `shard` is quarantined (failed a scrub or a
    /// read-path integrity check and is not serving until healed).
    #[must_use]
    pub fn is_quarantined(&self, shard: usize) -> bool {
        self.health
            .get(shard)
            .is_some_and(|h| h.load(Ordering::SeqCst) != 0)
    }

    /// Quarantines dense shard `shard`: its key range answers
    /// [`Error::ShardUnavailable`] from [`Forest::check_available`]
    /// until a flush rebuild (tiered engines) or re-open heals it.
    /// Returns `true` when this call transitioned the shard from
    /// healthy, `false` when it was already quarantined (or the index
    /// is out of range).
    pub fn quarantine(&self, shard: usize) -> bool {
        self.health
            .get(shard)
            .is_some_and(|h| h.swap(1, Ordering::SeqCst) == 0)
    }

    /// Number of currently quarantined shards.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| h.load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Dense indices of every quarantined shard, ascending.
    #[must_use]
    pub fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.trees.len())
            .filter(|&i| self.is_quarantined(i))
            .collect()
    }

    /// Completed full scrub cycles over this forest's shards.
    #[must_use]
    pub fn scrub_passes(&self) -> u64 {
        self.scrub_passes.load(Ordering::SeqCst)
    }

    /// Verifies that `key`'s owning shard is serving.
    ///
    /// # Errors
    /// [`Error::ShardUnavailable`] when the shard that owns `key`'s
    /// range is quarantined. Keys below every fence (which no shard
    /// owns) are always "available" — they answer misses.
    pub fn check_available(&self, key: K) -> Result<()> {
        match self.router.route(key) {
            Some(shard) if self.is_quarantined(shard) => Err(Error::ShardUnavailable {
                shard: u32::try_from(shard).unwrap_or(u32::MAX),
            }),
            _ => Ok(()),
        }
    }

    /// One paced scrub step: re-reads up to `budget` shard files
    /// (0 = all of them) through `io`, re-validating the full `.cobt`
    /// container — header checksum, content checksum, geometry — and
    /// quarantining any shard whose bytes no longer verify. The cursor
    /// persists across calls, so repeated small-budget calls cycle the
    /// whole forest; each completed cycle counts one scrub pass.
    /// Shards without a backing file (in-memory builds) and shards
    /// already quarantined are skipped but still consume budget.
    pub fn scrub_step(&self, io: &dyn StorageIo, budget: usize) -> ScrubReport {
        let total = self.trees.len();
        let limit = if budget == 0 {
            total
        } else {
            budget.min(total)
        };
        let start = self.scrub_cursor.load(Ordering::SeqCst) % total.max(1);
        let mut report = ScrubReport::default();
        for step in 0..limit {
            let shard = (start + step) % total;
            report.scanned += 1;
            if self.is_quarantined(shard) {
                report.skipped += 1;
                continue;
            }
            let Some(path) = self.shard_paths.get(shard).and_then(Option::as_ref) else {
                report.skipped += 1;
                continue;
            };
            let verified = io
                .read(path)
                .and_then(|bytes| format::parse(&bytes).map(|_| ()));
            if verified.is_err() && self.quarantine(shard) {
                report.newly_quarantined.push(shard);
            }
        }
        self.scrub_cursor
            .store((start + limit) % total.max(1), Ordering::SeqCst);
        if start + limit >= total {
            self.scrub_passes.fetch_add(1, Ordering::SeqCst);
            report.completed_pass = true;
        }
        report
    }

    /// Installs the backing-file paths the scrubber re-reads (one per
    /// dense shard) — called by the open/publish paths that know them.
    pub(crate) fn set_shard_paths(&mut self, paths: Vec<Option<PathBuf>>) {
        debug_assert_eq!(paths.len(), self.trees.len());
        self.shard_paths = paths;
    }

    /// A new forest identical to this one except that dense shard
    /// `shard` is replaced by `tree` — the unchanged shards are
    /// *shared* (reference-counted), so the swap is O(shards), not
    /// O(keys). The replacement must hold exactly the keys the old
    /// shard held (validated cheaply by count and both endpoints, which
    /// also pins the fences, so the router and every forest-wide rank
    /// are unchanged); layout and storage are free to differ — that is
    /// the point.
    ///
    /// # Errors
    /// [`Error::Malformed`] for an out-of-range shard index or a
    /// replacement tree whose key count or endpoints differ from the
    /// shard it replaces.
    pub fn with_swapped_shard(&self, shard: usize, tree: Arc<SearchTree<K>>) -> Result<Self> {
        let Some(old) = self.trees.get(shard) else {
            return Err(Error::Malformed {
                detail: format!("no dense shard {shard} to swap"),
            });
        };
        if tree.len() != old.len()
            || tree.select(1) != old.select(1)
            || tree.select(tree.len()) != old.select(old.len())
        {
            return Err(Error::Malformed {
                detail: "replacement shard must hold the same keys".into(),
            });
        }
        let mut trees = self.trees.clone();
        trees[shard] = tree;
        let mut next = Self::assemble_arcs(
            self.storage,
            self.slots,
            self.counts_by_slot.clone(),
            trees,
            self.slot_of.clone(),
        )?;
        // Health and backing-file bookkeeping carries over, except for
        // the swapped shard itself: its replacement is a fresh in-memory
        // tree (no file until the next save) and definitionally healthy.
        next.shard_paths = self.shard_paths.clone();
        next.shard_paths[shard] = None;
        for (i, h) in self.health.iter().enumerate() {
            if i != shard && h.load(Ordering::SeqCst) != 0 {
                next.health[i].store(1, Ordering::SeqCst);
            }
        }
        Ok(next)
    }

    /// Routes `key` to its shard: the dense index and tree of the only
    /// shard that can contain it, or `None` when `key` sorts below
    /// every fence.
    #[must_use]
    pub fn route(&self, key: K) -> Option<(usize, &SearchTree<K>)> {
        self.router.route(key).map(|i| (i, self.trees[i].as_ref()))
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, key: K) -> bool {
        match self.route(key) {
            Some((_, tree)) => tree.contains(key),
            None => false,
        }
    }

    /// Finds `key` and reports where it lives — shard, in-shard layout
    /// position and forest-wide rank — in a single descent.
    #[must_use]
    pub fn locate(&self, key: K) -> Option<ForestHit> {
        let (shard, tree) = self.route(key)?;
        let lb = SearchBackend::lower_bound_rank(tree, key);
        if SearchBackend::key_at_rank(tree, lb) != Some(key) {
            return None;
        }
        let position = SearchBackend::position_of_rank(tree, lb).expect("stored rank has a node");
        Some(ForestHit {
            shard,
            slot: self.slot_of[shard],
            position,
            rank: self.prefix[shard] + lb,
        })
    }

    /// Forest-wide 1-based in-order rank of the first stored key
    /// `>= key`, or `len() + 1` when every key is smaller. Equals what
    /// one unsharded tree over the same keys would answer.
    #[must_use]
    pub fn lower_bound_rank(&self, key: K) -> u64 {
        match self.route(key) {
            // A lower-bound miss past the routed shard's last key lands
            // exactly on the next shard's fence rank.
            Some((i, tree)) => self.prefix[i] + SearchBackend::lower_bound_rank(tree, key),
            None => 1,
        }
    }

    /// Forest-wide 1-based rank of the first stored key `> key`, or
    /// `len() + 1` when none is larger.
    #[must_use]
    pub fn upper_bound_rank(&self, key: K) -> u64 {
        match self.route(key) {
            Some((i, tree)) => self.prefix[i] + SearchBackend::upper_bound_rank(tree, key),
            None => 1,
        }
    }

    /// Number of stored keys strictly less than `key`.
    #[must_use]
    pub fn rank(&self, key: K) -> u64 {
        self.lower_bound_rank(key) - 1
    }

    /// The `rank`-th smallest stored key (1-based, forest-wide);
    /// `None` outside `1..=len`.
    #[must_use]
    pub fn select(&self, rank: u64) -> Option<K> {
        let (shard, local) = self.rank_to_shard(rank)?;
        self.trees[shard].select(local)
    }

    /// Smallest stored key `>= key` (`key` itself when present).
    #[must_use]
    pub fn lower_bound(&self, key: K) -> Option<K> {
        self.select(self.lower_bound_rank(key))
    }

    /// Smallest stored key `> key` — the in-order successor.
    #[must_use]
    pub fn upper_bound(&self, key: K) -> Option<K> {
        self.select(self.upper_bound_rank(key))
    }

    /// Largest stored key `< key` — the in-order predecessor.
    #[must_use]
    pub fn predecessor(&self, key: K) -> Option<K> {
        match self.rank(key) {
            0 => None,
            r => self.select(r),
        }
    }

    /// Alias for [`Forest::upper_bound`]: the in-order successor.
    #[must_use]
    pub fn successor(&self, key: K) -> Option<K> {
        self.upper_bound(key)
    }

    /// Translates a forest-wide rank into `(dense shard, local rank)`.
    fn rank_to_shard(&self, rank: u64) -> Option<(usize, u64)> {
        if rank < 1 || rank > self.len() {
            return None;
        }
        let shard = self.prefix.partition_point(|&p| p < rank) - 1;
        Some((shard, rank - self.prefix[shard]))
    }

    /// The per-shard local rank windows covering the forest-wide rank
    /// interval `lo..=hi`, as `(dense shard, local lo, local hi)`
    /// triples — the stitching table behind [`ForestRange`] and the
    /// cache-replay scan drivers.
    #[must_use]
    pub fn rank_windows(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        let lo = lo.max(1);
        let hi = hi.min(self.len());
        let mut windows = Vec::new();
        if lo > hi {
            return windows;
        }
        for i in 0..self.trees.len() {
            let glo = self.prefix[i] + 1;
            let ghi = self.prefix[i + 1];
            if ghi < lo || glo > hi {
                continue;
            }
            windows.push((
                i,
                lo.max(glo) - self.prefix[i],
                hi.min(ghi) - self.prefix[i],
            ));
        }
        windows
    }

    /// The stored keys whose forest-wide ranks fall in `lo..=hi`
    /// (1-based, clamped), ascending — one per-shard [`Range`] segment
    /// per crossed fence, stitched.
    #[must_use]
    pub fn range_by_rank(&self, lo: u64, hi: u64) -> ForestRange<'_, K> {
        let segments = self
            .rank_windows(lo, hi)
            .into_iter()
            .map(|(i, llo, lhi)| Range::from_ranks(self.trees[i].as_ref(), llo, lhi))
            .collect();
        ForestRange { segments }
    }

    /// Translates key `bounds` into the forest-wide rank window
    /// `lo..=hi` they cover — the one place the `RangeBounds` → rank
    /// conversion lives, shared by [`Forest::range`] and
    /// [`Forest::par_range`] so the two cannot drift.
    fn bounds_to_ranks(&self, bounds: impl std::ops::RangeBounds<K>) -> (u64, u64) {
        use std::ops::Bound;
        let lo = match bounds.start_bound() {
            Bound::Unbounded => 1,
            Bound::Included(&a) => self.lower_bound_rank(a),
            Bound::Excluded(&a) => self.upper_bound_rank(a),
        };
        let hi = match bounds.end_bound() {
            Bound::Unbounded => self.len(),
            Bound::Included(&b) => self.upper_bound_rank(b) - 1,
            Bound::Excluded(&b) => self.lower_bound_rank(b) - 1,
        };
        (lo, hi)
    }

    /// The stored keys within `bounds`, ascending —
    /// `BTreeSet::range` over the whole forest, stitching per-shard
    /// range segments across fences.
    pub fn range(&self, bounds: impl std::ops::RangeBounds<K>) -> ForestRange<'_, K> {
        let (lo, hi) = self.bounds_to_ranks(bounds);
        self.range_by_rank(lo, hi)
    }

    /// Ascending iterator over all stored keys.
    #[must_use]
    pub fn iter(&self) -> ForestRange<'_, K> {
        self.range_by_rank(1, self.len())
    }

    /// A [`ForestCursor`] positioned before the first key.
    #[must_use]
    pub fn cursor(&self) -> ForestCursor<'_, K> {
        ForestCursor {
            forest: self,
            rank: 0,
            shard: 0,
            local: 0,
        }
    }

    /// Sums the forest-wide rank of every found probe (wrapping) — see
    /// [`rank_checksum`]. Equal to the unsharded tree's value for any
    /// shard count, which is exactly what the parity tests assert.
    #[must_use]
    pub fn rank_checksum(&self, probes: &[K]) -> u64 {
        let mut acc = 0u64;
        for &k in probes {
            if let Some(hit) = self.locate(k) {
                acc = acc.wrapping_add(hit.rank);
            }
        }
        acc
    }

    /// Validates that `keys` is ascending, then splits it at the shard
    /// fences: `(dense shard, probe index range)` pairs covering every
    /// probe some shard could contain. Probes sorting below every fence
    /// are absent from the result.
    fn shard_cuts(&self, keys: &[K]) -> Result<Vec<(usize, std::ops::Range<usize>)>> {
        if let Some(i) = keys.windows(2).position(|w| w[0] > w[1]) {
            return Err(Error::UnsortedBatch { index: i });
        }
        let cuts = self.router.split_sorted(keys);
        let mut jobs = Vec::new();
        for i in 0..self.trees.len() {
            if cuts[i] < cuts[i + 1] {
                jobs.push((i, cuts[i]..cuts[i + 1]));
            }
        }
        Ok(jobs)
    }

    /// Validates that `keys` is ascending, then splits it at the shard
    /// fences: the `(dense shard, sub-batch)` pairs ready for per-shard
    /// dispatch. Probes sorting below every fence are absent from the
    /// result (no shard can contain them).
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn shard_batches<'k>(&self, keys: &'k [K]) -> Result<Vec<(usize, &'k [K])>> {
        Ok(self
            .shard_cuts(keys)?
            .into_iter()
            .map(|(shard, range)| (shard, &keys[range]))
            .collect())
    }

    /// Searches an ascending probe batch by splitting it at the shard
    /// fences and dispatching each sub-batch to its shard's
    /// shared-prefix batch search. `out` is cleared and filled with one
    /// entry per probe: the `(dense shard, in-shard layout position)`
    /// of a hit, `None` for a miss.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn search_sorted_batch(
        &self,
        keys: &[K],
        out: &mut Vec<Option<(usize, u64)>>,
    ) -> Result<()> {
        let jobs = self.shard_cuts(keys)?;
        out.clear();
        out.resize(keys.len(), None);
        let mut local = Vec::new();
        for (shard, range) in jobs {
            self.trees[shard]
                .search_sorted_batch(&keys[range.clone()], &mut local)
                .expect("sub-batches of an ascending batch are ascending");
            for (slot, &p) in out[range].iter_mut().zip(local.iter()) {
                *slot = p.map(|p| (shard, p));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Concurrent read path
// ---------------------------------------------------------------------------

/// One unit of parallel batch work: a shard, its probe sub-batch, and
/// the output window those probes answer into.
type BatchJob<'a, K> = (usize, &'a [K], &'a mut [Option<(usize, u64)>]);

/// One unit of parallel range work: a `(shard, local lo, local hi)`
/// rank window and the buffer it fills.
type ScanJob<'a, K> = ((usize, u64, u64), &'a mut Vec<K>);

/// One unit of interleaved batch work: a shard, the probe indices
/// routed to it, and the per-shard result buffer its kernel fills.
type InterleaveJob<'a> = (usize, &'a Vec<u32>, &'a mut Vec<Option<u64>>);

impl<K: Ord + Copy + Send + Sync> Forest<K> {
    /// [`Forest::search_sorted_batch`] with the per-shard sub-batches
    /// fanned out over a scoped thread pool of (at most) `threads`
    /// workers. Lock-free: shards are immutable, workers share
    /// `&Forest` and write disjoint regions of `out`.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] on a descending adjacent probe pair.
    pub fn par_search_batch(
        &self,
        keys: &[K],
        threads: usize,
        out: &mut Vec<Option<(usize, u64)>>,
    ) -> Result<()> {
        let cuts = self.shard_cuts(keys)?;
        out.clear();
        out.resize(keys.len(), None);
        // Carve `out` into per-shard windows matching the probe split.
        let mut jobs: Vec<BatchJob<'_, K>> = Vec::new();
        let mut tail: &mut [Option<(usize, u64)>] = out.as_mut_slice();
        let mut consumed = 0usize;
        for (shard, range) in cuts {
            let (_skip, rest) = tail.split_at_mut(range.start - consumed);
            let (seg, rest) = rest.split_at_mut(range.len());
            tail = rest;
            consumed = range.end;
            jobs.push((shard, &keys[range], seg));
        }
        let workers = threads.clamp(1, jobs.len().max(1));
        // Round-robin shard jobs over the workers; probe counts are
        // near-even across shards for the workloads that matter, so
        // static assignment stays balanced without a shared queue.
        let mut buckets: Vec<Vec<BatchJob<'_, K>>> = (0..workers).map(|_| Vec::new()).collect();
        for (j, job) in jobs.into_iter().enumerate() {
            buckets[j % workers].push(job);
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for (shard, sub, seg) in bucket {
                        self.trees[shard]
                            .search_sorted_batch(sub, &mut local)
                            .expect("sub-batches of an ascending batch are ascending");
                        for (j, &p) in local.iter().enumerate() {
                            seg[j] = p.map(|p| (shard, p));
                        }
                    }
                });
            }
        });
        Ok(())
    }

    /// Collects the keys within `bounds` by scanning the overlapped
    /// shards concurrently on a scoped thread pool of (at most)
    /// `threads` workers, then concatenating in shard order — the
    /// parallel twin of [`Forest::range`].
    #[must_use]
    pub fn par_range(&self, bounds: impl std::ops::RangeBounds<K>, threads: usize) -> Vec<K> {
        let (lo, hi) = self.bounds_to_ranks(bounds);
        let windows = self.rank_windows(lo, hi);
        let mut results: Vec<Vec<K>> = windows.iter().map(|_| Vec::new()).collect();
        let workers = threads.clamp(1, windows.len().max(1));
        let mut buckets: Vec<Vec<ScanJob<'_, K>>> = (0..workers).map(|_| Vec::new()).collect();
        for (j, (window, slot)) in windows.into_iter().zip(results.iter_mut()).enumerate() {
            buckets[j % workers].push((window, slot));
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for ((shard, llo, lhi), slot) in bucket {
                        slot.extend(Range::from_ranks(self.trees[shard].as_ref(), llo, lhi));
                    }
                });
            }
        });
        let mut keys = Vec::with_capacity(results.iter().map(Vec::len).sum());
        for r in results {
            keys.extend(r);
        }
        keys
    }

    /// Searches an **arbitrary-order** probe batch on the shards'
    /// interleaved descent kernels: probes are routed to their shards,
    /// each shard's sub-batch runs with up to `width` lookups in flight
    /// ([`crate::kernel`]), and shards are fanned out over a scoped
    /// thread pool of (at most) `threads` workers. Unlike
    /// [`Forest::par_search_batch`] the input need not be sorted; `out`
    /// is cleared and filled with one `(dense shard, in-shard layout
    /// position)` entry per probe, in probe order — bit-identical to
    /// routing and searching each probe individually.
    pub fn par_search_batch_interleaved(
        &self,
        keys: &[K],
        width: usize,
        threads: usize,
        out: &mut Vec<Option<(usize, u64)>>,
    ) {
        // Group probe indices by the shard that can contain them.
        let mut indices: Vec<Vec<u32>> = self.trees.iter().map(|_| Vec::new()).collect();
        for (i, &k) in keys.iter().enumerate() {
            if let Some(shard) = self.router.route(k) {
                indices[shard].push(i as u32);
            }
        }
        out.clear();
        out.resize(keys.len(), None);
        let mut results: Vec<Vec<Option<u64>>> = self.trees.iter().map(|_| Vec::new()).collect();
        let jobs: Vec<InterleaveJob<'_>> = indices
            .iter()
            .zip(results.iter_mut())
            .enumerate()
            .filter(|(_, (idx, _))| !idx.is_empty())
            .map(|(shard, (idx, res))| (shard, idx, res))
            .collect();
        let workers = threads.clamp(1, jobs.len().max(1));
        let mut buckets: Vec<Vec<InterleaveJob<'_>>> = (0..workers).map(|_| Vec::new()).collect();
        for (j, job) in jobs.into_iter().enumerate() {
            buckets[j % workers].push(job);
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    let mut probes: Vec<K> = Vec::new();
                    for (shard, idx, res) in bucket {
                        probes.clear();
                        probes.extend(idx.iter().map(|&i| keys[i as usize]));
                        self.trees[shard].search_batch_interleaved(&probes, width, res);
                    }
                });
            }
        });
        for (shard, (idx, res)) in indices.iter().zip(results.iter()).enumerate() {
            for (&i, &p) in idx.iter().zip(res.iter()) {
                out[i as usize] = p.map(|p| (shard, p));
            }
        }
    }

    /// Single-threaded shard-affine variant of
    /// [`Forest::par_search_batch_interleaved`]: probes (any order) are
    /// routed to their shards and each shard's sub-batch descends on
    /// that shard's interleaved kernel with up to `width` lookups in
    /// flight — all on the **calling** thread. This is the serving
    /// entry point for a thread-per-core worker that owns a subset of
    /// shards: the worker batches the point lookups it owns and keeps
    /// every descent (and the cache lines it touches) on its own core.
    /// `out` is cleared and filled with one `(dense shard, in-shard
    /// layout position)` entry per probe, in probe order —
    /// bit-identical to routing and searching each probe individually.
    pub fn search_batch_interleaved(
        &self,
        keys: &[K],
        width: usize,
        out: &mut Vec<Option<(usize, u64)>>,
    ) {
        let mut indices: Vec<Vec<u32>> = self.trees.iter().map(|_| Vec::new()).collect();
        for (i, &k) in keys.iter().enumerate() {
            if let Some(shard) = self.router.route(k) {
                indices[shard].push(i as u32);
            }
        }
        out.clear();
        out.resize(keys.len(), None);
        let mut probes: Vec<K> = Vec::new();
        let mut res: Vec<Option<u64>> = Vec::new();
        for (shard, idx) in indices.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            probes.clear();
            probes.extend(idx.iter().map(|&i| keys[i as usize]));
            self.trees[shard].search_batch_interleaved(&probes, width, &mut res);
            for (&i, &p) in idx.iter().zip(res.iter()) {
                out[i as usize] = p.map(|p| (shard, p));
            }
        }
    }

    /// Point-lookup throughput kernel: splits `probes` into `threads`
    /// contiguous chunks, each worker routing and searching its chunk,
    /// and returns the wrapping sum of found forest-wide ranks (the
    /// [`Forest::rank_checksum`] of the probe set, computed in
    /// parallel).
    #[must_use]
    pub fn par_rank_checksum(&self, probes: &[K], threads: usize) -> u64 {
        let workers = threads.max(1).min(probes.len().max(1));
        let chunk = probes.len().div_ceil(workers.max(1)).max(1);
        let acc = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for sub in probes.chunks(chunk) {
                let acc = &acc;
                scope.spawn(move || {
                    let local = self.rank_checksum(sub);
                    acc.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        acc.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

impl<K: Ord + Copy + FixedKey> Forest<K> {
    /// Saves the forest into `dir`: one zero-copy `.cobt` tree file per
    /// non-empty shard ([`shard_file_name`]) plus the
    /// [`MANIFEST_FILE`] manifest recording every partition slot's key
    /// count and fence bounds. [`Forest::open`] serves the directory
    /// back with every shard memory-mapped.
    ///
    /// # Errors
    /// [`Error::Io`] on filesystem failures, plus the tree/manifest
    /// encoding errors.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<()> {
        self.save_with(dir, format::DEFAULT_BLOCK_BYTES)
    }

    /// [`Forest::save`] with an explicit per-shard block alignment.
    ///
    /// # Errors
    /// As for [`Forest::save`].
    pub fn save_with(&self, dir: impl AsRef<Path>, block_bytes: u64) -> Result<()> {
        self.save_with_profiles(dir, block_bytes, &[])
    }

    /// [`Forest::save_with`], additionally recording each dense shard's
    /// built-for traffic profile as a `.cobw` sidecar next to its
    /// `.cobt` file (shards whose entry is `None` — or beyond
    /// `profiles.len()` — get no sidecar, and any stale one is
    /// removed). Shard files are written first and the manifest last,
    /// so a torn save never yields a manifest pointing at missing
    /// shards.
    ///
    /// # Errors
    /// As for [`Forest::save`].
    pub fn save_with_profiles(
        &self,
        dir: impl AsRef<Path>,
        block_bytes: u64,
        profiles: &[Option<Arc<ObservedProfile>>],
    ) -> Result<()> {
        self.save_with_profiles_io(dir, block_bytes, profiles, &RealIo)
    }

    /// [`Forest::save_with_profiles`] through an explicit storage seam
    /// — every shard file and the manifest are written atomically via
    /// `io` (temp → fsync → rename → dir fsync), and fault schedules
    /// ([`cobtree_core::io::FaultIo`]) can fail any of those steps.
    ///
    /// # Errors
    /// As for [`Forest::save`].
    pub fn save_with_profiles_io(
        &self,
        dir: impl AsRef<Path>,
        block_bytes: u64,
        profiles: &[Option<Arc<ObservedProfile>>],
        io: &dyn StorageIo,
    ) -> Result<()> {
        let dir = dir.as_ref();
        io.create_dir_all(dir)?;
        // Empty rows for every slot; occupied slots are overwritten below.
        let mut entries: Vec<ShardManifest<K>> = self
            .counts_by_slot
            .iter()
            .map(|_| ShardManifest {
                key_count: 0,
                bounds: None,
            })
            .collect();
        for (dense, tree) in self.trees.iter().enumerate() {
            let slot = self.slot_of[dense];
            entries[slot] = ShardManifest {
                key_count: tree.len(),
                bounds: Some((
                    tree.select(1).expect("non-empty shard"),
                    tree.select(tree.len()).expect("non-empty shard"),
                )),
            };
            let mut opts = SaveOptions::new().block_bytes(block_bytes);
            if let Some(profile) = profiles.get(dense).and_then(Option::as_ref) {
                opts = opts.weight_profile(Arc::clone(profile));
            }
            tree.write_file_io(dir.join(shard_file_name(slot)), &opts, io)?;
        }
        let manifest = format::encode_manifest(&entries)?;
        io.write_atomic(&dir.join(MANIFEST_FILE), &manifest)
    }

    /// Opens a saved forest directory: parses and validates the
    /// manifest, memory-maps every shard file ([`Storage::Mapped`]
    /// trees), and cross-checks each shard against its manifest row
    /// (key count and fence bounds). A shard whose checksummed file
    /// parses clean but disagrees with its manifest row is **trusted
    /// from the file and quarantined** — its key range answers
    /// [`Error::ShardUnavailable`] until the next publish heals it —
    /// while every other shard serves normally.
    ///
    /// # Errors
    /// [`Error::Io`] on filesystem failures and every manifest or
    /// tree-file parse error (an unreadable or corrupt shard *file* is
    /// still a hard error: with no replica there is nothing to serve).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_io(dir, &RealIo)
    }

    /// [`Forest::open`] through an explicit storage seam: the manifest
    /// read goes through `io`, and when `io` does not support `mmap`
    /// (fault schedules), shard files are loaded through `io.read`
    /// into owned memory so read faults (short reads, bit flips) hit
    /// the open path deterministically.
    ///
    /// # Errors
    /// As for [`Forest::open`].
    pub fn open_with_io(dir: impl AsRef<Path>, io: &dyn StorageIo) -> Result<Self> {
        let dir = dir.as_ref();
        let manifest = io.read(&dir.join(MANIFEST_FILE))?;
        let entries: Vec<ShardManifest<K>> = format::parse_manifest(&manifest)?;
        let mut counts_by_slot: Vec<u64> = entries.iter().map(|e| e.key_count).collect();
        let mut trees = Vec::new();
        let mut slot_of = Vec::new();
        let mut paths = Vec::new();
        let mut quarantined = Vec::new();
        for (slot, entry) in entries.iter().enumerate() {
            let Some((first, last)) = entry.bounds else {
                continue;
            };
            let path = dir.join(shard_file_name(slot));
            let tree: SearchTree<K> = SearchTree::open_with_io(&path, io)?;
            if tree.len() != entry.key_count
                || tree.select(1) != Some(first)
                || tree.select(tree.len()) != Some(last)
            {
                // The shard file is checksummed end to end and parsed
                // clean; the manifest row is the liar. Trust the file,
                // quarantine the shard (its routing metadata is
                // suspect), and keep serving everything else.
                counts_by_slot[slot] = tree.len();
                quarantined.push(trees.len());
            }
            paths.push(Some(path));
            trees.push(tree);
            slot_of.push(slot);
        }
        let mut forest = Self::assemble(
            Storage::Mapped,
            entries.len(),
            counts_by_slot,
            trees,
            slot_of,
        )?;
        forest.set_shard_paths(paths);
        for dense in quarantined {
            forest.quarantine(dense);
        }
        Ok(forest)
    }
}

impl<K> std::fmt::Debug for Forest<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Forest")
            .field("layout", &self.layout_label)
            .field("storage", &self.storage)
            .field("shards", &self.slots)
            .field("active", &self.trees.len())
            .field("len", &self.prefix.last())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Stitched iteration
// ---------------------------------------------------------------------------

/// Double-ended iterator over a forest-wide rank window: one per-shard
/// [`Range`] segment per overlapped shard, consumed front to back (or
/// back to front). Built by [`Forest::range`] /
/// [`Forest::range_by_rank`].
pub struct ForestRange<'a, K: Copy + Ord> {
    segments: std::collections::VecDeque<Range<'a, K>>,
}

impl<K: Copy + Ord> Iterator for ForestRange<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        loop {
            let front = self.segments.front_mut()?;
            match front.next() {
                Some(k) => return Some(k),
                None => {
                    self.segments.pop_front();
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.segments.iter().map(ExactSizeIterator::len).sum();
        (n, Some(n))
    }
}

impl<K: Copy + Ord> DoubleEndedIterator for ForestRange<'_, K> {
    fn next_back(&mut self) -> Option<K> {
        loop {
            let back = self.segments.back_mut()?;
            match back.next_back() {
                Some(k) => return Some(k),
                None => {
                    self.segments.pop_back();
                }
            }
        }
    }
}

impl<K: Copy + Ord> ExactSizeIterator for ForestRange<'_, K> {}

impl<K: Copy + Ord> std::fmt::Debug for ForestRange<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForestRange")
            .field("segments", &self.segments.len())
            .field("remaining", &self.len())
            .finish()
    }
}

/// A bidirectional cursor over the whole forest, stitching across shard
/// fences: it tracks `(shard, local rank)` alongside the forest-wide
/// rank, so stepping is O(1) shard arithmetic plus one in-shard key
/// read — no per-step router binary search. Mirrors
/// [`Cursor`](crate::Cursor)'s seek/next/prev surface.
pub struct ForestCursor<'a, K: Copy + Ord> {
    forest: &'a Forest<K>,
    /// Forest-wide rank; `0` = before-first, `len + 1` = after-last.
    rank: u64,
    /// Dense shard of the current entry (valid while `1 <= rank <= len`).
    shard: usize,
    /// In-shard rank of the current entry (same validity).
    local: u64,
}

impl<K: Copy + Ord> ForestCursor<'_, K> {
    fn sync_to_rank(&mut self) {
        if let Some((shard, local)) = self.forest.rank_to_shard(self.rank) {
            self.shard = shard;
            self.local = local;
        }
    }

    /// Moves to the first stored key `>= key` (the forest-wide lower
    /// bound) and returns it; lands after-last (returning `None`) when
    /// every key is smaller.
    pub fn seek(&mut self, key: K) -> Option<K> {
        self.rank = self.forest.lower_bound_rank(key).min(self.forest.len() + 1);
        self.sync_to_rank();
        self.key()
    }

    /// Moves onto the first entry and returns its key.
    pub fn seek_first(&mut self) -> Option<K> {
        self.rank = 1;
        self.sync_to_rank();
        self.key()
    }

    /// Moves onto the last entry and returns its key.
    pub fn seek_last(&mut self) -> Option<K> {
        self.rank = self.forest.len();
        self.sync_to_rank();
        self.key()
    }

    /// Key under the cursor, `None` on a sentinel.
    #[must_use]
    pub fn key(&self) -> Option<K> {
        if self.rank < 1 || self.rank > self.forest.len() {
            return None;
        }
        self.forest.trees[self.shard].select(self.local)
    }

    /// Forest-wide 1-based rank of the current entry, `None` on a
    /// sentinel.
    #[must_use]
    pub fn rank(&self) -> Option<u64> {
        (self.rank >= 1 && self.rank <= self.forest.len()).then_some(self.rank)
    }

    /// Dense shard index of the current entry, `None` on a sentinel.
    #[must_use]
    pub fn shard(&self) -> Option<usize> {
        self.rank().map(|_| self.shard)
    }

    /// Steps back one entry and returns the new current key; `None`
    /// (and the before-first state) when already at the front.
    pub fn prev(&mut self) -> Option<K> {
        if self.rank == 0 {
            return None;
        }
        // Stepping down from the after-last sentinel re-derives the
        // (shard, local) pair — the cached pair is stale there.
        let was_after_last = self.rank > self.forest.len();
        self.rank -= 1;
        if self.rank == 0 {
            return None;
        }
        if was_after_last {
            self.sync_to_rank();
            return self.key();
        }
        if self.local > 1 {
            self.local -= 1;
        } else {
            self.shard -= 1;
            self.local = self.forest.trees[self.shard].len();
        }
        self.key()
    }
}

impl<K: Copy + Ord> Iterator for ForestCursor<'_, K> {
    type Item = K;

    /// Steps forward one entry and returns the new current key; `None`
    /// (and the after-last state) once the keys are exhausted.
    fn next(&mut self) -> Option<K> {
        let total = self.forest.len();
        if self.rank > total {
            return None;
        }
        self.rank += 1;
        if self.rank > total {
            return None;
        }
        if self.rank == 1 {
            self.shard = 0;
            self.local = 1;
        } else if self.local < self.forest.trees[self.shard].len() {
            self.local += 1;
        } else {
            self.shard += 1;
            self.local = 1;
        }
        self.key()
    }
}

impl<K: Copy + Ord> std::fmt::Debug for ForestCursor<'_, K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForestCursor")
            .field("rank", &self.rank)
            .field("shard", &self.shard)
            .field("local", &self.local)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|k| k * 3 + (k % 2)).collect()
    }

    fn forest(n: u64, shards: usize) -> Forest<u64> {
        Forest::builder()
            .shards(shards)
            .storage(Storage::Implicit)
            .keys(keys(n))
            .build()
            .unwrap()
    }

    fn oracle(n: u64) -> SearchTree<u64> {
        SearchTree::builder()
            .storage(Storage::Implicit)
            .keys(keys(n))
            .build()
            .unwrap()
    }

    #[test]
    fn router_routes_to_the_fence_owner() {
        let f = forest(100, 4);
        let fences = f.router().fences().to_vec();
        assert_eq!(fences.len(), 4);
        assert_eq!(f.router().route(fences[0] - 1), None);
        for (i, &fence) in fences.iter().enumerate() {
            assert_eq!(f.router().route(fence), Some(i), "fence itself");
            assert_eq!(f.router().route(fence + 1), Some(i), "just above fence");
        }
        assert_eq!(f.router().route(u64::MAX), Some(3));
    }

    #[test]
    fn point_rank_select_match_the_unsharded_oracle() {
        let n = 500;
        let f = forest(n, 7);
        let single = oracle(n);
        assert_eq!(f.len(), single.len());
        for probe in 0..=(n * 3 + 10) {
            assert_eq!(
                f.contains(probe),
                single.contains(probe),
                "contains {probe}"
            );
            assert_eq!(f.rank(probe), single.rank(probe), "rank {probe}");
            assert_eq!(
                f.lower_bound(probe),
                single.lower_bound(probe),
                "lower_bound {probe}"
            );
            assert_eq!(
                f.upper_bound(probe),
                single.upper_bound(probe),
                "upper_bound {probe}"
            );
            assert_eq!(
                f.predecessor(probe),
                single.predecessor(probe),
                "predecessor {probe}"
            );
        }
        for r in 0..=(n + 2) {
            assert_eq!(f.select(r), single.select(r), "select {r}");
        }
        let probes: Vec<u64> = (0..2000).collect();
        assert_eq!(f.rank_checksum(&probes), rank_checksum(&single, &probes));
        assert_ne!(f.rank_checksum(&probes), 0);
    }

    #[test]
    fn locate_reports_shard_position_and_rank() {
        let f = forest(120, 4);
        let all: Vec<u64> = f.iter().collect();
        for (i, &k) in all.iter().enumerate() {
            let hit = f.locate(k).expect("stored key");
            assert_eq!(hit.rank, i as u64 + 1);
            let tree = f.shard(hit.shard).unwrap();
            assert_eq!(tree.search(k), Some(hit.position));
            assert_eq!(f.select(hit.rank), Some(k));
        }
        assert_eq!(f.locate(0), None);
        assert_eq!(f.locate(u64::MAX), None);
    }

    #[test]
    fn ranges_stitch_across_fences() {
        let n = 300;
        let f = forest(n, 5);
        let single = oracle(n);
        let expect: Vec<u64> = single.iter().collect();
        let got: Vec<u64> = f.iter().collect();
        assert_eq!(got, expect);
        // Every window, forwards and backwards, against the oracle.
        for lo in [0u64, 5, 95, 200, 600, 905] {
            for hi in [0u64, 10, 101, 300, 700, 910] {
                let got: Vec<u64> = f.range(lo..=hi).collect();
                let want: Vec<u64> = single.range(lo..=hi).collect();
                assert_eq!(got, want, "{lo}..={hi}");
                let rev: Vec<u64> = f.range(lo..hi).rev().collect();
                let mut want: Vec<u64> = single.range(lo..hi).collect();
                want.reverse();
                assert_eq!(rev, want, "rev {lo}..{hi}");
            }
        }
        // Double-ended interleaving drains exactly once.
        let mut r = f.range(..);
        let mut front = Vec::new();
        let mut back = Vec::new();
        while let Some(k) = r.next() {
            front.push(k);
            if let Some(k) = r.next_back() {
                back.push(k);
            }
        }
        back.reverse();
        front.extend(back);
        assert_eq!(front, expect);
    }

    #[test]
    fn cursor_stitches_and_matches_the_oracle_walk() {
        let n = 130;
        let f = forest(n, 6);
        let expect: Vec<u64> = oracle(n).iter().collect();
        let forward: Vec<u64> = f.cursor().collect();
        assert_eq!(forward, expect);

        let mut cur = f.cursor();
        assert_eq!(cur.seek_last(), expect.last().copied());
        let mut backward = vec![cur.key().unwrap()];
        while let Some(k) = cur.prev() {
            backward.push(k);
        }
        backward.reverse();
        assert_eq!(backward, expect);

        // Seek lands on lower bounds, across fences.
        let mut cur = f.cursor();
        for &probe in &[0u64, 4, 100, 391, 9999] {
            let lb = expect.iter().position(|&k| k >= probe);
            assert_eq!(cur.seek(probe), lb.map(|i| expect[i]), "seek {probe}");
            assert_eq!(cur.rank(), lb.map(|i| i as u64 + 1));
        }
        // Walking off either end parks on a sentinel, and steps back on.
        let mut cur = f.cursor();
        assert_eq!(cur.prev(), None);
        assert_eq!(cur.next(), Some(expect[0]));
        cur.seek_last();
        assert_eq!(cur.next(), None);
        assert_eq!(cur.rank(), None);
        assert_eq!(cur.prev(), expect.last().copied());
    }

    #[test]
    fn sorted_batch_splits_and_matches_point_searches() {
        let f = forest(400, 4);
        let mut batch: Vec<u64> = (0..600u64).map(|i| (i * 7) % 1300).collect();
        batch.sort_unstable();
        let mut out = Vec::new();
        f.search_sorted_batch(&batch, &mut out).unwrap();
        assert_eq!(out.len(), batch.len());
        for (i, &probe) in batch.iter().enumerate() {
            match f.locate(probe) {
                Some(hit) => assert_eq!(out[i], Some((hit.shard, hit.position)), "probe {probe}"),
                None => assert_eq!(out[i], None, "probe {probe}"),
            }
        }
        // Parallel version agrees for every thread count.
        for threads in [1, 2, 4, 16] {
            let mut pout = Vec::new();
            f.par_search_batch(&batch, threads, &mut pout).unwrap();
            assert_eq!(pout, out, "threads={threads}");
        }
        // Unsorted batches are typed errors.
        assert_eq!(
            f.search_sorted_batch(&[9u64, 3], &mut out).unwrap_err(),
            Error::UnsortedBatch { index: 0 }
        );
        assert_eq!(
            f.par_search_batch(&[9u64, 3], 2, &mut out).unwrap_err(),
            Error::UnsortedBatch { index: 0 }
        );
    }

    #[test]
    fn serial_interleaved_batch_matches_point_lookups() {
        let f = forest(400, 5);
        // Unsorted probes: hits, misses, probes below the first fence
        // (unrouted → None), and duplicates.
        let probes: Vec<u64> = (0..600u64).map(|i| (i * 7_919) % 1_500).collect();
        let expect: Vec<Option<(usize, u64)>> = probes
            .iter()
            .map(|&p| {
                f.route(p)
                    .and_then(|(shard, tree)| tree.search(p).map(|pos| (shard, pos)))
            })
            .collect();
        assert!(expect.iter().any(Option::is_none), "want unrouted probes");
        assert!(expect.iter().any(Option::is_some), "want hits");
        // Stale contents in `out` must be cleared, at every width
        // including 1 (degenerates to the point kernel) and widths
        // larger than any shard's sub-batch.
        let mut out = vec![Some((99usize, 99u64)); 3];
        for width in [1usize, 2, 8, 16, 1024] {
            f.search_batch_interleaved(&probes, width, &mut out);
            assert_eq!(out, expect, "width {width}");
        }
        // Empty batch clears the output and returns nothing.
        f.search_batch_interleaved(&[], 8, &mut out);
        assert!(out.is_empty());
        // Single-shard forest: every routed probe lands in shard 0.
        let single = forest(64, 1);
        let sub: Vec<u64> = probes.iter().copied().take(100).collect();
        single.search_batch_interleaved(&sub, 8, &mut out);
        for (&p, &r) in sub.iter().zip(out.iter()) {
            let want = single
                .route(p)
                .and_then(|(shard, tree)| tree.search(p).map(|pos| (shard, pos)));
            assert_eq!(r, want, "single-shard probe {p}");
        }
    }

    #[test]
    fn par_range_and_par_checksum_agree_with_serial() {
        let f = forest(350, 5);
        let probes: Vec<u64> = (0..1500).collect();
        let serial = f.rank_checksum(&probes);
        for threads in [1, 2, 4, 9] {
            assert_eq!(f.par_rank_checksum(&probes, threads), serial);
            let serial_range: Vec<u64> = f.range(100u64..=900).collect();
            assert_eq!(f.par_range(100u64..=900, threads), serial_range);
        }
        assert_eq!(f.par_range(.., 3), f.iter().collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_single_key_shards_are_served() {
        // 3 keys over 8 slots: five slots stay empty.
        let f = Forest::builder()
            .shards(8)
            .keys([10u64, 20, 30])
            .build()
            .unwrap();
        assert_eq!(f.shard_count(), 8);
        assert_eq!(f.active_shards(), 3);
        assert_eq!(f.len(), 3);
        for (r, k) in [(1, 10u64), (2, 20), (3, 30)] {
            assert!(f.contains(k));
            assert_eq!(f.select(r), Some(k));
            assert_eq!(f.rank(k), r - 1);
            assert_eq!(f.locate(k).unwrap().rank, r);
        }
        assert!(!f.contains(15));
        assert_eq!(f.iter().collect::<Vec<u64>>(), vec![10, 20, 30]);
        let mut out = Vec::new();
        f.par_search_batch(&[5u64, 10, 15, 20, 25, 30, 35], 4, &mut out)
            .unwrap();
        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 3);
    }

    #[test]
    fn builder_error_cases() {
        assert!(matches!(
            Forest::<u64>::builder().shards(0).keys([1]).build(),
            Err(Error::Malformed { .. })
        ));
        assert_eq!(
            Forest::<u64>::builder().build().unwrap_err(),
            Error::EmptyKeys
        );
        assert_eq!(
            Forest::builder().keys([3u64, 1]).build().unwrap_err(),
            Error::UnsortedKeys { index: 0 }
        );
        assert_eq!(
            Forest::builder()
                .storage(Storage::Mapped)
                .keys([1u64, 2])
                .build()
                .unwrap_err(),
            Error::MappedStorageRequiresFile
        );
    }

    #[test]
    fn save_open_round_trips_through_mapped_shards() {
        let dir = std::env::temp_dir().join(format!("cobtree-forest-{}", std::process::id()));
        let f = forest(250, 4);
        f.save(&dir).unwrap();
        let served: Forest<u64> = Forest::open(&dir).unwrap();
        assert_eq!(served.storage(), Storage::Mapped);
        assert_eq!(served.len(), f.len());
        assert_eq!(served.shard_count(), 4);
        assert!(served.shards().all(|t| t.storage() == Storage::Mapped));
        let probes: Vec<u64> = (0..1000).collect();
        assert_eq!(served.rank_checksum(&probes), f.rank_checksum(&probes));
        assert_eq!(
            served.iter().collect::<Vec<u64>>(),
            f.iter().collect::<Vec<u64>>()
        );
        // A corrupted manifest is a typed error.
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&manifest_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        std::fs::write(&manifest_path, &bytes).unwrap();
        assert!(matches!(
            Forest::<u64>::open(&dir).unwrap_err(),
            Error::ChecksumMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_a_swapped_shard_file() {
        let dir = std::env::temp_dir().join(format!("cobtree-forest-swap-{}", std::process::id()));
        let f = forest(200, 2);
        f.save(&dir).unwrap();
        // Overwrite shard 0 with shard 1's file: counts/bounds disagree
        // with the manifest row.
        std::fs::copy(dir.join(shard_file_name(1)), dir.join(shard_file_name(0))).unwrap();
        assert!(matches!(
            Forest::<u64>::open(&dir).unwrap_err(),
            Error::Malformed { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
