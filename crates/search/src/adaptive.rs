//! Hot-swappable serving forest — the publication side of the adaptive
//! layout loop.
//!
//! The paper's layouts are chosen *ahead of time* for a uniform search
//! distribution; a serving engine can do better by re-optimizing each
//! shard for the traffic it actually receives
//! (`cobtree_optimizer::profile` is the planner). What that loop
//! needs from the data plane is an engine whose shards can be replaced
//! **while readers are in flight**, without a stop-the-world barrier
//! and without perturbing a single answer. [`AdaptiveForest`] supplies
//! exactly that:
//!
//! * readers take a [`snapshot`](AdaptiveForest::snapshot) — an
//!   `Arc<Forest<K>>` — and run any number of ordered-API queries
//!   against it; a snapshot is immutable, so a swap published after it
//!   was taken is invisible to it (epoch-style consistency, the same
//!   discipline as [`crate::tiered`]'s versioned snapshots);
//! * [`swap_shard`](AdaptiveForest::swap_shard) publishes a forest that
//!   *shares* every unchanged shard with its predecessor
//!   ([`Forest::with_swapped_shard`]), so a swap costs O(shards)
//!   pointer work no matter how many keys the forest holds, and
//!   validates that the replacement serves the identical key set —
//!   layouts may change, answers may not;
//! * each shard remembers the traffic profile its current layout was
//!   **built for** ([`built_for`](AdaptiveForest::built_for)), which is
//!   what the planner diffs fresh observations against
//!   ([`should_reoptimize`](AdaptiveForest::should_reoptimize));
//! * persistence rides the forest's manifest-last discipline:
//!   [`save`](AdaptiveForest::save) writes per-shard `.cobt` files with
//!   `.cobw` weight-profile sidecars and the manifest last, and
//!   [`open`](AdaptiveForest::open) restores both the trees and the
//!   built-for profiles.
//!
//! ```
//! use cobtree_search::{AdaptiveForest, Forest};
//! use cobtree_core::{NamedLayout, ObservedProfile};
//! use std::sync::Arc;
//!
//! let forest = Forest::builder()
//!     .layout(NamedLayout::MinWep)
//!     .shards(2)
//!     .keys((1..=1000u64).map(|k| k * 2))
//!     .build()?;
//! let engine = AdaptiveForest::new(forest);
//!
//! // A reader pins a snapshot; swaps published later cannot touch it.
//! let before = engine.snapshot();
//!
//! // Rebuild shard 0 for skewed traffic and hot-swap it in.
//! let shard = engine.snapshot().shard_arc(0).unwrap();
//! let keys: Vec<u64> = shard.iter().collect();
//! let counts: Vec<u64> = (0..keys.len() as u64).map(|r| 1 + 1000 / (r + 1)).collect();
//! let profile = Arc::new(ObservedProfile::from_access_counts(&counts));
//! let hot = cobtree_optimizer::optimize_for_profile(
//!     &ObservedProfile::with_height(profile.counts(), shard.height()),
//! ).1;
//! let rebuilt = cobtree_search::SearchTree::builder()
//!     .layout(hot)
//!     .keys(keys.iter().copied())
//!     .build()?;
//! engine.swap_shard(0, Arc::new(rebuilt), Some(profile))?;
//!
//! // Old and new snapshots answer identically — only positions moved.
//! let after = engine.snapshot();
//! assert_eq!(engine.swaps(), 1);
//! assert_eq!(before.rank(1000), after.rank(1000));
//! assert_eq!(
//!     before.iter().collect::<Vec<u64>>(),
//!     after.iter().collect::<Vec<u64>>(),
//! );
//! # Ok::<(), cobtree_core::Error>(())
//! ```

use crate::facade::{read_weight_sidecar, SearchTree};
use crate::forest::{shard_file_name, Forest};
use cobtree_core::error::{Error, Result};
use cobtree_core::format::{self, FixedKey};
use cobtree_core::ObservedProfile;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The swappable state: the published forest and, per dense shard, the
/// traffic profile its current layout was optimized for (`None` =
/// built for uniform traffic, e.g. a paper layout).
struct AdaptiveState<K> {
    forest: Arc<Forest<K>>,
    built_for: Vec<Option<Arc<ObservedProfile>>>,
}

/// A [`Forest`] behind an atomically swappable handle: readers pin
/// immutable snapshots, the planner publishes re-optimized shards with
/// [`AdaptiveForest::swap_shard`]. See the [module docs](self).
pub struct AdaptiveForest<K> {
    state: RwLock<AdaptiveState<K>>,
    /// Published shard swaps over this engine's lifetime.
    swaps: AtomicU64,
}

impl<K: Ord + Copy> AdaptiveForest<K> {
    /// Wraps a forest whose layouts were built for uniform traffic
    /// (no built-for profiles).
    #[must_use]
    pub fn new(forest: Forest<K>) -> Self {
        let built_for = (0..forest.active_shards()).map(|_| None).collect();
        Self {
            state: RwLock::new(AdaptiveState {
                forest: Arc::new(forest),
                built_for,
            }),
            swaps: AtomicU64::new(0),
        }
    }

    /// Wraps a forest together with the traffic profile each dense
    /// shard's layout was built for.
    ///
    /// # Errors
    /// [`Error::Malformed`] when `built_for` is not one entry per
    /// active shard.
    pub fn with_profiles(
        forest: Forest<K>,
        built_for: Vec<Option<Arc<ObservedProfile>>>,
    ) -> Result<Self> {
        if built_for.len() != forest.active_shards() {
            return Err(Error::Malformed {
                detail: format!(
                    "{} built-for profiles for {} active shards",
                    built_for.len(),
                    forest.active_shards()
                ),
            });
        }
        Ok(Self {
            state: RwLock::new(AdaptiveState {
                forest: Arc::new(forest),
                built_for,
            }),
            swaps: AtomicU64::new(0),
        })
    }

    /// The currently published forest. The returned handle is
    /// immutable: queries against it are unaffected by swaps published
    /// after it was taken, so a multi-query operation (batch, range,
    /// cursor walk) sees one consistent forest throughout.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Forest<K>> {
        Arc::clone(&self.state.read().expect("adaptive lock poisoned").forest)
    }

    /// The traffic profile dense shard `shard`'s current layout was
    /// built for; `None` for uniform-traffic (paper) layouts or an
    /// out-of-range index.
    #[must_use]
    pub fn built_for(&self, shard: usize) -> Option<Arc<ObservedProfile>> {
        self.state.read().expect("adaptive lock poisoned").built_for[..]
            .get(shard)
            .and_then(Clone::clone)
    }

    /// Number of shard swaps published over this engine's lifetime.
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Total stored keys (swap-invariant: replacements must serve the
    /// same key set).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.snapshot().len()
    }

    /// `false`; forests hold at least one key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `observed` traffic has drifted far enough from what
    /// dense shard `shard`'s layout was built for to justify paying
    /// for re-optimization: total-variation
    /// [`divergence`](ObservedProfile::divergence) at least
    /// `threshold`. A shard with no built-for profile is compared
    /// against the uniform profile its paper layout optimizes.
    #[must_use]
    pub fn should_reoptimize(
        &self,
        shard: usize,
        observed: &ObservedProfile,
        threshold: f64,
    ) -> bool {
        let state = self.state.read().expect("adaptive lock poisoned");
        let Some(slot) = state.built_for.get(shard) else {
            return false;
        };
        let divergence = match slot {
            Some(built) => built.divergence(observed),
            None => {
                let h = observed.height();
                let uniform = ObservedProfile::with_height(&vec![1; (1usize << h) - 1], h);
                uniform.divergence(observed)
            }
        };
        divergence >= threshold
    }

    /// Publishes a re-optimized replacement for dense shard `shard`,
    /// recording the `profile` its new layout was built for. Readers
    /// migrate at their next [`snapshot`](AdaptiveForest::snapshot);
    /// snapshots already taken keep serving the old forest (their
    /// `Arc` keeps it alive). Unchanged shards are shared between the
    /// old and new forest, so the critical section is O(shards).
    ///
    /// # Errors
    /// [`Error::Malformed`] when the replacement does not serve
    /// exactly the old shard's key set (see
    /// [`Forest::with_swapped_shard`]).
    pub fn swap_shard(
        &self,
        shard: usize,
        tree: Arc<SearchTree<K>>,
        profile: Option<Arc<ObservedProfile>>,
    ) -> Result<()> {
        let mut state = self.state.write().expect("adaptive lock poisoned");
        let next = state.forest.with_swapped_shard(shard, tree)?;
        state.forest = Arc::new(next);
        state.built_for[shard] = profile;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl<K: Ord + Copy + FixedKey> AdaptiveForest<K> {
    /// Saves the published forest into `dir` — one `.cobt` per shard,
    /// a `.cobw` weight-profile sidecar for every shard with a
    /// built-for profile (stale sidecars removed), manifest last — so
    /// [`AdaptiveForest::open`] restores trees *and* profiles.
    ///
    /// # Errors
    /// As for [`Forest::save`].
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<()> {
        let (forest, built_for) = {
            let state = self.state.read().expect("adaptive lock poisoned");
            (Arc::clone(&state.forest), state.built_for.clone())
        };
        forest.save_with_profiles(dir, format::DEFAULT_BLOCK_BYTES, &built_for)
    }

    /// Opens a saved forest directory ([`Forest::open`]) and restores
    /// each shard's built-for profile from its `.cobw` sidecar, where
    /// present.
    ///
    /// # Errors
    /// As for [`Forest::open`], plus sidecar parse errors (a missing
    /// sidecar is not an error — the shard is treated as built for
    /// uniform traffic).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let forest: Forest<K> = Forest::open(dir)?;
        let mut built_for = Vec::with_capacity(forest.active_shards());
        for dense in 0..forest.active_shards() {
            let slot = forest.slot_of(dense).expect("dense shard has a slot");
            let profile = read_weight_sidecar(dir.join(shard_file_name(slot)))?;
            built_for.push(profile.map(Arc::new));
        }
        Self::with_profiles(forest, built_for)
    }
}

impl<K: Ord + Copy> std::fmt::Debug for AdaptiveForest<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.read().expect("adaptive lock poisoned");
        f.debug_struct("AdaptiveForest")
            .field("active", &state.forest.active_shards())
            .field(
                "adapted",
                &state.built_for.iter().filter(|p| p.is_some()).count(),
            )
            .field("swaps", &self.swaps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::Storage;
    use cobtree_core::NamedLayout;

    fn keys(n: u64) -> Vec<u64> {
        (1..=n).map(|k| k * 2).collect()
    }

    fn forest(n: u64, shards: usize) -> Forest<u64> {
        Forest::builder()
            .shards(shards)
            .storage(Storage::Implicit)
            .keys(keys(n))
            .build()
            .unwrap()
    }

    /// Rebuilds dense shard `shard` of `f` with a different layout.
    fn rebuilt(f: &Forest<u64>, shard: usize, layout: NamedLayout) -> Arc<SearchTree<u64>> {
        let keys: Vec<u64> = f.shard(shard).unwrap().iter().collect();
        Arc::new(
            SearchTree::builder()
                .layout(layout)
                .keys(keys.iter().copied())
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn swap_is_invisible_to_the_ordered_api() {
        let engine = AdaptiveForest::new(forest(500, 4));
        let before = engine.snapshot();
        let all: Vec<u64> = before.iter().collect();
        let probes: Vec<u64> = (0..1200).collect();
        let checksum = before.rank_checksum(&probes);

        engine
            .swap_shard(1, rebuilt(&before, 1, NamedLayout::InVeb), None)
            .unwrap();
        engine
            .swap_shard(3, rebuilt(&before, 3, NamedLayout::InOrder), None)
            .unwrap();
        assert_eq!(engine.swaps(), 2);

        let after = engine.snapshot();
        // Answers are bit-identical; only layouts moved.
        assert_eq!(after.iter().collect::<Vec<u64>>(), all);
        assert_eq!(after.rank_checksum(&probes), checksum);
        for p in 0..1100u64 {
            assert_eq!(after.contains(p), before.contains(p), "contains {p}");
            assert_eq!(after.rank(p), before.rank(p), "rank {p}");
        }
        for r in 0..=502u64 {
            assert_eq!(after.select(r), before.select(r), "select {r}");
        }
        // The pinned pre-swap snapshot still serves, and unchanged
        // shards are shared, not copied.
        assert_eq!(before.rank_checksum(&probes), checksum);
        for shard in [0usize, 2] {
            assert!(Arc::ptr_eq(
                &before.shard_arc(shard).unwrap(),
                &after.shard_arc(shard).unwrap()
            ));
        }
        for shard in [1usize, 3] {
            assert!(!Arc::ptr_eq(
                &before.shard_arc(shard).unwrap(),
                &after.shard_arc(shard).unwrap()
            ));
        }
    }

    #[test]
    fn swap_rejects_a_different_key_set() {
        let engine = AdaptiveForest::new(forest(100, 2));
        let snap = engine.snapshot();
        // Wrong keys: shard 1's tree in shard 0's slot.
        let err = engine
            .swap_shard(0, snap.shard_arc(1).unwrap(), None)
            .unwrap_err();
        assert!(matches!(err, Error::Malformed { .. }));
        // Out-of-range shard.
        let err = engine
            .swap_shard(9, snap.shard_arc(0).unwrap(), None)
            .unwrap_err();
        assert!(matches!(err, Error::Malformed { .. }));
        assert_eq!(engine.swaps(), 0);
    }

    #[test]
    fn divergence_gate_compares_against_the_built_for_profile() {
        let engine = AdaptiveForest::new(forest(300, 2));
        let h = engine.snapshot().shard(0).unwrap().height();
        let n = (1usize << h) - 1;
        let uniform = ObservedProfile::with_height(&vec![1; n], h);
        let mut hot = vec![0u64; n];
        hot[0] = 1_000;
        let skewed = Arc::new(ObservedProfile::with_height(&hot, h));

        // Uniform traffic over a uniform-built shard: no drift.
        assert!(!engine.should_reoptimize(0, &uniform, 0.15));
        // Heavy skew over a uniform-built shard: drift.
        assert!(engine.should_reoptimize(0, &skewed, 0.15));
        // After adopting the skewed profile, the same traffic no
        // longer justifies another rebuild.
        let snap = engine.snapshot();
        engine
            .swap_shard(
                0,
                snap.shard_arc(0).unwrap().clone(),
                Some(Arc::clone(&skewed)),
            )
            .unwrap();
        assert!(!engine.should_reoptimize(0, &skewed, 0.15));
        assert!(engine.should_reoptimize(0, &uniform, 0.15));
        // Out-of-range shards never trigger.
        assert!(!engine.should_reoptimize(7, &skewed, 0.15));
    }

    #[test]
    fn save_open_round_trips_profiles() {
        let dir = std::env::temp_dir().join(format!("cobtree-adaptive-{}", std::process::id()));
        let engine = AdaptiveForest::new(forest(200, 3));
        let h = engine.snapshot().shard(1).unwrap().height();
        let n = (1usize << h) - 1;
        let mut counts = vec![1u64; n];
        counts[n / 2] = 500;
        let profile = Arc::new(ObservedProfile::with_height(&counts, h));
        let snap = engine.snapshot();
        engine
            .swap_shard(1, snap.shard_arc(1).unwrap(), Some(Arc::clone(&profile)))
            .unwrap();

        engine.save(&dir).unwrap();
        let reopened: AdaptiveForest<u64> = AdaptiveForest::open(&dir).unwrap();
        assert_eq!(reopened.built_for(0), None);
        assert_eq!(reopened.built_for(1).as_deref(), Some(profile.as_ref()));
        assert_eq!(reopened.built_for(2), None);
        let probes: Vec<u64> = (0..500).collect();
        assert_eq!(
            reopened.snapshot().rank_checksum(&probes),
            engine.snapshot().rank_checksum(&probes)
        );

        // Dropping the profile and re-saving removes the stale sidecar.
        let snap = engine.snapshot();
        engine
            .swap_shard(1, snap.shard_arc(1).unwrap(), None)
            .unwrap();
        engine.save(&dir).unwrap();
        let reopened: AdaptiveForest<u64> = AdaptiveForest::open(&dir).unwrap();
        assert_eq!(reopened.built_for(1), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swaps_race_concurrent_readers_without_perturbing_answers() {
        let engine = Arc::new(AdaptiveForest::new(forest(400, 4)));
        let probes: Vec<u64> = (0..900).collect();
        let expect = engine.snapshot().rank_checksum(&probes);
        std::thread::scope(|scope| {
            let swapper = {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    for round in 0..20 {
                        let snap = engine.snapshot();
                        let shard = round % 4;
                        let layout = if round % 2 == 0 {
                            NamedLayout::InVeb
                        } else {
                            NamedLayout::MinWep
                        };
                        engine
                            .swap_shard(shard, rebuilt(&snap, shard, layout), None)
                            .unwrap();
                    }
                })
            };
            for _ in 0..3 {
                let engine = Arc::clone(&engine);
                let probes = &probes;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while engine.swaps() < 20 {
                        let snap = engine.snapshot();
                        assert_eq!(snap.rank_checksum(probes), expect);
                        snap.par_search_batch(probes, 2, &mut out).unwrap();
                        assert_eq!(out.iter().filter(|o| o.is_some()).count(), 400);
                    }
                });
            }
            swapper.join().unwrap();
        });
        assert_eq!(engine.swaps(), 20);
    }
}
