//! Pointer-less ("implicit") laid-out search trees (§IV-E).
//!
//! Only keys are stored, in layout order. Navigation happens on BFS
//! indices (`i → 2i` or `2i+1`); every visited node costs one position
//! computation (e.g. Listing 1 for MINWEP) plus one memory access.
//!
//! [`IndexOnlySearcher`] reproduces the paper's trick for timing the
//! index arithmetic alone: storing keys `1..=|V|` lets the key of node
//! `i` be inferred from its in-order rank "without lookup", so a search
//! executes all transitions and index computations with zero memory
//! accesses.

use cobtree_core::index::PositionIndex;
use cobtree_core::{Layout, Tree};

/// A complete BST stored as a key array in layout order, navigated by
/// index arithmetic.
pub struct ImplicitTree<'a, K> {
    tree: Tree,
    index: &'a dyn PositionIndex,
    keys: Vec<K>,
}

impl<'a, K: Ord + Copy> ImplicitTree<'a, K> {
    /// Builds the key array in the order defined by `index`.
    ///
    /// # Panics
    /// Panics if `keys` is not sorted or has the wrong length.
    #[must_use]
    pub fn build(index: &'a dyn PositionIndex, keys: &[K]) -> Self {
        let tree = Tree::new(index.height());
        assert_eq!(keys.len() as u64, tree.len(), "key count mismatch");
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        let mut arranged = vec![keys[0]; keys.len()];
        for i in tree.nodes() {
            let p = index.position(i, tree.depth(i)) as usize;
            arranged[p] = keys[(tree.in_order_rank(i) - 1) as usize];
        }
        Self {
            tree,
            index,
            keys: arranged,
        }
    }

    /// Builds from a materialized layout (wraps it in an index).
    #[must_use]
    pub fn from_layout(
        layout: &Layout,
        index: &'a dyn PositionIndex,
        keys: &[K],
    ) -> Self {
        assert_eq!(layout.height(), index.height());
        Self::build(index, keys)
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `false`; at least the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Key array in layout order.
    #[must_use]
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Searches for `key`, computing one layout position per transition.
    /// Returns the array position of the match.
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Searches while recording each visited position.
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            visited.push(p);
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Benchmark kernel: sum of found positions.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: impl IntoIterator<Item = K>) -> u64 {
        let mut acc = 0u64;
        for k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }
}

/// Times pure index computation: keys are the in-order ranks `1..=n`, so
/// comparisons need no memory at all (§IV-E footnote 1). Every transition
/// still performs the full position computation, whose result is folded
/// into a checksum the optimizer cannot discard.
pub struct IndexOnlySearcher<'a> {
    tree: Tree,
    index: &'a dyn PositionIndex,
}

impl<'a> IndexOnlySearcher<'a> {
    /// Creates a searcher over the arithmetic layout `index`.
    #[must_use]
    pub fn new(index: &'a dyn PositionIndex) -> Self {
        Self {
            tree: Tree::new(index.height()),
            index,
        }
    }

    /// "Searches" for in-order rank `key ∈ 1..=n`, computing the layout
    /// position of every node on the path; returns the sum of positions.
    #[inline]
    pub fn search(&self, key: u64) -> u64 {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut acc = 0u64;
        for d in 0..h {
            acc = acc.wrapping_add(self.index.position(i, d));
            let k = self.tree.in_order_rank(i);
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
        }
        acc
    }

    /// Checksum over a batch of keys.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: impl IntoIterator<Item = u64>) -> u64 {
        let mut acc = 0u64;
        for k in keys {
            acc = acc.wrapping_add(self.search(k));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;
    use cobtree_core::NamedLayout;

    #[test]
    fn implicit_finds_every_key_under_every_indexer() {
        for layout in NamedLayout::ALL {
            let idx = layout.indexer(8);
            let keys: Vec<u64> = (1..=255).collect();
            let t = ImplicitTree::build(idx.as_ref(), &keys);
            for k in 1..=255u64 {
                let p = t.search(k).unwrap_or_else(|| panic!("{layout} lost {k}"));
                assert_eq!(t.keys()[p as usize], k);
            }
            assert_eq!(t.search(0), None);
            assert_eq!(t.search(256), None);
        }
    }

    #[test]
    fn implicit_and_explicit_agree_on_membership() {
        let layout = NamedLayout::MinWep;
        let h = 9;
        let mat = layout.materialize(h);
        let idx = layout.indexer(h);
        let keys: Vec<u64> = (1..=mat.len()).map(|k| k * 3).collect();
        let et = ExplicitTree::build(&mat, &keys);
        let it = ImplicitTree::build(idx.as_ref(), &keys);
        for probe in 0..=(mat.len() * 3 + 2) {
            assert_eq!(
                et.search(probe).is_some(),
                it.search(probe).is_some(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn index_only_searcher_visits_the_right_path() {
        let layout = NamedLayout::MinWep;
        let h = 7;
        let idx = layout.indexer(h);
        let s = IndexOnlySearcher::new(idx.as_ref());
        let tree = Tree::new(h);
        for key in 1..=tree.len() {
            let expect: u64 = tree
                .search_path(key)
                .iter()
                .map(|&i| idx.position(i, tree.depth(i)))
                .sum();
            assert_eq!(s.search(key), expect, "key {key}");
        }
    }

    #[test]
    fn checksums_deterministic() {
        let idx = NamedLayout::HalfWep.indexer(8);
        let s = IndexOnlySearcher::new(idx.as_ref());
        assert_eq!(
            s.search_batch_checksum(1..=255),
            s.search_batch_checksum(1..=255)
        );
    }
}
