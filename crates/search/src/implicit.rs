//! Pointer-less ("implicit") laid-out search trees (§IV-E).
//!
//! Only keys are stored, in layout order. Navigation happens on BFS
//! indices (`i → 2i` or `2i+1`); every visited node costs one position
//! computation (e.g. Listing 1 for MINWEP) plus one memory access.
//!
//! [`IndexOnlySearcher`] reproduces the paper's trick for timing the
//! index arithmetic alone: storing keys `1..=|V|` lets the key of node
//! `i` be inferred from its in-order rank "without lookup", so a search
//! executes all transitions and index computations with zero memory
//! accesses.

use crate::backend::SearchBackend;
use crate::kernel::{self, ArrayPlane, PosRef};
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::index::{PositionIndex, StepPlan};
use cobtree_core::Tree;

/// A complete BST stored as a key array in layout order, navigated by
/// index arithmetic. Owns its position index, so it moves freely into
/// facades and across threads.
///
/// ```
/// use cobtree_search::{ImplicitTree, SearchBackend};
/// use cobtree_core::NamedLayout;
///
/// let keys: Vec<u64> = (1..=127).map(|k| k * 10).collect();
/// let tree = ImplicitTree::try_build(NamedLayout::MinWep.indexer(7), &keys)?;
/// let pos = tree.search(640).expect("stored key");
/// assert_eq!(tree.keys()[pos as usize], 640);
///
/// // The key array *is* the layout order — which is why an
/// // `ImplicitTree` serialized by `SearchTree::save` can be served
/// // back byte-for-byte by the mapped backend (`SearchTree::open`).
/// assert_eq!(tree.keys().len(), 127);
/// assert_eq!(tree.key_count(), 127);
/// # Ok::<(), cobtree_core::Error>(())
/// ```
pub struct ImplicitTree<K> {
    tree: Tree,
    index: Box<dyn PositionIndex>,
    keys: Vec<K>,
    /// Compiled descent plan: closed-form coefficients where the layout
    /// has them, otherwise a flat position table recorded for free while
    /// arranging the keys. `None` only for uncompilable layouts on
    /// trees too tall to materialize a `u32` table (`h > 31`), where the
    /// kernels fall back to the virtual indexer.
    plan: Option<StepPlan>,
}

impl<K: Ord + Copy> ImplicitTree<K> {
    /// Builds the key array in the order defined by `index`.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build(index: Box<dyn PositionIndex>, keys: &[K]) -> Result<Self> {
        let tree = Tree::try_new(index.height())?;
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        // Keep a compiled plan whose levels are straight-line arithmetic
        // or an existing table; for everything else (the WEP family's
        // data-dependent loops, the generic interpreter) record the
        // position table during the arrange pass below — the positions
        // are computed there anyway, so the table is free.
        let compiled = index.compile_plan();
        let use_compiled = matches!(
            compiled,
            Some(StepPlan::Terms { .. }) | Some(StepPlan::Table { .. })
        );
        let mut table = (!use_compiled && tree.height() <= 31).then(|| vec![0u32; keys.len()]);
        let mut arranged = vec![keys[0]; keys.len()];
        for i in tree.nodes() {
            let p = index.position(i, tree.depth(i)) as usize;
            arranged[p] = keys[(tree.in_order_rank(i) - 1) as usize];
            if let Some(t) = &mut table {
                t[(i - 1) as usize] = p as u32;
            }
        }
        let plan = if use_compiled {
            compiled
        } else if let Some(t) = table {
            Some(StepPlan::from_positions(tree.height(), t))
        } else {
            compiled
        };
        Ok(Self {
            tree,
            index,
            keys: arranged,
            plan,
        })
    }

    /// The descent plane the kernels run on (compiled plan when
    /// available, virtual indexer otherwise).
    #[inline]
    fn plane(&self) -> ArrayPlane<'_, K> {
        let pos = match &self.plan {
            Some(plan) => PosRef::Plan(plan),
            None => PosRef::Index(self.index.as_ref()),
        };
        ArrayPlane::new(&self.keys, pos, self.tree.height())
    }

    /// The compiled descent plan, when one exists.
    #[must_use]
    pub fn plan(&self) -> Option<&StepPlan> {
        self.plan.as_ref()
    }

    /// Builds the tree, panicking where [`ImplicitTree::try_build`]
    /// errors — convenience for tests and examples.
    ///
    /// # Panics
    /// See [`ImplicitTree::try_build`].
    #[must_use]
    pub fn build(index: Box<dyn PositionIndex>, keys: &[K]) -> Self {
        match Self::try_build(index, keys) {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `false`; at least the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Key array in layout order.
    #[must_use]
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The position index navigating this tree.
    #[must_use]
    pub fn index(&self) -> &dyn PositionIndex {
        self.index.as_ref()
    }

    /// Searches for `key`, computing one layout position per transition.
    /// Returns the array position of the match.
    ///
    /// Runs on the compiled descent kernel (branch-free, prefetching,
    /// zero virtual calls — see [`crate::kernel`]); results are
    /// bit-identical to [`ImplicitTree::search_reference`].
    #[inline]
    pub fn search(&self, key: K) -> Option<u64> {
        kernel::search(&self.plane(), key)
    }

    /// The pre-kernel descent — one virtual position call and one
    /// three-way branch per level. Kept as the oracle the kernels are
    /// verified against (and as the comparison baseline in
    /// `BENCH_kernel.json`).
    #[inline]
    pub fn search_reference(&self, key: K) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Searches an arbitrary-order probe batch on the interleaved
    /// kernel: up to `width` (≤ [`kernel::MAX_LANES`]) descents in
    /// flight, overlapping their memory latency. `out` is cleared and
    /// filled with one entry per probe, in probe order — bit-identical
    /// to mapping [`ImplicitTree::search`] over the batch.
    pub fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        kernel::search_batch_interleaved(&self.plane(), keys, width, out);
    }

    /// Searches while recording each visited position.
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut d = 0u32;
        loop {
            let p = self.index.position(i, d);
            visited.push(p);
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
            d += 1;
            if d >= h {
                return None;
            }
        }
    }

    /// Benchmark kernel: sum of found positions. Dispatches to the
    /// shared interleaved checksum kernel ([`kernel::batch_checksum`]);
    /// the sum is identical to accumulating per-probe searches.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        kernel::batch_checksum(&self.plane(), keys, kernel::DEFAULT_LANES)
    }
}

impl<K> std::fmt::Debug for ImplicitTree<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImplicitTree")
            .field("height", &self.tree.height())
            .field("len", &self.keys.len())
            .finish()
    }
}

impl<K: Ord + Copy> SearchBackend<K> for ImplicitTree<K> {
    fn height(&self) -> u32 {
        self.tree.height()
    }

    fn key_count(&self) -> u64 {
        self.keys.len() as u64
    }

    fn search(&self, key: K) -> Option<u64> {
        ImplicitTree::search(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        ImplicitTree::search_traced(self, key, visited)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        let p = SearchBackend::position_of_rank(self, rank)?;
        Some(self.keys[p as usize])
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        (rank >= 1 && rank <= self.tree.len()).then(|| {
            let node = self.tree.node_at_in_order(rank);
            self.index.position(node, self.tree.depth(node))
        })
    }

    // Kernel-backed overrides: identical results, no per-level virtual
    // dispatch (the generic defaults walk rank lookups per level).

    fn search_reference(&self, key: K) -> Option<u64> {
        ImplicitTree::search_reference(self, key)
    }

    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        kernel::search_traced(&self.plane(), key, visited)
    }

    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        ImplicitTree::search_batch_interleaved(self, keys, width, out);
    }

    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        ImplicitTree::search_batch_checksum(self, keys)
    }

    fn lower_bound_rank(&self, key: K) -> u64 {
        kernel::bound_rank::<_, false>(&self.plane(), key)
    }

    fn upper_bound_rank(&self, key: K) -> u64 {
        kernel::bound_rank::<_, true>(&self.plane(), key)
    }
}

/// Times pure index computation: keys are the in-order ranks `1..=n`, so
/// comparisons need no memory at all (§IV-E footnote 1). Every transition
/// still performs the full position computation, whose result is folded
/// into a checksum the optimizer cannot discard.
pub struct IndexOnlySearcher<'a> {
    tree: Tree,
    index: &'a dyn PositionIndex,
}

impl<'a> IndexOnlySearcher<'a> {
    /// Creates a searcher over the arithmetic layout `index`.
    #[must_use]
    pub fn new(index: &'a dyn PositionIndex) -> Self {
        Self {
            tree: Tree::new(index.height()),
            index,
        }
    }

    /// "Searches" for in-order rank `key ∈ 1..=n`, computing the layout
    /// position of every node on the path; returns the sum of positions.
    #[inline]
    pub fn search(&self, key: u64) -> u64 {
        let h = self.tree.height();
        let mut i = 1u64;
        let mut acc = 0u64;
        for d in 0..h {
            acc = acc.wrapping_add(self.index.position(i, d));
            let k = self.tree.in_order_rank(i);
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => i *= 2,
                std::cmp::Ordering::Greater => i = 2 * i + 1,
            }
        }
        acc
    }

    /// Checksum over a batch of keys.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[u64]) -> u64 {
        let mut acc = 0u64;
        for &k in keys {
            acc = acc.wrapping_add(self.search(k));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::ExplicitTree;
    use cobtree_core::NamedLayout;

    #[test]
    fn implicit_finds_every_key_under_every_indexer() {
        for layout in NamedLayout::ALL {
            let idx = layout.indexer(8);
            let keys: Vec<u64> = (1..=255).collect();
            let t = ImplicitTree::build(idx, &keys);
            for k in 1..=255u64 {
                // The match must exist and the found slot must hold it.
                assert_eq!(
                    t.search(k).map(|p| t.keys()[p as usize]),
                    Some(k),
                    "{layout} lost key {k}"
                );
            }
            assert_eq!(t.search(0), None);
            assert_eq!(t.search(256), None);
        }
    }

    #[test]
    fn implicit_and_explicit_agree_on_membership() {
        let layout = NamedLayout::MinWep;
        let h = 9;
        let mat = layout.materialize(h);
        let idx = layout.indexer(h);
        let keys: Vec<u64> = (1..=mat.len()).map(|k| k * 3).collect();
        let et = ExplicitTree::build(&mat, &keys);
        let it = ImplicitTree::build(idx, &keys);
        for probe in 0..=(mat.len() * 3 + 2) {
            assert_eq!(
                et.search(probe).is_some(),
                it.search(probe).is_some(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn try_build_rejects_bad_keys() {
        let idx = NamedLayout::MinWep.indexer(3);
        assert_eq!(
            ImplicitTree::try_build(idx, &[1u64, 1, 2, 3, 4, 5, 6]).unwrap_err(),
            Error::UnsortedKeys { index: 0 }
        );
        let idx = NamedLayout::MinWep.indexer(3);
        assert_eq!(
            ImplicitTree::try_build(idx, &[1u64, 2, 3]).unwrap_err(),
            Error::KeyCountMismatch {
                expected: 7,
                got: 3
            }
        );
    }

    #[test]
    fn index_only_searcher_visits_the_right_path() {
        let layout = NamedLayout::MinWep;
        let h = 7;
        let idx = layout.indexer(h);
        let s = IndexOnlySearcher::new(idx.as_ref());
        let tree = Tree::new(h);
        for key in 1..=tree.len() {
            let expect: u64 = tree
                .search_path(key)
                .iter()
                .map(|&i| idx.position(i, tree.depth(i)))
                .sum();
            assert_eq!(s.search(key), expect, "key {key}");
        }
    }

    #[test]
    fn checksums_deterministic() {
        let idx = NamedLayout::HalfWep.indexer(8);
        let s = IndexOnlySearcher::new(idx.as_ref());
        let keys: Vec<u64> = (1..=255).collect();
        assert_eq!(
            s.search_batch_checksum(&keys),
            s.search_batch_checksum(&keys)
        );
    }
}
