//! Reproducible search workloads.
//!
//! The paper's timing experiments search for "(up to) 10 million randomly
//! selected nodes" (§IV-F) — a uniform workload over the stored keys,
//! which realizes exactly the affinity edge probabilities of Eq. 2.
//! Extensions add the §II-A Markov random walk (for validating the block
//! model) and a Zipf-like skewed workload.

use cobtree_core::{EdgeWeights, NodeId, Tree};
use rand::distr::Uniform;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Uniform random in-order keys `1..=n`, seeded and reproducible.
#[derive(Debug, Clone)]
pub struct UniformKeys {
    rng: ChaCha8Rng,
    dist: Uniform<u64>,
}

impl UniformKeys {
    /// Uniform keys over `1..=n`.
    #[must_use]
    pub fn new(n: u64, seed: u64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            dist: Uniform::new_inclusive(1, n).expect("n >= 1"),
        }
    }

    /// For a tree: keys over `1..=2^h − 1`.
    #[must_use]
    pub fn for_height(height: u32, seed: u64) -> Self {
        Self::new((1u64 << height) - 1, seed)
    }

    /// Draws `count` keys into a vector.
    #[must_use]
    pub fn take_vec(&mut self, count: usize) -> Vec<u64> {
        (&mut self.rng).sample_iter(self.dist).take(count).collect()
    }
}

impl Iterator for UniformKeys {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.dist.sample(&mut self.rng))
    }
}

/// The materialized weight table of a Zipf(s) distribution over
/// `1..=n`: the normalized harmonic CDF. Building it is the O(n · powf)
/// part of a Zipf workload, and it depends only on `(n, s)` — build it
/// once and share it across every generator and workload mix that draws
/// from the same distribution ([`ZipfKeys::from_table`] takes it by
/// reference; the CDF is behind an `Arc`, so generators clone cheaply).
#[derive(Debug, Clone)]
pub struct ZipfTable {
    n: u64,
    cdf: std::sync::Arc<[f64]>,
}

impl ZipfTable {
    /// Builds the normalized CDF of Zipf(s) over `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > 2^24` (the CDF is materialized).
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(
            (1..=(1 << 24)).contains(&n),
            "materialized Zipf needs n <= 2^24"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { n, cdf: cdf.into() }
    }

    /// The key-space size `n` the table was built for.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// A Zipf-like skewed key workload (extension): rank `r` drawn with
/// probability ∝ `1/r^s` over a random permutation of the key space, via
/// rejection-free inverse-CDF on a truncated harmonic series.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    rng: ChaCha8Rng,
    cdf: std::sync::Arc<[f64]>,
    perm: Vec<u64>,
}

impl ZipfKeys {
    /// Zipf(s) over `1..=n` with ranks shuffled by `seed` (so hot keys are
    /// spread over the tree rather than clustered at small in-order ranks).
    ///
    /// Builds a fresh weight table; callers drawing several workloads
    /// from one distribution should build a [`ZipfTable`] once and use
    /// [`ZipfKeys::from_table`].
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > 2^24` (the CDF is materialized).
    #[must_use]
    pub fn new(n: u64, s: f64, seed: u64) -> Self {
        Self::from_table(&ZipfTable::new(n, s), seed)
    }

    /// Zipf keys drawing from a pre-built weight table (shared, not
    /// rebuilt); only the rank permutation depends on `seed`.
    #[must_use]
    pub fn from_table(table: &ZipfTable, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u64> = (1..=table.n).collect();
        perm.shuffle(&mut rng);
        Self {
            rng,
            cdf: table.cdf.clone(),
            perm,
        }
    }
}

impl Iterator for ZipfKeys {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let u: f64 = self.rng.random();
        let idx = self.cdf.partition_point(|&c| c < u);
        Some(self.perm[idx.min(self.perm.len() - 1)])
    }
}

/// Reproducible range-scan workload: `count` uniformly random 1-based
/// start ranks such that a scan of `span` consecutive ranks stays inside
/// `1..=n`. Feed to [`crate::SearchBackend::scan_positions_traced`] or
/// `cachesim`'s scan replay.
///
/// # Panics
/// Panics if `span` is `0` or exceeds `n`.
#[must_use]
pub fn scan_starts(n: u64, span: u64, count: usize, seed: u64) -> Vec<u64> {
    assert!(span >= 1 && span <= n, "span must be in 1..=n");
    UniformKeys::new(n - span + 1, seed).take(count).collect()
}

/// Reproducible sorted probe batches for batch-search workloads: `count`
/// batches of `batch` keys each, drawn over `1..=n` — uniformly when
/// `zipf_s == 0.0`, Zipf(`zipf_s`)-skewed otherwise — and sorted within
/// each batch, ready for
/// [`crate::SearchBackend::search_sorted_batch`].
///
/// # Panics
/// Panics if `batch` is `0`, or (for the Zipf mix) under the
/// [`ZipfKeys`] size limits.
#[must_use]
pub fn sorted_batches(n: u64, batch: usize, count: usize, zipf_s: f64, seed: u64) -> Vec<Vec<u64>> {
    assert!(batch >= 1, "batches must be non-empty");
    let mut draw: Box<dyn Iterator<Item = u64>> = if zipf_s == 0.0 {
        Box::new(UniformKeys::new(n, seed))
    } else {
        Box::new(ZipfKeys::new(n, zipf_s, seed))
    };
    (0..count)
        .map(|_| {
            let mut b: Vec<u64> = draw.by_ref().take(batch).collect();
            b.sort_unstable();
            b
        })
        .collect()
}

/// The §II-A affinity-graph Markov chain: a random walk on the tree whose
/// stationary edge-traversal distribution is proportional to the edge
/// weights (exact weights of Eq. 2, or any [`EdgeWeights`] model).
#[derive(Debug, Clone)]
pub struct AffinityWalk {
    tree: Tree,
    weights: EdgeWeights,
    rng: ChaCha8Rng,
    current: NodeId,
}

impl AffinityWalk {
    /// Starts a walk at the root.
    #[must_use]
    pub fn new(height: u32, weights: EdgeWeights, seed: u64) -> Self {
        Self {
            tree: Tree::new(height),
            weights,
            rng: ChaCha8Rng::seed_from_u64(seed),
            current: 1,
        }
    }

    /// Current node.
    #[must_use]
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// Takes one step; returns the new node. Transition probabilities are
    /// proportional to incident edge weights (`P = D⁻¹A`).
    pub fn step(&mut self) -> NodeId {
        let t = self.tree;
        let h = t.height();
        let d = t.depth(self.current);
        let w_parent = if d > 0 {
            self.weights.weight(d, h)
        } else {
            0.0
        };
        let w_child = if d + 1 < h {
            self.weights.weight(d + 1, h)
        } else {
            0.0
        };
        let total = w_parent + 2.0 * w_child;
        let u: f64 = self.rng.random::<f64>() * total;
        self.current = if u < w_parent {
            self.current >> 1
        } else if u < w_parent + w_child {
            2 * self.current
        } else {
            2 * self.current + 1
        };
        self.current
    }
}

impl Iterator for AffinityWalk {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_reproducible_and_in_range() {
        let a: Vec<u64> = UniformKeys::new(100, 7).take(1000).collect();
        let b: Vec<u64> = UniformKeys::new(100, 7).take(1000).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| (1..=100).contains(&k)));
        let c: Vec<u64> = UniformKeys::new(100, 8).take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_keys_cover_the_space() {
        let mut seen = [false; 16];
        for k in UniformKeys::new(15, 3).take(2000) {
            seen[k as usize] = true;
        }
        assert!(seen[1..].iter().all(|&x| x));
    }

    #[test]
    fn scan_starts_fit_the_key_space() {
        let starts = scan_starts(1000, 64, 500, 9);
        assert_eq!(starts.len(), 500);
        assert!(starts.iter().all(|&s| s >= 1 && s + 64 - 1 <= 1000));
        assert_eq!(starts, scan_starts(1000, 64, 500, 9));
        assert_ne!(starts, scan_starts(1000, 64, 500, 10));
    }

    #[test]
    fn sorted_batches_are_sorted_and_reproducible() {
        for s in [0.0, 1.1] {
            let batches = sorted_batches(5000, 64, 20, s, 3);
            assert_eq!(batches.len(), 20);
            for b in &batches {
                assert_eq!(b.len(), 64);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
                assert!(b.iter().all(|&k| (1..=5000).contains(&k)));
            }
            assert_eq!(batches, sorted_batches(5000, 64, 20, s, 3));
        }
        // The Zipf mix concentrates probes: far fewer distinct keys.
        let uniform: std::collections::BTreeSet<u64> = sorted_batches(5000, 64, 20, 0.0, 3)
            .into_iter()
            .flatten()
            .collect();
        let zipf: std::collections::BTreeSet<u64> = sorted_batches(5000, 64, 20, 1.3, 3)
            .into_iter()
            .flatten()
            .collect();
        assert!(zipf.len() < uniform.len());
    }

    #[test]
    fn zipf_table_reuse_matches_fresh_generator() {
        let table = ZipfTable::new(3000, 1.2);
        assert_eq!(table.n(), 3000);
        let fresh: Vec<u64> = ZipfKeys::new(3000, 1.2, 9).take(2000).collect();
        let shared: Vec<u64> = ZipfKeys::from_table(&table, 9).take(2000).collect();
        assert_eq!(fresh, shared);
        // Different seeds over one table draw different streams.
        let other: Vec<u64> = ZipfKeys::from_table(&table, 10).take(2000).collect();
        assert_ne!(shared, other);
    }

    #[test]
    fn zipf_prefers_hot_keys() {
        let w = ZipfKeys::new(1000, 1.2, 5);
        let hot = w.perm[0];
        let mut hot_count = 0;
        let mut total = 0;
        for k in w.take(20_000) {
            total += 1;
            if k == hot {
                hot_count += 1;
            }
        }
        // Rank-1 probability under Zipf(1.2, n=1000) is ≈ 13%.
        assert!(hot_count * 100 / total > 5, "hot fraction too small");
    }

    #[test]
    fn walk_stays_in_tree_and_visits_edges_by_weight() {
        let h = 6;
        let mut walk = AffinityWalk::new(h, EdgeWeights::Exact, 11);
        let t = Tree::new(h);
        let mut depth1 = 0u64;
        let mut depth5 = 0u64;
        let mut prev = walk.current();
        for node in walk.by_ref().take(200_000) {
            assert!(t.contains(node));
            let (a, b) = if node > prev {
                (prev, node)
            } else {
                (node, prev)
            };
            assert_eq!(b >> 1, a, "walk must follow edges");
            match t.depth(b) {
                1 => depth1 += 1,
                5 => depth5 += 1,
                _ => {}
            }
            prev = node;
        }
        // Edge traversal frequencies follow w·(count): depth-1 edges are
        // individually ~31× more likely than depth-5 edges (Eq. 2), and
        // there are 16× fewer of them.
        let per_edge1 = depth1 as f64 / 2.0;
        let per_edge5 = depth5 as f64 / 32.0;
        let ratio = per_edge1 / per_edge5;
        assert!(
            (15.0..80.0).contains(&ratio),
            "depth-1/depth-5 per-edge ratio {ratio}"
        );
    }
}
