//! Implicit search driven by the incremental [`PathStepper`].
//!
//! The paper's pointer-less searches recompute the full index translation
//! per visited node (Listing 1, §IV-E). [`SteppingTree`] instead carries
//! the descent state across transitions, trading a little memory for
//! strictly less arithmetic per step — the optimization the stepper
//! module adds on top of the paper.

use cobtree_core::index::stepper::PathStepper;
use cobtree_core::{RecursiveSpec, Tree};
use std::cell::RefCell;

/// A pointer-less tree whose searches walk with a reusable stepper.
pub struct SteppingTree<K> {
    tree: Tree,
    stepper: RefCell<PathStepper>,
    keys: Vec<K>,
}

impl<K: Ord + Copy> SteppingTree<K> {
    /// Builds the key array in the layout order defined by `spec`.
    ///
    /// # Panics
    /// Panics if `keys` is unsorted or has the wrong length.
    #[must_use]
    pub fn build(spec: RecursiveSpec, height: u32, keys: &[K]) -> Self {
        let tree = Tree::new(height);
        assert_eq!(keys.len() as u64, tree.len(), "key count mismatch");
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        let mut stepper = PathStepper::new(spec, height);
        let mut arranged = vec![keys[0]; keys.len()];
        // Arrange keys by walking every path once (exercises the stepper;
        // cost O(n · h) once at build time).
        for i in tree.nodes() {
            let d = tree.depth(i);
            let mut p = stepper.reset();
            for k in 1..=d {
                p = stepper.descend((i >> (d - k)) & 1 == 1);
            }
            arranged[p as usize] = keys[(tree.in_order_rank(i) - 1) as usize];
        }
        Self {
            tree,
            stepper: RefCell::new(stepper),
            keys: arranged,
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `false`; at least the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Searches for `key`, computing positions incrementally.
    pub fn search(&self, key: K) -> Option<u64> {
        let mut stepper = self.stepper.borrow_mut();
        let mut p = stepper.reset();
        let h = self.tree.height();
        let mut d = 0;
        loop {
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(false);
                }
                std::cmp::Ordering::Greater => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(true);
                }
            }
        }
    }

    /// Benchmark kernel: sum of found positions.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: impl IntoIterator<Item = K>) -> u64 {
        let mut acc = 0u64;
        for k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitTree;
    use cobtree_core::NamedLayout;

    #[test]
    fn stepping_search_matches_indexed_search() {
        for layout in [NamedLayout::MinWep, NamedLayout::HalfWep, NamedLayout::InVebA] {
            let h = 9;
            let keys: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 2).collect();
            let st = SteppingTree::build(layout.spec(), h, &keys);
            let idx = layout.indexer(h);
            let it = ImplicitTree::build(idx.as_ref(), &keys);
            for probe in 0..=(keys.len() as u64 * 2 + 1) {
                assert_eq!(
                    st.search(probe).is_some(),
                    it.search(probe).is_some(),
                    "{layout} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn found_positions_hold_the_key() {
        let h = 8;
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let st = SteppingTree::build(NamedLayout::MinWep.spec(), h, &keys);
        for k in [1u64, 42, 128, 255] {
            let p = st.search(k).unwrap();
            assert_eq!(st.keys[p as usize], k);
        }
    }
}
