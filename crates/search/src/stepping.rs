//! Implicit search driven by the incremental [`PathStepper`].
//!
//! The paper's pointer-less searches recompute the full index translation
//! per visited node (Listing 1, §IV-E). [`SteppingTree`] instead carries
//! the descent state across transitions, trading a little memory for
//! strictly less arithmetic per step — the optimization the stepper
//! module adds on top of the paper.

use crate::backend::SearchBackend;
use cobtree_core::error::{check_sorted_keys, Error, Result};
use cobtree_core::index::stepper::PathStepper;
use cobtree_core::{RecursiveSpec, Tree};
use std::cell::RefCell;

/// A pointer-less tree whose searches walk with a reusable stepper.
pub struct SteppingTree<K> {
    tree: Tree,
    stepper: RefCell<PathStepper>,
    keys: Vec<K>,
}

impl<K: Ord + Copy> SteppingTree<K> {
    /// Builds the key array in the layout order defined by `spec`.
    ///
    /// # Errors
    /// [`Error::EmptyKeys`] / [`Error::UnsortedKeys`] /
    /// [`Error::KeyCountMismatch`].
    pub fn try_build(spec: RecursiveSpec, height: u32, keys: &[K]) -> Result<Self> {
        let tree = Tree::try_new(height)?;
        check_sorted_keys(keys)?;
        if keys.len() as u64 != tree.len() {
            return Err(Error::KeyCountMismatch {
                expected: tree.len(),
                got: keys.len() as u64,
            });
        }
        let mut stepper = PathStepper::new(spec, height);
        let mut arranged = vec![keys[0]; keys.len()];
        // Arrange keys by walking every path once (exercises the stepper;
        // cost O(n · h) once at build time).
        for i in tree.nodes() {
            let d = tree.depth(i);
            let mut p = stepper.reset();
            for k in 1..=d {
                p = stepper.descend((i >> (d - k)) & 1 == 1);
            }
            arranged[p as usize] = keys[(tree.in_order_rank(i) - 1) as usize];
        }
        Ok(Self {
            tree,
            stepper: RefCell::new(stepper),
            keys: arranged,
        })
    }

    /// Builds the tree, panicking where [`SteppingTree::try_build`]
    /// errors.
    ///
    /// # Panics
    /// See [`SteppingTree::try_build`].
    #[must_use]
    pub fn build(spec: RecursiveSpec, height: u32, keys: &[K]) -> Self {
        match Self::try_build(spec, height, keys) {
            Ok(tree) => tree,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `false`; at least the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Searches for `key`, computing positions incrementally.
    pub fn search(&self, key: K) -> Option<u64> {
        let mut stepper = self.stepper.borrow_mut();
        let mut p = stepper.reset();
        let h = self.tree.height();
        let mut d = 0;
        loop {
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(false);
                }
                std::cmp::Ordering::Greater => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(true);
                }
            }
        }
    }

    /// Searches while recording every visited position.
    pub fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        let mut stepper = self.stepper.borrow_mut();
        let mut p = stepper.reset();
        let h = self.tree.height();
        let mut d = 0;
        loop {
            visited.push(p);
            let k = self.keys[p as usize];
            match key.cmp(&k) {
                std::cmp::Ordering::Equal => return Some(p),
                std::cmp::Ordering::Less => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(false);
                }
                std::cmp::Ordering::Greater => {
                    d += 1;
                    if d >= h {
                        return None;
                    }
                    p = stepper.descend(true);
                }
            }
        }
    }

    /// Benchmark kernel: sum of found positions.
    #[must_use]
    pub fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        let mut acc = 0u64;
        for &k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }
}

impl<K: Ord + Copy> SearchBackend<K> for SteppingTree<K> {
    fn height(&self) -> u32 {
        self.tree.height()
    }

    fn key_count(&self) -> u64 {
        self.keys.len() as u64
    }

    fn search(&self, key: K) -> Option<u64> {
        SteppingTree::search(self, key)
    }

    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        SteppingTree::search_traced(self, key, visited)
    }

    fn key_at_rank(&self, rank: u64) -> Option<K> {
        let p = SearchBackend::position_of_rank(self, rank)?;
        Some(self.keys[p as usize])
    }

    fn position_of_rank(&self, rank: u64) -> Option<u64> {
        if rank < 1 || rank > self.tree.len() {
            return None;
        }
        // Walk the stepper down the target's root path (`O(depth)`).
        let node = self.tree.node_at_in_order(rank);
        let d = self.tree.depth(node);
        let mut stepper = self.stepper.borrow_mut();
        let mut p = stepper.reset();
        for k in 1..=d {
            p = stepper.descend((node >> (d - k)) & 1 == 1);
        }
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitTree;
    use cobtree_core::NamedLayout;

    #[test]
    fn stepping_search_matches_indexed_search() {
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::HalfWep,
            NamedLayout::InVebA,
        ] {
            let h = 9;
            let keys: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 2).collect();
            let st = SteppingTree::build(layout.spec(), h, &keys);
            let it = ImplicitTree::build(layout.indexer(h), &keys);
            for probe in 0..=(keys.len() as u64 * 2 + 1) {
                assert_eq!(
                    st.search(probe).is_some(),
                    it.search(probe).is_some(),
                    "{layout} probe {probe}"
                );
            }
        }
    }

    #[test]
    fn found_positions_hold_the_key() {
        let h = 8;
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        let st = SteppingTree::build(NamedLayout::MinWep.spec(), h, &keys);
        for k in [1u64, 42, 128, 255] {
            let p = st.search(k).unwrap();
            assert_eq!(st.keys[p as usize], k);
        }
    }

    #[test]
    fn ordered_ops_match_spec_interpreter_and_oracle() {
        use crate::backend::SearchBackend;
        use cobtree_core::index::generic::GenericIndexer;
        // Rank-valued queries (rank/select/bounds/range) are
        // layout-independent; position-valued ones must agree with the
        // generic interpreter of the *same spec* (a dedicated indexer
        // may be an automorphic image with different positions).
        for layout in [NamedLayout::MinWep, NamedLayout::InVebA] {
            let h = 7;
            let n = (1u64 << h) - 1;
            let keys: Vec<u64> = (1..=n).map(|k| k * 3).collect();
            let st = SteppingTree::build(layout.spec(), h, &keys);
            let it = ImplicitTree::build(Box::new(GenericIndexer::new(layout.spec(), h)), &keys);
            for rank in 1..=n {
                assert_eq!(st.select(rank), Some(keys[(rank - 1) as usize]), "{layout}");
                assert_eq!(
                    SearchBackend::position_of_rank(&st, rank),
                    SearchBackend::position_of_rank(&it, rank),
                    "{layout} rank {rank}"
                );
            }
            assert_eq!(st.select(0), None);
            assert_eq!(st.select(n + 1), None);
            for probe in 0..=n * 3 + 2 {
                assert_eq!(st.rank(probe), it.rank(probe), "{layout} rank({probe})");
                assert_eq!(st.lower_bound(probe), it.lower_bound(probe));
                assert_eq!(st.upper_bound(probe), it.upper_bound(probe));
            }
            let window: Vec<u64> = crate::cursor::range_of(&st, 10u64..=60).collect();
            let expect: Vec<u64> = keys
                .iter()
                .copied()
                .filter(|k| (10..=60).contains(k))
                .collect();
            assert_eq!(window, expect, "{layout} range");
            // Sorted-batch results and traces agree with the implicit
            // twin built on the same spec.
            let batch: Vec<u64> = (0..80u64).map(|i| i * 5).collect();
            let (mut so, mut io) = (Vec::new(), Vec::new());
            let (mut sv, mut iv) = (Vec::new(), Vec::new());
            st.search_sorted_batch_traced(&batch, &mut so, &mut sv)
                .unwrap();
            it.search_sorted_batch_traced(&batch, &mut io, &mut iv)
                .unwrap();
            assert_eq!(so, io, "{layout} batch results");
            assert_eq!(sv, iv, "{layout} batch traces");
            for (i, &p) in batch.iter().enumerate() {
                assert_eq!(so[i], st.search(p), "{layout} batch vs point {p}");
            }
        }
    }
}
