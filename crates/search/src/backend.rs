//! The [`SearchBackend`] trait: one *ordered-index* interface over every
//! storage discipline.
//!
//! The paper's point is that the search *algorithm* is identical across
//! layouts and storage kinds — only the position computation changes.
//! This trait makes that literal: pointer-based ([`crate::ExplicitTree`]),
//! pointer-less ([`crate::ImplicitTree`]), index-only
//! ([`crate::IndexOnlyTree`]), stepper-driven ([`crate::SteppingTree`])
//! trees and the [`crate::SearchTree`] facade all expose the same
//! surface, so benches, the cache simulator and the analysis harness
//! iterate backends generically through `&dyn SearchBackend<K>`.
//!
//! # The position ⇄ in-order rank contract
//!
//! Every backend stores its keys at the nodes of a complete binary tree
//! of height `h`, and the in-order traversal of that tree visits keys in
//! ascending order. Two coordinate systems therefore describe the same
//! entry:
//!
//! * the **layout position** `p ∈ 0..2^h − 1` — where the entry's node
//!   sits in the storage array (layout-dependent; what [`SearchBackend::search`]
//!   returns and what cache simulation consumes);
//! * the **in-order rank** `r ∈ 1..=key_count` — the entry's ordinal
//!   among the stored keys (layout-independent; what ordered-map
//!   operations speak).
//!
//! The two required primitives [`SearchBackend::key_at_rank`] and
//! [`SearchBackend::position_of_rank`] translate rank → (key, position);
//! everything else — `lower_bound`/`upper_bound`, `rank`/`select`,
//! cursors and range scans ([`crate::cursor`]), and sorted-batch search
//! — is provided once on the trait and inherited by all backends.
//!
//! Contract details implementations must uphold:
//!
//! * ranks `1..=key_count` hold the stored keys in strictly ascending
//!   order: `key_at_rank(r)` is `Some` and increasing in `r`;
//! * the underlying complete tree may be *larger* than `key_count`
//!   (padding, as in the [`crate::SearchTree`] facade): for padded ranks
//!   `key_count < r ≤ 2^h − 1`, `key_at_rank` returns `None` — the
//!   provided descents treat such slots as `+∞` — while
//!   `position_of_rank` still returns the padding node's position so
//!   traced walks record every touched node;
//! * `position_of_rank(r)` agrees with [`SearchBackend::search`]: for a
//!   stored key `k` at rank `r`, `search(k) == position_of_rank(r)`.
//!
//! Positions are 0-based offsets into the backend's layout array,
//! reported as `u64` regardless of the backend's internal width.

use cobtree_core::error::{Error, Result};
use cobtree_core::Tree;

/// Object-safe ordered-index interface shared by all storage backends.
pub trait SearchBackend<K: Copy + Ord> {
    /// Height `h` of the underlying complete tree.
    fn height(&self) -> u32;

    /// Number of stored keys — in-order ranks `1..=key_count()` hold
    /// them in ascending order. The underlying complete tree may be
    /// larger (padding slots carry no key).
    fn key_count(&self) -> u64;

    /// Searches for `key`; returns the 0-based layout position of the
    /// node holding it, if present.
    fn search(&self, key: K) -> Option<u64>;

    /// Like [`SearchBackend::search`], recording the layout position of
    /// every visited node (for cache-simulation traces).
    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64>;

    /// Key stored at 1-based in-order rank `rank`, or `None` when
    /// `rank` is `0`, beyond [`SearchBackend::key_count`], or a padding
    /// slot. See the module docs for the full contract.
    fn key_at_rank(&self, rank: u64) -> Option<K>;

    /// Layout position of the node with 1-based in-order rank `rank`,
    /// or `None` when `rank` is outside `1..=2^h − 1`. Unlike
    /// [`SearchBackend::key_at_rank`] this *does* answer for padding
    /// ranks, so traces can record every touched node.
    fn position_of_rank(&self, rank: u64) -> Option<u64>;

    // ------------------------------------------------------------------
    // Provided: point queries
    // ------------------------------------------------------------------

    /// Membership test — provided so callers stop re-deriving it from
    /// [`SearchBackend::search`].
    fn contains(&self, key: K) -> bool {
        self.search(key).is_some()
    }

    /// The pre-kernel descent path, kept as the oracle the compiled
    /// kernels are verified against. Backends with a compiled kernel
    /// override this with their original per-level loop; for everything
    /// else `search` *is* the reference, which the default reflects.
    fn search_reference(&self, key: K) -> Option<u64> {
        self.search(key)
    }

    /// [`SearchBackend::search_traced`] on the compiled kernel: a
    /// branch-free full-height descent whose recorded trace is truncated
    /// at the match, so the visited sequence is **bit-identical** to the
    /// slow path's (the repro harness asserts the two hit the same
    /// simulated-L1 blocks). Backends without a kernel fall back to the
    /// slow trace, which is trivially identical.
    fn search_traced_kernel(&self, key: K, visited: &mut Vec<u64>) -> Option<u64> {
        self.search_traced(key, visited)
    }

    /// Searches an arbitrary-order probe batch with up to `width`
    /// lookups interleaved in flight (memory-level parallelism — see
    /// [`crate::kernel`]). `out` is cleared and filled with one entry
    /// per probe, in probe order; results are bit-identical to mapping
    /// [`SearchBackend::search`] over the batch, which is exactly what
    /// the default does for backends without an interleaved kernel.
    fn search_batch_interleaved(&self, keys: &[K], width: usize, out: &mut Vec<Option<u64>>) {
        let _ = width;
        out.clear();
        out.extend(keys.iter().map(|&k| self.search(k)));
    }

    /// Sums the positions of all successful lookups — the benchmark
    /// kernel whose result must be consumed to defeat dead-code
    /// elimination. Backends built from the same position index return
    /// identical checksums for identical keys. Scratch-free: no
    /// allocation, one [`SearchBackend::search`] per probe. The four
    /// storage backends override this with the shared interleaved
    /// checksum kernel ([`crate::kernel::batch_checksum`]); the sum is
    /// identical either way.
    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        let mut acc = 0u64;
        for &k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }

    // ------------------------------------------------------------------
    // Provided: ordered navigation (rank/select, bounds)
    // ------------------------------------------------------------------

    /// 1-based in-order rank of the first stored key `>= key`, or
    /// `key_count() + 1` when every stored key is smaller.
    fn lower_bound_rank(&self, key: K) -> u64 {
        lower_bound_impl(self, key, None)
    }

    /// [`SearchBackend::lower_bound_rank`], recording the layout
    /// position of every node the descent visits (padding included).
    fn lower_bound_rank_traced(&self, key: K, visited: &mut Vec<u64>) -> u64 {
        lower_bound_impl(self, key, Some(visited))
    }

    /// 1-based in-order rank of the first stored key `> key`, or
    /// `key_count() + 1` when none is larger.
    fn upper_bound_rank(&self, key: K) -> u64 {
        let h = self.height();
        let tree = Tree::new(h);
        let mut i = 1u64;
        for _ in 0..h {
            let r = tree.in_order_rank(i);
            // Padding slots compare as +∞, so `key < slot` goes left.
            let go_right = match self.key_at_rank(r) {
                Some(k) => key >= k,
                None => false,
            };
            i = (i << 1) | u64::from(go_right);
        }
        // `i` is a virtual leaf; its gap index counts the slots <= key.
        (i - (1u64 << h)) + 1
    }

    /// Number of stored keys strictly less than `key` (a key's 0-based
    /// insertion index). `rank(select(r)) == r − 1` for stored ranks.
    fn rank(&self, key: K) -> u64 {
        self.lower_bound_rank(key) - 1
    }

    /// The `rank`-th smallest stored key (1-based), `None` out of
    /// range. Inverse of [`SearchBackend::rank`] up to the 0/1 base
    /// shift: `select(rank(k) + 1) == Some(k)` for stored `k`.
    fn select(&self, rank: u64) -> Option<K> {
        self.key_at_rank(rank)
    }

    /// Smallest stored key `>= key` (`key` itself when present).
    fn lower_bound(&self, key: K) -> Option<K> {
        self.key_at_rank(self.lower_bound_rank(key))
    }

    /// Smallest stored key `> key` — the in-order successor.
    fn upper_bound(&self, key: K) -> Option<K> {
        self.key_at_rank(self.upper_bound_rank(key))
    }

    /// Largest stored key `< key` — the in-order predecessor.
    fn predecessor(&self, key: K) -> Option<K> {
        match self.rank(key) {
            0 => None,
            r => self.key_at_rank(r),
        }
    }

    /// Alias for [`SearchBackend::upper_bound`]: the in-order successor.
    fn successor(&self, key: K) -> Option<K> {
        self.upper_bound(key)
    }

    // ------------------------------------------------------------------
    // Provided: scans and sorted batches
    // ------------------------------------------------------------------

    /// Pushes the layout position of every stored rank in
    /// `lo_rank..=hi_rank` (clamped to `1..=key_count()`) — the
    /// element-granularity access trace of an in-order range scan, ready
    /// for cache replay.
    fn scan_positions_traced(&self, lo_rank: u64, hi_rank: u64, visited: &mut Vec<u64>) {
        let lo = lo_rank.max(1);
        let hi = hi_rank.min(self.key_count());
        for r in lo..=hi {
            if let Some(p) = self.position_of_rank(r) {
                visited.push(p);
            }
        }
    }

    /// Searches an ascending probe batch, amortizing root-path traversal:
    /// consecutive probes restart the descent from the lowest common
    /// ancestor of their paths instead of the root, so shared path
    /// prefixes are fetched once per batch rather than once per probe.
    ///
    /// `out` is cleared and filled with one entry per probe (the found
    /// layout position, as [`SearchBackend::search`] would return).
    /// Scratch-free: callers reuse `out` across batches.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] if `keys` has a descending adjacent pair
    /// (equal probes are fine).
    fn search_sorted_batch(&self, keys: &[K], out: &mut Vec<Option<u64>>) -> Result<()> {
        sorted_batch_impl(self, keys, out, None)
    }

    /// [`SearchBackend::search_sorted_batch`], recording the layout
    /// position of every *newly fetched* node. Nodes on the shared path
    /// prefix between consecutive probes are carried in the descent
    /// stack and not re-fetched, so for a sorted batch the trace is a
    /// subset of — and strictly shorter than — the concatenation of the
    /// probes' independent [`SearchBackend::search_traced`] traces.
    ///
    /// # Errors
    /// [`Error::UnsortedBatch`] as for [`SearchBackend::search_sorted_batch`].
    fn search_sorted_batch_traced(
        &self,
        keys: &[K],
        out: &mut Vec<Option<u64>>,
        visited: &mut Vec<u64>,
    ) -> Result<()> {
        sorted_batch_impl(self, keys, out, Some(visited))
    }
}

/// Shared descent for `lower_bound_rank{,_traced}`: first rank holding a
/// key `>= probe`, visiting one node per level like `search_traced`.
fn lower_bound_impl<K, B>(backend: &B, key: K, mut visited: Option<&mut Vec<u64>>) -> u64
where
    K: Copy + Ord,
    B: SearchBackend<K> + ?Sized,
{
    let h = backend.height();
    let tree = Tree::new(h);
    let mut i = 1u64;
    for _ in 0..h {
        let r = tree.in_order_rank(i);
        if let Some(v) = visited.as_deref_mut() {
            if let Some(p) = backend.position_of_rank(r) {
                v.push(p);
            }
        }
        match backend.key_at_rank(r) {
            Some(k) => match key.cmp(&k) {
                std::cmp::Ordering::Equal => return r,
                std::cmp::Ordering::Less => i <<= 1,
                std::cmp::Ordering::Greater => i = (i << 1) | 1,
            },
            // Padding slot: compares as +∞, descend left.
            None => i <<= 1,
        }
    }
    // `i` is a virtual leaf in [2^h, 2^{h+1}); exactly `i − 2^h` slots
    // precede its gap in in-order, all strictly below `key`.
    (i - (1u64 << h)) + 1
}

/// Shared sorted-batch kernel. Maintains the current root-to-node path as
/// a stack of `(bfs node, rank, key, exclusive upper bound)`; each probe
/// pops to the deepest stacked ancestor whose subtree can still contain
/// it (the LCA of consecutive search paths) and resumes the descent from
/// there. Only newly pushed nodes are fetched from the backend (and
/// recorded when tracing) — the popped prefix rides along in the stack.
fn sorted_batch_impl<K, B>(
    backend: &B,
    keys: &[K],
    out: &mut Vec<Option<u64>>,
    mut visited: Option<&mut Vec<u64>>,
) -> Result<()>
where
    K: Copy + Ord,
    B: SearchBackend<K> + ?Sized,
{
    out.clear();
    out.reserve(keys.len());
    let h = backend.height();
    let tree = Tree::new(h);
    // (bfs node, in-order rank, key — None is a padding slot and
    // compares as +∞, exclusive upper key bound inherited from the
    // nearest left-turn ancestor).
    let mut stack: Vec<(u64, u64, Option<K>, Option<K>)> = Vec::with_capacity(h as usize);
    let mut prev: Option<K> = None;
    for (idx, &probe) in keys.iter().enumerate() {
        if let Some(p) = prev {
            if probe < p {
                return Err(Error::UnsortedBatch { index: idx - 1 });
            }
        }
        prev = Some(probe);
        // Pop everything whose subtree lies entirely below `probe`: an
        // entry with upper bound `u <= probe` cannot contain it (when
        // `probe == u`, the match — if any — is the ancestor holding
        // `u`, which stays on the stack).
        while let Some(&(_, _, _, upper)) = stack.last() {
            match upper {
                Some(u) if probe >= u => {
                    stack.pop();
                }
                _ => break,
            }
        }
        if stack.is_empty() {
            let r = tree.in_order_rank(1);
            if let Some(v) = visited.as_deref_mut() {
                if let Some(p) = backend.position_of_rank(r) {
                    v.push(p);
                }
            }
            stack.push((1, r, backend.key_at_rank(r), None));
        }
        // Resume the descent from the stack top (already fetched).
        let result = loop {
            let &(i, r, k, upper) = stack.last().expect("stack holds at least the root");
            let go_right = match k {
                Some(k) => match probe.cmp(&k) {
                    std::cmp::Ordering::Equal => break backend.position_of_rank(r),
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Greater => true,
                },
                // Padding slot = +∞: the probe sorts below it.
                None => false,
            };
            let child = (i << 1) | u64::from(go_right);
            if child > tree.len() {
                break None; // fell off a leaf: absent
            }
            let cr = tree.in_order_rank(child);
            if let Some(v) = visited.as_deref_mut() {
                if let Some(p) = backend.position_of_rank(cr) {
                    v.push(p);
                }
            }
            // Turning left tightens the upper bound to this node's key
            // (padding keys are +∞ and leave it unchanged).
            let cupper = if go_right { upper } else { k.or(upper) };
            stack.push((child, cr, backend.key_at_rank(cr), cupper));
        };
        out.push(result);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitTree;
    use cobtree_core::NamedLayout;

    fn tree(h: u32) -> ImplicitTree<u64> {
        let keys: Vec<u64> = (1..=(1u64 << h) - 1).map(|k| k * 10).collect();
        ImplicitTree::build(NamedLayout::MinWep.indexer(h), &keys)
    }

    #[test]
    fn bounds_and_rank_select_match_a_sorted_vec() {
        let t = tree(6);
        let keys: Vec<u64> = (1..=63u64).map(|k| k * 10).collect();
        for probe in 0..=640u64 {
            let lb = keys.partition_point(|&k| k < probe) as u64;
            assert_eq!(t.rank(probe), lb, "rank({probe})");
            assert_eq!(t.lower_bound_rank(probe), lb + 1);
            assert_eq!(t.lower_bound(probe), keys.get(lb as usize).copied());
            let ub = keys.partition_point(|&k| k <= probe) as u64;
            assert_eq!(t.upper_bound_rank(probe), ub + 1, "upper({probe})");
            assert_eq!(t.upper_bound(probe), keys.get(ub as usize).copied());
            assert_eq!(
                t.predecessor(probe),
                keys[..lb as usize].last().copied(),
                "pred({probe})"
            );
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(t.select(i as u64 + 1), Some(k));
            assert_eq!(t.rank(k), i as u64);
        }
        assert_eq!(t.select(0), None);
        assert_eq!(t.select(64), None);
    }

    #[test]
    fn lower_bound_trace_matches_search_trace_for_present_keys() {
        let t = tree(7);
        for k in [10u64, 640, 1270] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let rank = t.lower_bound_rank_traced(k, &mut a);
            assert_eq!(t.search_traced(k, &mut b), t.position_of_rank(rank));
            assert_eq!(a, b, "key {k}");
        }
    }

    #[test]
    fn sorted_batch_agrees_with_point_searches_and_visits_fewer() {
        let t = tree(8);
        let probes: Vec<u64> = (0..300u64).map(|k| k * 7 + 3).collect();
        let mut out = Vec::new();
        let mut batch_visits = Vec::new();
        t.search_sorted_batch_traced(&probes, &mut out, &mut batch_visits)
            .unwrap();
        let mut independent_visits = Vec::new();
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(out[i], t.search(p), "probe {p}");
            t.search_traced(p, &mut independent_visits);
        }
        assert!(
            batch_visits.len() < independent_visits.len(),
            "batch {} vs independent {}",
            batch_visits.len(),
            independent_visits.len()
        );
        // Untraced variant returns the same answers.
        let mut out2 = Vec::new();
        t.search_sorted_batch(&probes, &mut out2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn sorted_batch_rejects_descending_probes() {
        let t = tree(4);
        let mut out = Vec::new();
        assert_eq!(
            t.search_sorted_batch(&[30u64, 10], &mut out).unwrap_err(),
            Error::UnsortedBatch { index: 0 }
        );
        // Equal adjacent probes are allowed.
        t.search_sorted_batch(&[30u64, 30, 40], &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn scan_positions_cover_the_requested_ranks() {
        let t = tree(5);
        let mut visited = Vec::new();
        t.scan_positions_traced(3, 9, &mut visited);
        assert_eq!(visited.len(), 7);
        for (off, &p) in visited.iter().enumerate() {
            assert_eq!(Some(p), t.position_of_rank(3 + off as u64));
        }
        // Clamped: out-of-range bounds shrink to the stored ranks.
        visited.clear();
        t.scan_positions_traced(0, u64::MAX, &mut visited);
        assert_eq!(visited.len(), 31);
        // Empty window.
        visited.clear();
        t.scan_positions_traced(9, 3, &mut visited);
        assert!(visited.is_empty());
    }

    #[test]
    fn contains_is_derived_from_search() {
        let t = tree(4);
        assert!(t.contains(10));
        assert!(!t.contains(11));
    }
}
