//! The [`SearchBackend`] trait: one search interface over every storage
//! discipline.
//!
//! The paper's point is that the search *algorithm* is identical across
//! layouts and storage kinds — only the position computation changes.
//! This trait makes that literal: pointer-based ([`crate::ExplicitTree`]),
//! pointer-less ([`crate::ImplicitTree`]), index-only
//! ([`crate::IndexOnlyTree`]), stepper-driven ([`crate::SteppingTree`])
//! trees and the [`crate::SearchTree`] facade all expose the same
//! `search` / `search_traced` / `search_batch_checksum` surface, so
//! benches, the cache simulator and the analysis harness iterate
//! backends generically through `&dyn SearchBackend<K>`.
//!
//! Positions are 0-based offsets into the backend's layout array,
//! reported as `u64` regardless of the backend's internal width.

/// Object-safe search interface shared by all storage backends.
pub trait SearchBackend<K: Copy> {
    /// Height `h` of the underlying complete tree.
    fn height(&self) -> u32;

    /// Number of key slots (`2^h − 1`, including any padding).
    fn key_count(&self) -> u64;

    /// Searches for `key`; returns the 0-based layout position of the
    /// node holding it, if present.
    fn search(&self, key: K) -> Option<u64>;

    /// Like [`SearchBackend::search`], recording the layout position of
    /// every visited node (for cache-simulation traces).
    fn search_traced(&self, key: K, visited: &mut Vec<u64>) -> Option<u64>;

    /// Sums the positions of all successful lookups — the benchmark
    /// kernel whose result must be consumed to defeat dead-code
    /// elimination. Backends built from the same position index return
    /// identical checksums for identical keys.
    fn search_batch_checksum(&self, keys: &[K]) -> u64 {
        let mut acc = 0u64;
        for &k in keys {
            if let Some(p) = self.search(k) {
                acc = acc.wrapping_add(p);
            }
        }
        acc
    }
}
