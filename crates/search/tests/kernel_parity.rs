//! Property tests pinning the compiled descent kernels to the slow
//! paths they replace: result positions, visited traces and batch
//! checksums must be **bit-identical** across all 13 named layouts and
//! all 4 storage backends (explicit, implicit, index-only, and the
//! mapped backend opened from the implicit tree's file image),
//! including supremum-padded trees, and the interleaved kernel must
//! agree at every width — including batches shorter than the width.
//! The fat-node (B-ary) plane is additionally pinned SIMD-vs-scalar:
//! the AVX2 rank-of-key kernels and the always-compiled scalar fallback
//! must be bit-identical on every observable output.

use cobtree_core::fat::FatLayout;
use cobtree_core::NamedLayout;
use cobtree_search::kernel::{force_scalar_rank, simd_rank_enabled};
use cobtree_search::{SaveOptions, SearchBackend, SearchTree, Storage};
use proptest::prelude::*;

fn arb_named() -> impl Strategy<Value = NamedLayout> {
    proptest::sample::select(NamedLayout::ALL.to_vec())
}

fn arb_fat() -> impl Strategy<Value = FatLayout> {
    proptest::sample::select(FatLayout::ALL.to_vec())
}

/// The four storage backends over one (usually padded) key set: the
/// three the builder constructs plus the mapped backend served from the
/// implicit tree's file bytes.
fn all_backends(layout: NamedLayout, keys: &[u64]) -> Vec<SearchTree<u64>> {
    let mut trees: Vec<SearchTree<u64>> = Storage::ALL
        .iter()
        .map(|&storage| {
            SearchTree::builder()
                .layout(layout)
                .storage(storage)
                .keys(keys.iter().copied())
                .build()
                .expect("parity tree")
        })
        .collect();
    let bytes = trees
        .iter()
        .find(|t| t.storage() == Storage::Implicit)
        .expect("implicit built")
        .encode(&SaveOptions::new())
        .expect("encode");
    trees.push(SearchTree::open_bytes(bytes).expect("reopen"));
    trees
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Point parity: kernel `search` and `search_traced_kernel` agree
    /// with the slow `search_reference` / `search_traced` on result
    /// position *and* visited position sequence, for hits, misses, and
    /// probes landing in the padding region.
    #[test]
    fn kernel_point_search_and_trace_match_slow_path(
        layout in arb_named(),
        n in 3u64..=180,
        mult in 1u64..32,
        probes in proptest::collection::vec(0u64..8_000, 48),
    ) {
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        for tree in all_backends(layout, &keys) {
            let storage = tree.storage();
            let (mut slow, mut fast) = (Vec::new(), Vec::new());
            for probe in probes.iter().copied().chain(keys.iter().copied()) {
                prop_assert_eq!(
                    tree.search(probe),
                    tree.search_reference(probe),
                    "{}/{} result for {}", layout, storage, probe
                );
                slow.clear();
                fast.clear();
                let a = tree.search_traced(probe, &mut slow);
                let b = tree.search_traced_kernel(probe, &mut fast);
                prop_assert_eq!(a, b, "{}/{} traced result for {}", layout, storage, probe);
                prop_assert_eq!(&slow, &fast, "{}/{} trace for {}", layout, storage, probe);
            }
        }
    }

    /// Checksum parity: the shared interleaved checksum kernel equals
    /// the slow per-probe accumulation on every backend.
    #[test]
    fn kernel_checksum_matches_slow_accumulation(
        layout in arb_named(),
        n in 3u64..=180,
        mult in 1u64..32,
        probes in proptest::collection::vec(0u64..8_000, 96),
    ) {
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        for tree in all_backends(layout, &keys) {
            let slow = probes
                .iter()
                .filter_map(|&p| tree.search_reference(p))
                .fold(0u64, u64::wrapping_add);
            prop_assert_eq!(
                tree.search_batch_checksum(&probes),
                slow,
                "{}/{}", layout, tree.storage()
            );
        }
    }

    /// Interleaved parity at W ∈ {1, 3, 8, 16}, including batches
    /// shorter than the width and the empty batch.
    #[test]
    fn interleaved_matches_scalar_at_every_width(
        layout in arb_named(),
        n in 3u64..=180,
        mult in 1u64..32,
        probes in proptest::collection::vec(0u64..8_000, 40),
    ) {
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        for tree in all_backends(layout, &keys) {
            let scalar: Vec<Option<u64>> = probes.iter().map(|&p| tree.search(p)).collect();
            let mut out = Vec::new();
            for width in [1usize, 3, 8, 16] {
                tree.search_batch_interleaved(&probes, width, &mut out);
                prop_assert_eq!(&out, &scalar, "{}/{} w={}", layout, tree.storage(), width);
                // Batch strictly shorter than the interleave width.
                let short = width.saturating_sub(1).min(probes.len());
                tree.search_batch_interleaved(&probes[..short], width, &mut out);
                prop_assert_eq!(&out, &scalar[..short].to_vec(), "{}/{} short w={}", layout, tree.storage(), width);
            }
            tree.search_batch_interleaved(&[], 8, &mut out);
            prop_assert!(out.is_empty());
        }
    }

    /// SIMD/scalar bit-parity on the fat-node plane: every observable
    /// output of the rank-of-key kernels — point results, visited
    /// traces, batch checksums, interleaved results at every width, and
    /// bound ranks — must be **bit-identical** with the AVX2 path
    /// enabled and with it force-disabled, on the heap fat backends and
    /// the mapped backend serving the same tree from file bytes. (On a
    /// host without AVX2 both passes take the scalar path and the test
    /// degenerates to self-consistency.)
    ///
    /// This is the only test in the binary that flips the global rank
    /// dispatch, and the binary's other tests use binary layouts that
    /// never reach it, so parallel test threads cannot observe the flip.
    #[test]
    fn simd_and_scalar_fat_rank_kernels_are_bit_identical(
        layout in arb_fat(),
        n in 1u64..=200,
        mult in 1u64..32,
        probes in proptest::collection::vec(0u64..8_000, 64),
    ) {
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        let mut trees: Vec<SearchTree<u64>> = Storage::ALL
            .iter()
            .map(|&storage| {
                SearchTree::builder()
                    .layout(layout)
                    .storage(storage)
                    .keys(keys.iter().copied())
                    .build()
                    .expect("fat parity tree")
            })
            .collect();
        let bytes = trees
            .iter()
            .find(|t| t.storage() == Storage::Implicit)
            .expect("implicit built")
            .encode(&SaveOptions::new())
            .expect("encode");
        trees.push(SearchTree::open_bytes(bytes).expect("reopen"));
        let widths = [1usize, 3, 8, 16];
        for tree in &trees {
            let storage = tree.storage();
            // Pass 1: runtime dispatch as shipped (AVX2 where detected).
            force_scalar_rank(false);
            let simd_results: Vec<Option<u64>> = probes.iter().map(|&p| tree.search(p)).collect();
            let mut simd_trace = Vec::new();
            for &p in &probes {
                tree.search_traced_kernel(p, &mut simd_trace);
            }
            let simd_sum = tree.search_batch_checksum(&probes);
            let mut simd_inter = Vec::new();
            for &w in &widths {
                let mut out = Vec::new();
                tree.search_batch_interleaved(&probes, w, &mut out);
                simd_inter.push(out);
            }
            let simd_bounds: Vec<(u64, Option<u64>, Option<u64>)> = probes
                .iter()
                .map(|&p| (tree.rank(p), tree.lower_bound(p), tree.upper_bound(p)))
                .collect();
            // Pass 2: the always-compiled scalar fallback, force-selected.
            force_scalar_rank(true);
            prop_assert!(!simd_rank_enabled());
            let scalar_results: Vec<Option<u64>> = probes.iter().map(|&p| tree.search(p)).collect();
            let mut scalar_trace = Vec::new();
            for &p in &probes {
                tree.search_traced_kernel(p, &mut scalar_trace);
            }
            let scalar_sum = tree.search_batch_checksum(&probes);
            let scalar_bounds: Vec<(u64, Option<u64>, Option<u64>)> = probes
                .iter()
                .map(|&p| (tree.rank(p), tree.lower_bound(p), tree.upper_bound(p)))
                .collect();
            prop_assert_eq!(&simd_results, &scalar_results, "{}/{} point results", layout, storage);
            prop_assert_eq!(&simd_trace, &scalar_trace, "{}/{} traces", layout, storage);
            prop_assert_eq!(simd_sum, scalar_sum, "{}/{} checksum", layout, storage);
            prop_assert_eq!(&simd_bounds, &scalar_bounds, "{}/{} bounds", layout, storage);
            for (i, &w) in widths.iter().enumerate() {
                let mut out = Vec::new();
                tree.search_batch_interleaved(&probes, w, &mut out);
                prop_assert_eq!(&simd_inter[i], &out, "{}/{} interleaved w={}", layout, storage, w);
            }
            force_scalar_rank(false);
        }
    }

    /// The kernel bound-rank descents (implicit + mapped overrides)
    /// agree with a sorted-vector oracle through the facade's ordered
    /// API, padding included.
    #[test]
    fn kernel_bound_ranks_match_sorted_oracle(
        layout in arb_named(),
        n in 3u64..=180,
        mult in 1u64..32,
        probes in proptest::collection::vec(0u64..8_000, 48),
    ) {
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        for tree in all_backends(layout, &keys) {
            for &p in &probes {
                let lb = keys.partition_point(|&k| k < p) as u64;
                let ub = keys.partition_point(|&k| k <= p) as u64;
                prop_assert_eq!(tree.rank(p), lb, "{}/{} rank({})", layout, tree.storage(), p);
                prop_assert_eq!(
                    tree.lower_bound(p),
                    keys.get(lb as usize).copied(),
                    "{}/{} lower_bound({})", layout, tree.storage(), p
                );
                prop_assert_eq!(
                    tree.upper_bound(p),
                    keys.get(ub as usize).copied(),
                    "{}/{} upper_bound({})", layout, tree.storage(), p
                );
            }
        }
    }
}

/// Forest: the interleaved fan-out answers exactly like routing and
/// searching each probe individually, on sorted and unsorted batches.
#[test]
fn forest_interleaved_batch_matches_point_lookups() {
    use cobtree_search::Forest;
    let keys: Vec<u64> = (1..=5_000u64).map(|k| k * 2).collect();
    let forest = Forest::builder()
        .layout(NamedLayout::MinWep)
        .storage(Storage::Implicit)
        .shards(4)
        .keys(keys.iter().copied())
        .build()
        .expect("forest");
    // Unsorted probe order, hits and misses interleaved.
    let probes: Vec<u64> = (0..3_000u64)
        .map(|i| (i * 2_654_435_761) % 11_000)
        .collect();
    let expect: Vec<Option<(usize, u64)>> = probes
        .iter()
        .map(|&p| {
            forest
                .route(p)
                .and_then(|(shard, tree)| tree.search(p).map(|pos| (shard, pos)))
        })
        .collect();
    let mut out = Vec::new();
    for (width, threads) in [(1, 1), (8, 1), (8, 4), (16, 3)] {
        forest.par_search_batch_interleaved(&probes, width, threads, &mut out);
        assert_eq!(out, expect, "w={width} t={threads}");
    }
    // Sorted input must agree with the sorted dispatch path too.
    let mut sorted = probes.clone();
    sorted.sort_unstable();
    let mut via_sorted = Vec::new();
    forest
        .par_search_batch(&sorted, 2, &mut via_sorted)
        .expect("ascending");
    forest.par_search_batch_interleaved(&sorted, 8, 2, &mut out);
    assert_eq!(out, via_sorted);
    // The single-threaded shard-affine serving entry point agrees with
    // both the parallel fan-out and the point-lookup oracle.
    for width in [1, 8, 16] {
        forest.search_batch_interleaved(&probes, width, &mut out);
        assert_eq!(out, expect, "serial w={width}");
    }
    forest.search_batch_interleaved(&sorted, 8, &mut out);
    assert_eq!(out, via_sorted);
}
