//! Property-based tests for the search-tree substrate.

use cobtree_core::NamedLayout;
use cobtree_search::{ExplicitTree, ImplicitTree};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_named() -> impl Strategy<Value = NamedLayout> {
    proptest::sample::select(NamedLayout::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explicit search is equivalent to a BTreeSet oracle for arbitrary
    /// sorted key sets and probes.
    #[test]
    fn explicit_matches_oracle(
        layout in arb_named(),
        h in 2u32..=8,
        raw in proptest::collection::btree_set(0i64..100_000, 255),
        probes in proptest::collection::vec(0i64..100_000, 50),
    ) {
        let keys: Vec<i64> = raw.iter().copied().take(((1u64 << h) - 1) as usize).collect();
        prop_assume!(keys.len() as u64 == (1u64 << h) - 1);
        let mat = layout.materialize(h);
        let tree = ExplicitTree::build(&mat, &keys);
        let oracle: BTreeSet<i64> = keys.iter().copied().collect();
        for p in probes {
            prop_assert_eq!(tree.search(p).is_some(), oracle.contains(&p), "{:?} probe {}", layout, p);
        }
        for &k in &keys {
            prop_assert!(tree.search(k).is_some());
        }
    }

    /// Implicit search agrees with explicit search on every probe.
    #[test]
    fn implicit_matches_explicit(
        layout in arb_named(),
        h in 2u32..=8,
        mult in 1u64..50,
        probes in proptest::collection::vec(0u64..200_000, 50),
    ) {
        let n = (1u64 << h) - 1;
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        let mat = layout.materialize(h);
        let idx = layout.indexer(h);
        let et = ExplicitTree::build(&mat, &keys);
        let it = ImplicitTree::build(idx, &keys);
        for p in probes {
            prop_assert_eq!(et.search(p).is_some(), it.search(p).is_some(), "{:?} probe {}", layout, p);
        }
    }

    /// Ordered navigation agrees across storage backends and with a
    /// sorted-vector oracle at the raw-backend level (no facade
    /// padding): lower/upper bounds, rank/select, and range cursors.
    #[test]
    fn ordered_ops_agree_between_explicit_and_implicit(
        layout in arb_named(),
        h in 2u32..=8,
        mult in 1u64..40,
        probes in proptest::collection::vec(0u64..200_000, 40),
    ) {
        use cobtree_search::{range_of, SearchBackend};
        let n = (1u64 << h) - 1;
        let keys: Vec<u64> = (1..=n).map(|k| k * mult).collect();
        let mat = layout.materialize(h);
        let et = ExplicitTree::build(&mat, &keys);
        let it = ImplicitTree::build(layout.indexer(h), &keys);
        for p in probes {
            let lb = keys.partition_point(|&k| k < p) as u64;
            prop_assert_eq!(it.rank(p), lb, "{:?} rank({})", layout, p);
            prop_assert_eq!(et.rank(p), lb, "{:?} explicit rank({})", layout, p);
            prop_assert_eq!(it.lower_bound(p), et.lower_bound(p));
            prop_assert_eq!(it.upper_bound(p), et.upper_bound(p));
            prop_assert_eq!(it.upper_bound(p), keys.get(keys.partition_point(|&k| k <= p)).copied());
        }
        for r in 1..=n {
            prop_assert_eq!(it.select(r), Some(keys[(r - 1) as usize]));
            prop_assert_eq!(et.select(r), it.select(r));
        }
        let lo = keys[(n / 3) as usize];
        let hi = keys[(2 * n / 3) as usize];
        let a: Vec<u64> = range_of(&it, lo..=hi).collect();
        let b: Vec<u64> = range_of(&et, lo..=hi).collect();
        prop_assert_eq!(&a, &b, "{:?} range", layout);
        prop_assert_eq!(a, keys[(n / 3) as usize..=(2 * n / 3) as usize].to_vec());
    }

    /// Traced searches visit at most `h` nodes, starting at the root.
    #[test]
    fn trace_shape(layout in arb_named(), h in 2u32..=8, key in 1u64..255) {
        let n = (1u64 << h) - 1;
        prop_assume!(key <= n);
        let mat = layout.materialize(h);
        let tree = ExplicitTree::<u64>::with_rank_keys(&mat);
        let mut visited = Vec::new();
        let found = tree.search_traced(key, &mut visited);
        prop_assert!(found.is_some());
        prop_assert!(visited.len() <= h as usize);
        prop_assert_eq!(visited[0], tree.root_position());
        // All visited positions distinct (no cycles).
        let set: BTreeSet<u64> = visited.iter().copied().collect();
        prop_assert_eq!(set.len(), visited.len());
    }
}
