//! Property-based tests for the tree model and layout engine.

use cobtree_core::engine::{materialize, one_based_positions};
use cobtree_core::{CutRule, Layout, NamedLayout, RecursiveSpec, RootOrder, Subscript, Tree};
use proptest::prelude::*;

fn arb_named() -> impl Strategy<Value = NamedLayout> {
    proptest::sample::select(NamedLayout::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BFS arithmetic is self-consistent for random nodes.
    #[test]
    fn tree_arithmetic(h in 1u32..=20, seed in any::<u64>()) {
        let t = Tree::new(h);
        let node = 1 + seed % t.len();
        let d = t.depth(node);
        prop_assert!(d < h);
        if let Some(p) = t.parent(node) {
            prop_assert_eq!(t.depth(p), d - 1);
            prop_assert!(t.left(p) == Some(node) || t.right(p) == Some(node));
        }
        prop_assert_eq!(t.ancestor_at_depth(node, 0), 1);
        prop_assert_eq!(t.node_at_in_order(t.in_order_rank(node)), node);
        let path = t.path_from_root(node);
        prop_assert_eq!(path.len() as u32, d + 1);
        prop_assert_eq!(*path.last().unwrap(), node);
    }

    /// In-order ranks respect the BST property for random nodes.
    #[test]
    fn in_order_respects_subtrees(h in 2u32..=16, seed in any::<u64>()) {
        let t = Tree::new(h);
        let node = 1 + seed % t.len();
        if let (Some(l), Some(r)) = (t.left(node), t.right(node)) {
            prop_assert!(t.in_order_rank(l) < t.in_order_rank(node));
            prop_assert!(t.in_order_rank(node) < t.in_order_rank(r));
        }
    }

    /// Named-layout indexers agree with materialization up to
    /// automorphism at random heights.
    #[test]
    fn indexers_track_engine(layout in arb_named(), h in 1u32..=12) {
        let idx = layout.indexer(h);
        let from_idx = Layout::from_fn(h, |i| idx.position_of(i));
        let mat = layout.materialize(h);
        prop_assert!(from_idx.equivalent_to(&mat), "{} h={}", layout, h);
    }

    /// The defining property of Hierarchical Layouts: the blocks of the
    /// outermost cut — the top subtree `A` (depths `< g`) and every
    /// bottom subtree rooted at depth `g` — occupy contiguous positions.
    #[test]
    fn outer_decomposition_blocks_are_contiguous(layout in arb_named(), h in 3u32..=10) {
        let spec = layout.spec();
        let g = match spec.root_order {
            RootOrder::InOrder => spec.cut_in.cut(h),
            RootOrder::PreOrder => spec.cut_pre.cut(h),
        };
        let mat = layout.materialize(h);
        let t = Tree::new(h);
        let contiguous = |ps: &mut Vec<u64>| {
            ps.sort_unstable();
            ps.windows(2).all(|w| w[1] == w[0] + 1)
        };
        let mut top: Vec<u64> = t
            .nodes()
            .filter(|&i| t.depth(i) < g)
            .map(|i| mat.position(i))
            .collect();
        prop_assert!(contiguous(&mut top), "{} h={} top subtree", layout, h);
        for bottom_root in t.level(g) {
            let mut ps: Vec<u64> = t
                .nodes()
                .filter(|&i| t.depth(i) >= g && t.ancestor_at_depth(i, g) == bottom_root)
                .map(|i| mat.position(i))
                .collect();
            prop_assert!(contiguous(&mut ps), "{} h={} bottom {}", layout, h, bottom_root);
        }
    }

    /// One-based position dumps are permutations of 1..=n.
    #[test]
    fn one_based_dump_is_permutation(h in 1u32..=10) {
        let spec = RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(2));
        let mut v = one_based_positions(&spec, h);
        v.sort_unstable();
        let expect: Vec<u64> = (1..=(1u64 << h) - 1).collect();
        prop_assert_eq!(v, expect);
    }

    /// Canonical equivalence is symmetric and reflexive on engine output.
    #[test]
    fn equivalence_relation(layout in arb_named(), h in 2u32..=9) {
        let a = layout.materialize(h);
        prop_assert!(a.equivalent_to(&a));
        let b = a.canonicalized();
        prop_assert!(a.equivalent_to(&b) && b.equivalent_to(&a));
    }

    /// Cut rules always produce legal cut heights.
    #[test]
    fn cut_rules_in_range(h in 2u32..=32, table in proptest::collection::vec(0u32..40, 33)) {
        for rule in [
            CutRule::One,
            CutRule::Half,
            CutRule::HalfOfMinusOne,
            CutRule::Bender,
            CutRule::BreadthFirst,
            CutRule::MinWepPre,
            CutRule::Table(table),
        ] {
            let g = rule.cut(h);
            prop_assert!((1..h).contains(&g), "{rule:?} h={h} g={g}");
        }
    }

    /// materialize() is deterministic.
    #[test]
    fn engine_deterministic(layout in arb_named(), h in 1u32..=10) {
        let a = materialize(&layout.spec(), h);
        let b = materialize(&layout.spec(), h);
        prop_assert_eq!(a.positions(), b.positions());
    }
}
