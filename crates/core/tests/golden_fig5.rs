//! The engine must regenerate every Recursive Layout of the paper's
//! Figure 5 exactly, up to a tree automorphism (canonical-form equality).
//!
//! This is the central correctness test of the reproduction: it pins the
//! layout engine, the named-layout specs, and the figure transcription
//! against each other for all twelve Recursive Layout sub-figures.
//! (MINLA and MINBW are external constructions checked in the
//! `cobtree-optimizer` crate.)

use cobtree_core::golden::FIG5;

#[test]
fn engine_reproduces_every_fig5_recursive_layout() {
    for entry in FIG5 {
        let Some(named) = entry.layout else { continue };
        let golden = entry.layout_h6();
        let ours = named.materialize(6);
        assert!(
            ours.equivalent_to(&golden),
            "{} diverges from Figure 5\n  engine: {}\n  golden: {}\n  engine canonical: {}\n  golden canonical: {}",
            entry.name,
            ours.display_one_based(),
            golden.display_one_based(),
            ours.canonicalized().display_one_based(),
            golden.canonicalized().display_one_based(),
        );
    }
}

#[test]
fn fig5_goldens_are_distinct_layouts() {
    // No two sub-figures may canonicalize to the same permutation except
    // the documented coincidences (none at h = 6 among distinct entries).
    let mut canon: Vec<(&str, Vec<u32>)> = Vec::new();
    for entry in FIG5 {
        let c = entry.layout_h6().canonicalized().positions().to_vec();
        for (other, oc) in &canon {
            assert_ne!(&c, oc, "{} and {} coincide", entry.name, other);
        }
        canon.push((entry.name, c));
    }
}

#[test]
fn indexers_reproduce_fig5_layouts() {
    use cobtree_core::layout::Layout;
    for entry in FIG5 {
        let Some(named) = entry.layout else { continue };
        let idx = named.indexer(6);
        let from_idx = Layout::from_fn(6, |i| idx.position_of(i));
        assert!(
            from_idx.equivalent_to(&entry.layout_h6()),
            "{} indexer diverges from Figure 5",
            entry.name
        );
    }
}
