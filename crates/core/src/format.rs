//! The zero-copy on-disk tree-file format (`.cobt`).
//!
//! The paper's layouts are *static artifacts*: computed once, then
//! served from slow storage where the only thing that matters is that
//! **the byte order on the medium is the layout order** — every block
//! transfer then fetches exactly the nodes the layout put together.
//! This module defines the container that makes the claim operational: a
//! tree file is the padded key array in layout order, preceded by a
//! fixed header and a layout descriptor, with every region aligned to a
//! caller-chosen block size. A reader maps the file and serves searches
//! directly from the mapped bytes — no deserialization step exists.
//!
//! The byte-level specification lives in `docs/FORMAT.md`; this module
//! is its reference implementation. Summary:
//!
//! ```text
//! ┌────────────────────┐ offset 0, 96 bytes, little-endian throughout
//! │ header             │ magic, version, key type, descriptor kind,
//! │                    │ height, key count, block size, region table,
//! │                    │ content + header checksums (FNV-1a 64)
//! ├────────────────────┤ offset 96
//! │ descriptor         │ layout name (named kind) or label (table kind)
//! ├────────────────────┤ aligned up to block_bytes
//! │ key region         │ (2^h − 1) keys in layout order, fixed width,
//! │                    │ padding slots zeroed
//! ├────────────────────┤ aligned up to block_bytes (table kind only)
//! │ index region       │ u32 position per BFS node — the serialized
//! │                    │ PositionIndex for non-arithmetic layouts
//! └────────────────────┘
//! ```
//!
//! Two descriptor kinds cover every [`crate::NamedLayout`] /
//! `RecursiveSpec` / materialized-[`Layout`](crate::Layout) source:
//!
//! * **named** (`kind = 0`) — the descriptor region holds the layout's
//!   display name (e.g. `MINWEP`); the reader rebuilds the arithmetic
//!   indexer, so the file carries *no* position table at all;
//! * **table** (`kind = 1`) — the descriptor region holds a free-form
//!   label and the index region holds the materialized permutation
//!   (`u32` position per BFS node), validated as a permutation on open.
//!
//! **Format v2** adds B-ary *fat-node* geometry: header byte 10 stores
//! the node arity (`0` = binary, else a power of two in `2..=64` —
//! slots per chunk). Fat files use the named kind with a
//! [`crate::fat::FatLayout`] label (`FAT8-VEB`, …); their key region
//! holds [`crate::fat::fat_slot_capacity`] slots (chunks are padded to
//! the power-of-two stride, so the region exceeds `2^h − 1` slots) and
//! every structural rule is cross-checked on parse: arity must match
//! the label, the table kind must not carry an arity, and v1 files must
//! keep byte 10 zero. Version-1 files remain readable unchanged.
//!
//! Everything here is pure byte-slicing on `&[u8]`: [`parse`] returns a
//! [`Geometry`] of offsets (no borrows, no copies), and the accessors
//! take the file bytes by reference — whether those bytes come from
//! `std::fs::read` or an `mmap` region is the caller's business
//! (`cobtree-search`'s `MappedTree` does both).

use crate::error::{Error, Result};
use crate::named::NamedLayout;
use crate::tree::Tree;

/// The four magic bytes every tree file starts with.
pub const MAGIC: [u8; 4] = *b"COBT";

/// Newest format version this build reads and writes. Version 2 added
/// the fat-node arity byte (header byte 10); version-1 files are still
/// accepted (their byte 10 is reserved-zero, i.e. binary).
pub const VERSION: u16 = 2;

/// The endianness canary stored at offset 6: the format is defined
/// little-endian, and a writer that stored this constant through a
/// native-endian path on a big-endian machine is detected on read.
pub const ENDIAN_MARK: u16 = 0x1234;

/// Fixed header size in bytes; the descriptor region starts here.
pub const HEADER_LEN: usize = 96;

/// Default region alignment: one cache line / small disk block.
pub const DEFAULT_BLOCK_BYTES: u64 = 64;

/// Tallest tree the format can carry: positions are stored as `u32`, so
/// the node count `2^h − 1` must fit in `u32` (this matches the
/// facade's `MAX_KEYS` ceiling of `2^31 − 1` keys).
pub const MAX_FORMAT_HEIGHT: u32 = 31;

/// Byte offset of the content-checksum field (bytes `80..88`).
pub const CONTENT_HASH_OFFSET: usize = 80;

/// Byte offset of the header-checksum field (bytes `88..96`).
pub const HEADER_HASH_OFFSET: usize = 88;

// ---------------------------------------------------------------------------
// Fixed-width key codecs
// ---------------------------------------------------------------------------

/// A key type with a fixed little-endian wire encoding — the bound for
/// every persistence entry point ([`encode_tree`], `SearchTree::save`,
/// `MappedTree`). The `TAG` goes into the file header so a reader
/// opening the file under the wrong type gets a typed
/// [`Error::KeyTypeMismatch`] instead of garbage keys.
pub trait FixedKey: Copy + Ord + Send + Sync + 'static {
    /// Type tag stored in the header (must be unique per type).
    const TAG: u8;
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// `true` for two's-complement signed encodings — the SIMD
    /// rank-of-key kernels use it to pick between signed comparison and
    /// sign-bias + signed comparison on the raw lanes.
    const SIGNED: bool = false;
    /// Writes `self` into `out[..WIDTH]`, little-endian.
    fn write_le(self, out: &mut [u8]);
    /// Reads a key from `bytes[..WIDTH]`, little-endian.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_fixed_key {
    ($($t:ty => $tag:expr, $signed:expr),* $(,)?) => {$(
        impl FixedKey for $t {
            const TAG: u8 = $tag;
            const WIDTH: usize = std::mem::size_of::<$t>();
            const SIGNED: bool = $signed;
            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out[..Self::WIDTH].copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes[..Self::WIDTH].try_into().expect("validated region"))
            }
        }
    )*};
}

impl_fixed_key!(
    u32 => 1, false,
    u64 => 2, false,
    i32 => 3, true,
    i64 => 4, true,
    u16 => 5, false,
    u128 => 6, false,
);

/// Human-readable name for a key type tag, for error messages and the
/// `serve` experiment's format table.
#[must_use]
pub fn key_tag_name(tag: u8) -> &'static str {
    match tag {
        1 => "u32",
        2 => "u64",
        3 => "i32",
        4 => "i64",
        5 => "u16",
        6 => "u128",
        _ => "unknown",
    }
}

fn known_key_tag(tag: u8) -> bool {
    (1..=6).contains(&tag)
}

// ---------------------------------------------------------------------------
// Descriptor
// ---------------------------------------------------------------------------

/// How the layout travels inside the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptorKind {
    /// Descriptor region holds a [`NamedLayout`] display name; the
    /// reader rebuilds the arithmetic indexer (no index region).
    Named,
    /// Descriptor region holds a free-form label; the index region
    /// holds the materialized `u32` position table, node-indexed.
    Table,
}

impl DescriptorKind {
    fn to_byte(self) -> u8 {
        match self {
            DescriptorKind::Named => 0,
            DescriptorKind::Table => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(DescriptorKind::Named),
            1 => Some(DescriptorKind::Table),
            _ => None,
        }
    }
}

/// Layout descriptor handed to [`encode_tree`].
#[derive(Debug, Clone, Copy)]
pub enum Descriptor<'a> {
    /// A Table I layout, stored by name — the reader recomputes
    /// positions arithmetically, and the file carries no table.
    Named(NamedLayout),
    /// A B-ary fat-node layout (format v2): stored by its
    /// `FAT<arity>-<ORDER>` label with the arity duplicated in header
    /// byte 10, key region sized to the fat slot capacity. The reader
    /// rebuilds the arithmetic [`crate::fat::FatIndex`]; no index
    /// region.
    Fat(crate::fat::FatLayout),
    /// Any other layout, stored as its materialized permutation.
    Table {
        /// Human-readable label (informational; round-trips).
        label: &'a str,
        /// `positions_by_node[i - 1]` = 0-based position of BFS node `i`
        /// (exactly [`crate::Layout::positions`]).
        positions_by_node: &'a [u32],
    },
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`, continuing from `state` (seed with
/// [`fnv1a_init`]). Exposed so tests and tools can re-seal patched
/// files; not a cryptographic hash — it detects corruption, not
/// adversaries.
#[must_use]
pub fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The FNV-1a 64 offset basis (initial state for [`fnv1a`]).
#[must_use]
pub fn fnv1a_init() -> u64 {
    FNV_OFFSET
}

// ---------------------------------------------------------------------------
// Geometry: the parsed, validated header
// ---------------------------------------------------------------------------

/// The validated header of a tree file: plain offsets and sizes, no
/// borrow of the file bytes — so a self-contained reader can own both
/// the mapping and this struct side by side.
#[derive(Debug, Clone)]
pub struct Geometry {
    /// Format version found in the file.
    pub version: u16,
    /// Key type tag (see [`FixedKey::TAG`] / [`key_tag_name`]).
    pub key_tag: u8,
    /// Descriptor kind.
    pub kind: DescriptorKind,
    /// Tree height `h`; the key region holds `2^h − 1` slots.
    pub height: u32,
    /// Stored (real) keys; ranks `key_count + 1 ..= 2^h − 1` are padding.
    pub key_count: u64,
    /// Fat-node arity (slots per chunk): `0` for binary files, else a
    /// power of two in `2..=64` (format v2, matching the `FAT*` label).
    pub arity: u8,
    /// Region alignment the writer used (power of two).
    pub block_bytes: u64,
    /// Descriptor region `(offset, length)` in bytes.
    pub descriptor: (usize, usize),
    /// Key region `(offset, length)` in bytes.
    pub keys: (usize, usize),
    /// Index region `(offset, length)` in bytes (`length == 0` for the
    /// named kind).
    pub index: (usize, usize),
}

impl Geometry {
    /// Slot count of the complete tree, `2^h − 1`. Ranks and key
    /// counts are bounded by this regardless of arity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        (1u64 << self.height) - 1
    }

    /// Storage slots in the key region: [`Geometry::capacity`] for
    /// binary files, [`crate::fat::fat_slot_capacity`] for fat files
    /// (chunk padding makes it larger).
    #[must_use]
    pub fn slots(&self) -> u64 {
        if self.arity == 0 {
            self.capacity()
        } else {
            crate::fat::fat_slot_capacity(self.height, u32::from(self.arity).trailing_zeros())
        }
    }

    /// Per-key width in bytes implied by the key region.
    #[must_use]
    pub fn key_width(&self) -> usize {
        (self.keys.1 as u64 / self.slots()) as usize
    }

    /// The descriptor string (layout name or label).
    ///
    /// # Panics
    /// Panics if `file` is not the buffer this geometry was parsed from
    /// (the region was UTF-8-validated by [`parse`]).
    #[must_use]
    pub fn descriptor_str<'a>(&self, file: &'a [u8]) -> &'a str {
        let (off, len) = self.descriptor;
        std::str::from_utf8(&file[off..off + len]).expect("descriptor validated by parse()")
    }

    /// The key region bytes.
    #[must_use]
    pub fn key_bytes<'a>(&self, file: &'a [u8]) -> &'a [u8] {
        let (off, len) = self.keys;
        &file[off..off + len]
    }

    /// Reads the key stored at layout position `pos` directly from the
    /// file bytes. Callers are responsible for not reading padding
    /// slots (their contents are unspecified; the writer zeroes them).
    #[inline]
    #[must_use]
    pub fn key_at_position<K: FixedKey>(&self, file: &[u8], pos: u64) -> K {
        debug_assert!(pos < self.slots());
        let off = self.keys.0 + (pos as usize) * K::WIDTH;
        K::read_le(&file[off..off + K::WIDTH])
    }

    /// Reads the layout position of BFS `node` from the index region
    /// (table kind only).
    ///
    /// # Panics
    /// Panics (debug) if the geometry has no index region.
    #[inline]
    #[must_use]
    pub fn table_position(&self, file: &[u8], node: u64) -> u64 {
        debug_assert_eq!(self.kind, DescriptorKind::Table);
        let off = self.index.0 + ((node - 1) as usize) * 4;
        u64::from(u32::from_le_bytes(
            file[off..off + 4].try_into().expect("validated region"),
        ))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn align_up(off: u64, align: u64) -> u64 {
    off.div_ceil(align) * align
}

fn check_shape(height: u32, key_count: u64, block_bytes: u64) -> Result<u64> {
    Tree::try_new(height)?;
    if height > MAX_FORMAT_HEIGHT {
        return Err(Error::HeightOutOfRange {
            height,
            min: 1,
            max: MAX_FORMAT_HEIGHT,
        });
    }
    let capacity = (1u64 << height) - 1;
    if key_count == 0 {
        return Err(Error::EmptyKeys);
    }
    if key_count > capacity {
        return Err(Error::KeyCountMismatch {
            expected: capacity,
            got: key_count,
        });
    }
    if block_bytes == 0 || !block_bytes.is_power_of_two() || block_bytes > (1 << 30) {
        return Err(Error::Malformed {
            detail: format!("block_bytes {block_bytes} must be a power of two in 1..=2^30"),
        });
    }
    Ok(capacity)
}

/// Serializes a tree into a fresh byte buffer in the `.cobt` format.
///
/// `key_at_position(p)` must return the key stored at layout position
/// `p` for real slots and `None` for padding slots (which are written as
/// zero bytes). The caller guarantees the mapping is consistent with
/// the descriptor — `cobtree-search`'s `SearchTree::save` derives both
/// from one shared position index, and the round-trip property tests
/// hold it to that.
///
/// # Errors
/// [`Error::HeightOutOfRange`] / [`Error::EmptyKeys`] /
/// [`Error::KeyCountMismatch`] / [`Error::Malformed`] on an impossible
/// shape, and [`Error::NotAPermutation`] when a table descriptor's
/// length does not match the tree.
pub fn encode_tree<K: FixedKey>(
    height: u32,
    key_count: u64,
    block_bytes: u64,
    descriptor: &Descriptor<'_>,
    mut key_at_position: impl FnMut(u64) -> Option<K>,
) -> Result<Vec<u8>> {
    let capacity = check_shape(height, key_count, block_bytes)?;

    let (kind, arity, desc_label): (DescriptorKind, u8, String) = match descriptor {
        Descriptor::Named(layout) => (DescriptorKind::Named, 0, layout.label().to_string()),
        Descriptor::Fat(layout) => (
            DescriptorKind::Named,
            layout.arity() as u8,
            layout.label().to_string(),
        ),
        Descriptor::Table {
            label,
            positions_by_node,
        } => {
            if positions_by_node.len() as u64 != capacity {
                return Err(Error::NotAPermutation {
                    detail: format!(
                        "descriptor table has {} entries, tree needs {capacity}",
                        positions_by_node.len()
                    ),
                });
            }
            (DescriptorKind::Table, 0, (*label).to_string())
        }
    };
    let slots = match descriptor {
        Descriptor::Fat(layout) => {
            crate::fat::FatIndex::try_new(*layout, height)?;
            crate::fat::fat_slot_capacity(height, layout.span())
        }
        _ => capacity,
    };
    let desc_bytes = desc_label.as_bytes();

    let desc_off = HEADER_LEN as u64;
    let desc_len = desc_bytes.len() as u64;
    let key_off = align_up(desc_off + desc_len, block_bytes);
    let key_len = slots * K::WIDTH as u64;
    let (index_off, index_len) = match kind {
        DescriptorKind::Named => (align_up(key_off + key_len, block_bytes), 0),
        DescriptorKind::Table => (align_up(key_off + key_len, block_bytes), capacity * 4),
    };
    let total = (index_off + index_len) as usize;

    let mut out = vec![0u8; total];
    out[0..4].copy_from_slice(&MAGIC);
    out[4..6].copy_from_slice(&VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
    out[8] = K::TAG;
    out[9] = kind.to_byte();
    out[10] = arity;
    // byte 11 reserved, zero.
    out[12..16].copy_from_slice(&height.to_le_bytes());
    out[16..24].copy_from_slice(&key_count.to_le_bytes());
    out[24..32].copy_from_slice(&block_bytes.to_le_bytes());
    out[32..40].copy_from_slice(&desc_off.to_le_bytes());
    out[40..48].copy_from_slice(&desc_len.to_le_bytes());
    out[48..56].copy_from_slice(&key_off.to_le_bytes());
    out[56..64].copy_from_slice(&key_len.to_le_bytes());
    out[64..72].copy_from_slice(&index_off.to_le_bytes());
    out[72..80].copy_from_slice(&index_len.to_le_bytes());

    out[desc_off as usize..(desc_off + desc_len) as usize].copy_from_slice(desc_bytes);

    for p in 0..slots {
        if let Some(k) = key_at_position(p) {
            let off = key_off as usize + (p as usize) * K::WIDTH;
            k.write_le(&mut out[off..off + K::WIDTH]);
        }
    }

    if let Descriptor::Table {
        positions_by_node, ..
    } = descriptor
    {
        for (i, &p) in positions_by_node.iter().enumerate() {
            let off = index_off as usize + i * 4;
            out[off..off + 4].copy_from_slice(&p.to_le_bytes());
        }
    }

    seal_content_hash(&mut out);
    seal_header_hash(&mut out);
    Ok(out)
}

/// Recomputes and stores the content checksum of an encoded file (over
/// every byte after the header — regions *and* their alignment
/// padding, so no byte of the file escapes integrity coverage). Public
/// so tests can re-seal deliberately patched files; returns the stored
/// hash.
///
/// # Panics
/// Panics if `file` is shorter than the header.
pub fn seal_content_hash(file: &mut [u8]) -> u64 {
    let hash = content_hash(file);
    file[CONTENT_HASH_OFFSET..CONTENT_HASH_OFFSET + 8].copy_from_slice(&hash.to_le_bytes());
    hash
}

/// Recomputes and stores the header checksum (over bytes
/// `0..HEADER_HASH_OFFSET`); call after [`seal_content_hash`]. Public
/// for the same test/tooling reasons; returns the stored hash.
///
/// # Panics
/// Panics if `file` is shorter than the header.
pub fn seal_header_hash(file: &mut [u8]) -> u64 {
    let hash = fnv1a(fnv1a_init(), &file[..HEADER_HASH_OFFSET]);
    file[HEADER_HASH_OFFSET..HEADER_HASH_OFFSET + 8].copy_from_slice(&hash.to_le_bytes());
    hash
}

fn content_hash(file: &[u8]) -> u64 {
    fnv1a(fnv1a_init(), &file[HEADER_LEN..])
}

// ---------------------------------------------------------------------------
// Parsing / validation
// ---------------------------------------------------------------------------

fn read_u16(file: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(file[at..at + 2].try_into().expect("bounds checked"))
}

fn read_u32(file: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(file[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(file: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(file[at..at + 8].try_into().expect("bounds checked"))
}

fn region(file: &[u8], off: u64, len: u64, what: &str) -> Result<(usize, usize)> {
    let end = off.checked_add(len).ok_or_else(|| Error::Malformed {
        detail: format!("{what} region offset overflow"),
    })?;
    if end > file.len() as u64 {
        return Err(Error::Truncated {
            needed: end,
            got: file.len() as u64,
        });
    }
    Ok((off as usize, len as usize))
}

/// Parses and fully validates a tree file: magic, version, endianness,
/// header checksum, shape, region table (bounds, ordering, alignment,
/// sizes), content checksum, descriptor (UTF-8; a known layout name for
/// the named kind), and — for the table kind — that the index region is
/// a genuine permutation of `0..2^h − 1`.
///
/// Validation is `O(file size)` (dominated by the checksum); nothing is
/// copied out of `file`.
///
/// # Errors
/// Every malformed input maps to a typed [`Error`] — this function (and
/// everything downstream of it) must never panic on untrusted bytes:
/// [`Error::Truncated`], [`Error::BadMagic`],
/// [`Error::UnsupportedVersion`], [`Error::ChecksumMismatch`],
/// [`Error::Malformed`], [`Error::HeightOutOfRange`],
/// [`Error::EmptyKeys`], [`Error::KeyCountMismatch`],
/// [`Error::NotAPermutation`], or [`Error::UnknownLayout`].
pub fn parse(file: &[u8]) -> Result<Geometry> {
    // Foreign files announce themselves by their first bytes even when
    // shorter than our header.
    if file.len() >= 4 && file[0..4] != MAGIC {
        return Err(Error::BadMagic {
            got: file[0..4].try_into().expect("length checked"),
        });
    }
    if file.len() < HEADER_LEN {
        return Err(Error::Truncated {
            needed: HEADER_LEN as u64,
            got: file.len() as u64,
        });
    }
    let version = read_u16(file, 4);
    if version == 0 || version > VERSION {
        return Err(Error::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    if read_u16(file, 6) != ENDIAN_MARK {
        return Err(Error::Malformed {
            detail: "endianness marker mismatch (file written with non-little-endian encoding)"
                .into(),
        });
    }
    let stored_header_hash = read_u64(file, HEADER_HASH_OFFSET);
    if fnv1a(fnv1a_init(), &file[..HEADER_HASH_OFFSET]) != stored_header_hash {
        return Err(Error::ChecksumMismatch { region: "header" });
    }

    let key_tag = file[8];
    if !known_key_tag(key_tag) {
        return Err(Error::Malformed {
            detail: format!("unknown key type tag {key_tag}"),
        });
    }
    let kind = DescriptorKind::from_byte(file[9]).ok_or_else(|| Error::Malformed {
        detail: format!("unknown descriptor kind {}", file[9]),
    })?;
    let arity = file[10];
    if version < 2 && arity != 0 {
        return Err(Error::Malformed {
            detail: "reserved header bytes 10..12 must be zero".into(),
        });
    }
    if arity != 0 && (!arity.is_power_of_two() || !(2..=64).contains(&arity)) {
        return Err(Error::Malformed {
            detail: format!("fat arity {arity} unsupported (power of two in 2..=64, or 0)"),
        });
    }
    if arity != 0 && kind != DescriptorKind::Named {
        return Err(Error::Malformed {
            detail: "fat geometry requires the named descriptor kind".into(),
        });
    }
    if file[11] != 0 {
        return Err(Error::Malformed {
            detail: "reserved header byte 11 must be zero".into(),
        });
    }

    let height = read_u32(file, 12);
    let key_count = read_u64(file, 16);
    let block_bytes = read_u64(file, 24);
    let capacity = check_shape(height, key_count, block_bytes)?;
    let slots = if arity == 0 {
        capacity
    } else {
        crate::fat::fat_slot_capacity(height, u32::from(arity).trailing_zeros())
    };

    let descriptor = region(file, read_u64(file, 32), read_u64(file, 40), "descriptor")?;
    let keys = region(file, read_u64(file, 48), read_u64(file, 56), "key")?;
    let index = region(file, read_u64(file, 64), read_u64(file, 72), "index")?;

    if descriptor.0 != HEADER_LEN {
        return Err(Error::Malformed {
            detail: format!(
                "descriptor region must start at {HEADER_LEN}, not {}",
                descriptor.0
            ),
        });
    }
    if (keys.0 as u64) % block_bytes != 0 || keys.0 < descriptor.0 + descriptor.1 {
        return Err(Error::Malformed {
            detail: "key region must be block-aligned after the descriptor".into(),
        });
    }
    let width = key_width_of(key_tag);
    if keys.1 as u64 != slots * width as u64 {
        return Err(Error::Malformed {
            detail: format!(
                "key region length {} != slot count {slots} x key width {width}",
                keys.1
            ),
        });
    }
    match kind {
        DescriptorKind::Named => {
            if index.1 != 0 {
                return Err(Error::Malformed {
                    detail: "named-layout files must not carry an index region".into(),
                });
            }
        }
        DescriptorKind::Table => {
            if index.1 as u64 != capacity * 4 {
                return Err(Error::Malformed {
                    detail: format!("index region length {} != capacity {capacity} x 4", index.1),
                });
            }
            if (index.0 as u64) % block_bytes != 0 || index.0 < keys.0 + keys.1 {
                return Err(Error::Malformed {
                    detail: "index region must be block-aligned after the key region".into(),
                });
            }
        }
    }

    if content_hash(file) != read_u64(file, CONTENT_HASH_OFFSET) {
        return Err(Error::ChecksumMismatch { region: "content" });
    }

    let desc_str =
        std::str::from_utf8(&file[descriptor.0..descriptor.0 + descriptor.1]).map_err(|_| {
            Error::Malformed {
                detail: "descriptor region is not UTF-8".into(),
            }
        })?;
    match kind {
        DescriptorKind::Named if arity != 0 => {
            // Fat geometry: the label must be a fat layout AND agree
            // with the header's arity byte (errors as UnknownLayout for
            // an unparseable label, Malformed for a disagreement).
            let layout: crate::fat::FatLayout = desc_str.parse()?;
            if layout.arity() != u32::from(arity) {
                return Err(Error::Malformed {
                    detail: format!(
                        "descriptor label {desc_str} disagrees with header arity {arity}"
                    ),
                });
            }
        }
        DescriptorKind::Named => {
            // Errors as UnknownLayout with the offending name.
            let _: NamedLayout = desc_str.parse()?;
        }
        DescriptorKind::Table => {
            // O(n) permutation check over the mapped table — the one
            // pass that makes every later table_position() infallible.
            let mut seen = vec![false; capacity as usize];
            for node in 1..=capacity {
                let off = index.0 + ((node - 1) as usize) * 4;
                let p = read_u32(file, off) as u64;
                if p >= capacity || seen[p as usize] {
                    return Err(Error::NotAPermutation {
                        detail: format!(
                            "index entry for node {node}: position {p} out of range or repeated"
                        ),
                    });
                }
                seen[p as usize] = true;
            }
        }
    }

    Ok(Geometry {
        version,
        key_tag,
        kind,
        height,
        key_count,
        arity,
        block_bytes,
        descriptor,
        keys,
        index,
    })
}

/// Checks that the file's key type matches `K`, after [`parse`].
///
/// # Errors
/// [`Error::KeyTypeMismatch`] when the tags differ.
pub fn expect_key_type<K: FixedKey>(geometry: &Geometry) -> Result<()> {
    if geometry.key_tag != K::TAG {
        return Err(Error::KeyTypeMismatch {
            expected: K::TAG,
            got: geometry.key_tag,
        });
    }
    Ok(())
}

fn key_width_of(tag: u8) -> usize {
    match tag {
        1 => u32::WIDTH,
        2 => u64::WIDTH,
        3 => i32::WIDTH,
        4 => i64::WIDTH,
        5 => u16::WIDTH,
        6 => u128::WIDTH,
        _ => unreachable!("tag validated by known_key_tag"),
    }
}

// ---------------------------------------------------------------------------
// Forest manifest (`.cobf`)
// ---------------------------------------------------------------------------

/// The four magic bytes every forest manifest starts with.
pub const FOREST_MAGIC: [u8; 4] = *b"COBF";

/// The static-forest manifest version ([`encode_manifest`] writes it;
/// both parsers accept it).
pub const FOREST_VERSION: u16 = 1;

/// The tiered-engine manifest version: adds the epoch counter, the
/// memtable flush record and per-shard file generations
/// ([`encode_manifest_v2`] writes it; both parsers accept it).
pub const FOREST_VERSION_V2: u16 = 2;

/// Fixed version-1 manifest header size in bytes; shard entries start
/// here.
pub const MANIFEST_HEADER_LEN: usize = 40;

/// Fixed version-2 manifest header size in bytes (the extra 24 bytes
/// hold the epoch and the memtable flush record).
pub const MANIFEST_V2_HEADER_LEN: usize = 64;

/// One shard's row in a forest manifest: how many keys the shard holds
/// and — for occupied shards — the smallest and largest of them (the
/// fence data the router is rebuilt from on open). Empty shards (range
/// partitions that received no keys) carry `bounds: None` and no file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardManifest<K> {
    /// Keys stored in this shard's tree file (`0` for an empty shard).
    pub key_count: u64,
    /// `(first_key, last_key)` of the shard, `None` when empty.
    pub bounds: Option<(K, K)>,
}

fn manifest_stride<K: FixedKey>() -> usize {
    // flag byte + key count + first + last.
    1 + 8 + 2 * K::WIDTH
}

/// Serializes a forest manifest: the shard count, total key count and
/// per-shard `(key_count, first_key, last_key)` rows, sealed with the
/// same FNV-1a header/content checksums as tree files. Shard order is
/// the range-partition order; occupied shards must be non-overlapping
/// and ascending.
///
/// # Errors
/// [`Error::EmptyKeys`] when no shard holds a key, and
/// [`Error::Malformed`] for zero shards, inverted bounds
/// (`first > last`), a zero-count shard with bounds (or vice versa), or
/// occupied shards out of ascending fence order.
pub fn encode_manifest<K: FixedKey>(shards: &[ShardManifest<K>]) -> Result<Vec<u8>> {
    if shards.is_empty() {
        return Err(Error::Malformed {
            detail: "a forest manifest needs at least one shard".into(),
        });
    }
    if shards.len() > u32::MAX as usize {
        return Err(Error::Malformed {
            detail: format!("{} shards exceed the manifest's u32 ceiling", shards.len()),
        });
    }
    let mut total = 0u64;
    let mut prev_last: Option<K> = None;
    for (i, s) in shards.iter().enumerate() {
        match (s.key_count, s.bounds) {
            (0, None) => {}
            (0, Some(_)) | (_, None) => {
                return Err(Error::Malformed {
                    detail: format!("shard {i}: key count and bounds disagree about emptiness"),
                });
            }
            (_, Some((first, last))) => {
                if first > last {
                    return Err(Error::Malformed {
                        detail: format!("shard {i}: first key sorts above last key"),
                    });
                }
                if let Some(p) = prev_last {
                    if first <= p {
                        return Err(Error::Malformed {
                            detail: format!("shard {i}: fence overlaps the previous shard"),
                        });
                    }
                }
                prev_last = Some(last);
            }
        }
        total = total.checked_add(s.key_count).ok_or(Error::Malformed {
            detail: "manifest key counts overflow u64".into(),
        })?;
    }
    if total == 0 {
        return Err(Error::EmptyKeys);
    }

    let stride = manifest_stride::<K>();
    let mut out = vec![0u8; MANIFEST_HEADER_LEN + shards.len() * stride];
    out[0..4].copy_from_slice(&FOREST_MAGIC);
    out[4..6].copy_from_slice(&FOREST_VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
    out[8] = K::TAG;
    // bytes 9..12 reserved, zero.
    out[12..16].copy_from_slice(&(shards.len() as u32).to_le_bytes());
    out[16..24].copy_from_slice(&total.to_le_bytes());
    for (i, s) in shards.iter().enumerate() {
        let off = MANIFEST_HEADER_LEN + i * stride;
        if let Some((first, last)) = s.bounds {
            out[off] = 1;
            out[off + 1..off + 9].copy_from_slice(&s.key_count.to_le_bytes());
            first.write_le(&mut out[off + 9..off + 9 + K::WIDTH]);
            last.write_le(&mut out[off + 9 + K::WIDTH..off + 9 + 2 * K::WIDTH]);
        }
    }
    // Content hash covers the entry rows; header hash covers bytes 0..24
    // plus the sealed content hash (same discipline as tree files).
    let content = fnv1a(fnv1a_init(), &out[MANIFEST_HEADER_LEN..]);
    out[24..32].copy_from_slice(&content.to_le_bytes());
    let header = fnv1a(fnv1a_init(), &out[..32]);
    out[32..40].copy_from_slice(&header.to_le_bytes());
    Ok(out)
}

/// Parses and fully validates a forest manifest: magic, version,
/// endianness, checksums, key type, and the same shard-row invariants
/// [`encode_manifest`] enforces. Returns the shard rows in partition
/// order. Accepts both version-1 and version-2 manifests; version-2
/// extras (epoch, flush record, generations) are dropped — use
/// [`parse_manifest_v2`] to keep them.
///
/// # Errors
/// [`Error::BadMagic`] / [`Error::Truncated`] /
/// [`Error::UnsupportedVersion`] / [`Error::ChecksumMismatch`] /
/// [`Error::KeyTypeMismatch`] / [`Error::Malformed`] /
/// [`Error::EmptyKeys`] — never a panic on untrusted bytes. A
/// version-2 manifest recording zero keys (legal for a drained tiered
/// engine) is [`Error::EmptyKeys`] here, because the static forest
/// this row shape describes cannot be empty.
pub fn parse_manifest<K: FixedKey>(bytes: &[u8]) -> Result<Vec<ShardManifest<K>>> {
    let m = parse_manifest_v2::<K>(bytes)?;
    if m.total_keys() == 0 {
        return Err(Error::EmptyKeys);
    }
    Ok(m.shards
        .into_iter()
        .map(|r| ShardManifest {
            key_count: r.key_count,
            bounds: r.bounds,
        })
        .collect())
}

/// One shard's row in a **version-2** manifest: the v1 fence data plus
/// the shard file's *generation* — a store-wide unique file id, so a
/// compaction can publish rebuilt shards under fresh names while
/// carrying untouched shard files forward without renaming them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord<K> {
    /// Keys stored in this shard's tree file (`0` for an empty slot).
    pub key_count: u64,
    /// `(first_key, last_key)` of the shard, `None` when empty.
    pub bounds: Option<(K, K)>,
    /// File generation the shard was written under (`0` for empty
    /// slots and for rows converted from a version-1 manifest).
    pub generation: u64,
}

/// A parsed **version-2** forest manifest: the epoch counter that
/// orders published states, the memtable flush record (how many buffer
/// insertions and tombstones the publishing flush applied), and the
/// generation-stamped shard rows. Version-1 bytes parse into this
/// shape with `epoch`, the flush record and every generation zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestV2<K> {
    /// Publication counter: each successful flush/compaction writes a
    /// new manifest with the next epoch. `0` only for v1 conversions.
    pub epoch: u64,
    /// Memtable insertions applied by the flush that published this
    /// epoch (observability; not needed to rebuild the router).
    pub flushed_inserts: u64,
    /// Tombstones applied by that flush.
    pub flushed_tombstones: u64,
    /// Shard rows in partition order.
    pub shards: Vec<ShardRecord<K>>,
}

impl<K> ManifestV2<K> {
    /// Total key count across the rows. Unlike version 1, zero is
    /// legal: it represents a fully drained tiered engine.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.shards.iter().map(|r| r.key_count).sum()
    }
}

fn manifest_stride_v2<K: FixedKey>() -> usize {
    // flag byte + key count + generation + first + last.
    1 + 8 + 8 + 2 * K::WIDTH
}

/// Shared row-shape validation for both manifest encoders: bounds
/// agree with the count, `first <= last`, occupied fences strictly
/// ascending. Returns the total key count.
fn check_manifest_rows<K: Ord + Copy>(
    rows: impl Iterator<Item = (u64, Option<(K, K)>)>,
) -> Result<u64> {
    let mut total = 0u64;
    let mut prev_last: Option<K> = None;
    for (i, (key_count, bounds)) in rows.enumerate() {
        match (key_count, bounds) {
            (0, None) => {}
            (0, Some(_)) | (_, None) => {
                return Err(Error::Malformed {
                    detail: format!("shard {i}: key count and bounds disagree about emptiness"),
                });
            }
            (_, Some((first, last))) => {
                if first > last {
                    return Err(Error::Malformed {
                        detail: format!("shard {i}: first key sorts above last key"),
                    });
                }
                if let Some(p) = prev_last {
                    if first <= p {
                        return Err(Error::Malformed {
                            detail: format!("shard {i}: fence overlaps the previous shard"),
                        });
                    }
                }
                prev_last = Some(last);
            }
        }
        total = total.checked_add(key_count).ok_or(Error::Malformed {
            detail: "manifest key counts overflow u64".into(),
        })?;
    }
    Ok(total)
}

/// Serializes a **version-2** forest manifest: the v1 row data plus
/// the epoch counter, the memtable flush record and per-shard file
/// generations, sealed with the same FNV-1a header/content checksum
/// discipline. Unlike [`encode_manifest`], a zero total key count is
/// accepted — a tiered engine whose every key was tombstoned away
/// still publishes a (fully empty) state.
///
/// # Errors
/// [`Error::Malformed`] for zero shards, inverted bounds, a
/// count/bounds disagreement, occupied shards out of ascending fence
/// order, or a non-zero generation on an empty slot.
pub fn encode_manifest_v2<K: FixedKey>(manifest: &ManifestV2<K>) -> Result<Vec<u8>> {
    let shards = &manifest.shards;
    if shards.is_empty() {
        return Err(Error::Malformed {
            detail: "a forest manifest needs at least one shard".into(),
        });
    }
    if shards.len() > u32::MAX as usize {
        return Err(Error::Malformed {
            detail: format!("{} shards exceed the manifest's u32 ceiling", shards.len()),
        });
    }
    let total = check_manifest_rows(shards.iter().map(|r| (r.key_count, r.bounds)))?;
    if let Some(i) = shards
        .iter()
        .position(|r| r.bounds.is_none() && r.generation != 0)
    {
        return Err(Error::Malformed {
            detail: format!("shard {i}: empty slot carries a non-zero generation"),
        });
    }

    let stride = manifest_stride_v2::<K>();
    let mut out = vec![0u8; MANIFEST_V2_HEADER_LEN + shards.len() * stride];
    out[0..4].copy_from_slice(&FOREST_MAGIC);
    out[4..6].copy_from_slice(&FOREST_VERSION_V2.to_le_bytes());
    out[6..8].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
    out[8] = K::TAG;
    // bytes 9..12 reserved, zero.
    out[12..16].copy_from_slice(&(shards.len() as u32).to_le_bytes());
    out[16..24].copy_from_slice(&total.to_le_bytes());
    out[24..32].copy_from_slice(&manifest.epoch.to_le_bytes());
    out[32..40].copy_from_slice(&manifest.flushed_inserts.to_le_bytes());
    out[40..48].copy_from_slice(&manifest.flushed_tombstones.to_le_bytes());
    for (i, r) in shards.iter().enumerate() {
        let off = MANIFEST_V2_HEADER_LEN + i * stride;
        if let Some((first, last)) = r.bounds {
            out[off] = 1;
            out[off + 1..off + 9].copy_from_slice(&r.key_count.to_le_bytes());
            out[off + 9..off + 17].copy_from_slice(&r.generation.to_le_bytes());
            first.write_le(&mut out[off + 17..off + 17 + K::WIDTH]);
            last.write_le(&mut out[off + 17 + K::WIDTH..off + 17 + 2 * K::WIDTH]);
        }
    }
    let content = fnv1a(fnv1a_init(), &out[MANIFEST_V2_HEADER_LEN..]);
    out[48..56].copy_from_slice(&content.to_le_bytes());
    let header = fnv1a(fnv1a_init(), &out[..56]);
    out[56..64].copy_from_slice(&header.to_le_bytes());
    Ok(out)
}

/// Parses and fully validates a forest manifest of **either version**,
/// returning the version-2 view: version-1 bytes surface with `epoch`,
/// the flush record and every generation zero; version-2 bytes carry
/// them through. Validation mirrors [`parse_manifest`] (typed errors,
/// never panics), except that a zero total key count is accepted for
/// version-2 bytes.
///
/// # Errors
/// [`Error::BadMagic`] / [`Error::Truncated`] /
/// [`Error::UnsupportedVersion`] / [`Error::ChecksumMismatch`] /
/// [`Error::KeyTypeMismatch`] / [`Error::Malformed`] /
/// [`Error::EmptyKeys`] (version-1 bytes only).
pub fn parse_manifest_v2<K: FixedKey>(bytes: &[u8]) -> Result<ManifestV2<K>> {
    if bytes.len() >= 4 && bytes[0..4] != FOREST_MAGIC {
        return Err(Error::BadMagic {
            got: bytes[0..4].try_into().expect("length checked"),
        });
    }
    if bytes.len() < MANIFEST_HEADER_LEN {
        return Err(Error::Truncated {
            needed: MANIFEST_HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    let version = read_u16(bytes, 4);
    if version == 0 || version > FOREST_VERSION_V2 {
        return Err(Error::UnsupportedVersion {
            got: version,
            supported: FOREST_VERSION_V2,
        });
    }
    let v2 = version == FOREST_VERSION_V2;
    let header_len = if v2 {
        MANIFEST_V2_HEADER_LEN
    } else {
        MANIFEST_HEADER_LEN
    };
    if bytes.len() < header_len {
        return Err(Error::Truncated {
            needed: header_len as u64,
            got: bytes.len() as u64,
        });
    }
    if read_u16(bytes, 6) != ENDIAN_MARK {
        return Err(Error::Malformed {
            detail: "endianness marker mismatch in forest manifest".into(),
        });
    }
    // v1 seals the header hash over bytes 0..32 at offset 32; v2 over
    // bytes 0..56 at offset 56 (the wider header).
    let (header_covered, header_at, content_at) = if v2 { (56, 56, 48) } else { (32, 32, 24) };
    if fnv1a(fnv1a_init(), &bytes[..header_covered]) != read_u64(bytes, header_at) {
        return Err(Error::ChecksumMismatch { region: "header" });
    }
    if bytes[8] != K::TAG {
        return Err(Error::KeyTypeMismatch {
            expected: K::TAG,
            got: bytes[8],
        });
    }
    if bytes[9] != 0 || read_u16(bytes, 10) != 0 {
        return Err(Error::Malformed {
            detail: "reserved manifest bytes 9..12 must be zero".into(),
        });
    }
    let shard_count = read_u32(bytes, 12) as usize;
    if shard_count == 0 {
        return Err(Error::Malformed {
            detail: "a forest manifest needs at least one shard".into(),
        });
    }
    let stride = if v2 {
        manifest_stride_v2::<K>()
    } else {
        manifest_stride::<K>()
    };
    let needed = header_len as u64 + shard_count as u64 * stride as u64;
    if (bytes.len() as u64) < needed {
        return Err(Error::Truncated {
            needed,
            got: bytes.len() as u64,
        });
    }
    if bytes.len() as u64 != needed {
        return Err(Error::Malformed {
            detail: format!(
                "manifest is {} bytes, shard table dictates {needed}",
                bytes.len()
            ),
        });
    }
    if fnv1a(fnv1a_init(), &bytes[header_len..]) != read_u64(bytes, content_at) {
        return Err(Error::ChecksumMismatch { region: "content" });
    }

    // Occupied-row payload starts after the flag + key count (+ the v2
    // generation); empty rows must be all-zero past the flag.
    let keys_at = if v2 { 17 } else { 9 };
    let mut shards = Vec::with_capacity(shard_count);
    for i in 0..shard_count {
        let off = header_len + i * stride;
        let flag = bytes[off];
        let key_count = read_u64(bytes, off + 1);
        let entry = match flag {
            0 => {
                if key_count != 0 || bytes[off + 9..off + stride].iter().any(|&b| b != 0) {
                    return Err(Error::Malformed {
                        detail: format!("shard {i}: empty shard carries non-zero payload"),
                    });
                }
                ShardRecord {
                    key_count: 0,
                    bounds: None,
                    generation: 0,
                }
            }
            1 => {
                if key_count == 0 {
                    return Err(Error::Malformed {
                        detail: format!("shard {i}: occupied shard with zero keys"),
                    });
                }
                let generation = if v2 { read_u64(bytes, off + 9) } else { 0 };
                let first = K::read_le(&bytes[off + keys_at..off + keys_at + K::WIDTH]);
                let last =
                    K::read_le(&bytes[off + keys_at + K::WIDTH..off + keys_at + 2 * K::WIDTH]);
                ShardRecord {
                    key_count,
                    bounds: Some((first, last)),
                    generation,
                }
            }
            other => {
                return Err(Error::Malformed {
                    detail: format!("shard {i}: unknown occupancy flag {other}"),
                });
            }
        };
        shards.push(entry);
    }
    let total = check_manifest_rows(shards.iter().map(|r| (r.key_count, r.bounds)))?;
    if total != read_u64(bytes, 16) {
        return Err(Error::Malformed {
            detail: format!(
                "manifest total {} disagrees with shard rows summing to {total}",
                read_u64(bytes, 16)
            ),
        });
    }
    if total == 0 && !v2 {
        return Err(Error::EmptyKeys);
    }
    let (epoch, flushed_inserts, flushed_tombstones) = if v2 {
        (
            read_u64(bytes, 24),
            read_u64(bytes, 32),
            read_u64(bytes, 40),
        )
    } else {
        (0, 0, 0)
    };
    Ok(ManifestV2 {
        epoch,
        flushed_inserts,
        flushed_tombstones,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::PositionIndex;

    /// A tiny height-3 named file with keys 10..=70 at in-order ranks.
    fn sample_named() -> Vec<u8> {
        let layout = NamedLayout::MinWep;
        let idx = layout.indexer(3);
        let tree = Tree::new(3);
        encode_tree::<u64>(3, 7, 64, &Descriptor::Named(layout), |p| {
            // invert: which node sits at position p?
            tree.nodes()
                .find(|&i| idx.position(i, tree.depth(i)) == p)
                .map(|i| tree.in_order_rank(i) * 10)
        })
        .unwrap()
    }

    fn sample_table() -> Vec<u8> {
        let layout = NamedLayout::HalfWep.materialize(3);
        let tree = Tree::new(3);
        encode_tree::<u64>(
            3,
            5, // two padding slots
            128,
            &Descriptor::Table {
                label: "halfwep-materialized",
                positions_by_node: layout.positions(),
            },
            |p| {
                let node = tree
                    .nodes()
                    .find(|&i| layout.position(i) == p)
                    .expect("position covered");
                let rank = tree.in_order_rank(node);
                (rank <= 5).then_some(rank * 3)
            },
        )
        .unwrap()
    }

    #[test]
    fn named_file_round_trips_through_parse() {
        let file = sample_named();
        let g = parse(&file).unwrap();
        assert_eq!(g.version, VERSION);
        assert_eq!(g.kind, DescriptorKind::Named);
        assert_eq!(g.height, 3);
        assert_eq!(g.key_count, 7);
        assert_eq!(g.capacity(), 7);
        assert_eq!(g.block_bytes, 64);
        assert_eq!(g.descriptor_str(&file), "MINWEP");
        assert_eq!(g.key_width(), 8);
        expect_key_type::<u64>(&g).unwrap();
        assert_eq!(
            expect_key_type::<u32>(&g).unwrap_err(),
            Error::KeyTypeMismatch {
                expected: 1,
                got: 2
            }
        );
        // Key region is block-aligned and zero-copy readable.
        assert_eq!(g.keys.0 % 64, 0);
        let idx = NamedLayout::MinWep.indexer(3);
        let tree = Tree::new(3);
        for i in tree.nodes() {
            let p = idx.position(i, tree.depth(i));
            assert_eq!(
                g.key_at_position::<u64>(&file, p),
                tree.in_order_rank(i) * 10
            );
        }
    }

    #[test]
    fn table_file_round_trips_with_padding() {
        let file = sample_table();
        let g = parse(&file).unwrap();
        assert_eq!(g.kind, DescriptorKind::Table);
        assert_eq!(g.key_count, 5);
        assert_eq!(g.descriptor_str(&file), "halfwep-materialized");
        assert_eq!(g.keys.0 % 128, 0);
        assert_eq!(g.index.0 % 128, 0);
        let layout = NamedLayout::HalfWep.materialize(3);
        for i in 1..=7u64 {
            assert_eq!(g.table_position(&file, i), layout.position(i));
        }
    }

    /// A height-5 FAT8-VEB file with 23 real keys (rank × 10).
    fn sample_fat() -> Vec<u8> {
        let layout: crate::fat::FatLayout = "FAT8-VEB".parse().unwrap();
        let index = layout.try_index(5).unwrap();
        let tree = Tree::new(5);
        encode_tree::<u64>(5, 23, 64, &Descriptor::Fat(layout), |p| {
            let node = index.node_at_position(p)?;
            let rank = tree.in_order_rank(node);
            (rank <= 23).then_some(rank * 10)
        })
        .unwrap()
    }

    #[test]
    fn fat_file_round_trips_through_parse() {
        let file = sample_fat();
        let g = parse(&file).unwrap();
        assert_eq!(g.version, VERSION);
        assert_eq!(g.kind, DescriptorKind::Named);
        assert_eq!(g.arity, 8);
        assert_eq!(g.height, 5);
        assert_eq!(g.key_count, 23);
        assert_eq!(g.capacity(), 31);
        assert_eq!(g.slots(), crate::fat::fat_slot_capacity(5, 3));
        assert!(g.slots() > g.capacity());
        assert_eq!(g.key_width(), 8);
        assert_eq!(g.descriptor_str(&file), "FAT8-VEB");
        assert_eq!(g.keys.1 as u64, g.slots() * 8);
        let layout: crate::fat::FatLayout = "FAT8-VEB".parse().unwrap();
        let index = layout.try_index(5).unwrap();
        let tree = Tree::new(5);
        for node in tree.nodes() {
            let rank = tree.in_order_rank(node);
            if rank <= 23 {
                let p = index.position(node, tree.depth(node));
                assert_eq!(g.key_at_position::<u64>(&file, p), rank * 10);
            }
        }
    }

    #[test]
    fn fat_geometry_violations_are_typed() {
        let base = sample_fat();

        // Arity not a power of two / out of range.
        for bad in [3u8, 7, 128, 255] {
            let mut f = base.clone();
            f[10] = bad;
            seal_header_hash(&mut f);
            assert!(
                matches!(parse(&f).unwrap_err(), Error::Malformed { .. }),
                "arity {bad}"
            );
        }

        // Arity zeroed under a FAT label: the label no longer parses as
        // a NamedLayout.
        let mut f = base.clone();
        f[10] = 0;
        seal_header_hash(&mut f);
        assert!(matches!(
            parse(&f).unwrap_err(),
            Error::UnknownLayout { .. } | Error::Malformed { .. }
        ));

        // Arity flipped to a *different valid* arity: key-region size
        // (and the label cross-check) no longer agree.
        let mut f = base.clone();
        f[10] = 16;
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));

        // A v1 header may not carry an arity.
        let mut f = base.clone();
        f[4..6].copy_from_slice(&1u16.to_le_bytes());
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));

        // The table kind may not carry an arity.
        let mut f = sample_table();
        f[10] = 8;
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let file = sample_table();
        for len in 0..file.len() {
            let err = parse(&file[..len]).expect_err("truncated file must not parse");
            assert!(
                matches!(
                    err,
                    Error::Truncated { .. } | Error::ChecksumMismatch { .. }
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }
        assert!(parse(&file).is_ok());
    }

    #[test]
    fn header_corruption_is_rejected_typed() {
        let base = sample_named();

        let mut f = base.clone();
        f[0] = b'X';
        assert!(matches!(parse(&f).unwrap_err(), Error::BadMagic { .. }));

        let mut f = base.clone();
        f[4..6].copy_from_slice(&99u16.to_le_bytes());
        seal_header_hash(&mut f);
        assert_eq!(
            parse(&f).unwrap_err(),
            Error::UnsupportedVersion {
                got: 99,
                supported: VERSION
            }
        );

        let mut f = base.clone();
        f[6..8].copy_from_slice(&0x3412u16.to_le_bytes());
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));

        // Flipping a header byte without resealing trips the header hash.
        let mut f = base.clone();
        f[16] ^= 0xFF;
        assert_eq!(
            parse(&f).unwrap_err(),
            Error::ChecksumMismatch { region: "header" }
        );

        // Unknown key tag / kind, resealed so the hash is honest.
        let mut f = base.clone();
        f[8] = 42;
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));

        let mut f = base.clone();
        f[9] = 7;
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));

        // Height out of the format's range.
        let mut f = base.clone();
        f[12..16].copy_from_slice(&40u32.to_le_bytes());
        seal_header_hash(&mut f);
        assert!(matches!(
            parse(&f).unwrap_err(),
            Error::HeightOutOfRange { .. }
        ));

        // key_count 0 / beyond capacity.
        let mut f = base.clone();
        f[16..24].copy_from_slice(&0u64.to_le_bytes());
        seal_header_hash(&mut f);
        assert_eq!(parse(&f).unwrap_err(), Error::EmptyKeys);

        let mut f = base.clone();
        f[16..24].copy_from_slice(&8u64.to_le_bytes());
        seal_header_hash(&mut f);
        assert!(matches!(
            parse(&f).unwrap_err(),
            Error::KeyCountMismatch { .. }
        ));

        // Non-power-of-two block size.
        let mut f = base;
        f[24..32].copy_from_slice(&48u64.to_le_bytes());
        seal_header_hash(&mut f);
        assert!(matches!(parse(&f).unwrap_err(), Error::Malformed { .. }));
    }

    #[test]
    fn content_corruption_is_rejected_typed() {
        // Key-region bit flip without resealing: content checksum.
        let base = sample_named();
        let g = parse(&base).unwrap();
        let mut f = base.clone();
        f[g.keys.0] ^= 0x01;
        assert_eq!(
            parse(&f).unwrap_err(),
            Error::ChecksumMismatch { region: "content" }
        );

        // Unknown layout name, honestly resealed.
        let mut f = base;
        let (off, len) = g.descriptor;
        f[off..off + len].copy_from_slice(b"NOPWEP"); // same length as MINWEP
        seal_content_hash(&mut f);
        seal_header_hash(&mut f);
        assert_eq!(
            parse(&f).unwrap_err(),
            Error::UnknownLayout {
                name: "NOPWEP".into()
            }
        );

        // Table permutation violation, honestly resealed.
        let table = sample_table();
        let gt = parse(&table).unwrap();
        let mut f = table;
        let first = gt.index.0;
        let second = first + 4;
        let dup = f[first..first + 4].to_vec();
        f[second..second + 4].copy_from_slice(&dup);
        seal_content_hash(&mut f);
        seal_header_hash(&mut f);
        assert!(matches!(
            parse(&f).unwrap_err(),
            Error::NotAPermutation { .. }
        ));
    }

    #[test]
    fn encode_rejects_impossible_shapes() {
        let d = Descriptor::Named(NamedLayout::MinWep);
        assert_eq!(
            encode_tree::<u64>(3, 0, 64, &d, |_| None).unwrap_err(),
            Error::EmptyKeys
        );
        assert!(matches!(
            encode_tree::<u64>(3, 8, 64, &d, |_| None).unwrap_err(),
            Error::KeyCountMismatch { .. }
        ));
        assert!(matches!(
            encode_tree::<u64>(0, 1, 64, &d, |_| None).unwrap_err(),
            Error::HeightOutOfRange { .. }
        ));
        assert!(matches!(
            encode_tree::<u64>(32, 1, 64, &d, |_| None).unwrap_err(),
            Error::HeightOutOfRange { .. }
        ));
        assert!(matches!(
            encode_tree::<u64>(3, 7, 100, &d, |_| None).unwrap_err(),
            Error::Malformed { .. }
        ));
        let short = [0u32; 3];
        assert!(matches!(
            encode_tree::<u64>(
                3,
                7,
                64,
                &Descriptor::Table {
                    label: "x",
                    positions_by_node: &short
                },
                |_| None
            )
            .unwrap_err(),
            Error::NotAPermutation { .. }
        ));
    }

    fn sample_manifest() -> Vec<u8> {
        encode_manifest::<u64>(&[
            ShardManifest {
                key_count: 3,
                bounds: Some((10, 30)),
            },
            ShardManifest {
                key_count: 0,
                bounds: None,
            },
            ShardManifest {
                key_count: 2,
                bounds: Some((40, 50)),
            },
        ])
        .unwrap()
    }

    #[test]
    fn manifest_round_trips_with_empty_shards() {
        let bytes = sample_manifest();
        let shards = parse_manifest::<u64>(&bytes).unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].key_count, 3);
        assert_eq!(shards[0].bounds, Some((10, 30)));
        assert_eq!(shards[1].key_count, 0);
        assert_eq!(shards[1].bounds, None);
        assert_eq!(shards[2].bounds, Some((40, 50)));
    }

    #[test]
    fn manifest_rejects_bad_shapes_on_encode() {
        assert!(matches!(
            encode_manifest::<u64>(&[]).unwrap_err(),
            Error::Malformed { .. }
        ));
        // All shards empty.
        assert_eq!(
            encode_manifest::<u64>(&[ShardManifest {
                key_count: 0,
                bounds: None
            }])
            .unwrap_err(),
            Error::EmptyKeys
        );
        // Count/bounds disagreement.
        assert!(matches!(
            encode_manifest::<u64>(&[ShardManifest {
                key_count: 5,
                bounds: None
            }])
            .unwrap_err(),
            Error::Malformed { .. }
        ));
        // Overlapping fences.
        assert!(matches!(
            encode_manifest::<u64>(&[
                ShardManifest {
                    key_count: 2,
                    bounds: Some((10, 30))
                },
                ShardManifest {
                    key_count: 2,
                    bounds: Some((30, 40))
                },
            ])
            .unwrap_err(),
            Error::Malformed { .. }
        ));
        // Inverted bounds.
        assert!(matches!(
            encode_manifest::<u64>(&[ShardManifest {
                key_count: 2,
                bounds: Some((9, 3))
            }])
            .unwrap_err(),
            Error::Malformed { .. }
        ));
    }

    #[test]
    fn manifest_corruption_is_rejected_typed() {
        let base = sample_manifest();

        let mut f = base.clone();
        f[0] = b'X';
        assert!(matches!(
            parse_manifest::<u64>(&f).unwrap_err(),
            Error::BadMagic { .. }
        ));

        for len in 0..base.len() {
            let err = parse_manifest::<u64>(&base[..len]).expect_err("truncated manifest");
            assert!(
                matches!(
                    err,
                    Error::Truncated { .. } | Error::ChecksumMismatch { .. }
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }

        // Header bit flip without resealing.
        let mut f = base.clone();
        f[16] ^= 0xFF;
        assert_eq!(
            parse_manifest::<u64>(&f).unwrap_err(),
            Error::ChecksumMismatch { region: "header" }
        );

        // Entry bit flip without resealing.
        let mut f = base.clone();
        let off = MANIFEST_HEADER_LEN + 1;
        f[off] ^= 0x01;
        assert_eq!(
            parse_manifest::<u64>(&f).unwrap_err(),
            Error::ChecksumMismatch { region: "content" }
        );

        // Wrong key type.
        assert_eq!(
            parse_manifest::<u32>(&base).unwrap_err(),
            Error::KeyTypeMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    fn sample_manifest_v2() -> ManifestV2<u64> {
        ManifestV2 {
            epoch: 7,
            flushed_inserts: 120,
            flushed_tombstones: 13,
            shards: vec![
                ShardRecord {
                    key_count: 3,
                    bounds: Some((10, 30)),
                    generation: 4,
                },
                ShardRecord {
                    key_count: 0,
                    bounds: None,
                    generation: 0,
                },
                ShardRecord {
                    key_count: 2,
                    bounds: Some((40, 50)),
                    generation: 9,
                },
            ],
        }
    }

    #[test]
    fn manifest_v2_round_trips_epoch_flush_record_and_generations() {
        let m = sample_manifest_v2();
        let bytes = encode_manifest_v2(&m).unwrap();
        assert_eq!(read_u16(&bytes, 4), FOREST_VERSION_V2);
        let back = parse_manifest_v2::<u64>(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_keys(), 5);
        // The v1-shaped view drops the extras but keeps the rows.
        let rows = parse_manifest::<u64>(&bytes).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].key_count, 3);
        assert_eq!(rows[0].bounds, Some((10, 30)));
        assert_eq!(rows[1].bounds, None);
    }

    /// Backward compatibility: version-1 bytes keep parsing — through
    /// the original entry point *and* the v2 view, where the epoch,
    /// flush record and generations surface as zero.
    #[test]
    fn manifest_v1_files_still_parse_after_v2() {
        let v1 = sample_manifest();
        let rows = parse_manifest::<u64>(&v1).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].bounds, Some((40, 50)));
        let m = parse_manifest_v2::<u64>(&v1).unwrap();
        assert_eq!(m.epoch, 0);
        assert_eq!(m.flushed_inserts, 0);
        assert_eq!(m.flushed_tombstones, 0);
        assert!(m.shards.iter().all(|r| r.generation == 0));
        assert_eq!(m.total_keys(), 5);
    }

    #[test]
    fn manifest_v2_accepts_a_drained_store_but_v1_view_refuses_it() {
        let drained = ManifestV2::<u64> {
            epoch: 3,
            flushed_inserts: 0,
            flushed_tombstones: 8,
            shards: vec![
                ShardRecord {
                    key_count: 0,
                    bounds: None,
                    generation: 0,
                };
                2
            ],
        };
        let bytes = encode_manifest_v2(&drained).unwrap();
        let back = parse_manifest_v2::<u64>(&bytes).unwrap();
        assert_eq!(back.total_keys(), 0);
        assert_eq!(back.epoch, 3);
        // The static-forest view cannot represent an empty store.
        assert_eq!(parse_manifest::<u64>(&bytes).unwrap_err(), Error::EmptyKeys);
    }

    #[test]
    fn manifest_v2_corruption_and_truncation_fail_typed() {
        let base = encode_manifest_v2(&sample_manifest_v2()).unwrap();
        for len in 0..base.len() {
            let err = parse_manifest_v2::<u64>(&base[..len]).expect_err("truncated manifest");
            assert!(
                matches!(
                    err,
                    Error::Truncated { .. } | Error::ChecksumMismatch { .. }
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }
        for at in 0..base.len() {
            let mut f = base.clone();
            f[at] ^= 0x20;
            assert!(
                parse_manifest_v2::<u64>(&f).is_err(),
                "byte {at}: corruption accepted"
            );
        }
        // A future version is refused with the v2 ceiling.
        let mut f = base.clone();
        f[4..6].copy_from_slice(&3u16.to_le_bytes());
        let header = fnv1a(fnv1a_init(), &f[..56]);
        f[56..64].copy_from_slice(&header.to_le_bytes());
        assert_eq!(
            parse_manifest_v2::<u64>(&f).unwrap_err(),
            Error::UnsupportedVersion {
                got: 3,
                supported: FOREST_VERSION_V2
            }
        );
        // Empty slots must not smuggle a generation.
        let mut bad = sample_manifest_v2();
        bad.shards[1].generation = 5;
        assert!(matches!(
            encode_manifest_v2(&bad).unwrap_err(),
            Error::Malformed { .. }
        ));
    }

    #[test]
    fn fixed_key_codecs_round_trip() {
        let mut buf = [0u8; 16];
        7u32.write_le(&mut buf);
        assert_eq!(u32::read_le(&buf), 7);
        (-9i64).write_le(&mut buf);
        assert_eq!(i64::read_le(&buf), -9);
        (u128::MAX - 5).write_le(&mut buf);
        assert_eq!(u128::read_le(&buf), u128::MAX - 5);
        assert_eq!(key_tag_name(u16::TAG), "u16");
        assert_eq!(key_tag_name(99), "unknown");
    }
}
