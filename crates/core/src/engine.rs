//! The Hierarchical Layout engine: materializes any [`RecursiveSpec`] as a
//! permutation of the tree nodes.
//!
//! Generation follows the paper's recursion (§I-B) literally. At each
//! branch, a subtree of height `h` occupying a contiguous block is cut at
//! height `g` into a top subtree `A` and `2^g` bottom subtrees:
//!
//! * **In-order branch** — `A` is placed in the middle; the sequence of
//!   bottom subtrees (children of `A`'s leaves read in ascending position
//!   order, each leaf contributing its left then right child) is split in
//!   half, the first half going left of `A` (restriction (c));
//! * **Pre-order branch** — `A` is placed at the block end nearer its own
//!   parent leaf (restriction (f)), all bottom subtrees on the other side.
//!   On the left flank of a parent this mirrors into a post-order
//!   arrangement.
//!
//! On each side, bottom subtrees whose 1-based *outward* rank `t`
//! satisfies `t < k` are arranged pre-order with their root adjacent-most
//! towards `A`; the rest in-order (restriction (d)). Alternating layouts
//! reverse each side's sequence (Theorem 2). The per-branch arithmetic is
//! shared with the generic pointer-less indexer (`crate::branch`).
//!
//! Child-order choices that differ only by a tree automorphism (e.g. which
//! of a leaf's two children sits nearer `A`) are made in a fixed natural
//! way; comparisons against external golden data should therefore use
//! [`Layout::canonicalized`].

use crate::branch::{Branch, Mode};
use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::spec::RecursiveSpec;
use crate::tree::{NodeId, Tree};

/// Largest height whose permutation can be materialized in memory
/// (positions are stored as `u32`; use index arithmetic beyond).
pub const MAX_MATERIALIZE_HEIGHT: u32 = 31;

/// Materializes `spec` for a tree of `height` levels.
///
/// # Errors
/// [`Error::HeightOutOfRange`] if `height` is 0 or large enough that the
/// permutation would not fit in memory (`height > 31`).
pub fn try_materialize(spec: &RecursiveSpec, height: u32) -> Result<Layout> {
    if !(1..=MAX_MATERIALIZE_HEIGHT).contains(&height) {
        return Err(Error::HeightOutOfRange {
            height,
            min: 1,
            max: MAX_MATERIALIZE_HEIGHT,
        });
    }
    let tree = Tree::new(height);
    let mut pos = vec![u32::MAX; tree.len() as usize];
    let mut gen = Generator {
        spec,
        pos: &mut pos,
    };
    gen.fill(1, height, 0, Mode::root(spec));
    Layout::try_from_positions(height, pos)
}

/// Materializes `spec` for a tree of `height` levels.
///
/// # Panics
/// Panics where [`try_materialize`] errors.
#[must_use]
pub fn materialize(spec: &RecursiveSpec, height: u32) -> Layout {
    match try_materialize(spec, height) {
        Ok(layout) => layout,
        Err(e) => panic!("{e}"),
    }
}

struct Generator<'a> {
    spec: &'a RecursiveSpec,
    pos: &'a mut [u32],
}

impl Generator<'_> {
    /// Lays out the subtree rooted at `node` (height `h`) into the block of
    /// positions `[lo, lo + 2^h − 1)`, arranged per `mode`.
    fn fill(&mut self, node: NodeId, h: u32, lo: u64, mode: Mode) {
        if h == 1 {
            self.pos[(node - 1) as usize] = lo as u32;
            return;
        }
        let br = Branch::new(self.spec, mode, h);
        self.fill(node, br.g, lo + br.a_offset(), mode);

        // Leaves of the top subtree, by the positions just assigned.
        let first = node << (br.g - 1);
        let mut leaves: Vec<NodeId> = (first..first + (1u64 << (br.g - 1))).collect();
        leaves.sort_by_key(|&x| self.pos[(x - 1) as usize]);

        for (li, &x) in leaves.iter().enumerate() {
            for side in 0..2u64 {
                let q = 2 * li as u64 + side;
                let (off, child_mode) = br.bottom_block(q);
                self.fill(2 * x + side, br.bh, lo + off, child_mode);
            }
        }
    }
}

/// Materializes every node position by querying an arbitrary position
/// function (for cross-checking index arithmetic against the engine).
#[must_use]
pub fn materialize_from_index(height: u32, f: impl FnMut(NodeId) -> u64) -> Layout {
    Layout::from_fn(height, f)
}

/// Convenience: positions of all nodes of `tree` under `spec`, 1-based, in
/// BFS order — the presentation used in the paper's Figure 5.
#[must_use]
pub fn one_based_positions(spec: &RecursiveSpec, height: u32) -> Vec<u64> {
    let l = materialize(spec, height);
    Tree::new(height)
        .nodes()
        .map(|i| l.position(i) + 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CutRule, RootOrder, Subscript};

    fn spec_in_order() -> RecursiveSpec {
        RecursiveSpec::new(RootOrder::InOrder, CutRule::One, Subscript::K(1))
    }

    fn spec_pre_order() -> RecursiveSpec {
        RecursiveSpec::new(RootOrder::PreOrder, CutRule::One, Subscript::Infinity)
    }

    #[test]
    fn in_order_spec_matches_traversal() {
        for h in 1..=10 {
            let t = Tree::new(h);
            let l = materialize(&spec_in_order(), h);
            for i in t.nodes() {
                assert_eq!(l.position(i) + 1, t.in_order_rank(i), "node {i}, h={h}");
            }
        }
    }

    #[test]
    fn pre_order_spec_matches_traversal() {
        // Classic pre-order rank by explicit path walk.
        fn pre_rank(t: &Tree, node: NodeId) -> u64 {
            let mut rank = 0;
            let mut cur = 1u64;
            let d = t.depth(node);
            for k in 1..=d {
                let next = node >> (d - k);
                rank += 1;
                if next == 2 * cur + 1 {
                    rank += t.subtree_len(2 * cur);
                }
                cur = next;
            }
            rank
        }
        for h in 1..=10 {
            let t = Tree::new(h);
            let l = materialize(&spec_pre_order(), h);
            for i in t.nodes() {
                assert_eq!(l.position(i), pre_rank(&t, i), "node {i}, h={h}");
            }
        }
    }

    #[test]
    fn breadth_first_spec_is_bfs_order() {
        let spec = RecursiveSpec::new(
            RootOrder::PreOrder,
            CutRule::BreadthFirst,
            Subscript::Infinity,
        );
        for h in 2..=9 {
            let l = materialize(&spec, h);
            for i in 1..=l.len() {
                assert_eq!(l.position(i), i - 1, "h={h} node {i}");
            }
        }
    }

    #[test]
    fn all_spec_families_yield_permutations() {
        let specs = [
            RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(1)),
            RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(1)).alternating(),
            RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity),
            RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity)
                .alternating(),
            RecursiveSpec::new(RootOrder::PreOrder, CutRule::Bender, Subscript::Infinity),
            RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(2)).alternating(),
            RecursiveSpec::new(RootOrder::InOrder, CutRule::One, Subscript::K(2))
                .with_cut_pre(CutRule::MinWepPre)
                .alternating(),
            RecursiveSpec::new(RootOrder::InOrder, CutRule::BreadthFirst, Subscript::K(1)),
            RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(3)),
        ];
        for spec in &specs {
            for h in 1..=12 {
                // from_positions (inside materialize) validates bijectivity.
                let _ = materialize(spec, h);
            }
        }
    }

    #[test]
    fn in_veb_h6_top_block_position() {
        // §II: for IN-VEB at h = 6, the top three levels occupy 1-based
        // positions 29..=35.
        let spec = RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, Subscript::K(1));
        let l = materialize(&spec, 6);
        let mut top: Vec<u64> = (1..=7).map(|i| l.position(i) + 1).collect();
        top.sort_unstable();
        assert_eq!(top, vec![29, 30, 31, 32, 33, 34, 35]);
    }

    #[test]
    fn pre_veb_h6_top_block_position() {
        // §II: PRE-VEB arranges the top three levels first (positions 1..=7).
        let spec = RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity);
        let l = materialize(&spec, 6);
        let mut top: Vec<u64> = (1..=7).map(|i| l.position(i) + 1).collect();
        top.sort_unstable();
        assert_eq!(top, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn minwep_h6_top_two_levels_at_31_to_33() {
        // §IV-C: "the top two levels of the tree are arranged together in
        // positions 31 to 33, indicating a cut of g = 2" (via g_I = 1 and
        // adjacent pre-order roots).
        let spec = RecursiveSpec::new(RootOrder::InOrder, CutRule::One, Subscript::K(2))
            .with_cut_pre(CutRule::MinWepPre)
            .alternating();
        let l = materialize(&spec, 6);
        let mut top: Vec<u64> = (1..=3).map(|i| l.position(i) + 1).collect();
        top.sort_unstable();
        assert_eq!(top, vec![31, 32, 33]);
    }

    #[test]
    fn subtree_blocks_are_contiguous() {
        // Every hierarchical layout keeps each recursion subtree contiguous;
        // in particular each child subtree of the root under g=1 cuts.
        let spec = RecursiveSpec::new(RootOrder::InOrder, CutRule::One, Subscript::K(2));
        let l = materialize(&spec, 8);
        let t = Tree::new(8);
        for root in [2u64, 3] {
            let mut ps: Vec<u64> = t
                .nodes()
                .filter(|&i| {
                    let d = t.depth(i);
                    d >= 1 && t.ancestor_at_depth(i, 1) == root
                })
                .map(|i| l.position(i))
                .collect();
            ps.sort_unstable();
            for w in ps.windows(2) {
                assert_eq!(w[1], w[0] + 1, "subtree of {root} not contiguous");
            }
        }
    }
}
