//! Recursive Layout specifications (the paper's nomenclature, §I-B).
//!
//! A *Recursive Layout* is fully described by
//!
//! 1. the arrangement of the outermost branch — pre-order (`P`) or
//!    in-order (`I`);
//! 2. the cut height `g` as a function of subtree height `h`
//!    (superscript), possibly different for in-order and pre-order
//!    subtrees;
//! 3. the outward position `k` of the first in-order bottom subtree
//!    (subscript; `∞` = all bottom subtrees pre-order);
//! 4. whether the layout is *alternating* (`~`): bottom subtrees placed in
//!    reverse order of their parent leaves (Theorem 2).
//!
//! [`RecursiveSpec`] captures exactly these degrees of freedom and drives
//! both the materializing engine ([`crate::engine`]) and the generic
//! pointer-less indexer.

/// Arrangement of a subtree's top block relative to its bottom subtrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootOrder {
    /// `I`: the top subtree sits in the middle of the bottom subtrees.
    InOrder,
    /// `P`: the top subtree sits at the end nearer its parent leaf
    /// (pre-order on the right of a parent, post-order on the left).
    PreOrder,
}

/// Cut-height rule `g(h)` (the nomenclature superscript).
///
/// All rules are clamped to the valid range `1..=h−1` on evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CutRule {
    /// `g = 1`: depth-first family (IN-ORDER, PRE-ORDER, MINEP, MINWLA).
    One,
    /// `g = ⌊h/2⌋`: the van Emde Boas family (Prokop).
    Half,
    /// `g = ⌊(h−1)/2⌋` — the optimal pre-order cut for tall subtrees
    /// found by the paper's empirical study (§IV-C).
    HalfOfMinusOne,
    /// Bender's rule: the bottom subtrees get the largest power-of-two
    /// height smaller than `h`, i.e. `g = h − 2^{⌈log2(h/2)⌉}`.
    Bender,
    /// `g = h − 1`: breadth-first family.
    BreadthFirst,
    /// MINWEP's optimal pre-order cut: `g = 1` for `h ≤ 5`, else
    /// `⌊(h−1)/2⌋` (§IV-C, including the `g_P(5) = 1` exception; this is
    /// `partition()` from Listing 1).
    MinWepPre,
    /// Explicit per-height table: `g(h) = table[h]` (index 0 and 1 unused).
    /// Used by the layout-space optimizer to represent arbitrary studies.
    Table(Vec<u32>),
}

impl CutRule {
    /// Evaluates the rule at subtree height `h ≥ 2`, clamped to `1..=h−1`.
    #[inline]
    #[must_use]
    pub fn cut(&self, h: u32) -> u32 {
        debug_assert!(h >= 2, "cut height undefined for h < 2");
        let raw = match self {
            CutRule::One => 1,
            CutRule::Half => h / 2,
            CutRule::HalfOfMinusOne => (h - 1) / 2,
            CutRule::Bender => {
                // The bottom-subtree height 2^⌈log2(h/2)⌉ is the largest
                // power of two strictly smaller than h.
                let bottom = if h <= 2 {
                    1
                } else {
                    1 << (31 - (h - 1).leading_zeros())
                };
                h - bottom
            }
            CutRule::BreadthFirst => h - 1,
            CutRule::MinWepPre => {
                if h <= 5 {
                    1
                } else {
                    (h - 1) / 2
                }
            }
            CutRule::Table(t) => t.get(h as usize).copied().unwrap_or(1),
        };
        raw.clamp(1, h - 1)
    }
}

/// The nomenclature subscript: outward rank of the first in-order bottom
/// subtree. Bottom subtrees with outward rank `< k` are pre-order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subscript {
    /// First in-order bottom subtree at outward position `k ≥ 1`
    /// (so `K(1)` = all bottom subtrees in-order).
    K(u32),
    /// `∞`: every bottom subtree is pre-order.
    Infinity,
}

impl Subscript {
    /// Is the bottom subtree at 1-based outward rank `t` arranged pre-order?
    #[inline]
    #[must_use]
    pub fn is_pre_order(&self, t: u64) -> bool {
        match *self {
            Subscript::K(k) => t < u64::from(k),
            Subscript::Infinity => true,
        }
    }
}

/// A complete description of a Recursive Layout (§I-B, Table I).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecursiveSpec {
    /// Arrangement of the outermost branch of the recursion.
    pub root_order: RootOrder,
    /// Cut rule applied to in-order subtrees.
    pub cut_in: CutRule,
    /// Cut rule applied to pre-order subtrees.
    pub cut_pre: CutRule,
    /// Outward position of the first in-order bottom subtree.
    pub first_in_order: Subscript,
    /// Alternating (`~`): bottom subtrees in reverse order of parent leaves.
    pub alternating: bool,
}

impl RecursiveSpec {
    /// Spec builder with the given outer arrangement and uniform cut rule.
    #[must_use]
    pub fn new(root_order: RootOrder, cut: CutRule, first_in_order: Subscript) -> Self {
        Self {
            root_order,
            cut_in: cut.clone(),
            cut_pre: cut,
            first_in_order,
            alternating: false,
        }
    }

    /// Returns a copy with the alternating flag set.
    #[must_use]
    pub fn alternating(mut self) -> Self {
        self.alternating = true;
        self
    }

    /// Returns a copy with a distinct pre-order cut rule.
    #[must_use]
    pub fn with_cut_pre(mut self, cut_pre: CutRule) -> Self {
        self.cut_pre = cut_pre;
        self
    }

    /// Nomenclature string, e.g. `~I^{opt}_2` for MINWEP or `P^{h/2}_inf`
    /// for PRE-VEB. ASCII approximation of the paper's typesetting.
    #[must_use]
    pub fn nomenclature(&self) -> String {
        let tilde = if self.alternating { "~" } else { "" };
        let letter = match self.root_order {
            RootOrder::InOrder => "I",
            RootOrder::PreOrder => "P",
        };
        let cut = match (&self.cut_in, &self.cut_pre) {
            (CutRule::One, CutRule::One) => "1".to_string(),
            (CutRule::Half, CutRule::Half) => "h/2".to_string(),
            (CutRule::BreadthFirst, _) | (_, CutRule::BreadthFirst) => "h-1".to_string(),
            (_, CutRule::Bender) => "bender".to_string(),
            (CutRule::One, CutRule::MinWepPre) => "opt".to_string(),
            (ci, cp) if ci == cp => format!("{ci:?}").to_lowercase(),
            (ci, cp) => format!("I:{ci:?},P:{cp:?}").to_lowercase(),
        };
        let sub = match self.first_in_order {
            Subscript::K(k) => k.to_string(),
            Subscript::Infinity => "inf".to_string(),
        };
        // For pure pre-order layouts the in-order cut never fires; for pure
        // in-order (k = 1) the pre-order cut never fires. The simple cut
        // label above already reflects the operative rule.
        format!("{tilde}{letter}^{{{cut}}}_{sub}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_rules_match_paper_examples() {
        // Prokop: ⌊h/2⌋.
        assert_eq!(CutRule::Half.cut(6), 3);
        assert_eq!(CutRule::Half.cut(20), 10);
        // Bender: bottom = largest power of two < h. h=6 ⇒ bottom 4 ⇒ g=2.
        assert_eq!(CutRule::Bender.cut(6), 2);
        assert_eq!(CutRule::Bender.cut(5), 1);
        assert_eq!(CutRule::Bender.cut(7), 3);
        assert_eq!(CutRule::Bender.cut(8), 4); // power of two: same as Half
        assert_eq!(CutRule::Bender.cut(16), 8);
        assert_eq!(CutRule::Bender.cut(9), 1);
        assert_eq!(CutRule::Bender.cut(2), 1);
        // MINWEP pre-order cut (Listing 1's partition()).
        assert_eq!(CutRule::MinWepPre.cut(2), 1);
        assert_eq!(CutRule::MinWepPre.cut(5), 1);
        assert_eq!(CutRule::MinWepPre.cut(6), 2);
        assert_eq!(CutRule::MinWepPre.cut(7), 3);
        assert_eq!(CutRule::MinWepPre.cut(20), 9);
        // Breadth-first.
        assert_eq!(CutRule::BreadthFirst.cut(6), 5);
    }

    #[test]
    fn cuts_always_valid() {
        let rules = [
            CutRule::One,
            CutRule::Half,
            CutRule::HalfOfMinusOne,
            CutRule::Bender,
            CutRule::BreadthFirst,
            CutRule::MinWepPre,
            CutRule::Table(vec![0, 0, 9, 9, 9]),
        ];
        for rule in &rules {
            for h in 2..=32 {
                let g = rule.cut(h);
                assert!((1..h).contains(&g), "{rule:?} at h={h} gave g={g}");
            }
        }
    }

    #[test]
    fn subscript_thresholds() {
        assert!(!Subscript::K(1).is_pre_order(1));
        assert!(Subscript::K(2).is_pre_order(1));
        assert!(!Subscript::K(2).is_pre_order(2));
        assert!(Subscript::Infinity.is_pre_order(1_000_000));
    }

    #[test]
    fn nomenclature_strings() {
        let pre_veb = RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity);
        assert_eq!(pre_veb.nomenclature(), "P^{h/2}_inf");
        let minwep = RecursiveSpec::new(RootOrder::InOrder, CutRule::One, Subscript::K(2))
            .with_cut_pre(CutRule::MinWepPre)
            .alternating();
        assert_eq!(minwep.nomenclature(), "~I^{opt}_2");
    }
}
