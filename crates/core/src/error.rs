//! The crate-wide error type for every fallible cobtree constructor.
//!
//! The original reproduction exposed panicking constructors with
//! crate-specific `assert!` conventions; the unified facade converts all
//! of them to `Result`-returning `try_*` APIs sharing this one enum, so
//! callers composing layouts, indexers and storage backends handle one
//! error type end to end. The panicking entry points remain as thin
//! wrappers for tests and quick scripts.

/// Everything that can go wrong constructing layouts, indexers, or
/// search trees.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A tree height outside the supported interval.
    HeightOutOfRange {
        /// The offending height.
        height: u32,
        /// Smallest supported height.
        min: u32,
        /// Largest supported height for the requested operation.
        max: u32,
    },
    /// A key set was empty where at least one key is required.
    EmptyKeys,
    /// Keys were not strictly ascending: `keys[index] >= keys[index + 1]`.
    UnsortedKeys {
        /// Index of the first out-of-order adjacent pair.
        index: usize,
    },
    /// A key slice did not match the size the tree shape dictates.
    KeyCountMismatch {
        /// Keys the tree shape requires (`2^h − 1`).
        expected: u64,
        /// Keys actually supplied.
        got: u64,
    },
    /// More keys than any materializable tree can hold.
    TooManyKeys {
        /// Keys supplied.
        got: u64,
        /// Hard ceiling (`2^31 − 1` — positions are stored as `u32`).
        max: u64,
    },
    /// A position table was not a permutation of `0..2^h − 1`.
    NotAPermutation {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Two composed components were built for different tree heights.
    HeightMismatch {
        /// Height of the first component (e.g. the layout).
        expected: u32,
        /// Height of the second component (e.g. the index).
        got: u32,
    },
    /// A probe batch handed to a sorted-batch search was not ascending:
    /// `batch[index] > batch[index + 1]` (equal adjacent probes are fine).
    UnsortedBatch {
        /// Index of the first descending adjacent pair.
        index: usize,
    },
    /// A layout name that [`crate::NamedLayout`] does not know.
    UnknownLayout {
        /// The unrecognized name.
        name: String,
    },
    /// Malformed serialized data (e.g. layout JSON or a tree-file
    /// region that violates the format's structural rules).
    Malformed {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// An I/O operation on a tree file failed. Wraps the
    /// `std::io::Error` as text so this enum stays `Clone + PartialEq`.
    Io {
        /// The `std::io::ErrorKind`, stringified.
        kind: String,
        /// The underlying error message.
        detail: String,
    },
    /// A tree file does not start with the `COBT` magic bytes — it is
    /// not a cobtree file at all.
    BadMagic {
        /// The four bytes actually found.
        got: [u8; 4],
    },
    /// A tree file carries a format version this build cannot decode.
    UnsupportedVersion {
        /// Version found in the header.
        got: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// A tree file is shorter than a region its header declares.
    Truncated {
        /// Bytes the header (or fixed header size) requires.
        needed: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// Which checksum failed: `"header"` or `"content"`.
        region: &'static str,
    },
    /// A tree file stores keys of a different type than requested.
    KeyTypeMismatch {
        /// Type tag of the requested key type (see `format::FixedKey`).
        expected: u8,
        /// Type tag found in the file header.
        got: u8,
    },
    /// `Storage::Mapped` was requested from the key-set builder; mapped
    /// trees are opened from a saved file, not built from keys.
    MappedStorageRequiresFile,
    /// The shard that owns the requested key range is quarantined
    /// (failed a scrub or read-path checksum) and is not serving until
    /// the next flush heals it. Other shards remain available.
    ShardUnavailable {
        /// Dense index of the quarantined shard.
        shard: u32,
    },
    /// A wire-protocol frame names an opcode this build does not know
    /// (see [`crate::protocol`]).
    UnknownOpcode {
        /// The unrecognized opcode byte.
        op: u8,
    },
    /// A wire-protocol frame declares a body larger than the hard
    /// per-frame ceiling — treated as a framing error (desync or abuse)
    /// and grounds for closing the connection.
    FrameTooLarge {
        /// Declared body length.
        got: u64,
        /// Hard ceiling ([`crate::protocol::MAX_FRAME_BYTES`]).
        max: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::HeightOutOfRange { height, min, max } => {
                write!(f, "tree height {height} out of supported range {min}..={max}")
            }
            Error::EmptyKeys => f.write_str("key set is empty"),
            Error::UnsortedKeys { index } => write!(
                f,
                "keys must be strictly ascending (violated at adjacent pair starting at index {index})"
            ),
            Error::KeyCountMismatch { expected, got } => {
                write!(f, "expected exactly {expected} keys for this tree shape, got {got}")
            }
            Error::TooManyKeys { got, max } => {
                write!(f, "{got} keys exceed the materializable maximum of {max}")
            }
            Error::NotAPermutation { detail } => {
                write!(f, "positions must form a permutation: {detail}")
            }
            Error::HeightMismatch { expected, got } => {
                write!(f, "components disagree on tree height: {expected} vs {got}")
            }
            Error::UnsortedBatch { index } => write!(
                f,
                "sorted-batch probes must be ascending (descending adjacent pair starting at index {index})"
            ),
            Error::UnknownLayout { name } => write!(f, "unknown layout name '{name}'"),
            Error::Malformed { detail } => write!(f, "malformed data: {detail}"),
            Error::Io { kind, detail } => write!(f, "i/o error ({kind}): {detail}"),
            Error::BadMagic { got } => {
                write!(f, "not a cobtree file: magic bytes {got:?} != b\"COBT\"")
            }
            Error::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "tree-file format version {got} unsupported (this build reads <= {supported})"
                )
            }
            Error::Truncated { needed, got } => {
                write!(f, "tree file truncated: need {needed} bytes, have {got}")
            }
            Error::ChecksumMismatch { region } => {
                write!(f, "tree-file {region} checksum mismatch (corrupt or tampered data)")
            }
            Error::KeyTypeMismatch { expected, got } => write!(
                f,
                "tree file stores key type tag {got}, but key type tag {expected} was requested"
            ),
            Error::MappedStorageRequiresFile => f.write_str(
                "Storage::Mapped serves a saved tree file; build with an in-memory storage, \
                 then SearchTree::save and SearchTree::open",
            ),
            Error::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is quarantined and unavailable until healed")
            }
            Error::UnknownOpcode { op } => write!(f, "unknown protocol opcode {op:#04x}"),
            Error::FrameTooLarge { got, max } => {
                write!(f, "protocol frame body of {got} bytes exceeds the {max}-byte ceiling")
            }
        }
    }
}

impl Error {
    /// Wraps a `std::io::Error` (tree-file persistence paths).
    #[must_use]
    pub fn io(e: &std::io::Error) -> Self {
        Error::Io {
            kind: e.kind().to_string(),
            detail: e.to_string(),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Validates that `keys` is non-empty and strictly ascending.
///
/// # Errors
/// [`Error::EmptyKeys`] or [`Error::UnsortedKeys`].
pub fn check_sorted_keys<K: Ord>(keys: &[K]) -> Result<()> {
    if keys.is_empty() {
        return Err(Error::EmptyKeys);
    }
    for (index, pair) in keys.windows(2).enumerate() {
        if pair[0] >= pair[1] {
            return Err(Error::UnsortedKeys { index });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::KeyCountMismatch {
            expected: 7,
            got: 6,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('6'));
        let e = Error::UnknownLayout {
            name: "NOPE".into(),
        };
        assert!(e.to_string().contains("NOPE"));
    }

    #[test]
    fn sorted_key_checks() {
        assert_eq!(check_sorted_keys::<u64>(&[]), Err(Error::EmptyKeys));
        assert_eq!(check_sorted_keys(&[1u64]), Ok(()));
        assert_eq!(check_sorted_keys(&[1u64, 2, 3]), Ok(()));
        assert_eq!(
            check_sorted_keys(&[1u64, 3, 3]),
            Err(Error::UnsortedKeys { index: 1 })
        );
        assert_eq!(
            check_sorted_keys(&[2u64, 1]),
            Err(Error::UnsortedKeys { index: 0 })
        );
    }
}
