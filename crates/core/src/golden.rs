//! Reference data transcribed from Figure 5 of the paper.
//!
//! Figure 5 prints, for a tree of height 6, the complete position
//! assignment of fourteen layouts together with their exact locality
//! functionals `(ν0, ν1, µ1, µ∞)`. The figure linearizes each drawing in
//! **post-order traversal** of the tree, which
//! [`Layout::from_post_order_listing`] decodes.
//!
//! This data is the strongest correctness anchor available for the whole
//! reproduction: the engine must regenerate each Recursive Layout up to a
//! tree automorphism (see [`Layout::canonicalized`]), and the measures
//! crate must reproduce every printed functional to three decimals.

use crate::layout::Layout;
use crate::named::NamedLayout;

/// One sub-figure of Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Entry {
    /// Layout name as printed in the figure caption.
    pub name: &'static str,
    /// The corresponding Recursive Layout, if it is one (MINLA and MINBW
    /// are external baseline constructions).
    pub layout: Option<NamedLayout>,
    /// 1-based positions in post-order traversal order (63 nodes, h = 6).
    pub post_order_listing: &'static [u32; 63],
    /// Weighted edge product (Eq. 7) as printed.
    pub nu0: f64,
    /// Weighted mean edge length as printed.
    pub nu1: f64,
    /// Mean edge length as printed.
    pub mu1: f64,
    /// Maximum edge length as printed.
    pub mu_inf: u64,
}

impl Fig5Entry {
    /// Decodes the listing into a [`Layout`].
    #[must_use]
    pub fn layout_h6(&self) -> Layout {
        Layout::from_post_order_listing(6, self.post_order_listing)
    }
}

/// Figure 5(a): MINWEP (= MINEP at this height).
pub const FIG5A_MINWEP: Fig5Entry = Fig5Entry {
    name: "MINWEP",
    layout: Some(NamedLayout::MinWep),
    post_order_listing: &[
        1, 3, 2, 4, 5, 6, 7, 11, 12, 10, 13, 15, 14, 9, 8, 16, 17, 18, 21, 22, 20, 19, 23, 25, 24,
        26, 27, 28, 29, 30, 31, 37, 38, 36, 39, 41, 40, 35, 42, 43, 44, 47, 48, 46, 45, 34, 49, 51,
        50, 52, 53, 54, 55, 59, 60, 58, 61, 63, 62, 57, 56, 33, 32,
    ],
    nu0: 1.818,
    nu1: 4.063,
    mu1: 2.581,
    mu_inf: 23,
};

/// Figure 5(b): HALFWEP.
pub const FIG5B_HALFWEP: Fig5Entry = Fig5Entry {
    name: "HALFWEP",
    layout: Some(NamedLayout::HalfWep),
    post_order_listing: &[
        1, 2, 3, 6, 7, 5, 4, 8, 9, 10, 13, 14, 12, 11, 30, 15, 16, 17, 20, 21, 19, 18, 22, 24, 23,
        25, 26, 27, 28, 29, 31, 38, 39, 37, 40, 42, 41, 36, 43, 44, 45, 48, 49, 47, 46, 35, 50, 51,
        52, 55, 56, 54, 53, 57, 58, 59, 62, 63, 61, 60, 34, 33, 32,
    ],
    nu0: 1.823,
    nu1: 3.938,
    mu1: 3.097,
    mu_inf: 26,
};

/// Figure 5(c): IN-VEBA.
pub const FIG5C_IN_VEBA: Fig5Entry = Fig5Entry {
    name: "IN-VEBA",
    layout: Some(NamedLayout::InVebA),
    post_order_listing: &[
        1, 3, 2, 5, 7, 6, 4, 8, 10, 9, 12, 14, 13, 11, 31, 15, 17, 16, 19, 21, 20, 18, 22, 24, 23,
        26, 28, 27, 25, 29, 30, 36, 38, 37, 40, 42, 41, 39, 43, 45, 44, 47, 49, 48, 46, 35, 50, 52,
        51, 54, 56, 55, 53, 57, 59, 58, 61, 63, 62, 60, 33, 34, 32,
    ],
    nu0: 2.184,
    nu1: 4.300,
    mu1: 3.161,
    mu_inf: 27,
};

/// Figure 5(d): PRE-VEBA.
pub const FIG5D_PRE_VEBA: Fig5Entry = Fig5Entry {
    name: "PRE-VEBA",
    layout: Some(NamedLayout::PreVebA),
    post_order_listing: &[
        10, 11, 9, 13, 14, 12, 8, 17, 18, 16, 20, 21, 19, 15, 7, 24, 25, 23, 27, 28, 26, 22, 31,
        32, 30, 34, 35, 33, 29, 6, 5, 38, 39, 37, 41, 42, 40, 36, 45, 46, 44, 48, 49, 47, 43, 4,
        52, 53, 51, 55, 56, 54, 50, 59, 60, 58, 62, 63, 61, 57, 3, 2, 1,
    ],
    nu0: 2.691,
    nu1: 7.100,
    mu1: 5.145,
    mu_inf: 54,
};

/// Figure 5(e): IN-VEB.
pub const FIG5E_IN_VEB: Fig5Entry = Fig5Entry {
    name: "IN-VEB",
    layout: Some(NamedLayout::InVeb),
    post_order_listing: &[
        1, 3, 2, 5, 7, 6, 4, 8, 10, 9, 12, 14, 13, 11, 29, 15, 17, 16, 19, 21, 20, 18, 22, 24, 23,
        26, 28, 27, 25, 31, 30, 36, 38, 37, 40, 42, 41, 39, 43, 45, 44, 47, 49, 48, 46, 33, 50, 52,
        51, 54, 56, 55, 53, 57, 59, 58, 61, 63, 62, 60, 35, 34, 32,
    ],
    nu0: 2.227,
    nu1: 4.300,
    mu1: 3.161,
    mu_inf: 25,
};

/// Figure 5(f): PRE-VEB.
pub const FIG5F_PRE_VEB: Fig5Entry = Fig5Entry {
    name: "PRE-VEB",
    layout: Some(NamedLayout::PreVeb),
    post_order_listing: &[
        10, 11, 9, 13, 14, 12, 8, 17, 18, 16, 20, 21, 19, 15, 3, 24, 25, 23, 27, 28, 26, 22, 31,
        32, 30, 34, 35, 33, 29, 4, 2, 38, 39, 37, 41, 42, 40, 36, 45, 46, 44, 48, 49, 47, 43, 6,
        52, 53, 51, 55, 56, 54, 50, 59, 60, 58, 62, 63, 61, 57, 7, 5, 1,
    ],
    nu0: 2.824,
    nu1: 7.100,
    mu1: 5.145,
    mu_inf: 50,
};

/// Figure 5(g): IN-ORDER.
pub const FIG5G_IN_ORDER: Fig5Entry = Fig5Entry {
    name: "IN-ORDER",
    layout: Some(NamedLayout::InOrder),
    post_order_listing: &[
        1, 3, 2, 5, 7, 6, 4, 9, 11, 10, 13, 15, 14, 12, 8, 17, 19, 18, 21, 23, 22, 20, 25, 27, 26,
        29, 31, 30, 28, 24, 16, 33, 35, 34, 37, 39, 38, 36, 41, 43, 42, 45, 47, 46, 44, 40, 49, 51,
        50, 53, 55, 54, 52, 57, 59, 58, 61, 63, 62, 60, 56, 48, 32,
    ],
    nu0: 4.000,
    nu1: 6.200,
    mu1: 2.581,
    mu_inf: 16,
};

/// Figure 5(h): PRE-ORDER.
pub const FIG5H_PRE_ORDER: Fig5Entry = Fig5Entry {
    name: "PRE-ORDER",
    layout: Some(NamedLayout::PreOrder),
    post_order_listing: &[
        6, 7, 5, 9, 10, 8, 4, 13, 14, 12, 16, 17, 15, 11, 3, 21, 22, 20, 24, 25, 23, 19, 28, 29,
        27, 31, 32, 30, 26, 18, 2, 37, 38, 36, 40, 41, 39, 35, 44, 45, 43, 47, 48, 46, 42, 34, 52,
        53, 51, 55, 56, 54, 50, 59, 60, 58, 62, 63, 61, 57, 49, 33, 1,
    ],
    nu0: 2.828,
    nu1: 6.700,
    mu1: 3.081,
    mu_inf: 32,
};

/// Figure 5(i): IN-BREADTH.
pub const FIG5I_IN_BREADTH: Fig5Entry = Fig5Entry {
    name: "IN-BREADTH",
    layout: Some(NamedLayout::InBreadth),
    post_order_listing: &[
        1, 2, 17, 3, 4, 18, 25, 5, 6, 19, 7, 8, 20, 26, 29, 9, 10, 21, 11, 12, 22, 27, 13, 14, 23,
        15, 16, 24, 28, 30, 31, 48, 49, 40, 50, 51, 41, 36, 52, 53, 42, 54, 55, 43, 37, 34, 56, 57,
        44, 58, 59, 45, 38, 60, 61, 46, 62, 63, 47, 39, 35, 33, 32,
    ],
    nu0: 3.096,
    nu1: 4.700,
    mu1: 8.258,
    mu_inf: 16,
};

/// Figure 5(j): PRE-BREADTH (plain breadth-first order).
pub const FIG5J_PRE_BREADTH: Fig5Entry = Fig5Entry {
    name: "PRE-BREADTH",
    layout: Some(NamedLayout::PreBreadth),
    post_order_listing: &[
        32, 33, 16, 34, 35, 17, 8, 36, 37, 18, 38, 39, 19, 9, 4, 40, 41, 20, 42, 43, 21, 10, 44,
        45, 22, 46, 47, 23, 11, 5, 2, 48, 49, 24, 50, 51, 25, 12, 52, 53, 26, 54, 55, 27, 13, 6,
        56, 57, 28, 58, 59, 29, 14, 60, 61, 30, 62, 63, 31, 15, 7, 3, 1,
    ],
    nu0: 5.824,
    nu1: 9.300,
    mu1: 16.500,
    mu_inf: 32,
};

/// Figure 5(k): MINWLA.
pub const FIG5K_MINWLA: Fig5Entry = Fig5Entry {
    name: "MINWLA",
    layout: Some(NamedLayout::MinWla),
    post_order_listing: &[
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
        26, 27, 28, 29, 30, 31, 37, 38, 36, 40, 41, 39, 35, 44, 45, 43, 47, 48, 46, 42, 34, 52, 53,
        51, 55, 56, 54, 50, 59, 60, 58, 62, 63, 61, 57, 49, 33, 32,
    ],
    nu0: 2.000,
    nu1: 3.600,
    mu1: 2.581,
    mu_inf: 16,
};

/// Figure 5(l): BENDER.
pub const FIG5L_BENDER: Fig5Entry = Fig5Entry {
    name: "BENDER",
    layout: Some(NamedLayout::Bender),
    post_order_listing: &[
        8, 9, 7, 11, 12, 10, 5, 14, 15, 13, 17, 18, 16, 6, 4, 23, 24, 22, 26, 27, 25, 20, 29, 30,
        28, 32, 33, 31, 21, 19, 2, 38, 39, 37, 41, 42, 40, 35, 44, 45, 43, 47, 48, 46, 36, 34, 53,
        54, 52, 56, 57, 55, 50, 59, 60, 58, 62, 63, 61, 51, 49, 3, 1,
    ],
    nu0: 2.930,
    nu1: 6.900,
    mu1: 4.113,
    mu_inf: 46,
};

/// Figure 5(m): MINLA (minimum linear arrangement baseline, ref. \[14\]).
pub const FIG5M_MINLA: Fig5Entry = Fig5Entry {
    name: "MINLA",
    layout: None,
    post_order_listing: &[
        1, 2, 3, 4, 7, 5, 6, 8, 9, 10, 14, 15, 13, 11, 12, 16, 17, 18, 19, 22, 20, 21, 25, 28, 27,
        30, 31, 29, 26, 23, 24, 33, 34, 35, 36, 39, 37, 38, 42, 45, 44, 47, 48, 46, 43, 41, 49, 50,
        51, 55, 56, 54, 53, 57, 60, 59, 62, 63, 61, 58, 52, 40, 32,
    ],
    nu0: 2.753,
    nu1: 4.175,
    mu1: 2.323,
    mu_inf: 12,
};

/// Figure 5(n): MINBW (minimum bandwidth baseline, ref. \[15\]).
pub const FIG5N_MINBW: Fig5Entry = Fig5Entry {
    name: "MINBW",
    layout: None,
    post_order_listing: &[
        1, 2, 8, 3, 4, 9, 15, 5, 6, 10, 7, 12, 11, 16, 22, 13, 14, 17, 18, 19, 24, 23, 20, 21, 25,
        26, 27, 31, 30, 29, 28, 37, 38, 33, 43, 44, 39, 34, 45, 46, 40, 50, 51, 47, 41, 35, 52, 57,
        53, 58, 59, 54, 48, 60, 61, 55, 62, 63, 56, 49, 42, 36, 32,
    ],
    nu0: 3.629,
    nu1: 4.350,
    mu1: 4.581,
    mu_inf: 7,
};

/// All fourteen entries of Figure 5, in sub-figure order.
pub const FIG5: [&Fig5Entry; 14] = [
    &FIG5A_MINWEP,
    &FIG5B_HALFWEP,
    &FIG5C_IN_VEBA,
    &FIG5D_PRE_VEBA,
    &FIG5E_IN_VEB,
    &FIG5F_PRE_VEB,
    &FIG5G_IN_ORDER,
    &FIG5H_PRE_ORDER,
    &FIG5I_IN_BREADTH,
    &FIG5J_PRE_BREADTH,
    &FIG5K_MINWLA,
    &FIG5L_BENDER,
    &FIG5M_MINLA,
    &FIG5N_MINBW,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_decode_to_valid_layouts() {
        for e in FIG5 {
            let l = e.layout_h6();
            assert_eq!(l.len(), 63, "{}", e.name);
        }
    }

    #[test]
    fn minwep_root_position_is_32() {
        let l = FIG5A_MINWEP.layout_h6();
        assert_eq!(l.position(1) + 1, 32);
    }
}
