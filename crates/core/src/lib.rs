//! # cobtree-core
//!
//! Core substrate for the reproduction of *Lindstrom & Rajan, "Optimal
//! Hierarchical Layouts for Cache-Oblivious Search Trees"* (ICDE 2014):
//!
//! * [`tree`] — the complete-binary-tree model (BFS indexing, in-order
//!   keys, path arithmetic);
//! * [`spec`] — [`spec::RecursiveSpec`], the paper's nomenclature for
//!   Recursive Layouts (§I-B, Table I);
//! * [`engine`] — materializes any spec into a [`layout::Layout`]
//!   permutation;
//! * [`named`] — the thirteen named layouts of Table I;
//! * [`weights`] — exact and approximate affinity edge weights (Eq. 2);
//! * [`index`] — pointer-less position arithmetic, including a faithful
//!   port of the paper's Listing 1 (breadth-first → MINWEP translation);
//! * [`format`](mod@format) — the zero-copy `.cobt` on-disk container (header +
//!   layout descriptor + block-aligned key array in layout order), the
//!   byte-level spec of which lives in `docs/FORMAT.md`;
//! * [`protocol`] — the `cobtree-serve` wire protocol (length-prefixed
//!   binary frames; byte-level spec in `docs/PROTOCOL.md`).
//!
//! ```
//! use cobtree_core::named::NamedLayout;
//!
//! // Materialize the paper's MINWEP layout for a 63-node tree and check
//! // the root lands mid-array (positions are 0-based).
//! let layout = NamedLayout::MinWep.materialize(6);
//! assert_eq!(layout.position(1), 31);
//! ```

pub(crate) mod branch;
pub mod engine;
pub mod error;
pub mod fat;
pub mod format;
pub mod golden;
pub mod index;
pub mod io;
pub mod layout;
pub mod named;
pub mod protocol;
pub mod spec;
pub mod tree;
pub mod weights;

pub use error::{Error, Result};
pub use fat::{FatIndex, FatLayout, FatOrder};
pub use io::{FaultIo, FaultKind, FaultRule, IoOp, RealIo, StorageIo};
pub use layout::Layout;
pub use named::NamedLayout;
pub use spec::{CutRule, RecursiveSpec, RootOrder, Subscript};
pub use tree::{NodeId, Tree};
pub use weights::{EdgeWeights, ObservedProfile};
