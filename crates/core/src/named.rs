//! Catalog of the named layouts from Table I of the paper.
//!
//! Every entry maps to a [`RecursiveSpec`]; the two non-recursive baselines
//! MINLA and MINBW live in the `cobtree-optimizer` crate because they are
//! constructions, not members of the Recursive Layout family.

use crate::engine::{materialize, try_materialize};
use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::spec::{CutRule, RecursiveSpec, RootOrder, Subscript};

/// The Recursive Layouts named in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedLayout {
    /// `P^1_∞` — classic depth-first pre-order.
    PreOrder,
    /// `I^1_1` — classic depth-first in-order.
    InOrder,
    /// `I^1_∞` — minimizes the weighted edge sum ν1 among `g = 1`
    /// Recursive Layouts (Theorem 1).
    MinWla,
    /// `I^1_2` — minimizes the weighted edge product ν0 among `g = 1`
    /// Recursive Layouts (Theorem 3).
    MinEp,
    /// `P^{⌊h/2⌋}_∞` — Prokop's van Emde Boas layout, the de-facto
    /// cache-oblivious layout in the literature.
    PreVeb,
    /// `~P^{⌊h/2⌋}_∞` — alternating PRE-VEB.
    PreVebA,
    /// `I^{⌊h/2⌋}_1` — in-order van Emde Boas.
    InVeb,
    /// `~I^{⌊h/2⌋}_1` — alternating IN-VEB.
    InVebA,
    /// `P^{h−2^⌈log2(h/2)⌉}_∞` — Bender's layout (power-of-two bottoms).
    Bender,
    /// `~I^{⌊h/2⌋}_2` — the hybrid layout with vEB cut heights (§IV-B).
    HalfWep,
    /// `~I^{opt}_2` — the paper's contribution: minimum weighted edge
    /// product layout (§IV-C, Listing 1).
    MinWep,
    /// `P^{h−1}_*` — breadth-first.
    PreBreadth,
    /// `I^{h−1}_*` — in-order variant of breadth-first.
    InBreadth,
}

impl NamedLayout {
    /// All thirteen named Recursive Layouts in the order the paper's
    /// Figure 4 legend lists them.
    pub const ALL: [NamedLayout; 13] = [
        NamedLayout::PreBreadth,
        NamedLayout::InBreadth,
        NamedLayout::PreOrder,
        NamedLayout::InOrder,
        NamedLayout::MinWla,
        NamedLayout::MinEp,
        NamedLayout::Bender,
        NamedLayout::PreVeb,
        NamedLayout::PreVebA,
        NamedLayout::InVeb,
        NamedLayout::InVebA,
        NamedLayout::HalfWep,
        NamedLayout::MinWep,
    ];

    /// The six layouts compared in Figure 1 / Figure 2 of the paper.
    pub const FIG2_SET: [NamedLayout; 6] = [
        NamedLayout::PreVeb,
        NamedLayout::PreVebA,
        NamedLayout::InVeb,
        NamedLayout::InVebA,
        NamedLayout::HalfWep,
        NamedLayout::MinWep,
    ];

    /// The ten layouts of Figure 4.
    pub const FIG4_SET: [NamedLayout; 10] = [
        NamedLayout::PreBreadth,
        NamedLayout::InBreadth,
        NamedLayout::PreOrder,
        NamedLayout::InOrder,
        NamedLayout::MinEp,
        NamedLayout::Bender,
        NamedLayout::PreVeb,
        NamedLayout::InVeb,
        NamedLayout::HalfWep,
        NamedLayout::MinWep,
    ];

    /// Display name matching the paper (small caps rendered in ASCII).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            NamedLayout::PreOrder => "PRE-ORDER",
            NamedLayout::InOrder => "IN-ORDER",
            NamedLayout::MinWla => "MINWLA",
            NamedLayout::MinEp => "MINEP",
            NamedLayout::PreVeb => "PRE-VEB",
            NamedLayout::PreVebA => "PRE-VEBA",
            NamedLayout::InVeb => "IN-VEB",
            NamedLayout::InVebA => "IN-VEBA",
            NamedLayout::Bender => "BENDER",
            NamedLayout::HalfWep => "HALFWEP",
            NamedLayout::MinWep => "MINWEP",
            NamedLayout::PreBreadth => "PRE-BREADTH",
            NamedLayout::InBreadth => "IN-BREADTH",
        }
    }

    /// Parses a display name (case-insensitive) back into the enum.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        let needle = label.to_ascii_uppercase();
        Self::ALL.iter().copied().find(|l| l.label() == needle)
    }

    /// The [`RecursiveSpec`] describing this layout.
    #[must_use]
    pub fn spec(&self) -> RecursiveSpec {
        use CutRule::*;
        use RootOrder::*;
        use Subscript::*;
        match self {
            NamedLayout::PreOrder => RecursiveSpec::new(PreOrder, One, Infinity),
            NamedLayout::InOrder => RecursiveSpec::new(InOrder, One, K(1)),
            NamedLayout::MinWla => RecursiveSpec::new(InOrder, One, Infinity),
            NamedLayout::MinEp => RecursiveSpec::new(InOrder, One, K(2)),
            NamedLayout::PreVeb => RecursiveSpec::new(PreOrder, Half, Infinity),
            NamedLayout::PreVebA => RecursiveSpec::new(PreOrder, Half, Infinity).alternating(),
            NamedLayout::InVeb => RecursiveSpec::new(InOrder, Half, K(1)),
            NamedLayout::InVebA => RecursiveSpec::new(InOrder, Half, K(1)).alternating(),
            NamedLayout::Bender => RecursiveSpec::new(PreOrder, Bender, Infinity),
            NamedLayout::HalfWep => RecursiveSpec::new(InOrder, Half, K(2)).alternating(),
            NamedLayout::MinWep => RecursiveSpec::new(InOrder, One, K(2))
                .with_cut_pre(MinWepPre)
                .alternating(),
            NamedLayout::PreBreadth => RecursiveSpec::new(PreOrder, BreadthFirst, Infinity),
            NamedLayout::InBreadth => RecursiveSpec::new(InOrder, BreadthFirst, K(1)),
        }
    }

    /// Nomenclature string per Table I.
    #[must_use]
    pub fn nomenclature(&self) -> String {
        self.spec().nomenclature()
    }

    /// Materializes the layout for a tree of `height` levels.
    ///
    /// # Panics
    /// Panics where [`NamedLayout::try_materialize`] errors.
    #[must_use]
    pub fn materialize(&self, height: u32) -> Layout {
        materialize(&self.spec(), height)
    }

    /// Fallible variant of [`NamedLayout::materialize`].
    ///
    /// # Errors
    /// [`Error::HeightOutOfRange`] if the permutation cannot be
    /// materialized in memory (`height` not in `1..=31`).
    pub fn try_materialize(&self, height: u32) -> Result<Layout> {
        try_materialize(&self.spec(), height)
    }
}

impl std::fmt::Display for NamedLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for NamedLayout {
    type Err = Error;

    /// Parses the paper's display names case-insensitively (`"MINWEP"`,
    /// `"pre-veb"`, …), the inverse of [`std::fmt::Display`].
    fn from_str(s: &str) -> Result<Self> {
        Self::from_label(s).ok_or_else(|| Error::UnknownLayout {
            name: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for l in NamedLayout::ALL {
            assert_eq!(NamedLayout::from_label(l.label()), Some(l));
            assert_eq!(NamedLayout::from_label(&l.label().to_lowercase()), Some(l));
        }
        assert_eq!(NamedLayout::from_label("nope"), None);
    }

    #[test]
    fn from_str_parses_display_output() {
        for l in NamedLayout::ALL {
            assert_eq!(l.to_string().parse::<NamedLayout>().unwrap(), l);
            assert_eq!(l.label().to_lowercase().parse::<NamedLayout>().unwrap(), l);
        }
        let err = "NOT-A-LAYOUT".parse::<NamedLayout>().unwrap_err();
        assert_eq!(
            err,
            crate::Error::UnknownLayout {
                name: "NOT-A-LAYOUT".into()
            }
        );
    }

    #[test]
    fn try_materialize_bounds() {
        assert!(NamedLayout::MinWep.try_materialize(6).is_ok());
        assert!(matches!(
            NamedLayout::MinWep.try_materialize(0),
            Err(crate::Error::HeightOutOfRange { .. })
        ));
        assert!(matches!(
            NamedLayout::MinWep.try_materialize(32),
            Err(crate::Error::HeightOutOfRange { .. })
        ));
    }

    #[test]
    fn all_layouts_materialize_small() {
        for l in NamedLayout::ALL {
            for h in 1..=10 {
                let lay = l.materialize(h);
                assert_eq!(lay.len(), (1u64 << h) - 1);
            }
        }
    }

    #[test]
    fn minwep_equals_minep_for_small_heights() {
        // §IV-B: for h ≤ 6 MINEP and MINWEP coincide (all pre-order cuts
        // land at g = 1 because subtree heights stay ≤ 5).
        for h in 1..=6 {
            let a = NamedLayout::MinWep.materialize(h);
            let b = NamedLayout::MinEp.materialize(h);
            assert_eq!(a.positions(), b.positions(), "h={h}");
        }
        // They must diverge once pre-order subtrees taller than 5 appear.
        let a = NamedLayout::MinWep.materialize(8);
        let b = NamedLayout::MinEp.materialize(8);
        assert_ne!(a.positions(), b.positions());
    }

    #[test]
    fn bender_equals_pre_veb_at_power_of_two_heights() {
        for h in [4u32, 8, 16] {
            let a = NamedLayout::Bender.materialize(h);
            let b = NamedLayout::PreVeb.materialize(h);
            assert_eq!(a.positions(), b.positions(), "h={h}");
        }
        for h in [6u32, 10, 12] {
            let a = NamedLayout::Bender.materialize(h);
            let b = NamedLayout::PreVeb.materialize(h);
            assert_ne!(a.positions(), b.positions(), "h={h}");
        }
    }

    #[test]
    fn nomenclature_matches_table_one() {
        assert_eq!(NamedLayout::PreVeb.nomenclature(), "P^{h/2}_inf");
        assert_eq!(NamedLayout::InVeb.nomenclature(), "I^{h/2}_1");
        assert_eq!(NamedLayout::MinWep.nomenclature(), "~I^{opt}_2");
        assert_eq!(NamedLayout::HalfWep.nomenclature(), "~I^{h/2}_2");
        assert_eq!(NamedLayout::MinWla.nomenclature(), "I^{1}_inf");
        assert_eq!(NamedLayout::InBreadth.nomenclature(), "I^{h-1}_1");
    }
}
