//! The storage I/O seam: every durable byte the store writes or
//! re-reads goes through a [`StorageIo`] implementation.
//!
//! Two implementations exist:
//!
//! * [`RealIo`] — the production path. Its [`StorageIo::write_atomic`]
//!   is the full crash-safe discipline: write a temp file, `fsync` it,
//!   rename over the final path, then `fsync` the parent directory so
//!   the rename itself is durable. A crash at any point leaves either
//!   the old file or the new one at the live path — never a torn
//!   hybrid.
//! * [`FaultIo`] — the same operations with a deterministic, scripted
//!   fault schedule threaded through. Each operation kind keeps its
//!   own 1-based counter; a [`FaultRule`] fires when its operation's
//!   counter reaches `nth`, injecting the scripted [`FaultKind`]
//!   (failed or torn writes, fsync errors, ENOSPC, short reads,
//!   bit-flips). Every injection is appended to an event log whose
//!   rendering is byte-identical across runs of the same schedule —
//!   the chaos harness asserts exactly that.
//!
//! The seam is deliberately coarse (whole-file write / read / remove)
//! because that is the store's actual access pattern: `.cobt` shard
//! files and `.cobf` manifests are written once, immutable afterwards,
//! and re-read wholesale by recovery and the scrubber.

use crate::error::{Error, Result};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

/// The filesystem operations the store performs, each with its own
/// fault counter inside [`FaultIo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A whole-file write (the data phase of [`StorageIo::write_atomic`]).
    Write,
    /// An `fsync` — of the temp file or of the parent directory.
    Sync,
    /// The rename publishing a temp file at its final path.
    Rename,
    /// A whole-file read ([`StorageIo::read`]).
    Read,
}

impl IoOp {
    fn index(self) -> usize {
        match self {
            IoOp::Write => 0,
            IoOp::Sync => 1,
            IoOp::Rename => 2,
            IoOp::Read => 3,
        }
    }

    /// Stable lower-case label (used by the event log).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::Read => "read",
        }
    }
}

/// What a matched [`FaultRule`] does to its operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly: no bytes reach the target.
    Fail,
    /// A torn write: the first half of the bytes land **at the final
    /// path** (simulating a pre-atomic writer crashing mid-write, or a
    /// torn sector), then the write reports failure.
    Torn,
    /// The write fails with an out-of-space error.
    Enospc,
    /// The data lands but the `fsync` making it durable fails.
    FsyncFail,
    /// The read returns only the first `n` bytes.
    ShortRead(u64),
    /// The read succeeds but bit `offset % (len * 8)` of the returned
    /// bytes is flipped — a simulated media error the checksums must
    /// catch.
    BitFlip(u64),
}

impl FaultKind {
    fn describe(self) -> String {
        match self {
            FaultKind::Fail => "fail".to_string(),
            FaultKind::Torn => "torn".to_string(),
            FaultKind::Enospc => "enospc".to_string(),
            FaultKind::FsyncFail => "fsync-fail".to_string(),
            FaultKind::ShortRead(n) => format!("short-read:{n}"),
            FaultKind::BitFlip(off) => format!("bit-flip:{off}"),
        }
    }
}

/// One scripted fault: when operation `op`'s 1-based counter reaches
/// `nth`, inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation kind the rule watches.
    pub op: IoOp,
    /// 1-based occurrence that triggers the fault.
    pub nth: u64,
    /// The injected failure.
    pub kind: FaultKind,
}

/// One injected fault, as recorded in [`FaultIo`]'s event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Operation the fault hit.
    pub op: IoOp,
    /// The operation counter value when it hit.
    pub nth: u64,
    /// The injected failure.
    pub kind: FaultKind,
    /// File name (not the full path — paths differ across temp dirs,
    /// the schedule must not) the operation targeted.
    pub file: String,
}

/// The storage seam. All paths are absolute or caller-relative; every
/// method maps OS errors to [`Error::Io`].
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Durably replaces `path` with `bytes`: temp file → `sync_all` →
    /// rename → parent-directory fsync. After `Ok`, the bytes are on
    /// disk at `path` and survive a crash; after `Err`, the previous
    /// content of `path` is still intact (unless a scripted torn-write
    /// fault deliberately broke that contract).
    ///
    /// # Errors
    /// [`Error::Io`] on any step failing (or being failed).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()>;

    /// Reads the whole file at `path`.
    ///
    /// # Errors
    /// [`Error::Io`]; fault schedules may also return corrupted or
    /// truncated bytes *without* an error — checksums are the defense.
    fn read(&self, path: &Path) -> Result<Vec<u8>>;

    /// Removes `path`; a missing file is not an error.
    ///
    /// # Errors
    /// [`Error::Io`] for anything but `NotFound`.
    fn remove(&self, path: &Path) -> Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Error::io(&e)),
        }
    }

    /// Creates `dir` and its parents.
    ///
    /// # Errors
    /// [`Error::Io`].
    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir).map_err(|e| Error::io(&e))
    }

    /// Whether files written through this seam may be served via
    /// `mmap`. Fault schedules answer `false` so reads route through
    /// [`StorageIo::read`] (where faults can be injected) instead of
    /// the page cache.
    fn supports_mmap(&self) -> bool {
        true
    }
}

/// The temp-file name `write_atomic` stages `path` under.
fn temp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.push_str(".tmp");
    path.with_file_name(name)
}

/// `fsync` of `path`'s parent directory, making a rename in it durable.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    std::fs::File::open(parent)?.sync_all()
}

/// The production storage seam: real files, full crash-safe atomic
/// writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StorageIo for RealIo {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let run = || -> std::io::Result<()> {
            let tmp = temp_path(path);
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path)
        };
        run().map_err(|e| Error::io(&e))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        std::fs::read(path).map_err(|e| Error::io(&e))
    }
}

/// Per-operation counters plus the pending rules and the event log.
#[derive(Debug, Default)]
struct FaultState {
    counts: [u64; 4],
    rules: Vec<FaultRule>,
    events: Vec<FaultEvent>,
}

impl FaultState {
    /// Bumps `op`'s counter and pops the first matching rule.
    fn check(&mut self, op: IoOp, path: &Path) -> Option<FaultKind> {
        self.counts[op.index()] += 1;
        let nth = self.counts[op.index()];
        let hit = self.rules.iter().position(|r| r.op == op && r.nth == nth)?;
        let rule = self.rules.remove(hit);
        self.events.push(FaultEvent {
            op,
            nth,
            kind: rule.kind,
            file: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        });
        Some(rule.kind)
    }
}

/// The deterministic fault-injecting storage seam. Built from an
/// explicit rule script ([`FaultIo::scripted`]) or from a seed that
/// expands into one ([`FaultIo::seeded`]); either way the injected
/// failure sequence is a pure function of the schedule and the
/// operation stream, and [`FaultIo::event_log`] renders it
/// byte-identically across runs.
#[derive(Debug)]
pub struct FaultIo {
    state: Mutex<FaultState>,
}

/// `splitmix64` — the tiny seeded generator behind [`FaultIo::seeded`]
/// (no external RNG dependency in `cobtree-core`).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultIo {
    /// A fault seam with an explicit schedule. Rules are one-shot: each
    /// fires at most once, at its operation's `nth` occurrence.
    #[must_use]
    pub fn scripted(rules: impl Into<Vec<FaultRule>>) -> Self {
        FaultIo {
            state: Mutex::new(FaultState {
                rules: rules.into(),
                ..FaultState::default()
            }),
        }
    }

    /// A pass-through seam with no faults — behaves like [`RealIo`]
    /// except that reads never use `mmap` and every injection seam is
    /// armed (useful as a baseline in determinism tests).
    #[must_use]
    pub fn passthrough() -> Self {
        Self::scripted(Vec::new())
    }

    /// Expands `seed` into `faults` scripted rules over the first
    /// `horizon` occurrences of each operation — the seeded fuzzing
    /// constructor. The expansion is a pure function of the arguments,
    /// so the same seed always yields the same schedule and therefore
    /// the same injected failure sequence.
    #[must_use]
    pub fn seeded(seed: u64, faults: usize, horizon: u64) -> Self {
        let mut s = seed;
        let horizon = horizon.max(1);
        let rules = (0..faults)
            .map(|_| {
                let op = match splitmix64(&mut s) % 4 {
                    0 => IoOp::Write,
                    1 => IoOp::Sync,
                    2 => IoOp::Rename,
                    _ => IoOp::Read,
                };
                let nth = splitmix64(&mut s) % horizon + 1;
                let kind = match (op, splitmix64(&mut s) % 3) {
                    (IoOp::Write, 0) => FaultKind::Torn,
                    (IoOp::Write, 1) => FaultKind::Enospc,
                    (IoOp::Sync, _) => FaultKind::FsyncFail,
                    (IoOp::Read, 0) => FaultKind::ShortRead(splitmix64(&mut s) % 96),
                    (IoOp::Read, 1) => FaultKind::BitFlip(splitmix64(&mut s)),
                    _ => FaultKind::Fail,
                };
                FaultRule { op, nth, kind }
            })
            .collect::<Vec<_>>();
        Self::scripted(rules)
    }

    /// Every fault injected so far, in injection order.
    #[must_use]
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .clone()
    }

    /// The canonical one-line-per-event rendering of the injected
    /// sequence — two runs of the same schedule over the same
    /// operation stream produce byte-identical logs.
    #[must_use]
    pub fn event_log(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let _ = writeln!(
                out,
                "{}#{} {} {}",
                e.op.label(),
                e.nth,
                e.kind.describe(),
                e.file
            );
        }
        out
    }

    /// Rules not yet fired (empty once the whole schedule has been
    /// driven through).
    #[must_use]
    pub fn pending_rules(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rules
            .len()
    }

    /// How many `op` operations have gone through the seam so far —
    /// the value the *next* occurrence's 1-based `nth` exceeds by one.
    /// Lets a harness arm a rule for "the next read" without counting
    /// boot-time operations by hand.
    #[must_use]
    pub fn op_count(&self, op: IoOp) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).counts[op.index()]
    }

    /// Appends a rule to the live schedule; it fires exactly like a
    /// scripted one, at its operation's `nth` occurrence.
    pub fn add_rule(&self, rule: FaultRule) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rules
            .push(rule);
    }

    fn check(&self, op: IoOp, path: &Path) -> Option<FaultKind> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .check(op, path)
    }

    fn injected(kind: &str, path: &Path) -> Error {
        Error::Io {
            kind: format!("injected-{kind}"),
            detail: format!("fault schedule hit {}", path.display()),
        }
    }
}

impl StorageIo for FaultIo {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        match self.check(IoOp::Write, path) {
            Some(FaultKind::Fail) => return Err(Self::injected("write-fail", path)),
            Some(FaultKind::Enospc) => return Err(Self::injected("enospc", path)),
            Some(FaultKind::Torn) => {
                // The torn write lands at the FINAL path — simulating a
                // pre-atomic writer or torn sector the recovery scan
                // must survive.
                let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                return Err(Self::injected("torn-write", path));
            }
            _ => {}
        }
        let tmp = temp_path(path);
        let stage = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()
        };
        stage().map_err(|e| Error::io(&e))?;
        if matches!(
            self.check(IoOp::Sync, path),
            Some(FaultKind::FsyncFail | FaultKind::Fail)
        ) {
            // Data staged but not durable: the temp file stays behind,
            // the final path is untouched.
            return Err(Self::injected("fsync-fail", path));
        }
        if self.check(IoOp::Rename, path).is_some() {
            return Err(Self::injected("rename-fail", path));
        }
        std::fs::rename(&tmp, path).map_err(|e| Error::io(&e))?;
        sync_parent_dir(path).map_err(|e| Error::io(&e))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let fault = self.check(IoOp::Read, path);
        if matches!(fault, Some(FaultKind::Fail)) {
            return Err(Self::injected("read-fail", path));
        }
        let mut bytes = std::fs::read(path).map_err(|e| Error::io(&e))?;
        match fault {
            Some(FaultKind::ShortRead(n)) => {
                bytes.truncate(usize::try_from(n).unwrap_or(usize::MAX).min(bytes.len()));
            }
            Some(FaultKind::BitFlip(offset)) if !bytes.is_empty() => {
                let bit = offset % (bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            _ => {}
        }
        Ok(bytes)
    }

    fn supports_mmap(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cobtree-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn real_io_atomic_write_round_trips_and_replaces() {
        let path = temp("atomic");
        let io = RealIo;
        io.write_atomic(&path, b"first").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"first");
        io.write_atomic(&path, b"second").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"second");
        // No temp droppings left behind.
        assert!(!temp_path(&path).exists());
        io.remove(&path).unwrap();
        io.remove(&path).unwrap(); // idempotent
    }

    #[test]
    fn scripted_faults_fire_at_exact_counts() {
        let path = temp("scripted");
        let io = FaultIo::scripted(vec![
            FaultRule {
                op: IoOp::Write,
                nth: 2,
                kind: FaultKind::Torn,
            },
            FaultRule {
                op: IoOp::Read,
                nth: 2,
                kind: FaultKind::BitFlip(7),
            },
        ]);
        io.write_atomic(&path, b"payload-bytes").unwrap(); // write #1: clean
        let err = io.write_atomic(&path, b"payload-bytes").unwrap_err(); // #2: torn
        assert!(matches!(err, Error::Io { .. }), "{err}");
        // Torn write left half the bytes at the live path.
        assert_eq!(std::fs::read(&path).unwrap(), b"payloa");
        std::fs::write(&path, b"payload-bytes").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"payload-bytes"); // read #1: clean
        let corrupt = io.read(&path).unwrap(); // read #2: flipped
        assert_ne!(corrupt, b"payload-bytes");
        assert_eq!(corrupt.len(), b"payload-bytes".len());
        assert_eq!(io.pending_rules(), 0);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(temp_path(&path)).ok();
    }

    #[test]
    fn fsync_fault_leaves_final_path_untouched() {
        let path = temp("fsync");
        std::fs::write(&path, b"old").unwrap();
        let io = FaultIo::scripted(vec![FaultRule {
            op: IoOp::Sync,
            nth: 1,
            kind: FaultKind::FsyncFail,
        }]);
        io.write_atomic(&path, b"new-longer-content").unwrap_err();
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(temp_path(&path)).ok();
    }

    #[test]
    fn same_seed_yields_byte_identical_event_logs() {
        let drive = |io: &FaultIo| {
            let path = temp("det");
            for i in 0..6u32 {
                let _ = io.write_atomic(&path, format!("content-{i}").as_bytes());
                let _ = io.read(&path);
            }
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(temp_path(&path)).ok();
        };
        let (a, b) = (FaultIo::seeded(0xC0B7, 4, 6), FaultIo::seeded(0xC0B7, 4, 6));
        drive(&a);
        drive(&b);
        assert!(
            !a.event_log().is_empty(),
            "seeded schedule injected nothing"
        );
        assert_eq!(a.event_log(), b.event_log());
        let c = FaultIo::seeded(0xC0B8, 4, 6);
        drive(&c);
        assert_ne!(a.event_log(), c.event_log(), "different seed, same log");
    }

    #[test]
    fn short_read_truncates_without_error() {
        let path = temp("short");
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        let io = FaultIo::scripted(vec![FaultRule {
            op: IoOp::Read,
            nth: 1,
            kind: FaultKind::ShortRead(10),
        }]);
        assert_eq!(io.read(&path).unwrap().len(), 10);
        assert_eq!(io.read(&path).unwrap().len(), 100);
        std::fs::remove_file(&path).ok();
    }
}
