//! Edge-weight models for the search-tree affinity graph (§II-A).
//!
//! In the affinity-graph model, a uniform random search traverses the edge
//! between levels `d − 1` and `d` with probability
//!
//! ```text
//! p_{d,h} = (2^{h−d} − 1) / (2^h − 1)            (Eq. 2, exact)
//! p_d     ≈ 2^{−d}                               (approximation)
//! ```
//!
//! The paper uses the geometric approximation for all analysis and
//! experiments; both models are provided so the difference can be
//! quantified.

/// Which edge-weight model to use when evaluating weighted measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeWeights {
    /// `w_d = 2^{−d}` — the paper's default (used for every figure).
    #[default]
    Approximate,
    /// `w_d = (2^{h−d} − 1)/(2^h − 1)` — the exact traversal probability
    /// of Eq. 2.
    Exact,
    /// `w_d = 1` — unweighted; turns `ν` measures into their `µ`
    /// counterparts.
    Unweighted,
}

impl EdgeWeights {
    /// Weight of one edge between levels `d − 1` and `d` in a tree of
    /// height `h` (`1 ≤ d ≤ h − 1`).
    #[inline]
    #[must_use]
    pub fn weight(&self, d: u32, h: u32) -> f64 {
        debug_assert!(d >= 1 && d < h);
        match self {
            EdgeWeights::Approximate => (-(f64::from(d))).exp2(),
            EdgeWeights::Exact => {
                let num = (1u64 << (h - d)) as f64 - 1.0;
                let den = if h >= 63 {
                    (h as f64).exp2() - 1.0
                } else {
                    (1u64 << h) as f64 - 1.0
                };
                num / den
            }
            EdgeWeights::Unweighted => 1.0,
        }
    }

    /// Total weight `W = Σ_{edges} w` over all `2^d` edges at each depth
    /// `d ∈ 1..h`.
    #[must_use]
    pub fn total(&self, h: u32) -> f64 {
        (1..h).map(|d| self.weight(d, h) * (1u64 << d) as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_weights_are_geometric() {
        let w = EdgeWeights::Approximate;
        assert!((w.weight(1, 10) - 0.5).abs() < 1e-12);
        assert!((w.weight(2, 10) - 0.25).abs() < 1e-12);
        assert!((w.weight(9, 10) - 2f64.powi(-9)).abs() < 1e-15);
    }

    #[test]
    fn approximate_total_is_h_minus_one() {
        // Σ_d 2^d · 2^{−d} = h − 1.
        for h in 2..=30 {
            assert!((EdgeWeights::Approximate.total(h) - f64::from(h - 1)).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_weights_match_eq2() {
        // h = 3: p_{1,3} = (4−1)/7, p_{2,3} = (2−1)/7.
        let w = EdgeWeights::Exact;
        assert!((w.weight(1, 3) - 3.0 / 7.0).abs() < 1e-12);
        assert!((w.weight(2, 3) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn exact_total_is_expected_path_length() {
        // Σ_d 2^d p_{d,h} = expected search-path edge count =
        // (Σ_i depth(node_i)) / n.
        let h = 8;
        let n = (1u64 << h) - 1;
        let expected: f64 = (1..=n)
            .map(|i| (63 - i.leading_zeros()) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((EdgeWeights::Exact.total(h) - expected).abs() < 1e-9);
    }

    #[test]
    fn exact_approaches_approximate_near_the_top() {
        let h = 24;
        for d in 1..=6 {
            let e = EdgeWeights::Exact.weight(d, h);
            let a = EdgeWeights::Approximate.weight(d, h);
            assert!((e - a).abs() / a < 1e-4, "d={d}");
        }
    }
}
