//! Edge-weight models for the search-tree affinity graph (§II-A).
//!
//! In the affinity-graph model, a uniform random search traverses the edge
//! between levels `d − 1` and `d` with probability
//!
//! ```text
//! p_{d,h} = (2^{h−d} − 1) / (2^h − 1)            (Eq. 2, exact)
//! p_d     ≈ 2^{−d}                               (approximation)
//! ```
//!
//! The paper uses the geometric approximation for all analysis and
//! experiments; both models are provided so the difference can be
//! quantified. The third model, [`EdgeWeights::Observed`], drops the
//! uniform-search assumption entirely: an [`ObservedProfile`] carries
//! *measured* per-key access counts (sampled from live traffic by the
//! serving engine), and an edge's weight becomes the empirical
//! probability that a search crosses it — the mass of the access
//! distribution falling inside the child's subtree. This is what the
//! traffic-adaptive re-optimization loop feeds back into the weighted
//! layout optimizers, and [`encode_weight_profile`] /
//! [`parse_weight_profile`] give the profile a checksummed sidecar
//! encoding (`.cobw`) so a re-optimized shard file records the traffic
//! it was optimized for (byte spec: `docs/FORMAT.md`).

use crate::error::{Error, Result};
use std::sync::Arc;

/// Which edge-weight model to use when evaluating weighted measures.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum EdgeWeights {
    /// `w_d = 2^{−d}` — the paper's default (used for every figure).
    #[default]
    Approximate,
    /// `w_d = (2^{h−d} − 1)/(2^h − 1)` — the exact traversal probability
    /// of Eq. 2.
    Exact,
    /// `w_d = 1` — unweighted; turns `ν` measures into their `µ`
    /// counterparts.
    Unweighted,
    /// Empirical weights from a measured per-key access distribution.
    /// The per-depth weight is the *average* edge traversal probability
    /// at that depth; per-edge precision (what the optimizers want) is
    /// available through [`ObservedProfile::subtree_probability`].
    Observed(Arc<ObservedProfile>),
}

impl EdgeWeights {
    /// Wraps measured per-key access counts (indexed by in-order rank,
    /// `counts[r - 1]` = accesses of rank `r`) into the observed model.
    #[must_use]
    pub fn from_access_counts(counts: &[u64]) -> Self {
        EdgeWeights::Observed(Arc::new(ObservedProfile::from_access_counts(counts)))
    }

    /// The observed profile, when this is the observed model.
    #[must_use]
    pub fn observed(&self) -> Option<&Arc<ObservedProfile>> {
        match self {
            EdgeWeights::Observed(p) => Some(p),
            _ => None,
        }
    }

    /// Short lowercase tag for labels and provenance strings.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            EdgeWeights::Approximate => "approx",
            EdgeWeights::Exact => "exact",
            EdgeWeights::Unweighted => "unweighted",
            EdgeWeights::Observed(_) => "observed",
        }
    }

    /// Weight of one edge between levels `d − 1` and `d` in a tree of
    /// height `h` (`1 ≤ d ≤ h − 1`).
    ///
    /// For the observed model this is the *mean* edge weight at depth
    /// `d`: the probability mass reaching depth `d` divided by the
    /// `2^d` edges entering it. A profile built for a different height
    /// falls back to the exact uniform model — the caller mixed up
    /// shard profiles, and a well-defined (if unweighted) answer beats
    /// a panic deep inside a measure evaluation.
    #[inline]
    #[must_use]
    pub fn weight(&self, d: u32, h: u32) -> f64 {
        debug_assert!(d >= 1 && d < h);
        match self {
            EdgeWeights::Approximate => (-(f64::from(d))).exp2(),
            EdgeWeights::Exact => exact_weight(d, h),
            EdgeWeights::Unweighted => 1.0,
            EdgeWeights::Observed(p) => {
                if p.height() != h {
                    return exact_weight(d, h);
                }
                p.mean_edge_weight(d)
            }
        }
    }

    /// Total weight `W = Σ_{edges} w` over all `2^d` edges at each depth
    /// `d ∈ 1..h`.
    #[must_use]
    pub fn total(&self, h: u32) -> f64 {
        (1..h).map(|d| self.weight(d, h) * (1u64 << d) as f64).sum()
    }
}

fn exact_weight(d: u32, h: u32) -> f64 {
    let num = (1u64 << (h - d)) as f64 - 1.0;
    let den = if h >= 63 {
        (f64::from(h)).exp2() - 1.0
    } else {
        (1u64 << h) as f64 - 1.0
    };
    num / den
}

// ---------------------------------------------------------------------------
// Observed access profiles
// ---------------------------------------------------------------------------

/// A measured access distribution over the in-order ranks of one
/// complete tree: `counts[r - 1]` accesses of rank `r`, padded with
/// zeros up to the tree capacity `2^h − 1`. Integer-only so the
/// containing [`EdgeWeights`] keeps its derived `Eq`/`Hash`.
///
/// Subtree masses — the per-edge weights the optimizers consume — are
/// O(1) via prefix sums: in a complete tree the subtree under any BFS
/// node covers one contiguous in-order rank interval.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObservedProfile {
    height: u32,
    counts: Vec<u64>,
    /// `prefix[i]` = Σ counts[..i]; `prefix[n]` is the grand total.
    prefix: Vec<u64>,
}

impl ObservedProfile {
    /// Builds a profile from per-rank access counts, choosing the
    /// smallest height whose capacity holds them (zero-padded). An
    /// empty slice yields the degenerate height-1 profile (one rank,
    /// zero mass — treated as uniform everywhere).
    #[must_use]
    pub fn from_access_counts(counts: &[u64]) -> Self {
        let mut h = 1;
        while ((1u64 << h) - 1) < counts.len() as u64 {
            h += 1;
        }
        Self::with_height(counts, h)
    }

    /// Builds a profile for an explicit tree height; `counts` is
    /// truncated or zero-padded to the capacity `2^h − 1`.
    ///
    /// # Panics
    /// Panics if `h` is 0 or above the format ceiling
    /// ([`crate::format::MAX_FORMAT_HEIGHT`]), or if the counts sum
    /// past `u64`.
    #[must_use]
    pub fn with_height(counts: &[u64], h: u32) -> Self {
        assert!(
            (1..=crate::format::MAX_FORMAT_HEIGHT).contains(&h),
            "profile height {h} out of range"
        );
        let capacity = (1usize << h) - 1;
        let mut padded = vec![0u64; capacity];
        let take = counts.len().min(capacity);
        padded[..take].copy_from_slice(&counts[..take]);
        let mut prefix = Vec::with_capacity(capacity + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &c in &padded {
            acc = acc
                .checked_add(c)
                .expect("access counts overflow u64 total");
            prefix.push(acc);
        }
        ObservedProfile {
            height: h,
            counts: padded,
            prefix,
        }
    }

    /// Tree height the profile spans.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Capacity `2^h − 1` (length of the padded count vector).
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Never true (height ≥ 1 means at least one rank); present for
    /// the `len`/`is_empty` API pairing convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total observed accesses. Zero means "no signal": every
    /// probability query degrades to the uniform distribution.
    #[must_use]
    pub fn total(&self) -> u64 {
        *self.prefix.last().expect("prefix never empty")
    }

    /// Accesses recorded for in-order rank `r` (1-based).
    #[must_use]
    pub fn count(&self, rank: u64) -> u64 {
        self.counts[(rank - 1) as usize]
    }

    /// The raw padded counts, rank order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of counts over the inclusive 1-based rank interval.
    #[must_use]
    pub fn mass(&self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo >= 1 && lo <= hi && hi <= self.counts.len() as u64);
        self.prefix[hi as usize] - self.prefix[(lo - 1) as usize]
    }

    /// Empirical probability of the rank interval; uniform when the
    /// profile has no mass.
    #[must_use]
    pub fn probability(&self, lo: u64, hi: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return (hi - lo + 1) as f64 / self.counts.len() as f64;
        }
        self.mass(lo, hi) as f64 / total as f64
    }

    /// The inclusive in-order rank interval covered by the subtree
    /// rooted at BFS `node` (1-based, `1 ≤ node < 2^h`).
    #[must_use]
    pub fn node_interval(&self, node: u64) -> (u64, u64) {
        node_rank_interval(node, self.height)
    }

    /// Empirical probability that a search descends into (or ends at)
    /// `node` — the weight of the edge from its parent in the observed
    /// affinity graph.
    #[must_use]
    pub fn subtree_probability(&self, node: u64) -> f64 {
        let (lo, hi) = self.node_interval(node);
        self.probability(lo, hi)
    }

    /// Mean edge weight at depth `d`: mass reaching depth `d` divided
    /// by the `2^d` edges entering it.
    #[must_use]
    pub fn mean_edge_weight(&self, d: u32) -> f64 {
        debug_assert!(d >= 1 && d < self.height);
        let total = self.total();
        if total == 0 {
            return exact_weight(d, self.height);
        }
        // Mass reaching depth d = 1 − Σ probabilities of the 2^d − 1
        // nodes strictly above it (each node's own rank, not its
        // subtree).
        let mut above = 0u64;
        for node in 1..(1u64 << d) {
            above += self.count(node_in_order_rank(node, self.height));
        }
        (1.0 - above as f64 / total as f64) / (1u64 << d) as f64
    }

    /// Total-variation distance in `[0, 1]` between this profile's
    /// access distribution and `other`'s. Profiles of different
    /// heights are compared over the larger capacity (missing ranks
    /// carry zero mass); a zero-mass profile is treated as uniform.
    #[must_use]
    pub fn divergence(&self, other: &ObservedProfile) -> f64 {
        let n = self.counts.len().max(other.counts.len());
        let p = |prof: &ObservedProfile, i: usize| -> f64 {
            if i >= prof.counts.len() {
                return 0.0;
            }
            let total = prof.total();
            if total == 0 {
                return 1.0 / prof.counts.len() as f64;
            }
            prof.counts[i] as f64 / total as f64
        };
        let mut tv = 0.0;
        for i in 0..n {
            tv += (p(self, i) - p(other, i)).abs();
        }
        (tv / 2.0).clamp(0.0, 1.0)
    }
}

/// Depth of BFS node `v` in a complete tree (root = 0).
///
/// # Panics
/// Panics (debug) on `v = 0` — BFS nodes are 1-based.
#[inline]
#[must_use]
pub fn node_depth(v: u64) -> u32 {
    debug_assert!(v >= 1);
    63 - v.leading_zeros()
}

/// In-order rank (1-based) of BFS node `v` in a complete tree of
/// height `h`: `(2j + 1) · 2^{h−1−d}` for the `j`-th node of depth `d`.
#[inline]
#[must_use]
pub fn node_in_order_rank(v: u64, h: u32) -> u64 {
    let d = node_depth(v);
    debug_assert!(d < h);
    let j = v - (1u64 << d);
    (2 * j + 1) << (h - 1 - d)
}

/// The inclusive in-order rank interval of the subtree under BFS node
/// `v` in a complete tree of height `h`.
#[inline]
#[must_use]
pub fn node_rank_interval(v: u64, h: u32) -> (u64, u64) {
    let rank = node_in_order_rank(v, h);
    let span = (1u64 << (h - 1 - node_depth(v))) - 1;
    (rank - span, rank + span)
}

/// Greedy hot-path packing with a cold-subtree escape hatch: starting
/// from the root, repeatedly place the frontier node with the heaviest
/// observed subtree at the next array position, so hot root-to-leaf
/// paths end up contiguous near the front of the array — a
/// linearithmic approximation of the weighted-edge-length optimum that
/// needs no optimizer machinery (the optimizer crate's `profile`
/// module refines it where tree size permits).
///
/// A frontier subtree whose access density falls *below the profile
/// average* is not worth scattering across the cold tail of the
/// array: its keys are touched too rarely to stay cached, so what
/// matters is how few blocks one cold descent touches — exactly the
/// uniform-traffic problem the paper solves. Such subtrees are
/// emitted contiguously in MINWEP (vEB) order instead, keeping
/// cache-oblivious locality for the cold mass while the hot working
/// set stays front-packed. Deterministic: ties break toward the
/// smaller BFS node, and the strict below-average test means a
/// uniform (or zero-mass) profile degrades to plain BFS order.
#[must_use]
pub fn hot_path_layout(profile: &ObservedProfile) -> crate::layout::Layout {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let h = profile.height();
    let n = (1u64 << h) - 1;
    let total = profile.total();
    let mut pos = vec![0u32; n as usize];
    // MINWEP sub-layouts memoized per subtree height.
    let mut veb: Vec<Option<crate::layout::Layout>> = vec![None; h as usize + 1];
    // Max-heap on (subtree mass, smaller-node-first).
    let mut frontier: BinaryHeap<(u64, Reverse<u64>)> = BinaryHeap::new();
    let mass = |v: u64| {
        let (lo, hi) = profile.node_interval(v);
        profile.mass(lo, hi)
    };
    frontier.push((mass(1), Reverse(1)));
    let mut next = 0u32;
    while let Some((m, Reverse(v))) = frontier.pop() {
        let k = h - node_depth(v);
        let size = (1u64 << k) - 1;
        // Density below the profile average (m / size < total / n,
        // cross-multiplied; u128 so the products cannot overflow).
        if u128::from(m) * u128::from(n) < u128::from(total) * u128::from(size) {
            let sub = veb[k as usize]
                .get_or_insert_with(|| crate::named::NamedLayout::MinWep.materialize(k));
            for u in 1..=size {
                let dl = node_depth(u);
                let g = (v << dl) + (u - (1u64 << dl));
                pos[(g - 1) as usize] = next + sub.position(u) as u32;
            }
            next += size as u32;
            continue;
        }
        pos[(v - 1) as usize] = next;
        next += 1;
        if k > 1 {
            frontier.push((mass(2 * v), Reverse(2 * v)));
            frontier.push((mass(2 * v + 1), Reverse(2 * v + 1)));
        }
    }
    crate::layout::Layout::from_positions(h, pos)
}

// ---------------------------------------------------------------------------
// Weight-profile sidecar (`.cobw`)
// ---------------------------------------------------------------------------

/// The four magic bytes every weight-profile sidecar starts with.
pub const WEIGHT_MAGIC: [u8; 4] = *b"COBW";

/// Sidecar format version [`encode_weight_profile`] writes.
pub const WEIGHT_VERSION: u16 = 1;

/// Fixed sidecar header size in bytes; the count array starts here.
pub const WEIGHT_HEADER_LEN: usize = 44;

/// Serializes an [`ObservedProfile`] into the `.cobw` sidecar bytes:
/// a fixed header (magic, version, endianness, height, total, rank
/// count) sealed with the same FNV-1a header/content checksum
/// discipline as tree files, followed by the padded per-rank counts as
/// `u64` little-endian. Byte spec in `docs/FORMAT.md`.
#[must_use]
pub fn encode_weight_profile(profile: &ObservedProfile) -> Vec<u8> {
    use crate::format::{fnv1a, fnv1a_init, ENDIAN_MARK};
    let n = profile.counts.len();
    let mut out = vec![0u8; WEIGHT_HEADER_LEN + n * 8];
    out[0..4].copy_from_slice(&WEIGHT_MAGIC);
    out[4..6].copy_from_slice(&WEIGHT_VERSION.to_le_bytes());
    out[6..8].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
    out[8..12].copy_from_slice(&profile.height.to_le_bytes());
    out[12..20].copy_from_slice(&profile.total().to_le_bytes());
    out[20..28].copy_from_slice(&(n as u64).to_le_bytes());
    for (i, &c) in profile.counts.iter().enumerate() {
        let off = WEIGHT_HEADER_LEN + i * 8;
        out[off..off + 8].copy_from_slice(&c.to_le_bytes());
    }
    let content = fnv1a(fnv1a_init(), &out[WEIGHT_HEADER_LEN..]);
    out[28..36].copy_from_slice(&content.to_le_bytes());
    let header = fnv1a(fnv1a_init(), &out[..36]);
    out[36..44].copy_from_slice(&header.to_le_bytes());
    out
}

/// Parses and fully validates `.cobw` sidecar bytes back into an
/// [`ObservedProfile`]: magic, version, endianness, both checksums,
/// height/capacity agreement and the recorded total.
///
/// # Errors
/// [`Error::BadMagic`] / [`Error::Truncated`] /
/// [`Error::UnsupportedVersion`] / [`Error::ChecksumMismatch`] /
/// [`Error::Malformed`] — never a panic on untrusted bytes.
pub fn parse_weight_profile(bytes: &[u8]) -> Result<ObservedProfile> {
    use crate::format::{fnv1a, fnv1a_init, ENDIAN_MARK, MAX_FORMAT_HEIGHT};
    if bytes.len() >= 4 && bytes[0..4] != WEIGHT_MAGIC {
        return Err(Error::BadMagic {
            got: bytes[0..4].try_into().expect("length checked"),
        });
    }
    if bytes.len() < WEIGHT_HEADER_LEN {
        return Err(Error::Truncated {
            needed: WEIGHT_HEADER_LEN as u64,
            got: bytes.len() as u64,
        });
    }
    let le16 = |at: usize| u16::from_le_bytes(bytes[at..at + 2].try_into().expect("bounds"));
    let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds"));
    let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds"));
    let version = le16(4);
    if version == 0 || version > WEIGHT_VERSION {
        return Err(Error::UnsupportedVersion {
            got: version,
            supported: WEIGHT_VERSION,
        });
    }
    if le16(6) != ENDIAN_MARK {
        return Err(Error::Malformed {
            detail: "endianness marker mismatch in weight sidecar".into(),
        });
    }
    if fnv1a(fnv1a_init(), &bytes[..36]) != le64(36) {
        return Err(Error::ChecksumMismatch { region: "header" });
    }
    let height = le32(8);
    if height == 0 || height > MAX_FORMAT_HEIGHT {
        return Err(Error::HeightOutOfRange {
            height,
            min: 1,
            max: MAX_FORMAT_HEIGHT,
        });
    }
    let n = le64(20);
    if n != (1u64 << height) - 1 {
        return Err(Error::Malformed {
            detail: format!("weight sidecar rank count {n} != capacity of height {height}"),
        });
    }
    let needed = WEIGHT_HEADER_LEN as u64 + n * 8;
    if (bytes.len() as u64) < needed {
        return Err(Error::Truncated {
            needed,
            got: bytes.len() as u64,
        });
    }
    if bytes.len() as u64 != needed {
        return Err(Error::Malformed {
            detail: format!(
                "weight sidecar is {} bytes, rank count dictates {needed}",
                bytes.len()
            ),
        });
    }
    if fnv1a(fnv1a_init(), &bytes[WEIGHT_HEADER_LEN..]) != le64(28) {
        return Err(Error::ChecksumMismatch { region: "content" });
    }
    let counts: Vec<u64> = (0..n as usize)
        .map(|i| le64(WEIGHT_HEADER_LEN + i * 8))
        .collect();
    let profile = ObservedProfile::with_height(&counts, height);
    if profile.total() != le64(12) {
        return Err(Error::Malformed {
            detail: "weight sidecar total disagrees with its counts".into(),
        });
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximate_weights_are_geometric() {
        let w = EdgeWeights::Approximate;
        assert!((w.weight(1, 10) - 0.5).abs() < 1e-12);
        assert!((w.weight(2, 10) - 0.25).abs() < 1e-12);
        assert!((w.weight(9, 10) - 2f64.powi(-9)).abs() < 1e-15);
    }

    #[test]
    fn approximate_total_is_h_minus_one() {
        // Σ_d 2^d · 2^{−d} = h − 1.
        for h in 2..=30 {
            assert!((EdgeWeights::Approximate.total(h) - f64::from(h - 1)).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_weights_match_eq2() {
        // h = 3: p_{1,3} = (4−1)/7, p_{2,3} = (2−1)/7.
        let w = EdgeWeights::Exact;
        assert!((w.weight(1, 3) - 3.0 / 7.0).abs() < 1e-12);
        assert!((w.weight(2, 3) - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn exact_total_is_expected_path_length() {
        // Σ_d 2^d p_{d,h} = expected search-path edge count =
        // (Σ_i depth(node_i)) / n.
        let h = 8;
        let n = (1u64 << h) - 1;
        let expected: f64 = (1..=n)
            .map(|i| (63 - i.leading_zeros()) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((EdgeWeights::Exact.total(h) - expected).abs() < 1e-9);
    }

    #[test]
    fn exact_approaches_approximate_near_the_top() {
        let h = 24;
        for d in 1..=6 {
            let e = EdgeWeights::Exact.weight(d, h);
            let a = EdgeWeights::Approximate.weight(d, h);
            assert!((e - a).abs() / a < 1e-4, "d={d}");
        }
    }

    #[test]
    fn rank_geometry_matches_the_tree_model() {
        use crate::tree::Tree;
        for h in 1..=6u32 {
            let tree = Tree::new(h);
            for v in tree.nodes() {
                assert_eq!(node_depth(v), tree.depth(v), "h={h} v={v}");
                assert_eq!(
                    node_in_order_rank(v, h),
                    tree.in_order_rank(v),
                    "h={h} v={v}"
                );
            }
        }
        // Subtree intervals: root covers everything, leaves cover
        // exactly their own rank.
        assert_eq!(node_rank_interval(1, 4), (1, 15));
        assert_eq!(node_rank_interval(2, 4), (1, 7));
        assert_eq!(node_rank_interval(3, 4), (9, 15));
        for leaf in 8..16u64 {
            let r = node_in_order_rank(leaf, 4);
            assert_eq!(node_rank_interval(leaf, 4), (r, r));
        }
    }

    #[test]
    fn from_access_counts_pads_to_the_next_capacity() {
        let p = ObservedProfile::from_access_counts(&[5, 0, 3, 1]);
        assert_eq!(p.height(), 3); // 4 counts need capacity 7
        assert_eq!(p.len(), 7);
        assert_eq!(p.total(), 9);
        assert_eq!(p.count(1), 5);
        assert_eq!(p.count(5), 0); // padding
        assert_eq!(p.mass(1, 3), 8);
        assert!((p.probability(1, 3) - 8.0 / 9.0).abs() < 1e-12);
        // Empty input: degenerate uniform profile.
        let empty = ObservedProfile::from_access_counts(&[]);
        assert_eq!(empty.height(), 1);
        assert_eq!(empty.total(), 0);
        assert!((empty.probability(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subtree_probability_is_the_interval_mass() {
        // h = 3, counts by rank 1..=7.
        let p = ObservedProfile::with_height(&[1, 2, 3, 4, 5, 6, 7], 3);
        assert_eq!(p.total(), 28);
        // Node 2's subtree = ranks 1..=3 (mass 6), node 3's = 5..=7
        // (mass 18), root = everything.
        assert!((p.subtree_probability(1) - 1.0).abs() < 1e-12);
        assert!((p.subtree_probability(2) - 6.0 / 28.0).abs() < 1e-12);
        assert!((p.subtree_probability(3) - 18.0 / 28.0).abs() < 1e-12);
        // Leaf node 7 = rank 7 alone.
        assert!((p.subtree_probability(7) - 7.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn observed_weight_reduces_to_exact_under_uniform_traffic() {
        // A flat profile is exactly the paper's uniform-search model:
        // the observed mean edge weight at each depth must match Eq. 2.
        let h = 6;
        let counts = vec![10u64; (1 << h) - 1];
        let w = EdgeWeights::Observed(Arc::new(ObservedProfile::with_height(&counts, h)));
        for d in 1..h {
            let o = w.weight(d, h);
            let e = EdgeWeights::Exact.weight(d, h);
            assert!((o - e).abs() < 1e-12, "d={d}: {o} vs {e}");
        }
        // And a zero-mass profile degrades to the same uniform model.
        let empty = EdgeWeights::Observed(Arc::new(ObservedProfile::with_height(&[], h)));
        for d in 1..h {
            assert!((empty.weight(d, h) - EdgeWeights::Exact.weight(d, h)).abs() < 1e-12);
        }
    }

    #[test]
    fn observed_weight_tracks_skew() {
        // All traffic on rank 1 (leftmost leaf): every edge on its
        // root-to-leaf path has weight 1, all others 0 — so the mean
        // edge weight at depth d is exactly 2^{−d}.
        let h = 5;
        let mut counts = vec![0u64; (1 << h) - 1];
        counts[0] = 1_000;
        let p = ObservedProfile::with_height(&counts, h);
        for d in 1..h {
            let mean = p.mean_edge_weight(d);
            assert!((mean - (-(f64::from(d))).exp2()).abs() < 1e-12, "d={d}");
        }
        // Per-edge: the leftmost spine carries all the mass.
        assert!((p.subtree_probability(2) - 1.0).abs() < 1e-12);
        assert!(p.subtree_probability(3) < 1e-12);
    }

    #[test]
    fn divergence_is_a_metric_like_distance() {
        let a = ObservedProfile::with_height(&[10, 0, 0], 2);
        let b = ObservedProfile::with_height(&[0, 0, 10], 2);
        let c = ObservedProfile::with_height(&[10, 0, 0], 2);
        assert!((a.divergence(&b) - 1.0).abs() < 1e-12, "disjoint = 1");
        assert!(a.divergence(&c) < 1e-12, "identical = 0");
        assert!((a.divergence(&b) - b.divergence(&a)).abs() < 1e-12);
        // A zero-mass profile compares as uniform.
        let empty = ObservedProfile::with_height(&[], 2);
        let uniform = ObservedProfile::with_height(&[7, 7, 7], 2);
        assert!(empty.divergence(&uniform) < 1e-12);
        // Mild skew diverges less than total skew.
        let mild = ObservedProfile::with_height(&[6, 2, 2], 2);
        assert!(uniform.divergence(&mild) < uniform.divergence(&a));
    }

    #[test]
    fn weight_sidecar_round_trips() {
        let p = ObservedProfile::with_height(&[3, 1, 4, 1, 5, 9, 2], 3);
        let bytes = encode_weight_profile(&p);
        let back = parse_weight_profile(&bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.total(), 25);
    }

    #[test]
    fn weight_sidecar_rejects_corruption_typed() {
        let p = ObservedProfile::with_height(&[3, 1, 4, 1, 5], 3);
        let good = encode_weight_profile(&p);

        // Every truncation is typed.
        for len in 0..good.len() {
            let err = parse_weight_profile(&good[..len]).expect_err("truncated");
            assert!(
                matches!(
                    err,
                    Error::Truncated { .. } | Error::ChecksumMismatch { .. }
                ),
                "prefix {len}: {err:?}"
            );
        }

        // Foreign magic.
        let mut f = good.clone();
        f[0..4].copy_from_slice(b"NOPE");
        assert!(matches!(
            parse_weight_profile(&f).unwrap_err(),
            Error::BadMagic { .. }
        ));

        // Future version.
        let mut f = good.clone();
        f[4..6].copy_from_slice(&9u16.to_le_bytes());
        // Header hash no longer matches; reseal it to reach the
        // version check.
        let header = crate::format::fnv1a(crate::format::fnv1a_init(), &f[..36]);
        f[36..44].copy_from_slice(&header.to_le_bytes());
        assert!(matches!(
            parse_weight_profile(&f).unwrap_err(),
            Error::UnsupportedVersion { .. }
        ));

        // A flipped count bit fails the content checksum.
        let mut f = good.clone();
        *f.last_mut().unwrap() ^= 1;
        assert!(matches!(
            parse_weight_profile(&f).unwrap_err(),
            Error::ChecksumMismatch { region: "content" }
        ));

        // A lying total fails after the counts parse.
        let mut f = good.clone();
        f[12..20].copy_from_slice(&999u64.to_le_bytes());
        let header = crate::format::fnv1a(crate::format::fnv1a_init(), &f[..36]);
        f[36..44].copy_from_slice(&header.to_le_bytes());
        assert!(matches!(
            parse_weight_profile(&f).unwrap_err(),
            Error::Malformed { .. }
        ));
    }

    #[test]
    fn edge_weights_equality_and_hash_cover_observed() {
        use std::collections::HashSet;
        let a = EdgeWeights::from_access_counts(&[1, 2, 3]);
        let b = EdgeWeights::from_access_counts(&[1, 2, 3]);
        let c = EdgeWeights::from_access_counts(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
        assert_eq!(a.tag(), "observed");
        assert_eq!(EdgeWeights::Approximate.tag(), "approx");
        assert!(a.observed().is_some());
        assert!(EdgeWeights::Exact.observed().is_none());
    }
}
