//! Complete binary tree model.
//!
//! The paper (§I) works exclusively with *complete* binary trees of height
//! `h` (i.e. `h` levels of nodes, `2^h − 1` nodes total). Nodes are
//! identified by their **breadth-first (BFS) index** `i ∈ [1, 2^h)`, the
//! classical implicit-heap numbering: the root is `1`, the children of `i`
//! are `2i` and `2i + 1`. All layouts are permutations of these indices.
//!
//! The key stored at a node is its **in-order rank**, so keys can be
//! recovered from the BFS index with pure bit arithmetic — exactly the
//! trick the paper uses (§IV-E footnote 1) to time pointer-less index
//! computation with no memory accesses.

/// BFS index of a node in a complete binary tree (`1..2^h`).
pub type NodeId = u64;

/// Maximum supported tree height. `2^60` node indices still fit a `u64`
/// with room for arithmetic; practical experiments use `h ≤ 32`.
pub const MAX_HEIGHT: u32 = 60;

/// A complete binary tree with `h ≥ 1` levels and `2^h − 1` nodes.
///
/// The type is a lightweight descriptor (just the height); all structure is
/// implicit in BFS index arithmetic.
///
/// ```
/// use cobtree_core::tree::Tree;
/// let t = Tree::new(3);
/// assert_eq!(t.len(), 7);
/// assert_eq!(t.depth(5), 2);
/// assert_eq!(t.parent(5), Some(2));
/// assert_eq!(t.in_order_rank(1), 4); // the root is the middle key
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tree {
    height: u32,
}

impl Tree {
    /// Creates a complete binary tree with `height` levels.
    ///
    /// # Panics
    /// Panics if `height` is `0` or exceeds [`MAX_HEIGHT`].
    #[must_use]
    pub fn new(height: u32) -> Self {
        assert!(
            (1..=MAX_HEIGHT).contains(&height),
            "tree height must be in 1..={MAX_HEIGHT}, got {height}"
        );
        Self { height }
    }

    /// Fallible variant of [`Tree::new`].
    ///
    /// # Errors
    /// [`crate::Error::HeightOutOfRange`] if `height` is `0` or exceeds
    /// [`MAX_HEIGHT`].
    pub fn try_new(height: u32) -> crate::error::Result<Self> {
        if !(1..=MAX_HEIGHT).contains(&height) {
            return Err(crate::error::Error::HeightOutOfRange {
                height,
                min: 1,
                max: MAX_HEIGHT,
            });
        }
        Ok(Self { height })
    }

    /// Number of levels `h` (the paper's *height*). The root is on level 0
    /// and the leaves on level `h − 1`.
    #[inline]
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of nodes, `2^h − 1`.
    #[inline]
    #[must_use]
    pub fn len(&self) -> u64 {
        (1u64 << self.height) - 1
    }

    /// `false` — a complete binary tree always has at least one node.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of edges, `2^h − 2`.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.len() - 1
    }

    /// BFS index of the root (always `1`).
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        1
    }

    /// Returns `true` if `node` is a valid BFS index for this tree.
    #[inline]
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        node >= 1 && node <= self.len()
    }

    /// Depth (level) of `node`: `⌊log2 node⌋`. The root has depth 0.
    #[inline]
    #[must_use]
    pub fn depth(&self, node: NodeId) -> u32 {
        debug_assert!(self.contains(node));
        63 - node.leading_zeros()
    }

    /// Parent of `node`, or `None` for the root.
    #[inline]
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        debug_assert!(self.contains(node));
        if node == 1 {
            None
        } else {
            Some(node >> 1)
        }
    }

    /// Left child of `node`, or `None` if `node` is a leaf.
    #[inline]
    #[must_use]
    pub fn left(&self, node: NodeId) -> Option<NodeId> {
        let c = node << 1;
        (c <= self.len()).then_some(c)
    }

    /// Right child of `node`, or `None` if `node` is a leaf.
    #[inline]
    #[must_use]
    pub fn right(&self, node: NodeId) -> Option<NodeId> {
        let c = (node << 1) | 1;
        (c <= self.len()).then_some(c)
    }

    /// `true` if `node` is on the last level.
    #[inline]
    #[must_use]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.depth(node) == self.height - 1
    }

    /// Rank of `node` within its level, `0 ≤ rank < 2^depth`.
    #[inline]
    #[must_use]
    pub fn level_rank(&self, node: NodeId) -> u64 {
        node - (1u64 << self.depth(node))
    }

    /// Height of the subtree rooted at `node` (a leaf has subtree height 1).
    #[inline]
    #[must_use]
    pub fn subtree_height(&self, node: NodeId) -> u32 {
        self.height - self.depth(node)
    }

    /// Number of nodes in the subtree rooted at `node`.
    #[inline]
    #[must_use]
    pub fn subtree_len(&self, node: NodeId) -> u64 {
        (1u64 << self.subtree_height(node)) - 1
    }

    /// In-order rank of `node`, 1-based (`1..=2^h − 1`).
    ///
    /// For a node at depth `d` with level rank `j`, the in-order rank is
    /// `j · 2^{h−d} + 2^{h−d−1}`: each depth-`d` subtree owns a contiguous
    /// key range and its root sits exactly in the middle.
    #[inline]
    #[must_use]
    pub fn in_order_rank(&self, node: NodeId) -> u64 {
        let d = self.depth(node);
        let j = node - (1u64 << d);
        let span = 1u64 << (self.height - d);
        j * span + span / 2
    }

    /// Inverse of [`Tree::in_order_rank`]: the BFS index holding the
    /// 1-based in-order rank `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of `1..=len()`.
    #[inline]
    #[must_use]
    pub fn node_at_in_order(&self, rank: u64) -> NodeId {
        assert!(
            rank >= 1 && rank <= self.len(),
            "in-order rank out of range"
        );
        let t = rank.trailing_zeros(); // rank = odd · 2^t ⇒ depth = h − 1 − t
        let d = self.height - 1 - t;
        (1u64 << d) + (rank >> (t + 1))
    }

    /// Ancestor of `node` at depth `d` (requires `d ≤ depth(node)`).
    #[inline]
    #[must_use]
    pub fn ancestor_at_depth(&self, node: NodeId, d: u32) -> NodeId {
        let nd = self.depth(node);
        debug_assert!(d <= nd);
        node >> (nd - d)
    }

    /// Iterator over all BFS indices, `1..=2^h − 1`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        1..=self.len()
    }

    /// Iterator over all nodes on level `d`.
    pub fn level(&self, d: u32) -> impl Iterator<Item = NodeId> {
        debug_assert!(d < self.height);
        (1u64 << d)..(1u64 << (d + 1))
    }

    /// Iterator over all edges as `(parent, child)` pairs. The *depth of an
    /// edge* in the paper's terminology is `depth(child)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> {
        let n = self.len();
        (2..=n).map(|c| (c >> 1, c))
    }

    /// The root-to-`node` path, starting at the root (inclusive on both ends).
    #[must_use]
    pub fn path_from_root(&self, node: NodeId) -> Vec<NodeId> {
        let d = self.depth(node);
        (0..=d).map(|k| node >> (d - k)).collect()
    }

    /// Searches for the 1-based in-order `key`, returning the root-to-target
    /// BFS path — the access sequence the affinity-graph model of §II-A
    /// assigns to this search.
    #[must_use]
    pub fn search_path(&self, key: u64) -> Vec<NodeId> {
        self.path_from_root(self.node_at_in_order(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_shape() {
        let t = Tree::new(4);
        assert_eq!(t.len(), 15);
        assert_eq!(t.edge_count(), 14);
        assert_eq!(t.height(), 4);
        assert_eq!(t.root(), 1);
        assert!(t.contains(15));
        assert!(!t.contains(16));
        assert!(!t.contains(0));
    }

    #[test]
    fn depth_and_family() {
        let t = Tree::new(4);
        assert_eq!(t.depth(1), 0);
        assert_eq!(t.depth(2), 1);
        assert_eq!(t.depth(3), 1);
        assert_eq!(t.depth(15), 3);
        assert_eq!(t.parent(1), None);
        assert_eq!(t.parent(7), Some(3));
        assert_eq!(t.left(3), Some(6));
        assert_eq!(t.right(3), Some(7));
        assert_eq!(t.left(8), None);
        assert!(t.is_leaf(8));
        assert!(!t.is_leaf(7));
    }

    #[test]
    fn level_rank_and_subtrees() {
        let t = Tree::new(5);
        assert_eq!(t.level_rank(1), 0);
        assert_eq!(t.level_rank(5), 1);
        assert_eq!(t.subtree_height(1), 5);
        assert_eq!(t.subtree_height(16), 1);
        assert_eq!(t.subtree_len(2), 15);
    }

    #[test]
    fn in_order_rank_round_trip() {
        for h in 1..=10 {
            let t = Tree::new(h);
            let mut seen = vec![false; t.len() as usize + 1];
            for i in t.nodes() {
                let r = t.in_order_rank(i);
                assert!(r >= 1 && r <= t.len());
                assert!(!seen[r as usize], "duplicate in-order rank");
                seen[r as usize] = true;
                assert_eq!(t.node_at_in_order(r), i);
            }
        }
    }

    #[test]
    fn in_order_is_bst_order() {
        // In-order ranks must be increasing along an in-order traversal.
        let t = Tree::new(6);
        fn visit(t: &Tree, i: NodeId, out: &mut Vec<u64>) {
            if let Some(l) = t.left(i) {
                visit(t, l, out);
            }
            out.push(t.in_order_rank(i));
            if let Some(r) = t.right(i) {
                visit(t, r, out);
            }
        }
        let mut ranks = Vec::new();
        visit(&t, 1, &mut ranks);
        let sorted: Vec<u64> = (1..=t.len()).collect();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn edges_depth_counts() {
        let t = Tree::new(5);
        let mut per_depth = [0u64; 5];
        for (p, c) in t.edges() {
            assert_eq!(p, c >> 1);
            per_depth[t.depth(c) as usize] += 1;
        }
        assert_eq!(per_depth, [0, 2, 4, 8, 16]);
    }

    #[test]
    fn search_path_follows_comparisons() {
        let t = Tree::new(4);
        for key in 1..=t.len() {
            let path = t.search_path(key);
            assert_eq!(path[0], 1);
            // Walking by comparisons on in-order keys must give the same path.
            let mut node = 1;
            for &p in &path {
                assert_eq!(p, node);
                let k = t.in_order_rank(node);
                if key == k {
                    break;
                }
                node = if key < k { node << 1 } else { (node << 1) | 1 };
            }
            assert_eq!(*path.last().unwrap(), t.node_at_in_order(key));
        }
    }

    #[test]
    fn ancestor_at_depth_walks_up() {
        let t = Tree::new(6);
        assert_eq!(t.ancestor_at_depth(63, 0), 1);
        assert_eq!(t.ancestor_at_depth(63, 5), 63);
        assert_eq!(t.ancestor_at_depth(44, 2), 5);
    }

    #[test]
    #[should_panic(expected = "tree height")]
    fn zero_height_rejected() {
        let _ = Tree::new(0);
    }
}
