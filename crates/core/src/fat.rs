//! B-ary "fat node" layout family: hierarchical layouts over
//! multi-key nodes.
//!
//! The paper's framework (§II) parameterizes layouts by recursion
//! shape, not branching factor — a van Emde Boas recursion over
//! 2^s-ary nodes is the same framework with a larger radix. This
//! module grows the layout engine in that direction: a *fat node*
//! (chunk) packs `s` consecutive binary levels — `2^s − 1` keys plus
//! at least one padding slot — into a `2^s`-slot aligned block, so one
//! cache-line load answers `s` binary comparisons with a single
//! rank-of-key scan (SIMD-friendly: compare + movemask + popcount).
//!
//! A height-`h` binary tree becomes a tree of `H = ⌈h/s⌉` fat levels.
//! The *partial* span (when `s ∤ h`) is placed at the **top**: fat
//! level 0 spans `sp₀ = h − (H−1)·s ∈ 1..=s` binary levels, every
//! deeper fat level spans exactly `s`. Putting the remainder at the
//! root wastes slots in exactly one chunk; putting it at the bottom
//! would underfill the (exponentially many) leaf chunks.
//!
//! Within a chunk, keys sit in **local in-order** order, so the
//! chunk's real keys are sorted and — because padding keys have the
//! largest in-order ranks of the whole tree — real keys always form a
//! *prefix* of the chunk ([`FatIndex::chunk_real_count`] gives its
//! closed-form length). Descent therefore needs only "count keys
//! `< probe` in a sorted prefix", the rank-of-key kernel.
//!
//! Chunks themselves are arranged by one of three [`FatOrder`]s
//! (breadth-first, pre-order DFS, or a van Emde Boas recursion over
//! fat levels). All three compile to the existing
//! [`StepPlan::Terms`] closed form, so the devirtualized descent
//! kernels of `cobtree-search` serve fat layouts with zero new plan
//! machinery.

use crate::error::{Error, Result};
use crate::index::plan::{LevelPlan, MaskTerm};
use crate::index::{PositionIndex, StepPlan};
use crate::tree::NodeId;

/// Tallest binary tree a fat layout serves. Matches the `.cobt`
/// format ceiling: slot positions (and explicit child pointers) must
/// fit `u32`, and `slot_capacity(31, s) < 2^32` for every span.
pub const MAX_FAT_HEIGHT: u32 = 31;

/// Fat-node arities with cache-line-relevant sizes: `2..=64` keys per
/// chunk (spans `1..=6` binary levels).
pub const MIN_FAT_ARITY: u32 = 2;
/// See [`MIN_FAT_ARITY`].
pub const MAX_FAT_ARITY: u32 = 64;

/// How the chunks (fat nodes) of a fat layout are ordered in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FatOrder {
    /// Fat levels laid out level by level (the B-tree layout).
    Bfs,
    /// Pre-order depth-first over fat nodes.
    Dfs,
    /// Van Emde Boas recursion over fat levels (halving cut) — the
    /// paper's PRE-VEB shape with radix `2^s`.
    Veb,
}

impl FatOrder {
    /// All chunk orders.
    pub const ALL: [FatOrder; 3] = [FatOrder::Bfs, FatOrder::Dfs, FatOrder::Veb];
}

/// A fat-node layout: chunk order × arity (`2^span` slots per chunk).
///
/// Labels follow the grammar `FAT<arity>-<ORDER>`, e.g. `FAT8-VEB`
/// (8 slots = 7 keys + 1 pad per chunk, vEB chunk order). The label is
/// what the `.cobt` descriptor region stores for fat files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FatLayout {
    order: FatOrder,
    span: u32,
}

impl FatLayout {
    /// The canonical test/bench matrix: every order at the two
    /// cache-line arities (8 slots of `u64` = 64 B; 16 slots of `u32`
    /// = 64 B, of `u64` = 128 B).
    pub const ALL: [FatLayout; 6] = [
        FatLayout {
            order: FatOrder::Bfs,
            span: 3,
        },
        FatLayout {
            order: FatOrder::Dfs,
            span: 3,
        },
        FatLayout {
            order: FatOrder::Veb,
            span: 3,
        },
        FatLayout {
            order: FatOrder::Bfs,
            span: 4,
        },
        FatLayout {
            order: FatOrder::Dfs,
            span: 4,
        },
        FatLayout {
            order: FatOrder::Veb,
            span: 4,
        },
    ];

    /// Builds a layout from a chunk order and an arity (slots per
    /// chunk).
    ///
    /// # Errors
    /// [`Error::Malformed`] unless `arity` is a power of two in
    /// `2..=64`.
    pub fn new(order: FatOrder, arity: u32) -> Result<Self> {
        if !(MIN_FAT_ARITY..=MAX_FAT_ARITY).contains(&arity) || !arity.is_power_of_two() {
            return Err(Error::Malformed {
                detail: format!(
                    "fat arity {arity} unsupported (power of two in \
                     {MIN_FAT_ARITY}..={MAX_FAT_ARITY})"
                ),
            });
        }
        Ok(FatLayout {
            order,
            span: arity.trailing_zeros(),
        })
    }

    /// The chunk order.
    #[must_use]
    pub fn order(self) -> FatOrder {
        self.order
    }

    /// Binary levels per chunk (`log2` of the arity).
    #[must_use]
    pub fn span(self) -> u32 {
        self.span
    }

    /// Slots per chunk (`2^span`): `arity − 1` keys + padding.
    #[must_use]
    pub fn arity(self) -> u32 {
        1 << self.span
    }

    /// The `FAT<arity>-<ORDER>` label stored in `.cobt` descriptors.
    #[must_use]
    pub fn label(self) -> &'static str {
        match (self.order, self.span) {
            (FatOrder::Bfs, 1) => "FAT2-BFS",
            (FatOrder::Dfs, 1) => "FAT2-DFS",
            (FatOrder::Veb, 1) => "FAT2-VEB",
            (FatOrder::Bfs, 2) => "FAT4-BFS",
            (FatOrder::Dfs, 2) => "FAT4-DFS",
            (FatOrder::Veb, 2) => "FAT4-VEB",
            (FatOrder::Bfs, 3) => "FAT8-BFS",
            (FatOrder::Dfs, 3) => "FAT8-DFS",
            (FatOrder::Veb, 3) => "FAT8-VEB",
            (FatOrder::Bfs, 4) => "FAT16-BFS",
            (FatOrder::Dfs, 4) => "FAT16-DFS",
            (FatOrder::Veb, 4) => "FAT16-VEB",
            (FatOrder::Bfs, 5) => "FAT32-BFS",
            (FatOrder::Dfs, 5) => "FAT32-DFS",
            (FatOrder::Veb, 5) => "FAT32-VEB",
            (FatOrder::Bfs, _) => "FAT64-BFS",
            (FatOrder::Dfs, _) => "FAT64-DFS",
            (FatOrder::Veb, _) => "FAT64-VEB",
        }
    }

    /// Builds the position index for this layout at binary height
    /// `height`.
    ///
    /// # Errors
    /// [`Error::HeightOutOfRange`] outside `1..=31`.
    pub fn try_index(self, height: u32) -> Result<FatIndex> {
        FatIndex::try_new(self, height)
    }
}

impl std::fmt::Display for FatLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FatLayout {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let unknown = || Error::UnknownLayout { name: s.into() };
        let rest = s.strip_prefix("FAT").ok_or_else(unknown)?;
        let (arity, order) = rest.split_once('-').ok_or_else(unknown)?;
        let arity: u32 = arity.parse().map_err(|_| unknown())?;
        let order = match order {
            "BFS" => FatOrder::Bfs,
            "DFS" => FatOrder::Dfs,
            "VEB" => FatOrder::Veb,
            _ => return Err(unknown()),
        };
        FatLayout::new(order, arity).map_err(|_| unknown())
    }
}

/// Total slots (keys + padding) of a fat layout with the given span at
/// binary height `height`: `2^span × (number of chunks)`.
///
/// # Panics
/// Panics when `height` is 0 or exceeds [`MAX_FAT_HEIGHT`], or when
/// `span` is outside `1..=6` — validated constructors gate both.
#[must_use]
pub fn fat_slot_capacity(height: u32, span: u32) -> u64 {
    assert!((1..=MAX_FAT_HEIGHT).contains(&height));
    assert!((1..=6).contains(&span));
    let fat_levels = height.div_ceil(span);
    let top_span = height - (fat_levels - 1) * span;
    let mut chunks = 0u64;
    let mut depth = 0u32;
    for fat_depth in 0..fat_levels {
        chunks += 1u64 << depth;
        depth += if fat_depth == 0 { top_span } else { span };
    }
    chunks << span
}

/// Position arithmetic for one [`FatLayout`] at one binary height.
///
/// Implements [`PositionIndex`] over *slot* positions: binary node `i`
/// at depth `d` lives at `chunk_position(D, t) · 2^span + offset`,
/// where `(D, t)` is the chunk holding `i` and `offset` is `i`'s local
/// in-order index within the chunk. Slot positions are **sparse** —
/// padding slots map to no binary node ([`PositionIndex::node_at_position`]
/// returns `None` there) and [`PositionIndex::slot_capacity`] exceeds
/// `2^h − 1`.
#[derive(Debug, Clone, Copy)]
pub struct FatIndex {
    layout: FatLayout,
    height: u32,
    /// `H = ⌈h/s⌉`.
    fat_levels: u32,
    /// `sp₀ = h − (H−1)·s` — the (possibly partial) span of fat
    /// level 0.
    top_span: u32,
}

impl FatIndex {
    /// Builds the index.
    ///
    /// # Errors
    /// [`Error::HeightOutOfRange`] outside `1..=31`.
    pub fn try_new(layout: FatLayout, height: u32) -> Result<Self> {
        if height == 0 || height > MAX_FAT_HEIGHT {
            return Err(Error::HeightOutOfRange {
                height,
                min: 1,
                max: MAX_FAT_HEIGHT,
            });
        }
        let span = layout.span();
        let fat_levels = height.div_ceil(span);
        let top_span = height - (fat_levels - 1) * span;
        Ok(FatIndex {
            layout,
            height,
            fat_levels,
            top_span,
        })
    }

    /// The layout this index serves.
    #[must_use]
    pub fn layout(&self) -> FatLayout {
        self.layout
    }

    /// Binary levels per full chunk.
    #[must_use]
    pub fn span(&self) -> u32 {
        self.layout.span()
    }

    /// Slots per chunk (`2^span`).
    #[must_use]
    pub fn stride(&self) -> u64 {
        1 << self.layout.span()
    }

    /// Number of fat levels `H`.
    #[must_use]
    pub fn fat_levels(&self) -> u32 {
        self.fat_levels
    }

    /// Binary levels spanned by fat level `fat_depth` (`sp₀` at the
    /// top, `span` below).
    #[must_use]
    pub fn span_of(&self, fat_depth: u32) -> u32 {
        if fat_depth == 0 {
            self.top_span
        } else {
            self.span()
        }
    }

    /// First binary depth of fat level `fat_depth`.
    #[must_use]
    pub fn depth_base(&self, fat_depth: u32) -> u32 {
        if fat_depth == 0 {
            0
        } else {
            self.top_span + (fat_depth - 1) * self.span()
        }
    }

    /// Fat level containing binary depth `depth`.
    #[must_use]
    pub fn fat_depth_of(&self, depth: u32) -> u32 {
        if depth < self.top_span {
            0
        } else {
            1 + (depth - self.top_span) / self.span()
        }
    }

    /// Chunks on fat level `fat_depth` (`2^depth_base`).
    #[must_use]
    pub fn chunk_count(&self, fat_depth: u32) -> u64 {
        1u64 << self.depth_base(fat_depth)
    }

    /// Total chunks across all fat levels.
    #[must_use]
    pub fn total_chunks(&self) -> u64 {
        self.band_size(0, self.fat_levels)
    }

    /// Fat nodes in a subtree rooted at one chunk of fat level `first`
    /// spanning `levels` fat levels (counted with the digit widths the
    /// fat tree has *at those levels*).
    fn band_size(&self, first: u32, levels: u32) -> u64 {
        let base = self.depth_base(first);
        let mut size = 0u64;
        for m in 0..levels {
            size += 1u64 << (self.depth_base(first + m) - base);
        }
        size
    }

    /// Index of the chunk holding the binary subtree rooted at fat
    /// level `fat_depth`, sibling ordinal `t ∈ 0..2^depth_base`, in
    /// this layout's chunk order.
    #[must_use]
    pub fn chunk_position(&self, fat_depth: u32, t: u64) -> u64 {
        match self.layout.order() {
            FatOrder::Bfs => {
                let mut base = 0u64;
                for j in 0..fat_depth {
                    base += self.chunk_count(j);
                }
                base + t
            }
            FatOrder::Dfs => {
                let db = self.depth_base(fat_depth);
                let mut pos = u64::from(fat_depth);
                for j in 0..fat_depth {
                    let width = self.span_of(j);
                    let shift = db - self.depth_base(j + 1);
                    let digit = (t >> shift) & ((1u64 << width) - 1);
                    pos += digit * self.band_size(j + 1, self.fat_levels - (j + 1));
                }
                pos
            }
            FatOrder::Veb => {
                let db = self.depth_base(fat_depth);
                let mut first = 0u32;
                let mut band = self.fat_levels;
                let mut rel = fat_depth;
                let mut pos = 0u64;
                while rel > 0 {
                    let cut = band / 2;
                    if rel < cut {
                        band = cut;
                    } else {
                        pos += self.band_size(first, cut);
                        let width = self.depth_base(first + cut) - self.depth_base(first);
                        let sel =
                            (t >> (db - self.depth_base(first + cut))) & ((1u64 << width) - 1);
                        pos += sel * self.band_size(first + cut, band - cut);
                        first += cut;
                        band -= cut;
                        rel -= cut;
                    }
                }
                pos
            }
        }
    }

    /// Inverse of [`FatIndex::chunk_position`]: `(fat_depth, t)` of the
    /// chunk at `chunk_index`, or `None` past [`FatIndex::total_chunks`].
    #[must_use]
    pub fn chunk_at(&self, chunk_index: u64) -> Option<(u32, u64)> {
        if chunk_index >= self.total_chunks() {
            return None;
        }
        match self.layout.order() {
            FatOrder::Bfs => {
                let mut rem = chunk_index;
                for fat_depth in 0..self.fat_levels {
                    let count = self.chunk_count(fat_depth);
                    if rem < count {
                        return Some((fat_depth, rem));
                    }
                    rem -= count;
                }
                None
            }
            FatOrder::Dfs => {
                let mut fat_depth = 0u32;
                let mut t = 0u64;
                let mut rem = chunk_index;
                loop {
                    if rem == 0 {
                        return Some((fat_depth, t));
                    }
                    if fat_depth + 1 >= self.fat_levels {
                        return None;
                    }
                    rem -= 1;
                    let child_size = self.band_size(fat_depth + 1, self.fat_levels - fat_depth - 1);
                    let digit = rem / child_size;
                    rem %= child_size;
                    t = (t << self.span_of(fat_depth)) | digit;
                    fat_depth += 1;
                }
            }
            FatOrder::Veb => self.veb_chunk_at(0, self.fat_levels, chunk_index),
        }
    }

    /// `(relative fat depth, relative sibling ordinal)` of chunk `p`
    /// within a vEB-ordered subtree spanning fat levels
    /// `first..first + band`.
    fn veb_chunk_at(&self, first: u32, band: u32, p: u64) -> Option<(u32, u64)> {
        if p == 0 {
            return Some((0, 0));
        }
        if band == 1 {
            return None;
        }
        let cut = band / 2;
        let top = self.band_size(first, cut);
        if p < top {
            return self.veb_chunk_at(first, cut, p);
        }
        let q = p - top;
        let bottom_size = self.band_size(first + cut, band - cut);
        let sel = q / bottom_size;
        let sel_width = self.depth_base(first + cut) - self.depth_base(first);
        if sel >= (1u64 << sel_width) {
            return None;
        }
        let (rel, t_rel) = self.veb_chunk_at(first + cut, band - cut, q % bottom_size)?;
        let rel_width = self.depth_base(first + cut + rel) - self.depth_base(first + cut);
        Some((cut + rel, (sel << rel_width) | t_rel))
    }

    /// Number of **real** (non-padding) keys in chunk `(fat_depth, t)`
    /// of a tree holding `key_count` real keys.
    ///
    /// The chunk's local in-order slot `m − 1` (for `m ∈ 1..2^span`)
    /// holds the key of global rank `t·2^(h−db) + m·2^(h−db−sp)`;
    /// padding ranks (`> key_count`) are the largest, so real keys are
    /// a prefix and this closed form is its length.
    #[must_use]
    pub fn chunk_real_count(&self, fat_depth: u32, t: u64, key_count: u64) -> u32 {
        let db = self.depth_base(fat_depth);
        let sp = self.span_of(fat_depth);
        let full = (1u64 << sp) - 1;
        let base_rank = t << (self.height - db);
        if key_count <= base_rank {
            return 0;
        }
        let fit = (key_count - base_rank) >> (self.height - db - sp);
        fit.min(full) as u32
    }

    /// 1-based global in-order rank of local slot `local`
    /// (0-based) in chunk `(fat_depth, t)`.
    #[must_use]
    pub fn rank_of_chunk_slot(&self, fat_depth: u32, t: u64, local: u32) -> u64 {
        let db = self.depth_base(fat_depth);
        let sp = self.span_of(fat_depth);
        (t << (self.height - db)) + (u64::from(local) + 1) * (1u64 << (self.height - db - sp))
    }
}

impl PositionIndex for FatIndex {
    fn height(&self) -> u32 {
        self.height
    }

    fn position(&self, node: NodeId, depth: u32) -> u64 {
        let fat_depth = self.fat_depth_of(depth);
        let db = self.depth_base(fat_depth);
        let dd = depth - db;
        let sp = self.span_of(fat_depth);
        let t = (node >> dd) - (1u64 << db);
        let within = node & ((1u64 << dd) - 1);
        let offset = (within << (sp - dd)) + (1u64 << (sp - dd - 1)) - 1;
        self.chunk_position(fat_depth, t) * self.stride() + offset
    }

    fn slot_capacity(&self) -> u64 {
        self.total_chunks() * self.stride()
    }

    fn node_at_position(&self, position: u64) -> Option<NodeId> {
        let stride = self.stride();
        let (fat_depth, t) = self.chunk_at(position / stride)?;
        let offset = position % stride;
        let sp = self.span_of(fat_depth);
        let m = offset + 1;
        if m >= (1u64 << sp) {
            return None; // padding slot — no binary node lives here
        }
        let tz = m.trailing_zeros();
        let dd = sp - 1 - tz;
        let within = m >> (tz + 1);
        Some((((1u64 << self.depth_base(fat_depth)) + t) << dd) | within)
    }

    fn compile_plan(&self) -> Option<StepPlan> {
        let stride = self.stride();
        let mut levels = Vec::with_capacity(self.height as usize);
        for depth in 0..self.height {
            let fat_depth = self.fat_depth_of(depth);
            let db = self.depth_base(fat_depth);
            let dd = depth - db;
            let sp = self.span_of(fat_depth);
            // Local in-order offset within the chunk:
            // (node & (2^dd − 1)) · 2^(sp−dd) + 2^(sp−dd−1) − 1.
            let mut base = (1u64 << (sp - dd - 1)) - 1;
            let mut terms = Vec::new();
            if dd > 0 {
                terms.push(MaskTerm {
                    shift: 0,
                    mask: (1u64 << dd) - 1,
                    stride: 1u64 << (sp - dd),
                });
            }
            match self.layout.order() {
                FatOrder::Bfs => {
                    // chunk = Σ_{j<D} 2^db(j) + (node >> dd) − 2^db.
                    let mut fb = 0u64;
                    for j in 0..fat_depth {
                        fb += self.chunk_count(j);
                    }
                    base = base.wrapping_add(fb.wrapping_sub(1u64 << db).wrapping_mul(stride));
                    terms.push(MaskTerm {
                        shift: dd,
                        mask: (1u64 << (db + 1)) - 1,
                        stride,
                    });
                }
                FatOrder::Dfs => {
                    // chunk = D + Σ_j digit_j · subtree(j+1); digit_j is
                    // span_of(j) bits of the node.
                    base = base.wrapping_add(u64::from(fat_depth).wrapping_mul(stride));
                    for j in 0..fat_depth {
                        terms.push(MaskTerm {
                            shift: dd + (db - self.depth_base(j + 1)),
                            mask: (1u64 << self.span_of(j)) - 1,
                            stride: self.band_size(j + 1, self.fat_levels - (j + 1)) * stride,
                        });
                    }
                }
                FatOrder::Veb => {
                    // Unroll the vEB descent for this fat depth: one
                    // term per cut crossed (the fat analogue of
                    // compile_pre_veb).
                    let mut first = 0u32;
                    let mut band = self.fat_levels;
                    let mut rel = fat_depth;
                    while rel > 0 {
                        let cut = band / 2;
                        if rel < cut {
                            band = cut;
                        } else {
                            base =
                                base.wrapping_add(self.band_size(first, cut).wrapping_mul(stride));
                            let width = self.depth_base(first + cut) - self.depth_base(first);
                            terms.push(MaskTerm {
                                shift: dd + (db - self.depth_base(first + cut)),
                                mask: (1u64 << width) - 1,
                                stride: self.band_size(first + cut, band - cut) * stride,
                            });
                            first += cut;
                            band -= cut;
                            rel -= cut;
                        }
                    }
                }
            }
            levels.push(LevelPlan { base, terms });
        }
        Some(StepPlan::Terms {
            height: self.height,
            levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;
    use std::collections::HashSet;

    fn layouts() -> Vec<FatLayout> {
        let mut out = Vec::new();
        for order in FatOrder::ALL {
            for span in 1..=6 {
                out.push(FatLayout::new(order, 1 << span).unwrap());
            }
        }
        out
    }

    #[test]
    fn labels_round_trip() {
        for layout in layouts() {
            let parsed: FatLayout = layout.label().parse().unwrap();
            assert_eq!(parsed, layout);
        }
        assert!("FAT8-VEB".parse::<FatLayout>().is_ok());
        for bad in [
            "FAT7-VEB",
            "FAT8-XYZ",
            "FAT128-BFS",
            "FAT0-BFS",
            "VEB",
            "FAT8",
        ] {
            assert!(
                matches!(bad.parse::<FatLayout>(), Err(Error::UnknownLayout { .. })),
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn arity_validation() {
        for bad in [0, 1, 3, 5, 7, 12, 128, 256] {
            assert!(FatLayout::new(FatOrder::Veb, bad).is_err(), "arity {bad}");
        }
        assert!(FatIndex::try_new(FatLayout::ALL[0], 0).is_err());
        assert!(FatIndex::try_new(FatLayout::ALL[0], 32).is_err());
    }

    /// Positions are injective, land within `slot_capacity`, invert
    /// correctly, and padding slots invert to `None`.
    #[test]
    fn positions_are_sparse_injective_and_invertible() {
        for layout in layouts() {
            for height in 1..=9 {
                let index = layout.try_index(height).unwrap();
                let tree = Tree::new(height);
                let capacity = index.slot_capacity();
                assert_eq!(capacity, fat_slot_capacity(height, layout.span()));
                assert!(capacity >= tree.len());
                let mut seen = HashSet::new();
                for node in tree.nodes() {
                    let pos = index.position(node, tree.depth(node));
                    assert!(pos < capacity, "{layout} h={height} node {node}");
                    assert!(
                        seen.insert(pos),
                        "{layout} h={height} position {pos} reused"
                    );
                    assert_eq!(
                        index.node_at_position(pos),
                        Some(node),
                        "{layout} h={height} node {node} @ {pos}"
                    );
                }
                // Every unused slot is a hole.
                for pos in 0..capacity {
                    if !seen.contains(&pos) {
                        assert_eq!(index.node_at_position(pos), None);
                    }
                }
                assert_eq!(index.node_at_position(capacity), None);
            }
        }
    }

    /// The compiled plan is bit-identical to the virtual index.
    #[test]
    fn compiled_plan_matches_index() {
        for layout in layouts() {
            for height in 1..=9 {
                let index = layout.try_index(height).unwrap();
                let plan = index.compile_plan().unwrap();
                let tree = Tree::new(height);
                for node in tree.nodes() {
                    let depth = tree.depth(node);
                    assert_eq!(
                        plan.position(node, depth),
                        index.position(node, depth),
                        "{layout} h={height} node {node}"
                    );
                }
            }
        }
    }

    /// Spot-check tall trees (exhaustive sweeps stop at height 9).
    #[test]
    fn compiled_plan_matches_index_tall() {
        for layout in FatLayout::ALL {
            for height in [13, 20, 31] {
                let index = layout.try_index(height).unwrap();
                let plan = index.compile_plan().unwrap();
                let mut node: NodeId = 1;
                let mut state = 0x9e37_79b9_7f4a_7c15u64;
                for depth in 0..height {
                    let pos = index.position(node, depth);
                    assert_eq!(plan.position(node, depth), pos);
                    assert!(pos < index.slot_capacity());
                    assert_eq!(index.node_at_position(pos), Some(node));
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    node = node * 2 + (state >> 63);
                }
            }
        }
    }

    /// Chunk-local in-order ranks agree with the binary tree's global
    /// in-order ranks, and the real-prefix closed form matches a
    /// brute-force count.
    #[test]
    fn chunk_ranks_and_real_counts() {
        for layout in layouts() {
            for height in 1..=8 {
                let index = layout.try_index(height).unwrap();
                let tree = Tree::new(height);
                for node in tree.nodes() {
                    let pos = index.position(node, tree.depth(node));
                    let chunk = pos / index.stride();
                    let local = (pos % index.stride()) as u32;
                    let (fat_depth, t) = index.chunk_at(chunk).unwrap();
                    assert_eq!(
                        index.rank_of_chunk_slot(fat_depth, t, local),
                        tree.in_order_rank(node)
                    );
                }
                for key_count in [0, 1, 2, tree.len() / 2, tree.len()] {
                    for chunk in 0..index.total_chunks() {
                        let (fat_depth, t) = index.chunk_at(chunk).unwrap();
                        let sp = index.span_of(fat_depth);
                        let brute = (0..(1u32 << sp) - 1)
                            .filter(|&m| index.rank_of_chunk_slot(fat_depth, t, m) <= key_count)
                            .count() as u32;
                        assert_eq!(
                            index.chunk_real_count(fat_depth, t, key_count),
                            brute,
                            "{layout} h={height} n={key_count} chunk {chunk}"
                        );
                    }
                }
            }
        }
    }

    /// Real keys form a *prefix* of every chunk: if local slot `m` is
    /// real, every smaller local slot is real too.
    #[test]
    fn real_keys_are_chunk_prefixes() {
        for layout in layouts() {
            for height in 1..=8 {
                let index = layout.try_index(height).unwrap();
                let tree = Tree::new(height);
                for key_count in 0..=tree.len() {
                    for chunk in 0..index.total_chunks() {
                        let (fat_depth, t) = index.chunk_at(chunk).unwrap();
                        let sp = index.span_of(fat_depth);
                        let mut seen_pad = false;
                        for m in 0..(1u32 << sp) - 1 {
                            let real = index.rank_of_chunk_slot(fat_depth, t, m) <= key_count;
                            assert!(!(real && seen_pad), "padding before a real key");
                            seen_pad |= !real;
                        }
                    }
                }
            }
        }
    }

    /// `position_of_in_order` (the default impl) stays consistent with
    /// `in_order_of_position` through the sparse mapping.
    #[test]
    fn in_order_round_trips() {
        for layout in FatLayout::ALL {
            let index = layout.try_index(6).unwrap();
            let tree = Tree::new(6);
            for rank in 1..=tree.len() {
                let pos = index.position_of_in_order(rank);
                assert_eq!(index.in_order_of_position(pos), Some(rank));
            }
        }
    }

    #[test]
    fn slot_overhead_is_bounded() {
        // Partial span at the top: overhead ≤ stride/(stride−1) plus
        // one (mostly empty) root chunk.
        for layout in layouts() {
            for height in 1..=20 {
                let index = layout.try_index(height).unwrap();
                let keys = (1u64 << height) - 1;
                let slots = index.slot_capacity();
                let stride = index.stride();
                assert!(
                    slots <= (keys + 1) * stride / (stride - 1).max(1) + 2 * stride,
                    "{layout} h={height}: {slots} slots for {keys} keys"
                );
            }
        }
    }
}
