//! Materialized tree layouts (permutations) and automorphism-canonical forms.
//!
//! A *layout* assigns every node of a complete binary tree a distinct
//! position on linear storage. Internally positions are **0-based**; the
//! paper's figures print them 1-based, and the golden-data helpers convert.
//!
//! ## Canonical form
//!
//! A complete binary tree has `2^{2^h − h − 1}`-ish automorphisms (any
//! internal node's children may be swapped). Two layouts that differ only
//! by such a relabeling have identical edge-length multisets per level and
//! therefore identical values for every locality measure in the paper
//! (`ν0, ν1, µ0, µ1, µ∞, β`) and identical cache behaviour under uniform
//! random search. [`Layout::canonicalized`] rotates any layout to the
//! unique automorphic representative in which every left-child subtree
//! occupies positions starting before its sibling's, so layouts can be
//! compared exactly modulo automorphism — this is how the engine output is
//! checked against the paper's Figure 5 goldens.

use crate::tree::{NodeId, Tree};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A bijection from the nodes of a complete binary tree to positions
/// `0..2^h − 1` of linear storage.
#[derive(Clone, PartialEq, Eq)]
pub struct Layout {
    tree: Tree,
    /// `pos[i - 1]` is the 0-based position of BFS node `i`.
    pos: Vec<u32>,
}

#[derive(Serialize, Deserialize)]
struct LayoutRepr {
    height: u32,
    positions: Vec<u32>,
}

impl Serialize for Layout {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        LayoutRepr {
            height: self.height(),
            positions: self.pos.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Layout {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = LayoutRepr::deserialize(deserializer)?;
        // Re-validate: serialized data may come from untrusted storage.
        Layout::try_from_positions(repr.height, repr.positions).map_err(D::Error::custom)
    }
}

impl std::fmt::Debug for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Layout")
            .field("height", &self.tree.height())
            .field("len", &self.pos.len())
            .finish()
    }
}

impl Layout {
    /// Wraps a position vector (`pos[i-1]` = 0-based position of node `i`).
    ///
    /// # Panics
    /// Panics if `pos` has the wrong length or is not a permutation of
    /// `0..2^h − 1`.
    #[must_use]
    pub fn from_positions(height: u32, pos: Vec<u32>) -> Self {
        match Self::try_from_positions(height, pos) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Layout::from_positions`], for data read from
    /// untrusted storage.
    ///
    /// # Errors
    /// Returns a description of the defect if `pos` has the wrong length
    /// or is not a permutation of `0..2^h − 1`.
    pub fn try_from_positions(height: u32, pos: Vec<u32>) -> Result<Self, String> {
        let tree = Tree::new(height);
        if pos.len() as u64 != tree.len() {
            return Err(format!(
                "position vector length {} must be 2^{height} - 1 (positions must form a permutation)",
                pos.len()
            ));
        }
        let mut seen = vec![false; pos.len()];
        for &p in &pos {
            if (p as usize) >= pos.len() || seen[p as usize] {
                return Err(format!(
                    "positions must form a permutation (position {p} out of range or repeated)"
                ));
            }
            seen[p as usize] = true;
        }
        Ok(Self { tree, pos })
    }

    /// Builds a layout by evaluating `f(node)` (0-based position) on every
    /// node.
    ///
    /// # Panics
    /// Panics if `f` is not a bijection onto `0..2^h − 1`.
    #[must_use]
    pub fn from_fn(height: u32, mut f: impl FnMut(NodeId) -> u64) -> Self {
        let tree = Tree::new(height);
        let pos: Vec<u32> = tree
            .nodes()
            .map(|i| {
                let p = f(i);
                assert!(p < tree.len(), "position {p} out of range for node {i}");
                p as u32
            })
            .collect();
        Self::from_positions(height, pos)
    }

    /// Builds a layout from the paper's Figure 5 presentation: 1-based
    /// positions listed in **post-order traversal** of the tree. This is the
    /// order in which the figure's per-subtree drawings linearize.
    ///
    /// # Panics
    /// Panics if the data is not a permutation of `1..=2^h − 1`.
    #[must_use]
    pub fn from_post_order_listing(height: u32, listing: &[u32]) -> Self {
        let tree = Tree::new(height);
        assert_eq!(listing.len() as u64, tree.len(), "listing length mismatch");
        let mut pos = vec![0u32; listing.len()];
        let mut next = 0usize;
        fn post(tree: &Tree, node: NodeId, listing: &[u32], next: &mut usize, pos: &mut [u32]) {
            if let Some(l) = tree.left(node) {
                post(tree, l, listing, next, pos);
            }
            if let Some(r) = tree.right(node) {
                post(tree, r, listing, next, pos);
            }
            let one_based = listing[*next];
            assert!(one_based >= 1, "figure positions are 1-based");
            pos[(node - 1) as usize] = one_based - 1;
            *next += 1;
        }
        post(&tree, 1, listing, &mut next, &mut pos);
        Self::from_positions(height, pos)
    }

    /// The tree this layout arranges.
    #[inline]
    #[must_use]
    pub fn tree(&self) -> Tree {
        self.tree
    }

    /// Tree height `h`.
    #[inline]
    #[must_use]
    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// Always `false`; a layout covers at least the root.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// 0-based position of `node`.
    #[inline]
    #[must_use]
    pub fn position(&self, node: NodeId) -> u64 {
        self.pos[(node - 1) as usize] as u64
    }

    /// Raw position slice (`[i - 1] ↦ position of node i`).
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// Inverse mapping: `result[p]` = BFS node stored at position `p`.
    #[must_use]
    pub fn nodes_by_position(&self) -> Vec<NodeId> {
        let mut inv = vec![0u64; self.pos.len()];
        for (idx, &p) in self.pos.iter().enumerate() {
            inv[p as usize] = idx as u64 + 1;
        }
        inv
    }

    /// Length `ℓ_ij = |pos(i) − pos(j)|` of the tree edge from `child`'s
    /// parent to `child`.
    #[inline]
    #[must_use]
    pub fn edge_length(&self, child: NodeId) -> u64 {
        debug_assert!(child >= 2);
        let a = self.pos[(child - 1) as usize] as i64;
        let b = self.pos[((child >> 1) - 1) as usize] as i64;
        (a - b).unsigned_abs()
    }

    /// Iterates `(edge_depth, length)` over all edges, where `edge_depth`
    /// is the depth of the child endpoint (the paper's `d` in `p_d = 2^{−d}`).
    pub fn edge_lengths(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        let tree = self.tree;
        (2..=tree.len()).map(move |c| (tree.depth(c), self.edge_length(c)))
    }

    /// The unique automorphic representative of this layout in which, at
    /// every internal node, the left child's subtree occupies a block whose
    /// minimum position is smaller than its sibling's.
    ///
    /// Layout measures are invariant under this transformation; it exists so
    /// that engine output can be compared bit-for-bit against golden data
    /// that may have made mirrored (but equivalent) child-order choices.
    #[must_use]
    pub fn canonicalized(&self) -> Layout {
        let n = self.pos.len();
        // minpos[i - 1] = minimum position within subtree rooted at i.
        let mut minpos = self.pos.clone();
        for i in (1..=n).rev() {
            let li = 2 * i;
            if li <= n {
                let m = minpos[li - 1].min(minpos[li]);
                if m < minpos[i - 1] {
                    minpos[i - 1] = m;
                }
            }
        }
        let mut out = vec![0u32; n];
        // Walk canonical and original trees in lock-step; `swap` choices are
        // independent per node, so an explicit stack suffices.
        let mut stack: Vec<(u64, u64)> = vec![(1, 1)]; // (canonical, original)
        while let Some((c, o)) = stack.pop() {
            out[(c - 1) as usize] = self.pos[(o - 1) as usize];
            let oc = 2 * o;
            if oc as usize <= n {
                let (ol, or) = if minpos[(oc - 1) as usize] <= minpos[oc as usize] {
                    (oc, oc + 1)
                } else {
                    (oc + 1, oc)
                };
                stack.push((2 * c, ol));
                stack.push((2 * c + 1, or));
            }
        }
        Layout {
            tree: self.tree,
            pos: out,
        }
    }

    /// `true` if `self` and `other` are equal up to a tree automorphism
    /// (equivalently: equal canonical forms).
    #[must_use]
    pub fn equivalent_to(&self, other: &Layout) -> bool {
        self.tree == other.tree && self.canonicalized().pos == other.canonicalized().pos
    }

    /// Renders positions 1-based in BFS order — handy in test failure output.
    #[must_use]
    pub fn display_one_based(&self) -> String {
        let mut s = String::new();
        for (idx, &p) in self.pos.iter().enumerate() {
            if idx > 0 {
                s.push(' ');
            }
            s.push_str(&(p + 1).to_string());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_order_layout(h: u32) -> Layout {
        let t = Tree::new(h);
        Layout::from_fn(h, |i| t.in_order_rank(i) - 1)
    }

    #[test]
    fn from_fn_identity_is_bfs() {
        let l = Layout::from_fn(4, |i| i - 1);
        for i in 1..=15 {
            assert_eq!(l.position(i), i - 1);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        let _ = Layout::from_positions(2, vec![0, 0, 2]);
    }

    #[test]
    fn edge_lengths_in_order() {
        // In-order layout of h=3: edge from root (pos 3) to children (pos 1, 5).
        let l = in_order_layout(3);
        assert_eq!(l.edge_length(2), 2);
        assert_eq!(l.edge_length(3), 2);
        assert_eq!(l.edge_length(4), 1);
        let lengths: Vec<(u32, u64)> = l.edge_lengths().collect();
        assert_eq!(lengths.len(), 6);
    }

    #[test]
    fn post_order_listing_round_trip() {
        // h=2 in-order layout [2,1,3] (nodes 1,2,3 at 1-based positions 2,1,3)
        // post-order traversal is 2,3,1 so the listing is [1,3,2].
        let l = Layout::from_post_order_listing(2, &[1, 3, 2]);
        assert_eq!(l.position(1), 1);
        assert_eq!(l.position(2), 0);
        assert_eq!(l.position(3), 2);
    }

    #[test]
    fn canonical_fixes_mirrored_children() {
        // Two BFS-ish layouts differing by swapping children of the root.
        let a = Layout::from_positions(2, vec![0, 1, 2]);
        let b = Layout::from_positions(2, vec![0, 2, 1]);
        assert_ne!(a.positions(), b.positions());
        assert!(a.equivalent_to(&b));
        assert_eq!(a.canonicalized().positions(), &[0, 1, 2]);
        assert_eq!(b.canonicalized().positions(), &[0, 1, 2]);
    }

    #[test]
    fn canonical_preserves_measure_inputs() {
        let l = in_order_layout(5);
        let c = l.canonicalized();
        let mut a: Vec<(u32, u64)> = l.edge_lengths().collect();
        let mut b: Vec<(u32, u64)> = c.edge_lengths().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_is_idempotent() {
        let l = in_order_layout(6);
        let c = l.canonicalized();
        assert_eq!(c.positions(), c.canonicalized().positions());
    }

    #[test]
    fn nodes_by_position_inverts() {
        let l = in_order_layout(4);
        let inv = l.nodes_by_position();
        for i in 1..=l.len() {
            assert_eq!(inv[l.position(i) as usize], i);
        }
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::named::NamedLayout;

    #[test]
    fn json_round_trip() {
        let l = NamedLayout::MinWep.materialize(6);
        let json = serde_json::to_string(&l).unwrap();
        let back: Layout = serde_json::from_str(&json).unwrap();
        assert_eq!(l.positions(), back.positions());
        assert_eq!(l.height(), back.height());
    }

    #[test]
    fn corrupt_data_is_rejected() {
        // Duplicate position.
        let bad = r#"{"height":2,"positions":[0,0,2]}"#;
        assert!(serde_json::from_str::<Layout>(bad).is_err());
        // Wrong length.
        let bad = r#"{"height":3,"positions":[0,1,2]}"#;
        assert!(serde_json::from_str::<Layout>(bad).is_err());
    }
}
