//! Materialized tree layouts (permutations) and automorphism-canonical forms.
//!
//! A *layout* assigns every node of a complete binary tree a distinct
//! position on linear storage. Internally positions are **0-based**; the
//! paper's figures print them 1-based, and the golden-data helpers convert.
//!
//! ## Canonical form
//!
//! A complete binary tree has `2^{2^h − h − 1}`-ish automorphisms (any
//! internal node's children may be swapped). Two layouts that differ only
//! by such a relabeling have identical edge-length multisets per level and
//! therefore identical values for every locality measure in the paper
//! (`ν0, ν1, µ0, µ1, µ∞, β`) and identical cache behaviour under uniform
//! random search. [`Layout::canonicalized`] rotates any layout to the
//! unique automorphic representative in which every left-child subtree
//! occupies positions starting before its sibling's, so layouts can be
//! compared exactly modulo automorphism — this is how the engine output is
//! checked against the paper's Figure 5 goldens.

use crate::error::{Error, Result};
use crate::tree::{NodeId, Tree};

/// A bijection from the nodes of a complete binary tree to positions
/// `0..2^h − 1` of linear storage.
#[derive(Clone, PartialEq, Eq)]
pub struct Layout {
    tree: Tree,
    /// `pos[i - 1]` is the 0-based position of BFS node `i`.
    pos: Vec<u32>,
}

impl std::fmt::Debug for Layout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Layout")
            .field("height", &self.tree.height())
            .field("len", &self.pos.len())
            .finish()
    }
}

impl Layout {
    /// Wraps a position vector (`pos[i-1]` = 0-based position of node `i`).
    ///
    /// # Panics
    /// Panics if `pos` has the wrong length or is not a permutation of
    /// `0..2^h − 1`.
    #[must_use]
    pub fn from_positions(height: u32, pos: Vec<u32>) -> Self {
        match Self::try_from_positions(height, pos) {
            Ok(l) => l,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Layout::from_positions`], for data read from
    /// untrusted storage.
    ///
    /// # Errors
    /// [`Error::NotAPermutation`] if `pos` has the wrong length or is not
    /// a permutation of `0..2^h − 1`.
    pub fn try_from_positions(height: u32, pos: Vec<u32>) -> Result<Self> {
        let tree = Tree::try_new(height)?;
        if pos.len() as u64 != tree.len() {
            return Err(Error::NotAPermutation {
                detail: format!(
                    "position vector length {} must be 2^{height} - 1",
                    pos.len()
                ),
            });
        }
        let mut seen = vec![false; pos.len()];
        for &p in &pos {
            if (p as usize) >= pos.len() || seen[p as usize] {
                return Err(Error::NotAPermutation {
                    detail: format!("position {p} out of range or repeated"),
                });
            }
            seen[p as usize] = true;
        }
        Ok(Self { tree, pos })
    }

    /// Builds a layout by evaluating `f(node)` (0-based position) on every
    /// node.
    ///
    /// # Panics
    /// Panics if `f` is not a bijection onto `0..2^h − 1`.
    #[must_use]
    pub fn from_fn(height: u32, mut f: impl FnMut(NodeId) -> u64) -> Self {
        let tree = Tree::new(height);
        let pos: Vec<u32> = tree
            .nodes()
            .map(|i| {
                let p = f(i);
                assert!(p < tree.len(), "position {p} out of range for node {i}");
                p as u32
            })
            .collect();
        Self::from_positions(height, pos)
    }

    /// Builds a layout from the paper's Figure 5 presentation: 1-based
    /// positions listed in **post-order traversal** of the tree. This is the
    /// order in which the figure's per-subtree drawings linearize.
    ///
    /// # Panics
    /// Panics if the data is not a permutation of `1..=2^h − 1`.
    #[must_use]
    pub fn from_post_order_listing(height: u32, listing: &[u32]) -> Self {
        let tree = Tree::new(height);
        assert_eq!(listing.len() as u64, tree.len(), "listing length mismatch");
        let mut pos = vec![0u32; listing.len()];
        let mut next = 0usize;
        fn post(tree: &Tree, node: NodeId, listing: &[u32], next: &mut usize, pos: &mut [u32]) {
            if let Some(l) = tree.left(node) {
                post(tree, l, listing, next, pos);
            }
            if let Some(r) = tree.right(node) {
                post(tree, r, listing, next, pos);
            }
            let one_based = listing[*next];
            assert!(one_based >= 1, "figure positions are 1-based");
            pos[(node - 1) as usize] = one_based - 1;
            *next += 1;
        }
        post(&tree, 1, listing, &mut next, &mut pos);
        Self::from_positions(height, pos)
    }

    /// The tree this layout arranges.
    #[inline]
    #[must_use]
    pub fn tree(&self) -> Tree {
        self.tree
    }

    /// Tree height `h`.
    #[inline]
    #[must_use]
    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// Always `false`; a layout covers at least the root.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// 0-based position of `node`.
    #[inline]
    #[must_use]
    pub fn position(&self, node: NodeId) -> u64 {
        self.pos[(node - 1) as usize] as u64
    }

    /// Raw position slice (`[i - 1] ↦ position of node i`).
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.pos
    }

    /// Inverse mapping: `result[p]` = BFS node stored at position `p`.
    #[must_use]
    pub fn nodes_by_position(&self) -> Vec<NodeId> {
        let mut inv = vec![0u64; self.pos.len()];
        for (idx, &p) in self.pos.iter().enumerate() {
            inv[p as usize] = idx as u64 + 1;
        }
        inv
    }

    /// Length `ℓ_ij = |pos(i) − pos(j)|` of the tree edge from `child`'s
    /// parent to `child`.
    #[inline]
    #[must_use]
    pub fn edge_length(&self, child: NodeId) -> u64 {
        debug_assert!(child >= 2);
        let a = self.pos[(child - 1) as usize] as i64;
        let b = self.pos[((child >> 1) - 1) as usize] as i64;
        (a - b).unsigned_abs()
    }

    /// Iterates `(edge_depth, length)` over all edges, where `edge_depth`
    /// is the depth of the child endpoint (the paper's `d` in `p_d = 2^{−d}`).
    pub fn edge_lengths(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        let tree = self.tree;
        (2..=tree.len()).map(move |c| (tree.depth(c), self.edge_length(c)))
    }

    /// The unique automorphic representative of this layout in which, at
    /// every internal node, the left child's subtree occupies a block whose
    /// minimum position is smaller than its sibling's.
    ///
    /// Layout measures are invariant under this transformation; it exists so
    /// that engine output can be compared bit-for-bit against golden data
    /// that may have made mirrored (but equivalent) child-order choices.
    #[must_use]
    pub fn canonicalized(&self) -> Layout {
        let n = self.pos.len();
        // minpos[i - 1] = minimum position within subtree rooted at i.
        let mut minpos = self.pos.clone();
        for i in (1..=n).rev() {
            let li = 2 * i;
            if li <= n {
                let m = minpos[li - 1].min(minpos[li]);
                if m < minpos[i - 1] {
                    minpos[i - 1] = m;
                }
            }
        }
        let mut out = vec![0u32; n];
        // Walk canonical and original trees in lock-step; `swap` choices are
        // independent per node, so an explicit stack suffices.
        let mut stack: Vec<(u64, u64)> = vec![(1, 1)]; // (canonical, original)
        while let Some((c, o)) = stack.pop() {
            out[(c - 1) as usize] = self.pos[(o - 1) as usize];
            let oc = 2 * o;
            if oc as usize <= n {
                let (ol, or) = if minpos[(oc - 1) as usize] <= minpos[oc as usize] {
                    (oc, oc + 1)
                } else {
                    (oc + 1, oc)
                };
                stack.push((2 * c, ol));
                stack.push((2 * c + 1, or));
            }
        }
        Layout {
            tree: self.tree,
            pos: out,
        }
    }

    /// `true` if `self` and `other` are equal up to a tree automorphism
    /// (equivalently: equal canonical forms).
    #[must_use]
    pub fn equivalent_to(&self, other: &Layout) -> bool {
        self.tree == other.tree && self.canonicalized().pos == other.canonicalized().pos
    }

    /// Renders positions 1-based in BFS order — handy in test failure output.
    #[must_use]
    pub fn display_one_based(&self) -> String {
        let mut s = String::new();
        for (idx, &p) in self.pos.iter().enumerate() {
            if idx > 0 {
                s.push(' ');
            }
            s.push_str(&(p + 1).to_string());
        }
        s
    }

    /// Serializes the layout as compact JSON,
    /// `{"height":H,"positions":[..]}` — the stable on-disk format for
    /// layout artifacts. Hand-rolled so the workspace carries no serde
    /// dependency (see `shims/README.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.pos.len() * 4);
        out.push_str("{\"height\":");
        out.push_str(&self.height().to_string());
        out.push_str(",\"positions\":[");
        for (idx, &p) in self.pos.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            out.push_str(&p.to_string());
        }
        out.push_str("]}");
        out
    }

    /// Parses the [`Layout::to_json`] format, re-validating the
    /// permutation (the data may come from untrusted storage). Accepts
    /// arbitrary whitespace between tokens and either key order.
    ///
    /// # Errors
    /// [`Error::Malformed`] on syntax errors, [`Error::NotAPermutation`]
    /// / [`Error::HeightOutOfRange`] on structurally invalid data.
    pub fn from_json(json: &str) -> Result<Self> {
        let mut parser = JsonLayoutParser::new(json);
        let (height, positions) = parser.parse()?;
        Self::try_from_positions(height, positions)
    }
}

/// Minimal recursive-descent parser for the layout JSON object.
struct JsonLayoutParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonLayoutParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn error(&self, detail: &str) -> Error {
        Error::Malformed {
            detail: format!("{detail} (at byte {})", self.at),
        }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_whitespace) {
            self.at += 1;
        }
    }

    fn expect(&mut self, token: u8) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&token) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", char::from(token))))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn number(&mut self) -> Result<u64> {
        self.skip_ws();
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if self.at == start {
            return Err(self.error("expected a non-negative integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.error("integer out of range"))
    }

    fn key(&mut self) -> Result<&'a str> {
        self.expect(b'"')?;
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(|&b| b != b'"') {
            self.at += 1;
        }
        let key = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.error("non-UTF-8 key"))?;
        self.expect(b'"')?;
        Ok(key)
    }

    fn parse(&mut self) -> Result<(u32, Vec<u32>)> {
        self.expect(b'{')?;
        let mut height: Option<u32> = None;
        let mut positions: Option<Vec<u32>> = None;
        loop {
            let key = self.key()?;
            self.expect(b':')?;
            match key {
                "height" => {
                    if height.is_some() {
                        return Err(self.error("duplicate key 'height'"));
                    }
                    let h = self.number()?;
                    height = Some(u32::try_from(h).map_err(|_| self.error("height too large"))?);
                }
                "positions" => {
                    if positions.is_some() {
                        return Err(self.error("duplicate key 'positions'"));
                    }
                    self.expect(b'[')?;
                    let mut out = Vec::new();
                    if self.peek() != Some(b']') {
                        loop {
                            let p = self.number()?;
                            out.push(
                                u32::try_from(p).map_err(|_| self.error("position too large"))?,
                            );
                            match self.peek() {
                                Some(b',') => self.at += 1,
                                _ => break,
                            }
                        }
                    }
                    self.expect(b']')?;
                    positions = Some(out);
                }
                other => return Err(self.error(&format!("unknown key '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.at += 1,
                _ => break,
            }
        }
        self.expect(b'}')?;
        self.skip_ws();
        if self.at != self.bytes.len() {
            return Err(self.error("trailing data"));
        }
        match (height, positions) {
            (Some(h), Some(p)) => Ok((h, p)),
            _ => Err(self.error("missing 'height' or 'positions'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_order_layout(h: u32) -> Layout {
        let t = Tree::new(h);
        Layout::from_fn(h, |i| t.in_order_rank(i) - 1)
    }

    #[test]
    fn from_fn_identity_is_bfs() {
        let l = Layout::from_fn(4, |i| i - 1);
        for i in 1..=15 {
            assert_eq!(l.position(i), i - 1);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        let _ = Layout::from_positions(2, vec![0, 0, 2]);
    }

    #[test]
    fn edge_lengths_in_order() {
        // In-order layout of h=3: edge from root (pos 3) to children (pos 1, 5).
        let l = in_order_layout(3);
        assert_eq!(l.edge_length(2), 2);
        assert_eq!(l.edge_length(3), 2);
        assert_eq!(l.edge_length(4), 1);
        let lengths: Vec<(u32, u64)> = l.edge_lengths().collect();
        assert_eq!(lengths.len(), 6);
    }

    #[test]
    fn post_order_listing_round_trip() {
        // h=2 in-order layout [2,1,3] (nodes 1,2,3 at 1-based positions 2,1,3)
        // post-order traversal is 2,3,1 so the listing is [1,3,2].
        let l = Layout::from_post_order_listing(2, &[1, 3, 2]);
        assert_eq!(l.position(1), 1);
        assert_eq!(l.position(2), 0);
        assert_eq!(l.position(3), 2);
    }

    #[test]
    fn canonical_fixes_mirrored_children() {
        // Two BFS-ish layouts differing by swapping children of the root.
        let a = Layout::from_positions(2, vec![0, 1, 2]);
        let b = Layout::from_positions(2, vec![0, 2, 1]);
        assert_ne!(a.positions(), b.positions());
        assert!(a.equivalent_to(&b));
        assert_eq!(a.canonicalized().positions(), &[0, 1, 2]);
        assert_eq!(b.canonicalized().positions(), &[0, 1, 2]);
    }

    #[test]
    fn canonical_preserves_measure_inputs() {
        let l = in_order_layout(5);
        let c = l.canonicalized();
        let mut a: Vec<(u32, u64)> = l.edge_lengths().collect();
        let mut b: Vec<(u32, u64)> = c.edge_lengths().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_is_idempotent() {
        let l = in_order_layout(6);
        let c = l.canonicalized();
        assert_eq!(c.positions(), c.canonicalized().positions());
    }

    #[test]
    fn nodes_by_position_inverts() {
        let l = in_order_layout(4);
        let inv = l.nodes_by_position();
        for i in 1..=l.len() {
            assert_eq!(inv[l.position(i) as usize], i);
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use crate::named::NamedLayout;

    #[test]
    fn json_round_trip() {
        let l = NamedLayout::MinWep.materialize(6);
        let json = l.to_json();
        let back = Layout::from_json(&json).unwrap();
        assert_eq!(l.positions(), back.positions());
        assert_eq!(l.height(), back.height());
    }

    #[test]
    fn whitespace_and_key_order_tolerated() {
        let l = Layout::from_json(" { \"positions\" : [ 0 , 1 , 2 ] , \"height\" : 2 } ").unwrap();
        assert_eq!(l.positions(), &[0, 1, 2]);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        // Duplicate position.
        assert!(Layout::from_json(r#"{"height":2,"positions":[0,0,2]}"#).is_err());
        // Wrong length.
        assert!(Layout::from_json(r#"{"height":3,"positions":[0,1,2]}"#).is_err());
        // Invalid height.
        assert!(Layout::from_json(r#"{"height":0,"positions":[]}"#).is_err());
        // Syntax errors.
        assert!(Layout::from_json(r#"{"height":2,"positions":[0,1,2]"#).is_err());
        assert!(Layout::from_json(r#"{"height":2}"#).is_err());
        assert!(Layout::from_json(r#"{"height":2,"positions":[0,1,2]} extra"#).is_err());
        assert!(Layout::from_json(r#"{"other":1}"#).is_err());
        // Duplicate keys must be rejected, not last-one-wins.
        assert!(
            Layout::from_json(r#"{"height":2,"positions":[0,1,2],"positions":[2,1,0]}"#).is_err()
        );
        assert!(Layout::from_json(r#"{"height":3,"height":2,"positions":[0,1,2]}"#).is_err());
    }
}
