//! Shared geometry of a single recursion branch.
//!
//! Both the materializing engine ([`crate::engine`]) and the generic
//! pointer-less indexer ([`crate::index::generic`]) must agree *exactly* on
//! where each bottom subtree lands inside its parent block. That
//! arithmetic lives here, in one place.
//!
//! At a branch, a subtree of height `h` in arrangement [`Mode`] is cut at
//! height `g`. Its `2^g` bottom subtrees are indexed by their *natural
//! sequence number* `q`: children of the top subtree's leaves read in
//! ascending position order, each leaf contributing its left child then
//! its right child. [`Branch::bottom_block`] maps `q` to the block offset
//! and arrangement of that bottom subtree, implementing restrictions
//! (c)–(f) of §I-B and the alternating rule of Theorem 2.

use crate::spec::{RecursiveSpec, RootOrder, Subscript};

/// Arrangement of a subtree within its block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Top subtree in the middle of the bottom subtrees.
    InOrder,
    /// Top subtree at the low end (pre-order as seen from a parent below).
    PreLow,
    /// Top subtree at the high end (mirrored pre-order / post-order).
    PreHigh,
}

impl Mode {
    pub(crate) fn root(spec: &RecursiveSpec) -> Mode {
        match spec.root_order {
            RootOrder::InOrder => Mode::InOrder,
            RootOrder::PreOrder => Mode::PreLow,
        }
    }
}

/// Geometry of one cut: heights, block sizes and the `q ↦ block` map.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    /// Cut height (top subtree height).
    pub g: u32,
    /// Bottom subtree height `h − g`.
    pub bh: u32,
    mode: Mode,
    alternating: bool,
    k: Subscript,
}

impl Branch {
    /// Computes the branch geometry for a subtree of height `h ≥ 2`.
    pub(crate) fn new(spec: &RecursiveSpec, mode: Mode, h: u32) -> Self {
        debug_assert!(h >= 2);
        let g = match mode {
            Mode::InOrder => spec.cut_in.cut(h),
            Mode::PreLow | Mode::PreHigh => spec.cut_pre.cut(h),
        };
        Self {
            g,
            bh: h - g,
            mode,
            // With a single parent leaf (g = 1) "reverse order of the
            // parent leaves" is vacuous (§IV-C); treating it as a no-op
            // keeps MINWEP and MINEP literally identical for h ≤ 6.
            alternating: spec.alternating && g > 1,
            k: spec.first_in_order,
        }
    }

    /// Size of one bottom subtree block, `2^{h−g} − 1`.
    #[inline]
    pub(crate) fn bottom_size(&self) -> u64 {
        (1u64 << self.bh) - 1
    }

    /// Number of bottom subtrees, `2^g`.
    #[inline]
    pub(crate) fn bottom_count(&self) -> u64 {
        1u64 << self.g
    }

    /// Offset of the top subtree's block from the start of this subtree's
    /// block.
    #[inline]
    pub(crate) fn a_offset(&self) -> u64 {
        match self.mode {
            Mode::InOrder => (self.bottom_count() / 2) * self.bottom_size(),
            Mode::PreLow => 0,
            Mode::PreHigh => self.bottom_count() * self.bottom_size(),
        }
    }

    /// Maps natural sequence number `q` (see module docs) to
    /// `(block offset from subtree start, arrangement of that bottom)`.
    pub(crate) fn bottom_block(&self, q: u64) -> (u64, Mode) {
        let (offset, _rank, t, toward_a) = self.bottom_geometry(q);
        let mode = if self.k.is_pre_order(t) {
            toward_a
        } else {
            Mode::InOrder
        };
        (offset, mode)
    }

    /// Ascending rank of bottom `q`'s block among all bottom blocks (the
    /// number of bottom blocks at smaller positions) — used when ranking
    /// the leaves of a top subtree by position.
    pub(crate) fn bottom_block_rank(&self, q: u64) -> u64 {
        self.bottom_geometry(q).1
    }

    /// Returns `(offset, ascending block rank, outward rank t, pre-order
    /// direction toward A)` for natural sequence number `q`.
    fn bottom_geometry(&self, q: u64) -> (u64, u64, u64, Mode) {
        let s = self.bottom_size();
        let nb = self.bottom_count();
        debug_assert!(q < nb);
        match self.mode {
            Mode::InOrder => {
                let half = nb / 2;
                let a_size = nb - 1; // 2^g − 1 nodes in the top subtree
                if q < half {
                    // Left flank; outward rank counts from A downwards.
                    let j = if self.alternating { half - 1 - q } else { q };
                    (j * s, j, half - j, Mode::PreHigh)
                } else {
                    let rel = q - half;
                    let j = if self.alternating {
                        half - 1 - rel
                    } else {
                        rel
                    };
                    (half * s + a_size + j * s, half + j, j + 1, Mode::PreLow)
                }
            }
            Mode::PreLow => {
                let j = if self.alternating { nb - 1 - q } else { q };
                ((nb - 1) + j * s, j, j + 1, Mode::PreLow)
            }
            Mode::PreHigh => {
                let j = if self.alternating { nb - 1 - q } else { q };
                (j * s, j, nb - j, Mode::PreHigh)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CutRule;

    fn spec(alt: bool, k: Subscript) -> RecursiveSpec {
        let s = RecursiveSpec::new(RootOrder::InOrder, CutRule::Half, k);
        if alt {
            s.alternating()
        } else {
            s
        }
    }

    #[test]
    fn in_order_blocks_tile_the_space() {
        // h=6, g=3: 8 bottoms of size 7, A (7 nodes) in the middle.
        let br = Branch::new(&spec(false, Subscript::K(1)), Mode::InOrder, 6);
        assert_eq!(br.g, 3);
        assert_eq!(br.a_offset(), 28);
        let mut offs: Vec<u64> = (0..8).map(|q| br.bottom_block(q).0).collect();
        offs.sort_unstable();
        // Left flank blocks 0..28, A at 28..35, right flank 35..63.
        assert_eq!(offs, vec![0, 7, 14, 21, 35, 42, 49, 56]);
    }

    #[test]
    fn alternating_reverses_each_flank() {
        let plain = Branch::new(&spec(false, Subscript::K(1)), Mode::InOrder, 6);
        let alt = Branch::new(&spec(true, Subscript::K(1)), Mode::InOrder, 6);
        // Left flank q = 0..4 reversed, right flank q = 4..8 reversed.
        for q in 0..4u64 {
            assert_eq!(alt.bottom_block(q).0, plain.bottom_block(3 - q).0);
        }
        for q in 4..8u64 {
            assert_eq!(alt.bottom_block(q).0, plain.bottom_block(11 - q).0);
        }
    }

    #[test]
    fn subscript_two_marks_only_nearest_pre_order() {
        let br = Branch::new(&spec(false, Subscript::K(2)), Mode::InOrder, 6);
        // Outward rank 1 bottoms: q=3 (left, adjacent to A) and q=4 (right).
        assert_eq!(br.bottom_block(3).1, Mode::PreHigh);
        assert_eq!(br.bottom_block(4).1, Mode::PreLow);
        for q in [0u64, 1, 2, 5, 6, 7] {
            assert_eq!(br.bottom_block(q).1, Mode::InOrder, "q={q}");
        }
    }

    #[test]
    fn pre_low_blocks_follow_a() {
        let s = RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity);
        let br = Branch::new(&s, Mode::PreLow, 6);
        assert_eq!(br.a_offset(), 0);
        assert_eq!(br.bottom_block(0), (7, Mode::PreLow));
        assert_eq!(br.bottom_block(7), (56, Mode::PreLow));
    }

    #[test]
    fn pre_high_mirrors_pre_low() {
        let s = RecursiveSpec::new(RootOrder::PreOrder, CutRule::Half, Subscript::Infinity);
        let br = Branch::new(&s, Mode::PreHigh, 6);
        assert_eq!(br.a_offset(), 56);
        assert_eq!(br.bottom_block(0), (0, Mode::PreHigh));
        // Outward rank of q=7 (last natural) is 1 ⇒ nearest to A.
        assert_eq!(br.bottom_block(7).0, 49);
    }

    #[test]
    fn block_ranks_are_ascending_position_ranks() {
        for alt in [false, true] {
            let br = Branch::new(&spec(alt, Subscript::K(2)), Mode::InOrder, 8);
            let mut by_offset: Vec<(u64, u64)> = (0..br.bottom_count())
                .map(|q| (br.bottom_block(q).0, br.bottom_block_rank(q)))
                .collect();
            by_offset.sort_unstable();
            for (rank, (_, r)) in by_offset.iter().enumerate() {
                assert_eq!(*r, rank as u64);
            }
        }
    }
}
