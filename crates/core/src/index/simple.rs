//! Closed-form indexers for the four simple layouts.
//!
//! These are the layouts for which §IV-E observes that "it is trivial to
//! compute the position of a node": breadth-first (identity), in-order
//! (bit arithmetic), pre-order (one pass over the path bits) and the
//! in-order variant of breadth-first.

use crate::index::PositionIndex;
use crate::tree::NodeId;

/// PRE-BREADTH: layout position equals BFS index (minus one, 0-based).
pub struct BfsIndex {
    height: u32,
}

impl BfsIndex {
    /// Creates the identity indexer for a tree of `height` levels.
    #[must_use]
    pub fn new(height: u32) -> Self {
        Self { height }
    }
}

impl PositionIndex for BfsIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, _depth: u32) -> u64 {
        node - 1
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::compile_bfs(self.height))
    }
}

/// IN-ORDER: position equals the in-order rank.
pub struct InOrderIndex {
    height: u32,
}

impl InOrderIndex {
    /// Creates the in-order indexer for a tree of `height` levels.
    #[must_use]
    pub fn new(height: u32) -> Self {
        Self { height }
    }
}

impl PositionIndex for InOrderIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, depth: u32) -> u64 {
        let span = 1u64 << (self.height - depth);
        (node - (1u64 << depth)) * span + span / 2 - 1
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::compile_in_order(self.height))
    }
}

/// PRE-ORDER: one pass over the path bits, adding skipped subtree sizes.
pub struct PreOrderIndex {
    height: u32,
}

impl PreOrderIndex {
    /// Creates the pre-order indexer for a tree of `height` levels.
    #[must_use]
    pub fn new(height: u32) -> Self {
        Self { height }
    }
}

impl PositionIndex for PreOrderIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, depth: u32) -> u64 {
        // Walking down from the root: each step costs 1 (the node we leave)
        // plus, when stepping right, the whole left subtree we skip.
        let mut p = 0u64;
        let mut sub = 1u64 << (self.height - 1); // 2^{subtree height − 1}
        for k in (0..depth).rev() {
            p += 1;
            if (node >> k) & 1 == 1 {
                p += sub - 1; // left sibling subtree has 2^{bh} − 1 nodes
            }
            sub >>= 1;
        }
        p
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::compile_pre_order(self.height))
    }
}

/// IN-BREADTH: levels stacked in-order — the left half of each level below
/// the top subtree, the right half above it (Fig. 5i).
pub struct InBreadthIndex {
    height: u32,
}

impl InBreadthIndex {
    /// Creates the in-breadth indexer for a tree of `height` levels.
    #[must_use]
    pub fn new(height: u32) -> Self {
        Self { height }
    }
}

impl PositionIndex for InBreadthIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, depth: u32) -> u64 {
        let h = self.height;
        if depth == 0 {
            return (1u64 << (h - 1)) - 1;
        }
        let j = node - (1u64 << depth);
        let half = 1u64 << (depth - 1);
        if j < half {
            // Left halves of the levels, deepest first.
            (1u64 << (h - 1)) - (1u64 << depth) + j
        } else {
            // Right halves, shallowest first.
            (1u64 << (h - 1)) + j - 1
        }
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::compile_in_breadth(self.height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedLayout;
    use crate::tree::Tree;

    fn check_against_engine(layout: NamedLayout, idx: &dyn PositionIndex, h: u32) {
        let mat = layout.materialize(h);
        let t = Tree::new(h);
        for i in t.nodes() {
            assert_eq!(
                idx.position(i, t.depth(i)),
                mat.position(i),
                "{layout} node {i} h={h}"
            );
        }
    }

    #[test]
    fn bfs_matches_engine() {
        for h in 1..=10 {
            check_against_engine(NamedLayout::PreBreadth, &BfsIndex::new(h), h);
        }
    }

    #[test]
    fn in_order_matches_engine() {
        for h in 1..=10 {
            check_against_engine(NamedLayout::InOrder, &InOrderIndex::new(h), h);
        }
    }

    #[test]
    fn pre_order_matches_engine() {
        for h in 1..=10 {
            check_against_engine(NamedLayout::PreOrder, &PreOrderIndex::new(h), h);
        }
    }

    #[test]
    fn in_breadth_matches_engine() {
        for h in 1..=10 {
            check_against_engine(NamedLayout::InBreadth, &InBreadthIndex::new(h), h);
        }
    }
}
