//! Incremental root-to-leaf position stepping.
//!
//! Listing 1 (and every per-node indexer) recomputes the full
//! breadth-first → layout translation for each visited node, making an
//! implicit search cost O(h) arithmetic *per transition* — O(h²) per
//! search. The paper hints that this is wasteful; [`PathStepper`] is the
//! incremental alternative this reproduction adds:
//!
//! A search path only ever *descends*, and every bottom subtree of a
//! recursion branch fully contains the subtree of its root. The stepper
//! therefore keeps the stack of enclosing bottom-subtree blocks (root,
//! block start, height, arrangement). A step to a child pushes at most
//! the branches the path newly enters, and each branch is entered once
//! per search — so the block bookkeeping is O(1) amortized per step, and
//! only the in-block top-subtree descent (bounded by the innermost cut
//! height, ~h/2 shrinking geometrically) remains per query.

use crate::branch::{Branch, Mode};
use crate::spec::RecursiveSpec;
use crate::tree::NodeId;

const UNSET: u64 = u64::MAX;

/// One enclosing subtree block on the current root-to-node path.
#[derive(Debug, Clone, Copy)]
struct Frame {
    root: NodeId,
    root_depth: u32,
    h: u32,
    lo: u64,
    mode: Mode,
}

/// Incremental position computation along a root-to-leaf walk.
///
/// ```
/// use cobtree_core::index::stepper::PathStepper;
/// use cobtree_core::NamedLayout;
///
/// let layout = NamedLayout::HalfWep;
/// let mat = layout.materialize(8);
/// let mut stepper = PathStepper::new(layout.spec(), 8);
/// // Walk to node 5 = left(right(root)) and compare against the engine.
/// assert_eq!(stepper.reset(), mat.position(1));
/// stepper.descend(false);
/// assert_eq!(stepper.descend(true), mat.position(5));
/// ```
pub struct PathStepper {
    spec: RecursiveSpec,
    height: u32,
    frames: Vec<Frame>,
    node: NodeId,
    depth: u32,
    /// Per-path memo of leaf-rank queries, keyed by
    /// `(depth of branch root) · h + (depth of leaf)`. Along one
    /// root-to-leaf walk both depths identify path nodes uniquely, and
    /// entries stay valid until [`PathStepper::reset`].
    rank_memo: Vec<u64>,
}

impl PathStepper {
    /// Creates a stepper positioned at the root.
    #[must_use]
    pub fn new(spec: RecursiveSpec, height: u32) -> Self {
        let mut s = Self {
            spec,
            height,
            frames: Vec::with_capacity(height as usize),
            node: 1,
            depth: 0,
            rank_memo: vec![UNSET; (height as usize + 1) * (height as usize + 1)],
        };
        s.reset();
        s
    }

    /// Tree height served.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Current BFS node.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Returns to the root; yields the root's layout position.
    pub fn reset(&mut self) -> u64 {
        self.rank_memo.fill(UNSET);
        self.frames.clear();
        self.frames.push(Frame {
            root: 1,
            root_depth: 0,
            h: self.height,
            lo: 0,
            mode: Mode::root(&self.spec),
        });
        self.node = 1;
        self.depth = 0;
        self.position_in_frames()
    }

    /// Moves to the left (`false`) or right (`true`) child and returns
    /// its layout position.
    ///
    /// # Panics
    /// Panics when already on the last level.
    pub fn descend(&mut self, right: bool) -> u64 {
        assert!(self.depth + 1 < self.height, "cannot descend below leaves");
        self.node = 2 * self.node + u64::from(right);
        self.depth += 1;
        // Enter any bottom subtrees the path now crosses. The innermost
        // frame always contains `node` (bottom subtrees contain the full
        // subtree of their root), so only pushes happen.
        loop {
            let f = *self.frames.last().expect("frame stack never empty");
            if f.h == 1 {
                break;
            }
            let br = Branch::new(&self.spec, f.mode, f.h);
            let rel = self.depth - f.root_depth;
            if rel < br.g {
                break; // still inside this frame's top subtree
            }
            let c = self.node >> (rel - br.g);
            let x = c >> 1;
            let q = 2 * self.leaf_rank_memo(f.root, br.g, f.mode, x) + (c & 1);
            let (off, child_mode) = br.bottom_block(q);
            self.frames.push(Frame {
                root: c,
                root_depth: f.root_depth + br.g,
                h: br.bh,
                lo: f.lo + off,
                mode: child_mode,
            });
        }
        self.position_in_frames()
    }

    /// Position of the current node, resolved inside the innermost frame.
    ///
    /// Blocks *within* a frame's top subtree are truncated at that top's
    /// leaf level, so they never contain the node's future subtree and are
    /// not worth caching — the frame-local walk handles them per query.
    fn position_in_frames(&mut self) -> u64 {
        let f = *self.frames.last().expect("frame stack never empty");
        self.walk_from(f.root, f.root_depth, f.h, f.lo, f.mode)
    }

    /// Frame-free descent identical to the generic indexer, used for the
    /// shallow in-top-subtree cases.
    fn walk_from(
        &mut self,
        mut root: NodeId,
        mut root_depth: u32,
        mut h: u32,
        mut lo: u64,
        mut mode: Mode,
    ) -> u64 {
        loop {
            if h == 1 {
                return lo;
            }
            let br = Branch::new(&self.spec, mode, h);
            let rel = self.depth - root_depth;
            if rel < br.g {
                lo += br.a_offset();
                h = br.g;
            } else {
                let c = self.node >> (rel - br.g);
                let x = c >> 1;
                let q = 2 * self.leaf_rank_memo(root, br.g, mode, x) + (c & 1);
                let (off, child_mode) = br.bottom_block(q);
                lo += off;
                root = c;
                root_depth += br.g;
                h = br.bh;
                mode = child_mode;
            }
        }
    }

    /// Memoized leaf rank: identical to
    /// [`crate::index::generic::leaf_rank`] but cached per path, making
    /// repeated queries along a descent O(1).
    fn leaf_rank_memo(&mut self, root: NodeId, g: u32, mode: Mode, leaf: NodeId) -> u64 {
        if g == 1 {
            debug_assert_eq!(leaf, root);
            return 0;
        }
        let side = self.height as usize + 1;
        let root_depth = 63 - root.leading_zeros();
        let leaf_depth = 63 - leaf.leading_zeros();
        let key = root_depth as usize * side + leaf_depth as usize;
        // Only path nodes are queried, so (root depth, leaf depth) is a
        // sound key; both must lie on the current path.
        debug_assert_eq!(self.node >> (self.depth - leaf_depth), leaf);
        if self.rank_memo[key] != UNSET {
            return self.rank_memo[key];
        }
        let br = Branch::new(&self.spec, mode, g);
        let rel = g - 1;
        let c = leaf >> (rel - br.g);
        let x = c >> 1;
        let q = 2 * self.leaf_rank_memo(root, br.g, mode, x) + (c & 1);
        let (_, child_mode) = br.bottom_block(q);
        let leaves_per_bottom = 1u64 << (g - 1 - br.g);
        let rank = br.bottom_block_rank(q) * leaves_per_bottom
            + self.leaf_rank_memo(c, g - br.g, child_mode, leaf);
        self.rank_memo[key] = rank;
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedLayout;
    use crate::tree::Tree;

    /// Walk every root-to-leaf path and compare each step against the
    /// materialized layout.
    fn check(layout: NamedLayout, h: u32) {
        let mat = layout.materialize(h);
        let tree = Tree::new(h);
        let mut stepper = PathStepper::new(layout.spec(), h);
        for leaf in tree.level(h - 1) {
            assert_eq!(stepper.reset(), mat.position(1), "{layout} reset");
            for d in 1..h {
                let node = tree.ancestor_at_depth(leaf, d);
                let got = stepper.descend(node & 1 == 1);
                assert_eq!(got, mat.position(node), "{layout} h={h} node {node}");
            }
        }
    }

    #[test]
    fn stepper_matches_engine_everywhere() {
        for layout in NamedLayout::ALL {
            for h in 1..=9 {
                check(layout, h);
            }
        }
    }

    #[test]
    fn stepper_matches_engine_at_moderate_height() {
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::HalfWep,
            NamedLayout::InVebA,
        ] {
            check(layout, 12);
        }
    }

    #[test]
    #[should_panic(expected = "descend below leaves")]
    fn refuses_to_leave_the_tree() {
        let mut s = PathStepper::new(NamedLayout::MinWep.spec(), 2);
        s.descend(false);
        s.descend(false);
    }
}
