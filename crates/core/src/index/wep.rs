//! Index arithmetic for the WEP family: a faithful port of the paper's
//! **Listing 1** (breadth-first → MINWEP index translation).
//!
//! The listing exploits the `g_I(h) = 1` reformulation of MINWEP (§IV-C):
//! every in-order branch places its root mid-block with two pre-order
//! subtrees of height `h − 1` whose roots are adjacent to it, and all the
//! remaining structure comes from the pre-order cut `partition(h)`. The
//! same code therefore computes MINEP indices when `partition(h) = 1`
//! everywhere — the only difference between the two layouts.
//!
//! Bit tricks preserved from the listing: `i ^= r` maps post-order (left
//! flank, mirrored) walks onto pre-order ones; `i = ~i` flips the child
//! interpretation when entering a top subtree, which implements the
//! alternating ordering accumulated over nested branches; offsets `q` are
//! negated by `q ^= r` on mirrored flanks. All arithmetic is wrapping, as
//! in the original C.

use crate::index::PositionIndex;
use crate::tree::NodeId;

/// MINWEP's optimal pre-order cut — `partition()` from Listing 1.
#[inline]
#[must_use]
pub fn partition_minwep(h: u32) -> u32 {
    if h <= 5 {
        1
    } else {
        (h - 1) / 2
    }
}

/// MINEP: every pre-order subtree cut at the top.
#[inline]
#[must_use]
pub fn partition_minep(_h: u32) -> u32 {
    1
}

/// Breadth-first (BFS) index to WEP-family index translation; a direct
/// port of Listing 1 with the cut function (`partition`) pluggable.
///
/// Returns the **1-based** layout position, as in the paper.
#[inline]
#[must_use]
pub fn wep_index(partition: impl Fn(u32) -> u32, mut i: u64, mut d: u32, mut h: u32) -> u64 {
    h -= 1;
    let mut p: u64 = 1 << h; // MINWEP index being computed (root position)
    while d > 0 {
        d -= 1;
        let mut q: u64 = (i >> d) & 1; // initial offset (pre: q=1; post: q=0)
        let r = q.wrapping_sub(1); // bit reversal (pre: r=0; post: r=~0)
        i ^= r; // post-order is reversal of pre-order
        while d > 0 {
            // iterate until node is root of subtree
            let g = partition(h); // top subtree height
            if d < g {
                // node is in top subtree
                h = g; // set height to top subtree height
                i = !i; // alternate left/right ordering
            } else {
                // node is in bottom subtree
                h -= g; // bottom subtree height
                d -= g; // depth within bottom subtree
                let m = (1u64 << g) - 1; // number of nodes in top subtree
                q = q.wrapping_add(m); // advance past top subtree
                let k = (i >> d) & m; // subtree number (pre: k=0; in: k>=1)
                if k != 0 {
                    // in in-order subtree
                    q = q.wrapping_add((k << h) - k); // advance past k bottoms
                    h -= 1;
                    q = q.wrapping_add((1u64 << h) - 1); // to in-order root
                    break; // transition to in-order case
                }
            }
        }
        i ^= r; // restore i if post-order
        q ^= r; // negate offset if post-order
        p = p.wrapping_add(q); // advance to smaller in-order subtree
    }
    p
}

/// [`PositionIndex`] wrapper over [`wep_index`] for a fixed cut function.
pub struct WepIndex {
    height: u32,
    partition: fn(u32) -> u32,
}

impl WepIndex {
    /// Creates a WEP-family indexer (use [`partition_minwep`] or
    /// [`partition_minep`]).
    #[must_use]
    pub fn new(height: u32, partition: fn(u32) -> u32) -> Self {
        Self { height, partition }
    }
}

impl PositionIndex for WepIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, depth: u32) -> u64 {
        wep_index(self.partition, node, depth, self.height) - 1
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::StepPlan::Wep {
            height: self.height,
            partition: self.partition,
        })
    }
}

/// MINWLA (`I^1_∞`) closed form: root mid-block, both subtrees
/// pre-order towards it, then pure pre-order all the way down. Shared
/// by [`MinWlaIndex`] and [`crate::index::plan::StepPlan::MinWla`].
#[inline]
#[must_use]
pub fn minwla_position(h: u32, node: NodeId, depth: u32) -> u64 {
    let root_pos = (1u64 << (h - 1)) - 1; // 0-based mid-block
    if depth == 0 {
        return root_pos;
    }
    // Pre-order offset of `node` within the child subtree of height h−1.
    let mut off = 0u64;
    let mut sub = 1u64 << (h - 2); // 2^{subtree height − 1}
    for k in (0..depth - 1).rev() {
        off += 1;
        if (node >> k) & 1 == 1 {
            off += sub - 1;
        }
        sub >>= 1;
    }
    if (node >> (depth - 1)) & 1 == 1 {
        root_pos + 1 + off // right child subtree: pre-order ascending
    } else {
        root_pos - 1 - off // left child subtree: mirrored (post-order)
    }
}

/// MINWLA (`I^1_∞`): root mid-block, both subtrees pre-order towards it,
/// then pure pre-order all the way down.
pub struct MinWlaIndex {
    height: u32,
}

impl MinWlaIndex {
    /// Creates the MINWLA indexer for a tree of `height` levels.
    #[must_use]
    pub fn new(height: u32) -> Self {
        Self { height }
    }
}

impl PositionIndex for MinWlaIndex {
    fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn position(&self, node: NodeId, depth: u32) -> u64 {
        minwla_position(self.height, node, depth)
    }

    fn compile_plan(&self) -> Option<crate::index::plan::StepPlan> {
        Some(crate::index::plan::StepPlan::MinWla {
            height: self.height,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedLayout;
    use crate::tree::Tree;

    /// Listing 1 makes its own (automorphic) child-order choices, so the
    /// comparison against the engine is on canonical forms; the golden test
    /// suite pins both against the paper's Figure 5a.
    fn check_canonical(layout: NamedLayout, idx: &dyn PositionIndex, h: u32) {
        let t = Tree::new(h);
        let from_idx = crate::layout::Layout::from_fn(h, |i| idx.position(i, t.depth(i)));
        let mat = layout.materialize(h);
        assert!(
            from_idx.equivalent_to(&mat),
            "{layout} h={h}: indexer and engine disagree beyond automorphism\nidx: {}\neng: {}",
            from_idx.display_one_based(),
            mat.display_one_based()
        );
    }

    #[test]
    fn minwep_indexer_matches_engine_canonically() {
        for h in 1..=14 {
            check_canonical(NamedLayout::MinWep, &WepIndex::new(h, partition_minwep), h);
        }
    }

    #[test]
    fn minep_indexer_matches_engine_canonically() {
        for h in 1..=14 {
            check_canonical(NamedLayout::MinEp, &WepIndex::new(h, partition_minep), h);
        }
    }

    #[test]
    fn minwla_indexer_matches_engine_canonically() {
        for h in 1..=14 {
            check_canonical(NamedLayout::MinWla, &MinWlaIndex::new(h), h);
        }
    }

    #[test]
    fn wep_index_is_a_permutation() {
        for h in 1..=12 {
            let t = Tree::new(h);
            // from_fn panics if not bijective.
            let _ = crate::layout::Layout::from_fn(h, |i| {
                wep_index(partition_minwep, i, t.depth(i), h) - 1
            });
        }
    }

    #[test]
    fn minwep_root_and_children_positions_h6() {
        // §IV-C: top two levels at 1-based positions 31..33.
        let idx = WepIndex::new(6, partition_minwep);
        let mut top: Vec<u64> = vec![
            idx.position(1, 0) + 1,
            idx.position(2, 1) + 1,
            idx.position(3, 1) + 1,
        ];
        top.sort_unstable();
        assert_eq!(top, vec![31, 32, 33]);
    }
}
