//! Pointer-less position arithmetic (§IV-E).
//!
//! An *implicit* (pointer-less) search tree stores only keys, in layout
//! order. Navigating it requires computing, for every transition, the
//! position of the next BFS node — the code the paper times in Figure 4
//! (bottom panels). This module provides:
//!
//! * [`simple`] — O(1)/O(d) closed forms for the four simple layouts
//!   (breadth-first, in-breadth, in-order, pre-order);
//! * [`veb`] — descent loops for the non-alternating van Emde Boas family
//!   (PRE-VEB, BENDER, IN-VEB);
//! * [`wep`] — a faithful port of the paper's **Listing 1**
//!   (breadth-first → MINWEP index translation), parameterized over the
//!   `partition()` cut so it also serves MINEP, plus MINWLA;
//! * [`generic`] — a spec-interpreting indexer that works for *every*
//!   [`RecursiveSpec`](crate::spec::RecursiveSpec) (used for the alternating vEB variants and
//!   HALFWEP, and as ground truth in tests).
//!
//! All indexers implement [`PositionIndex`]; positions are 0-based.

pub mod generic;
pub mod plan;
pub mod simple;
pub mod stepper;
pub mod veb;
pub mod wep;

pub use plan::StepPlan;

use crate::layout::Layout;
use crate::named::NamedLayout;
use crate::tree::{NodeId, Tree};

/// Arithmetic mapping from BFS node index to layout position.
///
/// `depth` must equal `⌊log2 node⌋`; search loops track it incrementally,
/// mirroring the paper's `index(i, d, h)` signature.
///
/// Beyond the point mapping, the trait provides **in-order navigation**:
/// the stored keys of a laid-out complete BST are sorted by in-order
/// rank, so the 1-based rank `r ∈ 1..=2^h − 1` is the ordinal of a key
/// and [`PositionIndex::position_of_in_order`] /
/// [`PositionIndex::in_order_of_position`] translate between ordinals
/// and layout positions — the mapping every ordered-map operation
/// (rank/select, cursors, range scans) is built on.
pub trait PositionIndex: Send + Sync {
    /// Tree height `h` this indexer serves.
    fn height(&self) -> u32;

    /// 0-based position of `node` (with `depth = ⌊log2 node⌋`).
    fn position(&self, node: NodeId, depth: u32) -> u64;

    /// Convenience: position with the depth computed on the fly.
    fn position_of(&self, node: NodeId) -> u64 {
        self.position(node, 63 - node.leading_zeros())
    }

    /// Number of storage slots the layout addresses — the exclusive
    /// upper bound of [`PositionIndex::position`]. For permutation
    /// layouts this is exactly `2^h − 1`; *sparse* layouts (the fat
    /// family, which pads chunks to a power-of-two stride) override it
    /// with something larger, and positions that hold no node return
    /// `None` from [`PositionIndex::node_at_position`].
    fn slot_capacity(&self) -> u64 {
        (1u64 << self.height()) - 1
    }

    /// Layout position of the node with 1-based in-order rank
    /// `rank ∈ 1..=2^h − 1` — i.e. the position of the `rank`-th
    /// smallest key.
    ///
    /// # Panics
    /// Panics if `rank` is outside `1..=2^h − 1`.
    fn position_of_in_order(&self, rank: u64) -> u64 {
        let tree = Tree::new(self.height());
        let node = tree.node_at_in_order(rank);
        self.position(node, tree.depth(node))
    }

    /// BFS node stored at layout `position`, or `None` when `position`
    /// is outside `0..2^h − 1`.
    ///
    /// The default inverts the permutation by scanning all `2^h − 1`
    /// nodes — `O(2^h)`. Implementations holding a materialized inverse
    /// (e.g. [`MaterializedIndex`]) override it with a table lookup.
    fn node_at_position(&self, position: u64) -> Option<NodeId> {
        let tree = Tree::new(self.height());
        if position >= tree.len() {
            return None;
        }
        tree.nodes()
            .find(|&i| self.position(i, tree.depth(i)) == position)
    }

    /// 1-based in-order rank of the key stored at layout `position` —
    /// the inverse of [`PositionIndex::position_of_in_order`]. `None`
    /// when `position` is out of range. Costs whatever
    /// [`PositionIndex::node_at_position`] costs.
    fn in_order_of_position(&self, position: u64) -> Option<u64> {
        let tree = Tree::new(self.height());
        self.node_at_position(position)
            .map(|node| tree.in_order_rank(node))
    }

    /// Compiles this indexer into a devirtualized [`StepPlan`] for the
    /// descent kernels, or `None` when no compiled form exists (the
    /// generic spec interpreter). The plan must be **bit-identical** to
    /// [`PositionIndex::position`] for every node.
    fn compile_plan(&self) -> Option<StepPlan> {
        None
    }
}

/// A materialized layout used as a [`PositionIndex`] (one array lookup,
/// both directions: the inverse permutation is materialized too).
pub struct MaterializedIndex {
    layout: Layout,
    nodes_by_position: Vec<NodeId>,
}

impl MaterializedIndex {
    /// Wraps a materialized layout (builds the inverse permutation once,
    /// so position → node queries are `O(1)`).
    #[must_use]
    pub fn new(layout: Layout) -> Self {
        let nodes_by_position = layout.nodes_by_position();
        Self {
            layout,
            nodes_by_position,
        }
    }

    /// The wrapped layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }
}

impl PositionIndex for MaterializedIndex {
    fn height(&self) -> u32 {
        self.layout.height()
    }

    fn position(&self, node: NodeId, _depth: u32) -> u64 {
        self.layout.position(node)
    }

    fn node_at_position(&self, position: u64) -> Option<NodeId> {
        self.nodes_by_position.get(position as usize).copied()
    }

    fn compile_plan(&self) -> Option<StepPlan> {
        // The layout already stores `positions[node − 1]` as `u32`:
        // copy it once (a memcpy, not a per-node re-derivation). The
        // plan's copy duplicates 4 bytes/node for the tree's lifetime —
        // accepted, since this index's own inverse table is twice that.
        Some(StepPlan::from_positions(
            self.layout.height(),
            self.layout.positions().to_vec(),
        ))
    }
}

impl NamedLayout {
    /// Fallible variant of [`NamedLayout::indexer`].
    ///
    /// # Errors
    /// [`crate::Error::HeightOutOfRange`] if `height` is `0` or exceeds
    /// [`crate::tree::MAX_HEIGHT`].
    pub fn try_indexer(&self, height: u32) -> crate::error::Result<Box<dyn PositionIndex>> {
        // The indexers are pure arithmetic, so the only structural
        // precondition is a representable tree.
        crate::tree::Tree::try_new(height)?;
        Ok(self.indexer(height))
    }

    /// The fastest available arithmetic indexer for this layout.
    ///
    /// The alternating vEB variants and HALFWEP fall back to the generic
    /// spec interpreter; everything else has a dedicated closed form or
    /// descent loop (the paper's Figure 4 compares exactly these costs).
    #[must_use]
    pub fn indexer(&self, height: u32) -> Box<dyn PositionIndex> {
        use crate::spec::CutRule;
        match self {
            NamedLayout::PreBreadth => Box::new(simple::BfsIndex::new(height)),
            NamedLayout::InBreadth => Box::new(simple::InBreadthIndex::new(height)),
            NamedLayout::InOrder => Box::new(simple::InOrderIndex::new(height)),
            NamedLayout::PreOrder => Box::new(simple::PreOrderIndex::new(height)),
            NamedLayout::PreVeb => Box::new(veb::PreVebIndex::new(height, CutRule::Half)),
            NamedLayout::Bender => Box::new(veb::PreVebIndex::new(height, CutRule::Bender)),
            NamedLayout::InVeb => Box::new(veb::InVebIndex::new(height)),
            NamedLayout::MinWla => Box::new(wep::MinWlaIndex::new(height)),
            NamedLayout::MinEp => Box::new(wep::WepIndex::new(height, wep::partition_minep)),
            NamedLayout::MinWep => Box::new(wep::WepIndex::new(height, wep::partition_minwep)),
            NamedLayout::PreVebA | NamedLayout::InVebA | NamedLayout::HalfWep => {
                Box::new(generic::GenericIndexer::new(self.spec(), height))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialized_index_round_trips() {
        let layout = NamedLayout::MinWep.materialize(8);
        let idx = MaterializedIndex::new(layout.clone());
        for i in 1..=layout.len() {
            assert_eq!(idx.position_of(i), layout.position(i));
        }
        assert_eq!(idx.height(), 8);
    }

    #[test]
    fn in_order_navigation_round_trips_on_every_indexer() {
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::PreVeb,
            NamedLayout::InOrder,
        ] {
            let h = 6;
            let idx = layout.indexer(h);
            let tree = crate::tree::Tree::new(h);
            for rank in 1..=tree.len() {
                let p = idx.position_of_in_order(rank);
                assert!(p < tree.len());
                assert_eq!(
                    idx.in_order_of_position(p),
                    Some(rank),
                    "{layout} rank {rank}"
                );
            }
            assert_eq!(idx.node_at_position(tree.len()), None);
            assert_eq!(idx.in_order_of_position(u64::MAX), None);
        }
    }

    #[test]
    fn materialized_inverse_matches_generic_scan() {
        let layout = NamedLayout::HalfWep.materialize(7);
        let mat = MaterializedIndex::new(layout);
        let generic = NamedLayout::HalfWep.indexer(7);
        for p in 0..mat.layout().len() {
            assert_eq!(mat.node_at_position(p), generic.node_at_position(p));
        }
    }
}
