//! Pointer-less position arithmetic (§IV-E).
//!
//! An *implicit* (pointer-less) search tree stores only keys, in layout
//! order. Navigating it requires computing, for every transition, the
//! position of the next BFS node — the code the paper times in Figure 4
//! (bottom panels). This module provides:
//!
//! * [`simple`] — O(1)/O(d) closed forms for the four simple layouts
//!   (breadth-first, in-breadth, in-order, pre-order);
//! * [`veb`] — descent loops for the non-alternating van Emde Boas family
//!   (PRE-VEB, BENDER, IN-VEB);
//! * [`wep`] — a faithful port of the paper's **Listing 1**
//!   (breadth-first → MINWEP index translation), parameterized over the
//!   `partition()` cut so it also serves MINEP, plus MINWLA;
//! * [`generic`] — a spec-interpreting indexer that works for *every*
//!   [`RecursiveSpec`](crate::spec::RecursiveSpec) (used for the alternating vEB variants and
//!   HALFWEP, and as ground truth in tests).
//!
//! All indexers implement [`PositionIndex`]; positions are 0-based.

pub mod generic;
pub mod simple;
pub mod stepper;
pub mod veb;
pub mod wep;

use crate::layout::Layout;
use crate::named::NamedLayout;
use crate::tree::NodeId;

/// Arithmetic mapping from BFS node index to layout position.
///
/// `depth` must equal `⌊log2 node⌋`; search loops track it incrementally,
/// mirroring the paper's `index(i, d, h)` signature.
pub trait PositionIndex: Send + Sync {
    /// Tree height `h` this indexer serves.
    fn height(&self) -> u32;

    /// 0-based position of `node` (with `depth = ⌊log2 node⌋`).
    fn position(&self, node: NodeId, depth: u32) -> u64;

    /// Convenience: position with the depth computed on the fly.
    fn position_of(&self, node: NodeId) -> u64 {
        self.position(node, 63 - node.leading_zeros())
    }
}

/// A materialized layout used as a [`PositionIndex`] (one array lookup).
pub struct MaterializedIndex {
    layout: Layout,
}

impl MaterializedIndex {
    /// Wraps a materialized layout.
    #[must_use]
    pub fn new(layout: Layout) -> Self {
        Self { layout }
    }

    /// The wrapped layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }
}

impl PositionIndex for MaterializedIndex {
    fn height(&self) -> u32 {
        self.layout.height()
    }

    fn position(&self, node: NodeId, _depth: u32) -> u64 {
        self.layout.position(node)
    }
}

impl NamedLayout {
    /// Fallible variant of [`NamedLayout::indexer`].
    ///
    /// # Errors
    /// [`crate::Error::HeightOutOfRange`] if `height` is `0` or exceeds
    /// [`crate::tree::MAX_HEIGHT`].
    pub fn try_indexer(&self, height: u32) -> crate::error::Result<Box<dyn PositionIndex>> {
        // The indexers are pure arithmetic, so the only structural
        // precondition is a representable tree.
        crate::tree::Tree::try_new(height)?;
        Ok(self.indexer(height))
    }

    /// The fastest available arithmetic indexer for this layout.
    ///
    /// The alternating vEB variants and HALFWEP fall back to the generic
    /// spec interpreter; everything else has a dedicated closed form or
    /// descent loop (the paper's Figure 4 compares exactly these costs).
    #[must_use]
    pub fn indexer(&self, height: u32) -> Box<dyn PositionIndex> {
        use crate::spec::CutRule;
        match self {
            NamedLayout::PreBreadth => Box::new(simple::BfsIndex::new(height)),
            NamedLayout::InBreadth => Box::new(simple::InBreadthIndex::new(height)),
            NamedLayout::InOrder => Box::new(simple::InOrderIndex::new(height)),
            NamedLayout::PreOrder => Box::new(simple::PreOrderIndex::new(height)),
            NamedLayout::PreVeb => Box::new(veb::PreVebIndex::new(height, CutRule::Half)),
            NamedLayout::Bender => Box::new(veb::PreVebIndex::new(height, CutRule::Bender)),
            NamedLayout::InVeb => Box::new(veb::InVebIndex::new(height)),
            NamedLayout::MinWla => Box::new(wep::MinWlaIndex::new(height)),
            NamedLayout::MinEp => Box::new(wep::WepIndex::new(height, wep::partition_minep)),
            NamedLayout::MinWep => Box::new(wep::WepIndex::new(height, wep::partition_minwep)),
            NamedLayout::PreVebA | NamedLayout::InVebA | NamedLayout::HalfWep => {
                Box::new(generic::GenericIndexer::new(self.spec(), height))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialized_index_round_trips() {
        let layout = NamedLayout::MinWep.materialize(8);
        let idx = MaterializedIndex::new(layout.clone());
        for i in 1..=layout.len() {
            assert_eq!(idx.position_of(i), layout.position(i));
        }
        assert_eq!(idx.height(), 8);
    }
}
