//! Spec-interpreting pointer-less indexer.
//!
//! Computes layout positions for *any* [`RecursiveSpec`] by replaying the
//! engine's recursion for a single target node instead of materializing
//! the whole permutation. Where the engine sorts the top subtree's leaves
//! by their just-assigned positions, this indexer computes a leaf's
//! position-rank recursively (`leaf_rank`); both sides
//! share the block arithmetic (`crate::branch`), so they agree exactly.
//!
//! Complexity is O(h²) per query in the worst case (each descent step may
//! trigger an O(h) leaf-rank computation) — fine as ground truth and for
//! the layouts without dedicated fast paths (alternating vEB variants,
//! HALFWEP).

use crate::branch::{Branch, Mode};
use crate::index::PositionIndex;
use crate::spec::RecursiveSpec;
use crate::tree::NodeId;

/// Pointer-less indexer for an arbitrary Recursive Layout.
pub struct GenericIndexer {
    spec: RecursiveSpec,
    height: u32,
}

impl GenericIndexer {
    /// Creates an indexer interpreting `spec` for a tree of `height` levels.
    #[must_use]
    pub fn new(spec: RecursiveSpec, height: u32) -> Self {
        Self { spec, height }
    }

    /// The interpreted spec.
    #[must_use]
    pub fn spec(&self) -> &RecursiveSpec {
        &self.spec
    }

    /// Position-rank of `leaf` (a descendant of `root` at relative depth
    /// `g − 1`) among the `2^{g−1}` leaves of the height-`g` top subtree
    /// rooted at `root`, arranged per `mode`.
    fn leaf_rank(&self, root: NodeId, g: u32, mode: Mode, leaf: NodeId) -> u64 {
        leaf_rank(&self.spec, root, g, mode, leaf)
    }
}

/// Position-rank of `leaf` among the leaves of the height-`g` subtree
/// rooted at `root`, arranged per `mode` (shared by the indexer and the
/// incremental stepper).
pub(crate) fn leaf_rank(
    spec: &RecursiveSpec,
    root: NodeId,
    g: u32,
    mode: Mode,
    leaf: NodeId,
) -> u64 {
    if g == 1 {
        debug_assert_eq!(leaf, root);
        return 0;
    }
    let br = Branch::new(spec, mode, g);
    // The leaf lives in one of A's bottom subtrees (the top subtree of
    // this sub-branch holds only depths < g' ≤ g − 1).
    let rel = g - 1; // relative depth of `leaf` under `root`
    let c = leaf >> (rel - br.g); // bottom-subtree root containing leaf
    let x = c >> 1; // its parent leaf inside the sub-top
    let q = 2 * leaf_rank(spec, root, br.g, mode, x) + (c & 1);
    let (_, child_mode) = br.bottom_block(q);
    let leaves_per_bottom = 1u64 << (g - 1 - br.g);
    br.bottom_block_rank(q) * leaves_per_bottom + leaf_rank(spec, c, g - br.g, child_mode, leaf)
}

impl PositionIndex for GenericIndexer {
    fn height(&self) -> u32 {
        self.height
    }

    fn position(&self, node: NodeId, depth: u32) -> u64 {
        let mut root: NodeId = 1;
        let mut root_depth = 0u32;
        let mut h = self.height;
        let mut lo = 0u64;
        let mut mode = Mode::root(&self.spec);
        loop {
            if h == 1 {
                debug_assert_eq!(root, node);
                return lo;
            }
            let br = Branch::new(&self.spec, mode, h);
            let rel = depth - root_depth;
            if rel < br.g {
                // Target inside the top subtree; same mode, same root.
                lo += br.a_offset();
                h = br.g;
            } else {
                let c = node >> (rel - br.g); // bottom root on the path
                let x = c >> 1; // its parent leaf in A
                let q = 2 * self.leaf_rank(root, br.g, mode, x) + (c & 1);
                let (off, child_mode) = br.bottom_block(q);
                lo += off;
                root = c;
                root_depth += br.g;
                h = br.bh;
                mode = child_mode;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named::NamedLayout;
    use crate::tree::Tree;

    /// The generic indexer must agree with the engine *exactly* (same
    /// permutation, not merely canonically) because both use the shared
    /// branch arithmetic and natural child ordering.
    fn check_exact(layout: NamedLayout, h: u32) {
        let idx = GenericIndexer::new(layout.spec(), h);
        let mat = layout.materialize(h);
        let t = Tree::new(h);
        for i in t.nodes() {
            assert_eq!(
                idx.position(i, t.depth(i)),
                mat.position(i),
                "{layout} node {i} h={h}"
            );
        }
    }

    #[test]
    fn generic_matches_engine_for_every_named_layout() {
        for layout in NamedLayout::ALL {
            for h in 1..=11 {
                check_exact(layout, h);
            }
        }
    }

    #[test]
    fn generic_matches_engine_at_moderate_height() {
        for layout in [
            NamedLayout::MinWep,
            NamedLayout::HalfWep,
            NamedLayout::InVebA,
            NamedLayout::PreVebA,
        ] {
            check_exact(layout, 14);
        }
    }
}
